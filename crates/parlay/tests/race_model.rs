//! Exhaustive race models of parlay's two slot-claim protocols.
//!
//! 1. **Hash-table insert** (`hash_table::HashTable::insert`): CAS-claimed
//!    linear probing where concurrent duplicate inserts elect exactly one
//!    winner and distinct keys never share a slot.
//! 2. **RR-sort slot claim** (`rr_sort`'s step-3 scatter): a fully Relaxed
//!    vacancy-probe + CAS claim whose payload is the CAS word itself (the
//!    record index), published to the pack phase by the fork-join barrier.
//!
//! Both models mirror the production loops line-for-line over the in-tree
//! `loom` shim and run every interleaving of 2 contending threads, the
//! same pattern as `semisort`'s and `rayon`'s `race_model.rs`. See
//! `crates/xtask/atomics.toml` for the protocol→model mapping the
//! audit-atomics gate enforces.
//!
//! Not run under Miri: the explorer spawns thousands of real scheduled
//! threads, which Miri executes orders of magnitude too slowly.

#![cfg(not(miri))]

use std::sync::atomic::{AtomicUsize, Ordering as StdOrdering};

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::Arc;
use loom::thread;

/// The vacancy sentinel (`hash_table::EMPTY` / `rr_sort::VACANT`).
const EMPTY: u64 = 0;

/// Model mirror of `HashTable::insert`'s key-claim loop (keys only — the
/// value cell is the CAS winner's by the same argument as the scatter).
/// Returns `true` if this call inserted the key.
fn model_hash_insert(keys: &[AtomicU64], claims: &[AtomicUsize], mask: usize, key: u64) -> bool {
    let mut i = (key as usize) & mask;
    loop {
        let cur = keys[i].load(Ordering::Relaxed);
        if cur == key {
            return false;
        }
        if cur == EMPTY {
            match keys[i].compare_exchange(EMPTY, key, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => {
                    claims[i].fetch_add(1, StdOrdering::Relaxed);
                    return true;
                }
                Err(found) if found == key => return false,
                Err(_) => { /* lost to a different key: probe on */ }
            }
        } else {
            i = (i + 1) & mask;
        }
    }
}

#[test]
fn hash_insert_claims_are_exclusive() {
    // Two threads race the same duplicate key plus one distinct key each,
    // hashing into a 4-slot table: the duplicate must elect exactly one
    // winner, every slot is claimed at most once, and all three distinct
    // keys end up present exactly once.
    loom::model(|| {
        let keys: Arc<Vec<AtomicU64>> = Arc::new((0..4).map(|_| AtomicU64::new(EMPTY)).collect());
        let claims: Arc<Vec<AtomicUsize>> = Arc::new((0..4).map(|_| AtomicUsize::new(0)).collect());
        let dup_wins = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = [5u64, 6]
            .into_iter()
            .map(|own| {
                let keys = keys.clone();
                let claims = claims.clone();
                let dup_wins = dup_wins.clone();
                thread::spawn(move || {
                    // Both threads insert key 4 (same start slot), then a
                    // key of their own.
                    if model_hash_insert(&keys, &claims, 3, 4) {
                        dup_wins.fetch_add(1, StdOrdering::Relaxed);
                    }
                    assert!(model_hash_insert(&keys, &claims, 3, own));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            dup_wins.load(StdOrdering::Relaxed),
            1,
            "concurrent duplicate inserts must elect exactly one winner"
        );
        for (i, c) in claims.iter().enumerate() {
            assert!(
                c.load(StdOrdering::Relaxed) <= 1,
                "slot {i} claimed {} times",
                c.load(StdOrdering::Relaxed)
            );
        }
        let mut present: Vec<u64> = keys
            .iter()
            .map(AtomicU64::unsync_load)
            .filter(|&k| k != EMPTY)
            .collect();
        present.sort_unstable();
        assert_eq!(present, vec![4, 5, 6], "each key present exactly once");
    });
}

#[test]
fn rr_slot_claims_are_exclusive() {
    // Model mirror of rr_sort's step-3 claim: fully Relaxed probe + CAS
    // (the claim payload is the CAS word itself). 2 threads × 2 records
    // into a 4-slot sub-bucket, both probing from slot 0 — slots 0 and 1
    // are contended in every schedule and the bucket ends exactly full.
    // Record indices are 1-based so EMPTY stays sentinel-free.
    loom::model(|| {
        let slot: Arc<Vec<AtomicU64>> = Arc::new((0..4).map(|_| AtomicU64::new(EMPTY)).collect());
        let claims: Arc<Vec<AtomicUsize>> = Arc::new((0..4).map(|_| AtomicUsize::new(0)).collect());
        let handles: Vec<_> = [[1u64, 2], [3, 4]]
            .into_iter()
            .map(|ids| {
                let slot = slot.clone();
                let claims = claims.clone();
                thread::spawn(move || {
                    for id in ids {
                        let mut s = 0usize;
                        let mut placed = false;
                        for _ in 0..slot.len() {
                            if slot[s].load(Ordering::Relaxed) == EMPTY
                                && slot[s]
                                    .compare_exchange(
                                        EMPTY,
                                        id,
                                        Ordering::Relaxed,
                                        Ordering::Relaxed,
                                    )
                                    .is_ok()
                            {
                                claims[s].fetch_add(1, StdOrdering::Relaxed);
                                placed = true;
                                break;
                            }
                            s = (s + 1) & 3;
                        }
                        assert!(placed, "4 records cannot overflow 4 slots");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for (i, c) in claims.iter().enumerate() {
            assert_eq!(
                c.load(StdOrdering::Relaxed),
                1,
                "slot {i} must be claimed exactly once"
            );
        }
        let mut landed: Vec<u64> = slot.iter().map(AtomicU64::unsync_load).collect();
        landed.sort_unstable();
        assert_eq!(landed, vec![1, 2, 3, 4], "every record lands exactly once");
    });
}
