//! Property-based tests for every parlay primitive: each parallel algorithm
//! must agree with its obvious sequential reference on arbitrary inputs.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // ---- scan ----

    #[test]
    fn scan_exclusive_matches_reference(v in prop::collection::vec(0usize..1000, 0..20_000)) {
        let mut got = v.clone();
        let total = parlay::scan_add_exclusive(&mut got);
        let mut acc = 0;
        for (i, &x) in v.iter().enumerate() {
            prop_assert_eq!(got[i], acc);
            acc += x;
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn scan_inclusive_matches_reference(v in prop::collection::vec(0usize..1000, 0..20_000)) {
        let mut got = v.clone();
        let total = parlay::scan_add_inclusive(&mut got);
        let mut acc = 0;
        for (i, &x) in v.iter().enumerate() {
            acc += x;
            prop_assert_eq!(got[i], acc);
        }
        prop_assert_eq!(total, acc);
    }

    // ---- pack ----

    #[test]
    fn pack_matches_filter(v in prop::collection::vec(any::<u32>(), 0..20_000), modulus in 1u32..10) {
        let want: Vec<u32> = v.iter().copied().filter(|x| x % modulus == 0).collect();
        let got = parlay::pack(&v, |_, x| x % modulus == 0);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn pack_index_matches_positions(n in 0usize..30_000, modulus in 1usize..7) {
        let want: Vec<usize> = (0..n).filter(|i| i % modulus == 0).collect();
        let got = parlay::pack_index(n, |i| i % modulus == 0);
        prop_assert_eq!(got, want);
    }

    // ---- counting sort ----

    #[test]
    fn counting_sort_matches_stable_sort(
        v in prop::collection::vec((0u8..32, any::<u32>()), 0..15_000)
    ) {
        let mut want = v.clone();
        want.sort_by_key(|p| p.0);
        let mut got = v.clone();
        parlay::counting_sort::counting_sort(&mut got, 32, |p| p.0 as usize);
        prop_assert_eq!(got, want);
    }

    // ---- radix sort ----

    #[test]
    fn radix_sort_matches_std(v in prop::collection::vec(any::<u64>(), 0..15_000)) {
        let mut want = v.clone();
        want.sort_unstable();
        let mut got = v.clone();
        parlay::radix_sort::radix_sort_u64(&mut got);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn radix_sort_limited_bits(v in prop::collection::vec(0u64..4096, 0..15_000)) {
        let mut want = v.clone();
        want.sort_unstable();
        let mut got = v.clone();
        parlay::radix_sort::radix_sort_by_key(&mut got, 12, |&x| x);
        prop_assert_eq!(got, want);
    }

    // ---- sample sort ----

    #[test]
    fn sample_sort_matches_std(v in prop::collection::vec(any::<u64>(), 0..15_000)) {
        let mut want = v.clone();
        want.sort_unstable();
        let mut got = v.clone();
        parlay::sample_sort::sample_sort_by(&mut got, |a, b| a < b);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn sample_sort_duplicate_heavy(v in prop::collection::vec(0u64..4, 0..15_000)) {
        let mut want = v.clone();
        want.sort_unstable();
        let mut got = v.clone();
        parlay::sample_sort::sample_sort_by(&mut got, |a, b| a < b);
        prop_assert_eq!(got, want);
    }

    // ---- merge sort / merge ----

    #[test]
    fn merge_sort_matches_std_and_is_stable(
        v in prop::collection::vec((0u8..16, any::<u32>()), 0..15_000)
    ) {
        let mut want = v.clone();
        want.sort_by_key(|p| p.0); // std stable sort
        let mut got = v.clone();
        parlay::merge::merge_sort_by(&mut got, |a, b| a.0 < b.0);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn merge_matches_reference(
        mut a in prop::collection::vec(any::<u32>(), 0..8_000),
        mut b in prop::collection::vec(any::<u32>(), 0..8_000),
    ) {
        a.sort_unstable();
        b.sort_unstable();
        let mut out = vec![0u32; a.len() + b.len()];
        parlay::merge::merge_into(&a, &b, &mut out, &|x, y| x < y);
        let mut want = [a, b].concat();
        want.sort_unstable();
        prop_assert_eq!(out, want);
    }

    // ---- RR integer sort ----

    #[test]
    fn rr_sort_matches_std(v in prop::collection::vec(0u64..(1 << 20), 0..15_000)) {
        let mut want = v.clone();
        want.sort_unstable();
        let mut got = v.clone();
        parlay::rr_sort::rr_sort_by_key(&mut got, 20, |&x| x);
        prop_assert_eq!(got, want);
    }

    // ---- hash table ----

    #[test]
    fn hash_table_agrees_with_hashmap(
        inserts in prop::collection::vec((1u64..500, any::<u64>()), 0..2_000)
    ) {
        let table = parlay::hash_table::PhaseConcurrentMap::<u64>::new(inserts.len().max(1));
        let mut reference = std::collections::HashMap::new();
        for &(k, v) in &inserts {
            // First insert wins in both structures.
            let fresh = table.insert(k, v);
            let ref_fresh = !reference.contains_key(&k);
            reference.entry(k).or_insert(v);
            prop_assert_eq!(fresh, ref_fresh);
        }
        for k in 1..500u64 {
            prop_assert_eq!(table.lookup(k), reference.get(&k).copied());
        }
    }

    // ---- hash ----

    #[test]
    fn hash64_roundtrips(x in any::<u64>()) {
        prop_assert_eq!(parlay::hash::unhash64(parlay::hash64(x)), x);
    }
}
