//! Counter-based deterministic pseudorandomness.
//!
//! Parallel algorithms that consume randomness (the scatter phase picks a
//! random slot per record; the sampler jitters within strides) must not pull
//! from a shared sequential PRNG — that would serialize them and make the
//! output depend on scheduling. Instead, the i-th random draw is a pure
//! function of `(seed, i)`: `hash64(seed ⊕ mix(i))`. This is the standard
//! counter-based RNG construction (as in Salmon et al.'s Random123), giving
//! every parallel task its own independent stream with zero coordination and
//! making every algorithm in this workspace bit-reproducible at any thread
//! count.

use crate::hash::{hash64, hash64_pair};

/// A deterministic random source indexed by position.
///
/// `Rng::new(seed).at(i)` is a pure function; cloning or sharing across
/// threads is free because there is no mutable state.
///
/// ```
/// use parlay::random::Rng;
/// let r = Rng::new(42);
/// assert_eq!(r.at(7), Rng::new(42).at(7)); // pure in (seed, index)
/// assert!(r.at_bounded(3, 10) < 10);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rng {
    seed: u64,
}

impl Rng {
    /// Create a source from a seed. Equal seeds give equal streams.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Rng { seed: hash64(seed) }
    }

    /// Derive an independent child stream (e.g. one per phase or per retry).
    #[inline]
    pub fn fork(self, stream: u64) -> Self {
        Rng {
            seed: hash64_pair(self.seed, stream),
        }
    }

    /// The i-th 64-bit draw of this stream.
    #[inline(always)]
    pub fn at(self, i: u64) -> u64 {
        hash64_pair(self.seed, i)
    }

    /// The i-th draw reduced to `[0, bound)`.
    ///
    /// Uses the widening-multiply reduction (Lemire), which is unbiased
    /// enough for load balancing: bias is at most `bound / 2^64`.
    #[inline(always)]
    pub fn at_bounded(self, i: u64, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        (((self.at(i) as u128) * (bound as u128)) >> 64) as u64
    }

    /// The i-th draw as a double in `[0, 1)`.
    #[inline(always)]
    pub fn at_f64(self, i: u64) -> f64 {
        // 53 random mantissa bits.
        (self.at(i) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a = Rng::new(7);
        let b = Rng::new(7);
        for i in 0..100 {
            assert_eq!(a.at(i), b.at(i));
        }
    }

    #[test]
    fn forked_streams_are_distinct() {
        let r = Rng::new(1);
        let (a, b) = (r.fork(0), r.fork(1));
        let collisions = (0..1000).filter(|&i| a.at(i) == b.at(i)).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn bounded_draws_in_range_and_cover() {
        let r = Rng::new(3);
        let mut seen = [false; 10];
        for i in 0..1000 {
            let v = r.at_bounded(i, 10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn f64_draws_in_unit_interval_with_sane_mean() {
        let r = Rng::new(9);
        let n = 10_000;
        let sum: f64 = (0..n).map(|i| r.at_f64(i)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
        assert!((0..n).all(|i| {
            let v = r.at_f64(i);
            (0.0..1.0).contains(&v)
        }));
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let r = Rng::new(11);
        let mut counts = [0u32; 16];
        for i in 0..16_000 {
            counts[r.at_bounded(i, 16) as usize] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "count {c} out of range");
        }
    }
}
