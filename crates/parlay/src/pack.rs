//! Parallel pack (filter).
//!
//! The packing problem "takes an array of values and an equal length array
//! of flags, and packs the elements at positions with true flags down into a
//! contiguous output array. It can be implemented in parallel with a prefix
//! sum on the flags (treated as 0s and 1s) followed by a write to the
//! resulting positions" (§2). Semisort uses pack for sampling (Step 2),
//! separating heavy from light sample keys (Step 4), and the final
//! compaction (Step 8).
//!
//! Like PBBS, we use the blocked formulation instead of a per-element flag
//! scan: each block counts its survivors, a short scan turns counts into
//! block offsets, then each block writes its survivors contiguously. One
//! read pass + one write pass, no `n`-length temporary.

use rayon::prelude::*;

use crate::scan::scan_add_exclusive;
use crate::shared::SendPtr;
use crate::slices::{block_range, num_blocks};

/// Pack the elements of `a` whose predicate holds into a new vector,
/// preserving input order.
///
/// ```
/// let a = [5, 8, 2, 9, 4];
/// assert_eq!(parlay::pack(&a, |_idx, &x| x % 2 == 0), vec![8, 2, 4]);
/// ```
pub fn pack<T, F>(a: &[T], keep: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(usize, &T) -> bool + Send + Sync,
{
    let mut out = Vec::new();
    pack_into(a, keep, &mut out);
    out
}

/// Pack into a caller-supplied vector (cleared first). Returns the count.
///
/// Splitting allocation from packing lets hot loops reuse buffers.
pub fn pack_into<T, F>(a: &[T], keep: F, out: &mut Vec<T>) -> usize
where
    T: Copy + Send + Sync,
    F: Fn(usize, &T) -> bool + Send + Sync,
{
    let n = a.len();
    let blocks = num_blocks(n);

    if blocks == 1 {
        out.clear();
        out.extend(
            a.iter()
                .enumerate()
                .filter(|(i, x)| keep(*i, x))
                .map(|(_, &x)| x),
        );
        return out.len();
    }

    // Pass 1: count survivors per block.
    let mut offsets: Vec<usize> = (0..blocks)
        .into_par_iter()
        .map(|b| {
            let r = block_range(b, blocks, n);
            a[r.clone()]
                .iter()
                .enumerate()
                .filter(|(j, x)| keep(r.start + j, x))
                .count()
        })
        .collect();
    let total = scan_add_exclusive(&mut offsets);

    // Pass 2: write survivors at their block offset.
    out.clear();
    out.reserve(total);
    // Fill via spare capacity so blocks can write disjoint ranges in parallel.
    let spare = out.spare_capacity_mut();
    let spare_ptr = SendPtr(spare.as_mut_ptr());
    (0..blocks).into_par_iter().for_each(|b| {
        let r = block_range(b, blocks, n);
        let mut pos = offsets[b];
        let ptr = spare_ptr; // copy the Send wrapper into the closure
        for (j, x) in a[r.clone()].iter().enumerate() {
            if keep(r.start + j, x) {
                // SAFETY: every surviving element gets a unique index below
                // `total` (offsets partition [0, total) by block), and
                // `total` elements of capacity were reserved above.
                unsafe { (*ptr.0.add(pos)).write(*x) };
                pos += 1;
            }
        }
    });
    // SAFETY: all `total` slots were initialized by the loop above.
    unsafe { out.set_len(total) };
    total
}

/// Pack the *indices* at which the predicate holds, in increasing order.
///
/// ```
/// assert_eq!(parlay::pack_index(6, |i| i % 2 == 0), vec![0, 2, 4]);
/// ```
pub fn pack_index<F>(n: usize, keep: F) -> Vec<usize>
where
    F: Fn(usize) -> bool + Send + Sync,
{
    // Reuse pack over the index sequence without materializing it: build a
    // lightweight proxy slice of indices per block.
    let blocks = num_blocks(n);
    if blocks == 1 {
        return (0..n).filter(|&i| keep(i)).collect();
    }
    let mut offsets: Vec<usize> = (0..blocks)
        .into_par_iter()
        .map(|b| block_range(b, blocks, n).filter(|&i| keep(i)).count())
        .collect();
    let total = scan_add_exclusive(&mut offsets);
    let mut out: Vec<usize> = Vec::with_capacity(total);
    let spare_ptr = SendPtr(out.spare_capacity_mut().as_mut_ptr());
    (0..blocks).into_par_iter().for_each(|b| {
        let mut pos = offsets[b];
        let ptr = spare_ptr;
        for i in block_range(b, blocks, n) {
            if keep(i) {
                // SAFETY: same disjoint-ranges argument as `pack_into`.
                unsafe { (*ptr.0.add(pos)).write(i) };
                pos += 1;
            }
        }
    });
    // SAFETY: all `total` slots initialized above.
    unsafe { out.set_len(total) };
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_empty() {
        let a: Vec<u32> = vec![];
        assert!(pack(&a, |_, _| true).is_empty());
    }

    #[test]
    fn pack_all_and_none() {
        let a: Vec<u32> = (0..100).collect();
        assert_eq!(pack(&a, |_, _| true), a);
        assert!(pack(&a, |_, _| false).is_empty());
    }

    #[test]
    fn pack_evens_small() {
        let a: Vec<u32> = (0..100).collect();
        let want: Vec<u32> = (0..100).filter(|x| x % 2 == 0).collect();
        assert_eq!(pack(&a, |_, x| x % 2 == 0), want);
    }

    #[test]
    fn pack_large_matches_filter() {
        let a: Vec<u64> = (0..200_000).map(|i| (i * 2654435761) % 1000).collect();
        let want: Vec<u64> = a.iter().copied().filter(|&x| x < 300).collect();
        let got = pack(&a, |_, &x| x < 300);
        assert_eq!(got, want);
    }

    #[test]
    fn pack_predicate_sees_correct_index() {
        let a: Vec<u32> = vec![7; 100_000];
        let got = pack(&a, |i, _| i % 1000 == 0);
        assert_eq!(got.len(), 100);
    }

    #[test]
    fn pack_into_reuses_buffer() {
        let a: Vec<u32> = (0..50_000).collect();
        let mut buf = vec![1, 2, 3];
        let cnt = pack_into(&a, |_, &x| x % 7 == 0, &mut buf);
        assert_eq!(cnt, buf.len());
        assert!(buf.iter().all(|&x| x % 7 == 0));
        assert_eq!(buf.len(), (0..50_000).filter(|x| x % 7 == 0).count());
    }

    #[test]
    fn pack_index_matches_reference() {
        let want: Vec<usize> = (0..120_000).filter(|i| i % 13 == 5).collect();
        let got = pack_index(120_000, |i| i % 13 == 5);
        assert_eq!(got, want);
    }

    #[test]
    fn pack_index_small() {
        assert_eq!(pack_index(10, |i| i >= 8), vec![8, 9]);
        assert!(pack_index(0, |_| true).is_empty());
    }

    #[test]
    fn pack_preserves_order_large() {
        let a: Vec<u64> = (0..100_000).collect();
        let got = pack(&a, |_, &x| x % 3 == 0);
        assert!(got.windows(2).all(|w| w[0] < w[1]));
    }
}
