//! Parallel random shuffle.
//!
//! A uniformly random permutation via the scatter pattern the semisort
//! itself uses: tag every element with a random 64-bit priority and sort by
//! it. With 64-bit priorities, ties occur with probability `≈ n²/2^64` and
//! merely make those few elements' relative order deterministic — the
//! permutation distribution is uniform up to that negligible bias. `O(n)`
//! work via the radix sort's leading digits, `O(log n)` depth.
//!
//! (PBBS also ships a scatter-based `randomShuffle`; sort-by-random-key is
//! the simpler equivalent and reuses the substrate.)

use rayon::prelude::*;

use crate::radix_sort::radix_sort_by_key;
use crate::random::Rng;

/// Shuffle `a` uniformly at random, deterministically in `seed`.
///
/// ```
/// let mut v: Vec<u32> = (0..100).collect();
/// parlay::shuffle::random_shuffle(&mut v, 42);
/// let mut back = v.clone();
/// back.sort_unstable();
/// assert_eq!(back, (0..100).collect::<Vec<u32>>());
/// ```
pub fn random_shuffle<T: Copy + Send + Sync>(a: &mut [T], seed: u64) {
    let rng = Rng::new(seed);
    let mut tagged: Vec<(u64, T)> = a
        .par_iter()
        .enumerate()
        .with_min_len(4096)
        .map(|(i, &x)| (rng.at(i as u64), x))
        .collect();
    radix_sort_by_key(&mut tagged, 64, |p| p.0);
    a.par_iter_mut()
        .zip(tagged.par_iter())
        .with_min_len(4096)
        .for_each(|(slot, p)| *slot = p.1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single() {
        let mut e: Vec<u32> = vec![];
        random_shuffle(&mut e, 1);
        let mut s = vec![9u32];
        random_shuffle(&mut s, 1);
        assert_eq!(s, vec![9]);
    }

    #[test]
    fn is_a_permutation() {
        let mut v: Vec<u32> = (0..100_000).collect();
        random_shuffle(&mut v, 7);
        assert_ne!(v[..100], (0..100).collect::<Vec<u32>>()[..]);
        let mut back = v.clone();
        back.sort_unstable();
        assert!(back.iter().enumerate().all(|(i, &x)| x == i as u32));
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a: Vec<u32> = (0..50_000).collect();
        let mut b = a.clone();
        random_shuffle(&mut a, 3);
        random_shuffle(&mut b, 3);
        assert_eq!(a, b);
        let mut c: Vec<u32> = (0..50_000).collect();
        random_shuffle(&mut c, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn positions_look_uniform() {
        // Element 0's landing position over many seeds should spread out.
        let n = 1024u32;
        let mut buckets = [0u32; 8];
        for seed in 0..400u64 {
            let mut v: Vec<u32> = (0..n).collect();
            random_shuffle(&mut v, seed);
            let pos = v.iter().position(|&x| x == 0).unwrap();
            buckets[pos * 8 / n as usize] += 1;
        }
        for &b in &buckets {
            assert!((20..90).contains(&b), "octant counts skewed: {buckets:?}");
        }
    }
}
