//! 64-bit mixing functions.
//!
//! The paper assumes "a uniform random hash function that maps keys to
//! integers in the range `[n^k]` in constant time" (§3). We use the
//! splitmix64 finalizer, a full-avalanche bijection on `u64`: every output
//! bit depends on every input bit, and distinct inputs map to distinct
//! outputs. Bijectivity means hashing the key space `[n]` into 64 bits is
//! collision-free by construction, which matches the paper's `k > 2`
//! no-collision regime exactly (and lets tests treat hash = identity of
//! equality classes).

/// The splitmix64 finalizer: a bijective full-avalanche mix of a `u64`.
///
/// This is the `fmix`-style finalizer from Vigna's splitmix64 generator.
/// It is invertible (see [`unhash64`]), so it cannot introduce collisions.
#[inline(always)]
pub fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Inverse of [`hash64`]; used only in tests to demonstrate bijectivity.
#[inline]
pub fn unhash64(mut x: u64) -> u64 {
    // Invert x ^= x >> 31 (shift >= 32 would need one step; 31 needs two).
    x = x ^ (x >> 31) ^ (x >> 62);
    x = x.wrapping_mul(0x319642b2d24d8ec3); // modular inverse of 0x94d049bb133111eb
    x = x ^ (x >> 27) ^ (x >> 54);
    x = x.wrapping_mul(0x96de1b173f119089); // modular inverse of 0xbf58476d1ce4e5b9
    x = x ^ (x >> 30) ^ (x >> 60);
    x.wrapping_sub(0x9e3779b97f4a7c15)
}

/// Seeded variant of [`hash64`]: an independent-looking hash family indexed
/// by `seed`.
///
/// Used by the Las Vegas retry path: if a run is detected to have failed
/// (bucket overflow), the algorithm restarts with a fresh seed, giving a
/// fresh random function from the same family.
#[inline(always)]
pub fn hash64_with_seed(x: u64, seed: u64) -> u64 {
    hash64(x ^ hash64(seed))
}

/// Mix two words into one; handy for hashing (seed, index) pairs.
///
/// One odd-constant multiply spreads `b` across the word, one xor folds in
/// `a`, one full-avalanche finalizer — a single [`hash64`] instead of two,
/// since this sits on the scatter's per-record hot path.
#[inline(always)]
pub fn hash64_pair(a: u64, b: u64) -> u64 {
    hash64(a ^ b.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(31))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(hash64(42), hash64(42));
        assert_eq!(hash64_with_seed(42, 7), hash64_with_seed(42, 7));
    }

    #[test]
    fn hash_is_bijective_roundtrip() {
        for x in [0u64, 1, 2, 41, u64::MAX, 0xdeadbeef, 1 << 63] {
            assert_eq!(unhash64(hash64(x)), x, "roundtrip failed for {x}");
        }
        for i in 0..10_000u64 {
            assert_eq!(unhash64(hash64(i)), i);
        }
    }

    #[test]
    fn seeds_give_different_functions() {
        let same = (0..1000u64)
            .filter(|&i| hash64_with_seed(i, 1) == hash64_with_seed(i, 2))
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn low_bits_look_uniform() {
        // Bucket 64k consecutive integers by the top 8 bits of their hash;
        // each of the 256 buckets should get roughly 256 entries.
        let mut counts = [0u32; 256];
        for i in 0..65_536u64 {
            counts[(hash64(i) >> 56) as usize] += 1;
        }
        let (min, max) = counts
            .iter()
            .fold((u32::MAX, 0), |(lo, hi), &c| (lo.min(c), hi.max(c)));
        assert!(min > 150 && max < 400, "skewed: min={min} max={max}");
    }

    #[test]
    fn pair_hash_differs_in_both_args() {
        assert_ne!(hash64_pair(1, 2), hash64_pair(2, 1));
        assert_ne!(hash64_pair(0, 0), hash64_pair(0, 1));
    }
}
