//! Sequence operations: tabulate, map, zip — the parlaylib-style helpers
//! that round out the substrate.
//!
//! All of them are thin, *granularity-controlled* wrappers over rayon:
//! sequential below [`crate::slices::GRAIN`] elements, blocked parallel
//! above, so callers can use them obliviously inside already-parallel code
//! (the same discipline as every other primitive here).

use rayon::prelude::*;

use crate::slices::GRAIN;

/// Build a vector of length `n` from an index function: `out[i] = f(i)`.
///
/// ```
/// assert_eq!(parlay::seq_ops::tabulate(4, |i| i * i), vec![0, 1, 4, 9]);
/// ```
pub fn tabulate<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Send + Sync,
{
    if n < GRAIN {
        return (0..n).map(f).collect();
    }
    (0..n)
        .into_par_iter()
        .with_min_len(GRAIN / 4)
        .map(f)
        .collect()
}

/// Map a slice to a new vector.
pub fn map<T, U, F>(a: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Send + Sync,
{
    if a.len() < GRAIN {
        return a.iter().map(f).collect();
    }
    a.par_iter().with_min_len(GRAIN / 4).map(f).collect()
}

/// Zip two equal-length slices through a combiner.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn zip_with<A, B, C, F>(a: &[A], b: &[B], f: F) -> Vec<C>
where
    A: Sync,
    B: Sync,
    C: Send,
    F: Fn(&A, &B) -> C + Send + Sync,
{
    assert_eq!(a.len(), b.len(), "zip_with length mismatch");
    if a.len() < GRAIN {
        return a.iter().zip(b).map(|(x, y)| f(x, y)).collect();
    }
    a.par_iter()
        .zip(b.par_iter())
        .with_min_len(GRAIN / 4)
        .map(|(x, y)| f(x, y))
        .collect()
}

/// Count the elements satisfying a predicate.
pub fn count_if<T, F>(a: &[T], pred: F) -> usize
where
    T: Sync,
    F: Fn(&T) -> bool + Send + Sync,
{
    if a.len() < GRAIN {
        return a.iter().filter(|x| pred(x)).count();
    }
    a.par_iter()
        .with_min_len(GRAIN / 4)
        .filter(|x| pred(x))
        .count()
}

/// Whether all elements satisfy the predicate (vacuously true when empty).
pub fn all_of<T, F>(a: &[T], pred: F) -> bool
where
    T: Sync,
    F: Fn(&T) -> bool + Send + Sync,
{
    if a.len() < GRAIN {
        return a.iter().all(&pred);
    }
    a.par_iter().with_min_len(GRAIN / 4).all(pred)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tabulate_small_and_large() {
        assert_eq!(tabulate(0, |i| i), Vec::<usize>::new());
        let big = tabulate(100_000, |i| i as u64 * 2);
        assert_eq!(big.len(), 100_000);
        assert!(big.iter().enumerate().all(|(i, &x)| x == i as u64 * 2));
    }

    #[test]
    fn map_matches_iter_map() {
        let a: Vec<u32> = (0..50_000).collect();
        let want: Vec<u64> = a.iter().map(|&x| x as u64 + 1).collect();
        assert_eq!(map(&a, |&x| x as u64 + 1), want);
    }

    #[test]
    fn zip_with_combines_pairwise() {
        let a: Vec<u32> = (0..30_000).collect();
        let b: Vec<u32> = (0..30_000).map(|i| i * 2).collect();
        let c = zip_with(&a, &b, |&x, &y| x + y);
        assert!(c.iter().enumerate().all(|(i, &v)| v as usize == 3 * i));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn zip_with_length_mismatch_panics() {
        zip_with(&[1], &[1, 2], |&a: &i32, &b: &i32| a + b);
    }

    #[test]
    fn count_if_and_all_of() {
        let a: Vec<u32> = (0..100_000).collect();
        assert_eq!(count_if(&a, |&x| x % 10 == 0), 10_000);
        assert!(all_of(&a, |&x| x < 100_000));
        assert!(!all_of(&a, |&x| x < 99_999));
        assert!(all_of::<u32, _>(&[], |_| false), "vacuous truth");
    }
}
