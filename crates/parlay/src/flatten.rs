//! Parallel flatten: concatenate nested sequences.
//!
//! The PBBS/parlaylib `flatten` primitive — the inverse of what a semisort's
//! `group_by` produces. A scan over the inner lengths assigns each inner
//! sequence its output offset; the copies then proceed fully in parallel.
//! `O(total)` work, `O(log n)` depth.

use rayon::prelude::*;

use crate::scan::scan_add_exclusive;
use crate::shared::SendPtr;

/// Concatenate the inner slices into one vector.
///
/// ```
/// let nested = vec![vec![1, 2], vec![], vec![3]];
/// assert_eq!(parlay::flatten::flatten(&nested), vec![1, 2, 3]);
/// ```
pub fn flatten<T: Copy + Send + Sync>(nested: &[Vec<T>]) -> Vec<T> {
    flatten_slices(&nested.iter().map(|v| v.as_slice()).collect::<Vec<_>>())
}

/// Concatenate arbitrary slices into one vector.
pub fn flatten_slices<T: Copy + Send + Sync>(nested: &[&[T]]) -> Vec<T> {
    let mut offsets: Vec<usize> = nested.iter().map(|s| s.len()).collect();
    let total = scan_add_exclusive(&mut offsets);
    let mut out: Vec<T> = Vec::with_capacity(total);
    let ptr = SendPtr(out.spare_capacity_mut().as_mut_ptr());
    nested
        .par_iter()
        .zip(offsets.par_iter())
        .with_min_len(64)
        .for_each(|(inner, &off)| {
            let p = ptr;
            for (i, &x) in inner.iter().enumerate() {
                // SAFETY: the scan gives each inner slice a disjoint output
                // range [off, off + len).
                unsafe { (*p.0.add(off + i)).write(x) };
            }
        });
    // SAFETY: the ranges above tile [0, total) exactly.
    unsafe { out.set_len(total) };
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cases() {
        let empty: Vec<Vec<u32>> = vec![];
        assert!(flatten(&empty).is_empty());
        let all_empty: Vec<Vec<u32>> = vec![vec![], vec![], vec![]];
        assert!(flatten(&all_empty).is_empty());
    }

    #[test]
    fn preserves_order() {
        let nested = vec![vec![1u32, 2], vec![3], vec![], vec![4, 5, 6]];
        assert_eq!(flatten(&nested), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn large_ragged_matches_concat() {
        let nested: Vec<Vec<u64>> = (0..5_000u64)
            .map(|i| (0..(i % 37)).map(|j| i * 1000 + j).collect())
            .collect();
        let want: Vec<u64> = nested.concat();
        assert_eq!(flatten(&nested), want);
    }

    #[test]
    fn roundtrips_group_by_like_structure() {
        // Split 0..n into runs, flatten, expect the original.
        let original: Vec<u32> = (0..100_000).collect();
        let nested: Vec<&[u32]> = original.chunks(173).collect();
        assert_eq!(flatten_slices(&nested), original);
    }
}
