//! Parallel prefix sums (scans).
//!
//! The prefix-sum problem "takes an array of n integers and returns an equal
//! length array in which each element is the sum of the previous elements,
//! as well as the overall sum" (§2 of the paper). It is the workhorse under
//! pack, counting sort, and bucket allocation.
//!
//! Implementation: the classic blocked two-pass scheme. Pass one reduces
//! each block sequentially (blocks in parallel); the per-block sums are
//! scanned sequentially (there are only `O(n / GRAIN)` of them); pass two
//! replays each block sequentially seeded with its block offset. This does
//! `2n` element visits — the same constant PBBS uses — with `O(log n)` depth
//! given enough blocks.

use rayon::prelude::*;

use crate::slices::{block_range, num_blocks};

/// Generic exclusive scan: `out[i] = id ⊕ a[0] ⊕ … ⊕ a[i-1]`, returning the
/// total `id ⊕ a[0] ⊕ … ⊕ a[n-1]`.
///
/// `op` must be associative; it need not be commutative (blocks combine in
/// index order).
pub fn scan_exclusive<T, F>(a: &mut [T], id: T, op: F) -> T
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Send + Sync,
{
    let n = a.len();
    if n == 0 {
        return id;
    }
    let blocks = num_blocks(n);
    if blocks == 1 {
        return scan_exclusive_seq(a, id, &op);
    }

    // Pass 1: reduce each block.
    let mut sums: Vec<T> = (0..blocks)
        .into_par_iter()
        .map(|b| {
            let r = block_range(b, blocks, n);
            a[r].iter().fold(id, |acc, &x| op(acc, x))
        })
        .collect();

    // Scan the (short) per-block sums sequentially.
    let total = scan_exclusive_seq(&mut sums, id, &op);

    // Pass 2: replay each block seeded with its offset.
    let sums_ref = &sums;
    let op_ref = &op;
    par_for_each_block_mut(a, blocks, |b, block| {
        let mut acc = sums_ref[b];
        for x in block.iter_mut() {
            let orig = *x;
            *x = acc;
            acc = op_ref(acc, orig);
        }
    });
    total
}

/// Sequential exclusive scan (used for small inputs and per-block sums).
pub fn scan_exclusive_seq<T, F>(a: &mut [T], id: T, op: &F) -> T
where
    T: Copy,
    F: Fn(T, T) -> T,
{
    let mut acc = id;
    for x in a.iter_mut() {
        let orig = *x;
        *x = acc;
        acc = op(acc, orig);
    }
    acc
}

/// Run `f(block_index, block)` over the blocked decomposition of `a`, blocks
/// in parallel, each block a disjoint `&mut` sub-slice.
pub fn par_for_each_block_mut<T, F>(a: &mut [T], blocks: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Send + Sync,
{
    let n = a.len();
    // Carve `a` into its block sub-slices up front, then iterate in parallel.
    let mut rest = a;
    let mut parts: Vec<(usize, &mut [T])> = Vec::with_capacity(blocks);
    let mut consumed = 0;
    for b in 0..blocks {
        let r = block_range(b, blocks, n);
        let (head, tail) = rest.split_at_mut(r.end - consumed);
        parts.push((b, head));
        rest = tail;
        consumed = r.end;
    }
    parts.into_par_iter().for_each(|(b, block)| f(b, block));
}

/// Exclusive prefix sum of `usize` counts in place; returns the grand total.
///
/// This is the form used by pack, counting sort, and bucket allocation.
///
/// ```
/// let mut a = vec![3, 1, 4, 1];
/// let total = parlay::scan_add_exclusive(&mut a);
/// assert_eq!(a, vec![0, 3, 4, 8]);
/// assert_eq!(total, 9);
/// ```
pub fn scan_add_exclusive(a: &mut [usize]) -> usize {
    scan_exclusive(a, 0usize, |x, y| x + y)
}

/// Inclusive prefix sum: `out[i] = a[0] + … + a[i]`; returns the total.
pub fn scan_add_inclusive(a: &mut [usize]) -> usize {
    let total = scan_add_exclusive(a);
    let n = a.len();
    if n == 0 {
        return 0;
    }
    // Shift left by one and append the total: inclusive[i] = exclusive[i+1].
    par_shift_left_inclusive(a, total);
    total
}

fn par_shift_left_inclusive(a: &mut [usize], total: usize) {
    let n = a.len();
    if n < crate::slices::GRAIN {
        for i in 0..n - 1 {
            a[i] = a[i + 1];
        }
        a[n - 1] = total;
        return;
    }
    let snapshot: Vec<usize> = a.to_vec();
    a.par_iter_mut().enumerate().for_each(|(i, x)| {
        *x = if i + 1 < n { snapshot[i + 1] } else { total };
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_exclusive(a: &[usize]) -> (Vec<usize>, usize) {
        let mut out = Vec::with_capacity(a.len());
        let mut acc = 0;
        for &x in a {
            out.push(acc);
            acc += x;
        }
        (out, acc)
    }

    #[test]
    fn empty_scan() {
        let mut a: Vec<usize> = vec![];
        assert_eq!(scan_add_exclusive(&mut a), 0);
        assert_eq!(scan_add_inclusive(&mut a), 0);
    }

    #[test]
    fn small_exclusive_matches_reference() {
        let orig = vec![3usize, 1, 4, 1, 5, 9, 2, 6];
        let (want, want_total) = seq_exclusive(&orig);
        let mut a = orig.clone();
        let total = scan_add_exclusive(&mut a);
        assert_eq!(a, want);
        assert_eq!(total, want_total);
    }

    #[test]
    fn large_exclusive_matches_reference() {
        let orig: Vec<usize> = (0..100_000).map(|i| (i * 7 + 3) % 11).collect();
        let (want, want_total) = seq_exclusive(&orig);
        let mut a = orig.clone();
        let total = scan_add_exclusive(&mut a);
        assert_eq!(a, want);
        assert_eq!(total, want_total);
    }

    #[test]
    fn inclusive_matches_reference() {
        let orig: Vec<usize> = (0..50_000).map(|i| i % 5).collect();
        let mut want = Vec::new();
        let mut acc = 0;
        for &x in &orig {
            acc += x;
            want.push(acc);
        }
        let mut a = orig.clone();
        let total = scan_add_inclusive(&mut a);
        assert_eq!(a, want);
        assert_eq!(total, acc);
    }

    #[test]
    fn non_commutative_op_scans_in_order() {
        // Affine maps x ↦ a·x + b under composition: associative but not
        // commutative, so any block-order mistake in the scan shows up.
        #[derive(Clone, Copy, PartialEq, Debug)]
        struct P(i64, i64);
        let op = |f: P, g: P| {
            P(
                f.0.wrapping_mul(g.0),
                f.1.wrapping_mul(g.0).wrapping_add(g.1),
            )
        };
        let orig: Vec<P> = (0..20_000)
            .map(|i| P((i as i64 % 5) - 2, i as i64 % 11))
            .collect();
        let mut seq = orig.clone();
        let id = P(1, 0);
        let t_seq = scan_exclusive_seq(&mut seq, id, &op);
        let mut par = orig.clone();
        let t_par = scan_exclusive(&mut par, id, op);
        assert_eq!(seq, par);
        assert_eq!(t_seq, t_par);
    }

    #[test]
    fn single_element() {
        let mut a = vec![42usize];
        let total = scan_add_exclusive(&mut a);
        assert_eq!(a, vec![0]);
        assert_eq!(total, 42);
        let mut b = vec![42usize];
        let total = scan_add_inclusive(&mut b);
        assert_eq!(b, vec![42]);
        assert_eq!(total, 42);
    }
}
