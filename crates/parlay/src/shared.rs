//! Write-shared slices for scatter-style parallel algorithms.
//!
//! Several algorithms in this workspace (counting sort's final placement,
//! radix sort's bucket placement, semisort's random scatter) have the shape
//! "many tasks write disjoint — or CAS-arbitrated — positions of one output
//! array, nobody reads until the phase barrier". Rust's `&mut` aliasing
//! rules cannot express that pattern directly, so this module provides a
//! single, documented unsafe primitive the rest of the code builds on:
//! [`SharedSlice`], a bounds-checked slice whose *disjointness* (not
//! bounds) is the caller's obligation.

use std::cell::UnsafeCell;

/// A slice that may be written concurrently from many rayon tasks.
///
/// # Safety contract
///
/// `write(i, v)` is safe to call from many threads only if no two tasks
/// write the same index within a phase, and no task reads an index that any
/// task may still write (reads must happen after the fork-join barrier).
/// Every call site in this workspace discharges this with one of two
/// arguments:
///
/// 1. **Partitioned writes** — indices are split among tasks by a prefix
///    sum, so ranges are disjoint by construction (pack, counting sort,
///    radix sort).
/// 2. **CAS arbitration** — an atomic compare-and-swap on a companion array
///    elects a unique winner per index; only the winner writes (semisort's
///    scatter, see `semisort::scatter`).
///
/// Bounds are always checked; out-of-range indices panic.
pub struct SharedSlice<'a, T> {
    data: &'a [UnsafeCell<T>],
}

// SAFETY: see the struct-level contract; all mutation goes through `write`,
// whose call sites guarantee disjointness.
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wrap a mutable slice for the duration of one scatter phase.
    pub fn new(data: &'a mut [T]) -> Self {
        // SAFETY: `&mut [T]` guarantees exclusive access; UnsafeCell<T> has
        // the same layout as T, so the cast only *adds* interior mutability.
        let cells = unsafe { &*(data as *mut [T] as *const [UnsafeCell<T>]) };
        SharedSlice { data: cells }
    }

    /// Number of elements.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the slice is empty.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Write `v` to position `i`.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that no other task writes index `i` in this
    /// phase and that no task reads index `i` before the phase barrier.
    #[inline(always)]
    pub unsafe fn write(&self, i: usize, v: T) {
        // Bounds check stays on: scatter targets come from size *estimates*
        // (the f function), and an estimate bug must fail loudly.
        let cell = &self.data[i];
        // SAFETY: per this method's contract, no other task touches
        // index i during the parallel phase.
        unsafe { *cell.get() = v };
    }

    /// Read position `i`.
    ///
    /// # Safety
    ///
    /// Only sound after all writers for this phase have finished (or for
    /// indices provably not written concurrently).
    #[inline(always)]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        let cell = &self.data[i];
        // SAFETY: per this method's contract, no concurrent writer to
        // index i is live (phase barrier has passed).
        unsafe { *cell.get() }
    }
}

/// A raw pointer wrapper asserting `Send + Sync` for scatter phases.
///
/// Prefer [`SharedSlice`] (it keeps bounds checks); `SendPtr` exists for
/// writes into uninitialized spare capacity where no `&mut [T]` exists yet.
/// Same disjointness contract applies.
#[derive(Clone, Copy)]
pub struct SendPtr<T>(pub *mut T);

// SAFETY: call sites guarantee disjoint writes / post-barrier reads.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn partitioned_parallel_writes_land() {
        let n = 100_000;
        let mut v = vec![0u64; n];
        {
            let s = SharedSlice::new(&mut v);
            (0..n).into_par_iter().for_each(|i| {
                // SAFETY: each task writes exactly its own index: disjoint.
                unsafe { s.write(i, (i as u64) * 3) };
            });
        }
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 * 3));
    }

    #[test]
    fn read_after_barrier_sees_writes() {
        let mut v = vec![0u32; 1000];
        let s = SharedSlice::new(&mut v);
        (0..1000)
            .into_par_iter()
            // SAFETY: each task writes only its own index i.
            .for_each(|i| unsafe { s.write(i, 7) });
        // SAFETY: same-thread read after the parallel loop joined.
        let sum: u64 = (0..1000).map(|i| unsafe { s.read(i) } as u64).sum();
        assert_eq!(sum, 7000);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_write_panics() {
        let mut v = vec![0u8; 4];
        let s = SharedSlice::new(&mut v);
        // SAFETY: single-threaded; the call must panic on bounds, not UB.
        unsafe { s.write(4, 1) };
    }

    #[test]
    fn len_and_empty() {
        let mut v = vec![1i32; 3];
        let s = SharedSlice::new(&mut v);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        let mut e: Vec<i32> = vec![];
        assert!(SharedSlice::new(&mut e).is_empty());
    }
}
