//! Top-down (MSD-first) parallel radix sort — the PBBS `intSort` analogue.
//!
//! "The radix sort is a top-down sort, which processes 8 bits of the key at
//! a time to place the records into buckets, and recurses on each bucket"
//! (§4, Phase 1). It plays two roles in this workspace: it sorts the sample
//! inside semisort's Phase 1, and it is the baseline the paper compares
//! semisort against throughout §5.
//!
//! Each level runs one stable parallel [`counting_sort_into`] on the current
//! 8-bit digit, then recurses on the 256 buckets in parallel. Buckets that
//! fall below [`SEQ_THRESHOLD`] finish with a *sequential LSD radix sort*
//! over their remaining bits — as in PBBS, every record still passes
//! through one counting round per 8 significant bits, which is the cost
//! model the paper's radix-vs-semisort comparison rests on. Buffers
//! ping-pong between the input array and one scratch array, with a final
//! copy only at leaves that end on the wrong side.

use rayon::prelude::*;

use crate::counting_sort::counting_sort_into;

/// Below this many records, a bucket is finished with a sequential LSD
/// radix sort instead of further parallel top-down levels.
pub const SEQ_THRESHOLD: usize = 1 << 13;

const RADIX_BITS: u32 = 8;
const BUCKETS: usize = 1 << RADIX_BITS;

/// Sort `a` by the low `bits` bits of `key(x)`, ascending.
///
/// True to the PBBS baseline, every record passes through one counting
/// round per 8 significant key bits: large buckets recurse top-down in
/// parallel, and buckets below [`SEQ_THRESHOLD`] finish with a *sequential
/// LSD radix sort over their remaining bits* — not a comparison sort. For
/// `bits = 64` that is 8 rounds over the data, which is exactly the cost
/// the paper's comparison hinges on ("the 64-bit keys used in our
/// experiments require too many rounds to sort"). Not stable.
pub fn radix_sort_by_key<T, F>(a: &mut [T], bits: u32, key: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Send + Sync + Copy,
{
    assert!(bits <= 64, "at most 64 key bits");
    let n = a.len();
    if n <= 1 {
        return;
    }
    if n <= SEQ_THRESHOLD || bits == 0 {
        seq_lsd_radix(a, bits, key);
        return;
    }
    let mut scratch = a.to_vec();
    // First digit: the highest RADIX_BITS of the significant range.
    let top_shift = bits.saturating_sub(RADIX_BITS);
    sort_level(a, &mut scratch, top_shift, true, key);
}

/// Sort a slice of `u64` values (all 64 bits significant).
///
/// ```
/// let mut a = vec![9u64, u64::MAX, 0, 42];
/// parlay::radix_sort::radix_sort_u64(&mut a);
/// assert_eq!(a, vec![0, 9, 42, u64::MAX]);
/// ```
pub fn radix_sort_u64(a: &mut [u64]) {
    radix_sort_by_key(a, 64, |&x| x);
}

/// Sort `(key, value)` pairs by the 64-bit key — the paper's 16-byte-record
/// configuration.
pub fn radix_sort_pairs(a: &mut [(u64, u64)]) {
    radix_sort_by_key(a, 64, |x| x.0);
}

/// Recursive level: the live records are in `src`; the sorted result must
/// end in the *original* array, which is `src` iff `src_is_orig`.
fn sort_level<T, F>(src: &mut [T], dst: &mut [T], shift: u32, src_is_orig: bool, key: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Send + Sync + Copy,
{
    let n = src.len();
    debug_assert_eq!(n, dst.len());
    if n <= SEQ_THRESHOLD {
        // Finish the remaining (lower) bits sequentially, still by radix.
        seq_lsd_radix(src, shift + RADIX_BITS, key);
        if !src_is_orig {
            dst.copy_from_slice(src);
        }
        return;
    }

    let digit = move |x: &T| ((key(x) >> shift) as usize) & (BUCKETS - 1);
    let offsets = counting_sort_into(src, dst, BUCKETS, digit);

    if shift == 0 {
        // Last digit: dst holds the fully sorted data.
        if !src_is_orig {
            return; // dst is the original array
        }
        src.copy_from_slice(dst);
        return;
    }

    // Split both buffers into matching bucket sub-slices and recurse.
    let next_shift = shift.saturating_sub(RADIX_BITS);
    let pairs = split_by_offsets(src, dst, &offsets);
    pairs.into_par_iter().for_each(|(s_bucket, d_bucket)| {
        // Roles swap: the live data is now in the d side.
        sort_level(d_bucket, s_bucket, next_shift, !src_is_orig, key);
    });
}

/// Sequential least-significant-digit radix sort over the low `bits` bits,
/// 8 bits per stable counting pass. Tiny runs (≤ 64) use a comparison sort
/// — below that size a counting pass's 256-entry histogram costs more than
/// the sort itself.
fn seq_lsd_radix<T, F>(a: &mut [T], bits: u32, key: F)
where
    T: Copy,
    F: Fn(&T) -> u64 + Copy,
{
    let n = a.len();
    if n <= 64 || bits == 0 {
        a.sort_unstable_by_key(|x| key(x));
        return;
    }
    let mut scratch = a.to_vec();
    let mut in_a = true;
    let mut shift = 0u32;
    while shift < bits {
        let b = RADIX_BITS.min(bits - shift);
        let m = 1usize << b;
        let mask = (m - 1) as u64;
        let (src, dst): (&[T], &mut [T]) = if in_a {
            (&*a, &mut scratch)
        } else {
            (&*scratch, a)
        };
        let mut counts = vec![0usize; m + 1];
        for x in src.iter() {
            counts[(((key(x) >> shift) & mask) as usize) + 1] += 1;
        }
        for i in 1..=m {
            counts[i] += counts[i - 1];
        }
        for x in src.iter() {
            let d = ((key(x) >> shift) & mask) as usize;
            dst[counts[d]] = *x;
            counts[d] += 1;
        }
        in_a = !in_a;
        shift += b;
    }
    if !in_a {
        a.copy_from_slice(&scratch);
    }
}

/// Split `a` and `b` into parallel sub-slice pairs at `offsets` boundaries,
/// skipping empty buckets.
fn split_by_offsets<'s, T>(
    mut a: &'s mut [T],
    mut b: &'s mut [T],
    offsets: &[usize],
) -> Vec<(&'s mut [T], &'s mut [T])> {
    let mut out = Vec::with_capacity(offsets.len().saturating_sub(1));
    let mut consumed = 0;
    for w in offsets.windows(2) {
        let len = w[1] - w[0];
        if len == 0 {
            continue;
        }
        debug_assert_eq!(w[0], consumed);
        // Skip any gap (only possible if offsets skip empties, which they
        // don't — counting sort offsets are contiguous).
        let (ha, ta) = a.split_at_mut(len);
        let (hb, tb) = b.split_at_mut(len);
        out.push((ha, hb));
        a = ta;
        b = tb;
        consumed += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash64;

    #[test]
    fn empty_and_single() {
        let mut a: Vec<u64> = vec![];
        radix_sort_u64(&mut a);
        let mut b = vec![42u64];
        radix_sort_u64(&mut b);
        assert_eq!(b, vec![42]);
    }

    #[test]
    fn small_input_uses_comparison_path() {
        let mut a: Vec<u64> = (0..100).rev().collect();
        radix_sort_u64(&mut a);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn large_random_u64_sorted() {
        let mut a: Vec<u64> = (0..300_000).map(hash64).collect();
        let mut want = a.clone();
        want.sort_unstable();
        radix_sort_u64(&mut a);
        assert_eq!(a, want);
    }

    #[test]
    fn pairs_sorted_by_key_only() {
        let mut a: Vec<(u64, u64)> = (0..200_000u64).map(|i| (hash64(i) % 1000, i)).collect();
        radix_sort_pairs(&mut a);
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0));
        // Permutation check: payloads are all distinct 0..n.
        let mut payloads: Vec<u64> = a.iter().map(|x| x.1).collect();
        payloads.sort_unstable();
        assert!(payloads.iter().enumerate().all(|(i, &p)| p == i as u64));
    }

    #[test]
    fn limited_bits_sorts_low_bits() {
        // Keys fit in 16 bits; ask for a 16-bit sort.
        let mut a: Vec<u64> = (0..150_000).map(|i| hash64(i) & 0xFFFF).collect();
        let mut want = a.clone();
        want.sort_unstable();
        radix_sort_by_key(&mut a, 16, |&x| x);
        assert_eq!(a, want);
    }

    #[test]
    fn skewed_distribution_sorted() {
        // 90% of keys equal, stressing one giant bucket per level.
        let mut a: Vec<u64> = (0..200_000u64)
            .map(|i| {
                if i % 10 == 0 {
                    hash64(i)
                } else {
                    0xABCD_EF00_1234_5678
                }
            })
            .collect();
        let mut want = a.clone();
        want.sort_unstable();
        radix_sort_u64(&mut a);
        assert_eq!(a, want);
    }

    #[test]
    fn already_sorted_and_reverse_sorted() {
        let mut a: Vec<u64> = (0..100_000).collect();
        let want = a.clone();
        radix_sort_u64(&mut a);
        assert_eq!(a, want);
        let mut b: Vec<u64> = (0..100_000).rev().collect();
        radix_sort_u64(&mut b);
        assert_eq!(b, want);
    }

    #[test]
    fn all_equal_keys() {
        let mut a = vec![7u64; 100_000];
        radix_sort_u64(&mut a);
        assert!(a.iter().all(|&x| x == 7));
    }

    #[test]
    fn extreme_values() {
        let mut a = vec![u64::MAX, 0, u64::MAX - 1, 1, u64::MAX, 0];
        radix_sort_u64(&mut a);
        assert_eq!(a, vec![0, 0, 1, u64::MAX - 1, u64::MAX, u64::MAX]);
    }
}
