//! Stable parallel counting sort.
//!
//! This is the second component of the Rajasekaran–Reif integer sort as
//! described in §2 of the paper: a "simple parallel version of sequential
//! counting sort" for keys in `[m]`, `m ≤ n`. It "partitions the sequence
//! into n/m blocks … and works in three phases": per-block key histograms
//! (parallel over blocks, sequential within), a prefix sum turning the
//! per-block counts into write offsets, and a replay pass writing each
//! element to its final position. `O(n)` work, `O(m + log n)` depth, fully
//! deterministic, and *stable* — which the radix sort built on top of it
//! relies on.

use rayon::prelude::*;

use crate::scan::scan_add_exclusive;
use crate::shared::SharedSlice;
use crate::slices::{block_range, num_blocks};

/// Stably sort `src` into `dst` by `key(x) ∈ [0, m)`.
///
/// Returns the bucket boundary offsets: `offsets[k]` is the position in
/// `dst` where key `k` starts, with a final sentinel `offsets[m] == n`.
/// (Callers like the radix sort recurse on `dst[offsets[k]..offsets[k+1]]`.)
///
/// # Panics
///
/// Panics if `src.len() != dst.len()` or a key is `>= m`.
pub fn counting_sort_into<T, F>(src: &[T], dst: &mut [T], m: usize, key: F) -> Vec<usize>
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> usize + Send + Sync,
{
    assert_eq!(src.len(), dst.len(), "src/dst length mismatch");
    let n = src.len();
    if n == 0 {
        return vec![0; m + 1];
    }
    let blocks = num_blocks(n).min(n.div_ceil(m.max(1)).max(1));

    // Phase 1: per-block histograms, laid out block-major:
    // counts[b * m + k] = #elements with key k in block b.
    let mut counts: Vec<usize> = vec![0; blocks * m];
    counts.par_chunks_mut(m).enumerate().for_each(|(b, hist)| {
        for x in &src[block_range(b, blocks, n)] {
            let k = key(x);
            assert!(k < m, "key {k} out of range [0, {m})");
            hist[k] += 1;
        }
    });

    // Phase 2: offsets. The write position of (block b, key k) must follow
    // all smaller keys and, within key k, all earlier blocks — i.e. scan the
    // counts in key-major order. Transpose, scan, transpose back.
    let mut by_key: Vec<usize> = vec![0; blocks * m];
    transpose(&counts, &mut by_key, blocks, m);
    scan_add_exclusive(&mut by_key);
    // Capture bucket starts before the transpose back: bucket k starts where
    // (key k, block 0) writes.
    let mut offsets: Vec<usize> = (0..m).map(|k| by_key[k * blocks]).collect();
    offsets.push(n);
    transpose(&by_key, &mut counts, m, blocks);
    let write_pos = counts; // now write_pos[b * m + k]

    // Phase 3: replay each block, writing elements to their final slots.
    let out = SharedSlice::new(dst);
    write_pos.par_chunks(m).enumerate().for_each(|(b, pos0)| {
        let mut pos = pos0.to_vec();
        for x in &src[block_range(b, blocks, n)] {
            let k = key(x);
            // SAFETY: the offset scan partitions [0, n) into disjoint
            // (block, key) ranges; this task owns exactly its own.
            unsafe { out.write(pos[k], *x) };
            pos[k] += 1;
        }
    });
    offsets
}

/// Convenience in-place wrapper: stable counting sort of `a` by `key ∈ [0, m)`.
///
/// Allocates a scratch copy of `a`; returns the bucket offsets (see
/// [`counting_sort_into`]).
///
/// ```
/// let mut a = vec![(2u8, 'a'), (0, 'b'), (2, 'c'), (1, 'd')];
/// let offsets = parlay::counting_sort::counting_sort(&mut a, 3, |p| p.0 as usize);
/// assert_eq!(a, vec![(0, 'b'), (1, 'd'), (2, 'a'), (2, 'c')]); // stable
/// assert_eq!(offsets, vec![0, 1, 2, 4]);
/// ```
pub fn counting_sort<T, F>(a: &mut [T], m: usize, key: F) -> Vec<usize>
where
    T: Copy + Send + Sync + Default,
    F: Fn(&T) -> usize + Send + Sync,
{
    let src = a.to_vec();
    counting_sort_into(&src, a, m, key)
}

/// Transpose an `rows × cols` row-major matrix into `dst` (cols × rows).
fn transpose(src: &[usize], dst: &mut [usize], rows: usize, cols: usize) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    if rows * cols < crate::slices::GRAIN {
        for r in 0..rows {
            for c in 0..cols {
                dst[c * rows + r] = src[r * cols + c];
            }
        }
        return;
    }
    dst.par_chunks_mut(rows).enumerate().for_each(|(c, col)| {
        for (r, out) in col.iter_mut().enumerate() {
            *out = src[r * cols + c];
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        let mut a: Vec<u32> = vec![];
        let off = counting_sort(&mut a, 4, |&x| x as usize);
        assert_eq!(off, vec![0; 5]);
    }

    #[test]
    fn sorts_small_range() {
        let mut a: Vec<u32> = vec![3, 1, 0, 2, 1, 3, 0, 0];
        let off = counting_sort(&mut a, 4, |&x| x as usize);
        assert_eq!(a, vec![0, 0, 0, 1, 1, 2, 3, 3]);
        assert_eq!(off, vec![0, 3, 5, 6, 8]);
    }

    #[test]
    fn is_stable() {
        // (key, original index) pairs; after sorting, equal keys must keep
        // increasing original indices.
        let a: Vec<(u8, u32)> = (0..10_000u32).map(|i| ((i % 7) as u8, i)).collect();
        let mut b = a.clone();
        counting_sort(&mut b, 7, |x| x.0 as usize);
        for w in b.windows(2) {
            assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated: {:?} {:?}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn large_matches_std_stable_sort() {
        let a: Vec<(u16, u32)> = (0..300_000u32)
            .map(|i| ((i.wrapping_mul(2654435761) % 256) as u16, i))
            .collect();
        let mut want = a.clone();
        want.sort_by_key(|x| x.0); // std stable sort
        let mut got = a.clone();
        counting_sort(&mut got, 256, |x| x.0 as usize);
        assert_eq!(got, want);
    }

    #[test]
    fn offsets_partition_output() {
        let mut a: Vec<u32> = (0..50_000).map(|i| (i * 31) % 100).collect();
        let off = counting_sort(&mut a, 100, |&x| x as usize);
        assert_eq!(off.len(), 101);
        assert_eq!(off[0], 0);
        assert_eq!(off[100], a.len());
        for k in 0..100 {
            assert!(a[off[k]..off[k + 1]].iter().all(|&x| x as usize == k));
        }
    }

    #[test]
    fn single_key_value() {
        let mut a = vec![0u8; 1000];
        let off = counting_sort(&mut a, 1, |&x| x as usize);
        assert_eq!(off, vec![0, 1000]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_key_panics() {
        let mut a = vec![5u32];
        counting_sort(&mut a, 4, |&x| x as usize);
    }

    #[test]
    fn into_variant_leaves_src_untouched() {
        let src: Vec<u32> = vec![2, 0, 1, 2];
        let mut dst = vec![9u32; 4];
        let off = counting_sort_into(&src, &mut dst, 3, |&x| x as usize);
        assert_eq!(src, vec![2, 0, 1, 2]);
        assert_eq!(dst, vec![0, 1, 2, 2]);
        assert_eq!(off, vec![0, 1, 2, 4]);
    }
}
