//! Parallel comparison sample sort.
//!
//! The "Sample Sort" baseline of §5.5 — "designed as a cache-efficient
//! algorithm so it gets consistent speedup of about 30 on all inputs"
//! (after Blelloch, Gibbons and Simhadri, *Low depth cache-oblivious
//! algorithms*, SPAA 2010). The structure:
//!
//! 1. Take an oversampled random sample, sort it, and pick `B − 1` pivots.
//! 2. Label every element with its bucket (binary search over the pivots).
//! 3. Move elements to their buckets with one stable parallel counting sort
//!    (reusing [`counting_sort_into`]).
//! 4. Sort each bucket in parallel — sequentially if small, recursively if
//!    large. A bucket fenced by two *equal* pivots contains only copies of
//!    one key and is skipped entirely, which is what keeps the sort robust
//!    on the paper's heavy-duplicate distributions.

use rayon::prelude::*;

use crate::counting_sort::counting_sort_into;
use crate::random::Rng;

/// Below this many records the sort is a sequential pdqsort.
const SEQ_THRESHOLD: usize = 1 << 14;
/// Number of buckets per round.
const BUCKETS: usize = 256;
/// Sample size = OVERSAMPLE × BUCKETS.
const OVERSAMPLE: usize = 8;

/// Sort `a` ascending by the `less` strict weak ordering.
///
/// ```
/// let mut a = vec![3u32, 1, 2];
/// parlay::sample_sort::sample_sort_by(&mut a, |x, y| x < y);
/// assert_eq!(a, vec![1, 2, 3]);
/// ```
pub fn sample_sort_by<T, F>(a: &mut [T], less: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> bool + Send + Sync + Copy,
{
    sample_sort_rec(a, &less, Rng::new(0x5a5a_1234));
}

/// Sort `(key, value)` pairs by key — the paper's 16-byte-record shape.
pub fn sample_sort_pairs(a: &mut [(u64, u64)]) {
    sample_sort_by(a, |x, y| x.0 < y.0);
}

fn sample_sort_rec<T, F>(a: &mut [T], less: &F, rng: Rng)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> bool + Send + Sync + Copy,
{
    let n = a.len();
    if n <= SEQ_THRESHOLD {
        a.sort_unstable_by(|x, y| cmp(less, x, y));
        return;
    }

    // Step 1: pivots from an oversampled sample.
    let sample_size = BUCKETS * OVERSAMPLE;
    let mut sample: Vec<T> = (0..sample_size)
        .map(|i| a[rng.at_bounded(i as u64, n as u64) as usize])
        .collect();
    sample.sort_unstable_by(|x, y| cmp(less, x, y));
    let pivots: Vec<T> = (1..BUCKETS).map(|i| sample[i * OVERSAMPLE]).collect();
    let num_pivots = pivots.len();

    // Step 2: bucket ids. Buckets alternate range/equal: bucket 2i holds
    // keys strictly between pivot i−1 and pivot i, bucket 2i+1 holds keys
    // *equal* to pivot i. Heavy duplicate keys therefore collapse into equal
    // buckets, which never need sorting — the PBBS trick that keeps sample
    // sort robust on the paper's skewed distributions (and terminates the
    // recursion even when every key is identical).
    let num_buckets = 2 * num_pivots + 1;
    let ids: Vec<u16> = a
        .par_iter()
        .with_min_len(4096)
        .map(|x| bucket_of(x, &pivots, less) as u16)
        .collect();

    // Step 3: stable counting sort by bucket id, on (id, element) pairs so
    // the sort key is a cheap field read rather than a re-search.
    let src = a.to_vec();
    let paired: Vec<(u16, T)> = ids.into_par_iter().zip(src).collect();
    let mut paired_out = paired.clone();
    let offsets = counting_sort_into(&paired, &mut paired_out, num_buckets, |p| p.0 as usize);
    drop(paired);
    a.par_iter_mut()
        .zip(paired_out.par_iter())
        .with_min_len(4096)
        .for_each(|(slot, p)| *slot = p.1);

    // Step 4: sort the range buckets in parallel; equal buckets (odd ids)
    // hold a single key each and are skipped.
    let mut rest: &mut [T] = a;
    let mut buckets: Vec<(usize, &mut [T])> = Vec::with_capacity(num_buckets);
    for b in 0..num_buckets {
        let len = offsets[b + 1] - offsets[b];
        let (head, tail) = rest.split_at_mut(len);
        rest = tail;
        if len == 0 || b % 2 == 1 {
            continue;
        }
        buckets.push((b, head));
    }
    buckets.into_par_iter().for_each(|(b, bucket)| {
        if bucket.len() > n / 2 {
            // Pathological pivot draw: recurse with a fresh sample. The
            // bucket holds distinct-from-pivot keys only, so progress is
            // overwhelmingly likely on the next draw.
            sample_sort_rec(bucket, less, rng.fork(b as u64 + 1));
        } else {
            bucket.sort_unstable_by(|x, y| cmp(less, x, y));
        }
    });
}

#[inline]
fn cmp<T, F: Fn(&T, &T) -> bool>(less: &F, x: &T, y: &T) -> std::cmp::Ordering {
    if less(x, y) {
        std::cmp::Ordering::Less
    } else if less(y, x) {
        std::cmp::Ordering::Greater
    } else {
        std::cmp::Ordering::Equal
    }
}

#[inline]
fn equal<T, F: Fn(&T, &T) -> bool>(less: &F, x: &T, y: &T) -> bool {
    !less(x, y) && !less(y, x)
}

/// Alternating range/equal bucket index of `x` (see `sample_sort_rec`):
/// `2i` for keys strictly between pivots `i−1` and `i`, `2i+1` for keys
/// equal to pivot `i`. Binary search, `O(log BUCKETS)`.
fn bucket_of<T, F: Fn(&T, &T) -> bool>(x: &T, pivots: &[T], less: &F) -> usize {
    // First pivot not less than x.
    let (mut lo, mut hi) = (0, pivots.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if less(&pivots[mid], x) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    if lo < pivots.len() && equal(less, &pivots[lo], x) {
        2 * lo + 1
    } else {
        2 * lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash64;

    #[test]
    fn empty_and_tiny() {
        let mut a: Vec<u64> = vec![];
        sample_sort_by(&mut a, |x, y| x < y);
        let mut b = vec![3u64, 1, 2];
        sample_sort_by(&mut b, |x, y| x < y);
        assert_eq!(b, vec![1, 2, 3]);
    }

    #[test]
    fn large_random_sorted() {
        let mut a: Vec<u64> = (0..300_000).map(hash64).collect();
        let mut want = a.clone();
        want.sort_unstable();
        sample_sort_by(&mut a, |x, y| x < y);
        assert_eq!(a, want);
    }

    #[test]
    fn all_equal_is_fast_path() {
        let mut a = vec![9u64; 200_000];
        sample_sort_by(&mut a, |x, y| x < y);
        assert!(a.iter().all(|&x| x == 9));
    }

    #[test]
    fn heavy_duplicates_sorted() {
        // 99% one key: exercises the equal-pivot skip and the recursion.
        let mut a: Vec<u64> = (0..200_000u64)
            .map(|i| if i % 100 == 0 { hash64(i) } else { 5 })
            .collect();
        let mut want = a.clone();
        want.sort_unstable();
        sample_sort_by(&mut a, |x, y| x < y);
        assert_eq!(a, want);
    }

    #[test]
    fn pairs_sorted_and_permutation_preserved() {
        let mut a: Vec<(u64, u64)> = (0..250_000u64).map(|i| (hash64(i) % 4096, i)).collect();
        sample_sort_pairs(&mut a);
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0));
        let mut payloads: Vec<u64> = a.iter().map(|p| p.1).collect();
        payloads.sort_unstable();
        assert!(payloads.iter().enumerate().all(|(i, &p)| p == i as u64));
    }

    #[test]
    fn reverse_and_sorted_inputs() {
        let mut a: Vec<u64> = (0..120_000).rev().collect();
        sample_sort_by(&mut a, |x, y| x < y);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        sample_sort_by(&mut a, |x, y| x < y);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn custom_ordering_descending() {
        let mut a: Vec<u64> = (0..100_000).map(hash64).collect();
        sample_sort_by(&mut a, |x, y| x > y);
        assert!(a.windows(2).all(|w| w[0] >= w[1]));
    }
}
