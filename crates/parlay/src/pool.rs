//! Thread-pool helpers for the experiment harness.
//!
//! The paper's tables sweep thread counts (1, 2, 4, …, 40, 40h). rayon's
//! global pool is sized once at startup, so per-measurement thread counts
//! require running the algorithm inside an explicitly-sized scoped pool.
//! Everything in this workspace reads `rayon::current_num_threads()` at run
//! time, so `with_threads(p, || semisort(..))` measures a genuine p-thread
//! execution.

/// Run `f` on a fresh rayon pool with exactly `threads` worker threads and
/// return its result.
///
/// Pool construction costs a few hundred microseconds — negligible next to
/// the multi-millisecond workloads in the harness, but callers measuring
/// microsecond-scale operations should construct their own long-lived pool.
///
/// ```
/// let seen = parlay::with_threads(2, rayon::current_num_threads);
/// assert_eq!(seen, 2);
/// ```
///
/// # Panics
///
/// Panics if the pool cannot be built (`threads == 0` or the OS refuses to
/// spawn threads).
pub fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    assert!(threads > 0, "thread count must be positive");
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build rayon pool")
        .install(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_has_requested_size() {
        for p in [1usize, 2, 4] {
            let seen = with_threads(p, rayon::current_num_threads);
            assert_eq!(seen, p);
        }
    }

    #[test]
    fn result_is_returned() {
        let v = with_threads(2, || (0..100).sum::<i64>());
        assert_eq!(v, 4950);
    }

    #[test]
    fn parallel_work_runs_inside_pool() {
        use rayon::prelude::*;
        let out: Vec<u32> =
            with_threads(3, || (0..1000u32).into_par_iter().map(|x| x * 2).collect());
        assert_eq!(out.len(), 1000);
        assert_eq!(out[999], 1998);
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn zero_threads_panics() {
        with_threads(0, || ());
    }
}
