//! Blocked parallel reduction.
//!
//! The PBBS `reduce` primitive: combine all elements under an associative
//! operation in `O(n)` work and `O(log n)` depth. The blocked formulation
//! (sequential per block, tree-combine across blocks) beats a naive
//! per-element tree by a large constant, exactly like the scan in
//! [`crate::scan`].

use rayon::prelude::*;

use crate::slices::{block_range, num_blocks};

/// Reduce `a` under the associative `op` with identity `id`.
///
/// `op` must be associative; it need not be commutative (blocks combine in
/// index order).
///
/// ```
/// let v: Vec<u64> = (1..=100).collect();
/// assert_eq!(parlay::reduce::reduce(&v, 0, |x, y| x + y), 5050);
/// ```
pub fn reduce<T, F>(a: &[T], id: T, op: F) -> T
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Send + Sync,
{
    let n = a.len();
    if n == 0 {
        return id;
    }
    let blocks = num_blocks(n);
    if blocks == 1 {
        return a.iter().fold(id, |acc, &x| op(acc, x));
    }
    let partials: Vec<T> = (0..blocks)
        .into_par_iter()
        .map(|b| {
            a[block_range(b, blocks, n)]
                .iter()
                .fold(id, |acc, &x| op(acc, x))
        })
        .collect();
    partials.into_iter().fold(id, op)
}

/// Parallel sum of `u64` values (wrapping).
pub fn sum_u64(a: &[u64]) -> u64 {
    reduce(a, 0u64, |x, y| x.wrapping_add(y))
}

/// Parallel maximum; `None` on an empty slice.
pub fn max<T: Copy + Ord + Send + Sync>(a: &[T]) -> Option<T> {
    if a.is_empty() {
        return None;
    }
    Some(reduce(a, a[0], |x, y| x.max(y)))
}

/// Parallel minimum; `None` on an empty slice.
pub fn min<T: Copy + Ord + Send + Sync>(a: &[T]) -> Option<T> {
    if a.is_empty() {
        return None;
    }
    Some(reduce(a, a[0], |x, y| x.min(y)))
}

/// Index of the first element satisfying the predicate, or `None`.
///
/// Blocked: each block scans sequentially, the earliest hit wins. All
/// blocks are inspected (no early exit across blocks), keeping the work
/// deterministic at `O(n)`.
pub fn find_first<T, F>(a: &[T], pred: F) -> Option<usize>
where
    T: Sync,
    F: Fn(&T) -> bool + Send + Sync,
{
    let n = a.len();
    let blocks = num_blocks(n);
    (0..blocks)
        .into_par_iter()
        .filter_map(|b| {
            let r = block_range(b, blocks, n);
            a[r.clone()].iter().position(&pred).map(|i| r.start + i)
        })
        .min()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_reduce_is_identity() {
        let v: Vec<u64> = vec![];
        assert_eq!(reduce(&v, 7, |x, y| x + y), 7);
        assert_eq!(sum_u64(&v), 0);
        assert_eq!(max::<u64>(&v), None);
        assert_eq!(min::<u64>(&v), None);
    }

    #[test]
    fn large_sum_matches_formula() {
        let v: Vec<u64> = (0..1_000_000).collect();
        assert_eq!(sum_u64(&v), 999_999 * 1_000_000 / 2);
    }

    #[test]
    fn max_min_on_shuffled_input() {
        let v: Vec<u64> = (0..500_000).map(crate::hash64).collect();
        let want_max = *v.iter().max().unwrap();
        let want_min = *v.iter().min().unwrap();
        assert_eq!(max(&v), Some(want_max));
        assert_eq!(min(&v), Some(want_min));
    }

    #[test]
    fn non_commutative_reduce_in_order() {
        // Affine composition again: order sensitivity catches block mixups.
        let v: Vec<(i64, i64)> = (0..100_000).map(|i| ((i % 3) - 1, i % 5)).collect();
        let op = |f: (i64, i64), g: (i64, i64)| {
            (
                f.0.wrapping_mul(g.0),
                f.1.wrapping_mul(g.0).wrapping_add(g.1),
            )
        };
        let seq = v.iter().fold((1, 0), |acc, &x| op(acc, x));
        assert_eq!(reduce(&v, (1, 0), op), seq);
    }

    #[test]
    fn find_first_earliest_hit() {
        let v: Vec<u32> = (0..200_000).collect();
        assert_eq!(find_first(&v, |&x| x >= 123_456), Some(123_456));
        assert_eq!(find_first(&v, |&x| x > 10_000_000), None);
        assert_eq!(find_first(&v, |&x| x == 0), Some(0));
    }
}
