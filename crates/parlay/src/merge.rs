//! Parallel merge and merge sort.
//!
//! The theoretical analysis in the paper sorts the sample with "Cole's
//! parallel mergesort \[7\] in O(n) expected work and O(log n) depth". Cole's
//! pipelined construction is a theory device; the practical equivalent used
//! here is the standard divide-and-conquer parallel mergesort: recursive
//! halves via `rayon::join`, with the merge itself parallelized by dual
//! binary search. That gives `O(n log n)` work and `O(log³ n)` depth —
//! polylogarithmic, and in practice faster than the pipelined variant.

/// Below this many elements, merges and sorts run sequentially.
const SEQ_THRESHOLD: usize = 1 << 13;

/// Merge sorted `a` and sorted `b` into `out` (length `a.len() + b.len()`),
/// stably (ties taken from `a` first).
pub fn merge_into<T, F>(a: &[T], b: &[T], out: &mut [T], less: &F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> bool + Send + Sync,
{
    assert_eq!(a.len() + b.len(), out.len(), "output length mismatch");
    if out.len() <= SEQ_THRESHOLD {
        merge_seq(a, b, out, less);
        return;
    }
    // Split the larger input at its midpoint, binary-search the split point
    // in the other, and merge the two halves in parallel.
    if a.len() >= b.len() {
        let ma = a.len() / 2;
        // First position in b whose element is strictly less-than a[ma]
        // stops the left half: left half takes b[..mb] with b[j] < a[ma]
        // (ties go with `a`, keeping the merge stable).
        let mb = partition_point(b, |x| less(x, &a[ma]));
        let (out_l, out_r) = out.split_at_mut(ma + mb);
        rayon::join(
            || merge_into(&a[..ma], &b[..mb], out_l, less),
            || merge_into(&a[ma..], &b[mb..], out_r, less),
        );
    } else {
        let mb = b.len() / 2;
        // Left half takes a[..ma] with a[i] <= b[mb], i.e. not b[mb] < a[i].
        let ma = partition_point(a, |x| !less(&b[mb], x));
        let (out_l, out_r) = out.split_at_mut(ma + mb);
        rayon::join(
            || merge_into(&a[..ma], &b[..mb], out_l, less),
            || merge_into(&a[ma..], &b[mb..], out_r, less),
        );
    }
}

/// Sequential two-finger merge (stable).
fn merge_seq<T, F>(a: &[T], b: &[T], out: &mut [T], less: &F)
where
    T: Copy,
    F: Fn(&T, &T) -> bool,
{
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        *slot = if i < a.len() && (j >= b.len() || !less(&b[j], &a[i])) {
            i += 1;
            a[i - 1]
        } else {
            j += 1;
            b[j - 1]
        };
    }
}

/// First index at which `pred` turns false (pred must be monotone).
fn partition_point<T>(a: &[T], pred: impl Fn(&T) -> bool) -> usize {
    let (mut lo, mut hi) = (0, a.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(&a[mid]) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Stable parallel merge sort of `a` under `less`.
///
/// ```
/// let mut a = vec![(2, 'x'), (1, 'y'), (2, 'z')];
/// parlay::merge::merge_sort_by(&mut a, |p, q| p.0 < q.0);
/// assert_eq!(a, vec![(1, 'y'), (2, 'x'), (2, 'z')]); // stable
/// ```
pub fn merge_sort_by<T, F>(a: &mut [T], less: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> bool + Send + Sync,
{
    let n = a.len();
    if n <= SEQ_THRESHOLD {
        a.sort_by(|x, y| {
            if less(x, y) {
                std::cmp::Ordering::Less
            } else if less(y, x) {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        });
        return;
    }
    let mut scratch = a.to_vec();
    sort_rec(a, &mut scratch, true, &less);
}

/// Sort the live data (in `src`), leaving the result in the original array
/// (`src` iff `src_is_orig`). Ping-pong buffering as in the radix sort.
fn sort_rec<T, F>(src: &mut [T], dst: &mut [T], src_is_orig: bool, less: &F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> bool + Send + Sync,
{
    let n = src.len();
    if n <= SEQ_THRESHOLD {
        src.sort_by(|x, y| {
            if less(x, y) {
                std::cmp::Ordering::Less
            } else if less(y, x) {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        });
        if !src_is_orig {
            dst.copy_from_slice(src);
        }
        return;
    }
    let mid = n / 2;
    // The merged result must land in the original buffer, so the sorted
    // halves must land in the *other* one: flip the flag for the recursion.
    {
        let (src_l, src_r) = src.split_at_mut(mid);
        let (dst_l, dst_r) = dst.split_at_mut(mid);
        rayon::join(
            || sort_rec(src_l, dst_l, !src_is_orig, less),
            || sort_rec(src_r, dst_r, !src_is_orig, less),
        );
    }
    if src_is_orig {
        let (dst_l, dst_r) = dst.split_at(mid);
        merge_into(dst_l, dst_r, src, less);
    } else {
        let (src_l, src_r) = src.split_at(mid);
        merge_into(src_l, src_r, dst, less);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash64;

    #[test]
    fn merge_basic() {
        let a = [1u64, 3, 5];
        let b = [2u64, 4, 6];
        let mut out = [0u64; 6];
        merge_into(&a, &b, &mut out, &|x, y| x < y);
        assert_eq!(out, [1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn merge_with_empties() {
        let a: [u64; 0] = [];
        let b = [1u64, 2];
        let mut out = [0u64; 2];
        merge_into(&a, &b, &mut out, &|x, y| x < y);
        assert_eq!(out, [1, 2]);
        merge_into(&b, &a, &mut out, &|x, y| x < y);
        assert_eq!(out, [1, 2]);
    }

    #[test]
    fn merge_large_matches_reference() {
        let mut a: Vec<u64> = (0..80_000).map(|i| hash64(i) % 10_000).collect();
        let mut b: Vec<u64> = (0..120_000)
            .map(|i| hash64(i + 1_000_000) % 10_000)
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        let mut out = vec![0u64; a.len() + b.len()];
        merge_into(&a, &b, &mut out, &|x, y| x < y);
        let mut want = [a.clone(), b.clone()].concat();
        want.sort_unstable();
        assert_eq!(out, want);
    }

    #[test]
    fn merge_is_stable() {
        // Pairs (key, source): equal keys must list source-0 before source-1.
        let a: Vec<(u64, u8)> = (0..50_000).map(|i| (i / 4, 0)).collect();
        let b: Vec<(u64, u8)> = (0..50_000).map(|i| (i / 4, 1)).collect();
        let mut out = vec![(0u64, 0u8); 100_000];
        merge_into(&a, &b, &mut out, &|x, y| x.0 < y.0);
        for w in out.windows(2) {
            assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                assert!(w[0].1 <= w[1].1, "stability violated");
            }
        }
    }

    #[test]
    fn sort_small_and_large() {
        let mut a: Vec<u64> = (0..1000).map(hash64).collect();
        let mut want = a.clone();
        want.sort_unstable();
        merge_sort_by(&mut a, |x, y| x < y);
        assert_eq!(a, want);

        let mut b: Vec<u64> = (0..250_000).map(hash64).collect();
        let mut want = b.clone();
        want.sort_unstable();
        merge_sort_by(&mut b, |x, y| x < y);
        assert_eq!(b, want);
    }

    #[test]
    fn sort_is_stable() {
        let mut a: Vec<(u8, u32)> = (0..150_000u32).map(|i| ((i % 16) as u8, i)).collect();
        merge_sort_by(&mut a, |x, y| x.0 < y.0);
        for w in a.windows(2) {
            assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated");
            }
        }
    }

    #[test]
    fn partition_point_edges() {
        let a = [1, 1, 2, 2, 3];
        assert_eq!(partition_point(&a, |&x| x < 2), 2);
        assert_eq!(partition_point(&a, |&x| x < 0), 0);
        assert_eq!(partition_point(&a, |&x| x < 10), 5);
    }
}
