//! The Rajasekaran–Reif integer sort (§2 of the semisort paper).
//!
//! The semisort paper's intellectual ancestor: "The algorithm consists of
//! two components. The first is an unstable randomized sort for integers in
//! the range `[n/log²n]` … The second is a stable counting sort for
//! integers in the range `[m]`, `m ≤ n` … Using these sorts, integers in
//! the range `[n·logᵏn]` can be sorted in `O(kn)` work and `O(k·log n)`
//! span (w.h.p.). In particular, one round of the unstable randomized sort
//! is applied on the `log(n/log²n)` low-order bits, followed by `k+2`
//! rounds of the stable counting sort … on the high-order bits of the keys.
//! Since the counting sort is stable, it maintains the relative order of
//! the randomized sort on the low-order bits."
//!
//! The semisort paper works *top-down* on hashes instead; this module
//! exists (a) as the historically faithful substrate, (b) to power the
//! `baselines` crate's semisort-via-integer-sort comparator, whose cost is
//! exactly the argument of §3.2 for the top-down design.
//!
//! The counting-sort rounds use 8-bit digits rather than the theoretical
//! `log log n`-bit digits — same bounds shape, far better constants (the
//! same liberty PBBS takes).

use rayon::prelude::*;

use crate::counting_sort::counting_sort_into;
use crate::random::Rng;
use crate::scan::scan_add_exclusive;
use crate::shared::SendPtr;

/// Digit width for the stable counting-sort rounds.
const COUNT_BITS: u32 = 8;

/// Sort records by integer keys in `[0, 2^range_bits)` using the RR scheme:
/// one unstable randomized round on the low-order bits, then stable
/// counting-sort rounds on the high-order bits.
///
/// `O(k·n)` work and polylog depth for `range_bits = log(n·logᵏn)`.
/// Unstable overall (the randomized round shuffles equal keys).
///
/// # Panics
///
/// Panics if any key has bits set at or above `range_bits`.
pub fn rr_sort_by_key<T, F>(a: &mut [T], range_bits: u32, key: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Send + Sync + Copy,
{
    assert!(range_bits <= 64);
    let n = a.len();
    if n <= 1 {
        return;
    }
    if n < 1 << 12 {
        a.sort_unstable_by_key(|x| key(x));
        return;
    }

    // Low-order range: the largest power of two ≤ n / log²n.
    let log2n = (usize::BITS - n.leading_zeros()) as usize; // ⌈log₂ n⌉
    let low_range = (n / (log2n * log2n)).max(2).next_power_of_two() / 2;
    let low_bits = (low_range.trailing_zeros()).min(range_bits);
    let low_mask = if low_bits == 64 {
        u64::MAX
    } else {
        (1u64 << low_bits) - 1
    };

    // Round 1: unstable randomized sort on the low bits.
    randomized_unstable_sort(a, low_bits, move |x| key(x) & low_mask);

    // Rounds 2..: stable counting sort, 8 high-order bits at a time,
    // least-significant digit first (LSD over the remaining bits).
    let mut shift = low_bits;
    let mut scratch = a.to_vec();
    let mut in_a = true; // which buffer currently holds the data
    while shift < range_bits {
        let bits = COUNT_BITS.min(range_bits - shift);
        let m = 1usize << bits;
        let digit = move |x: &T| ((key(x) >> shift) as usize) & (m - 1);
        if in_a {
            counting_sort_into(a, &mut scratch, m, digit);
        } else {
            counting_sort_into(&scratch, a, m, digit);
        }
        in_a = !in_a;
        shift += bits;
    }
    if !in_a {
        a.copy_from_slice(&scratch);
    }
}

/// The unstable randomized sort for keys in a small range `[0, 2^bits)`:
/// estimate per-key cardinalities from a sample, allocate slack arrays,
/// scatter with CAS + probing, pack (§2's four steps).
///
/// Used by [`rr_sort_by_key`] for its low-order round; public because it is
/// a useful primitive on its own for small key ranges.
pub fn randomized_unstable_sort<T, F>(a: &mut [T], bits: u32, key: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Send + Sync + Copy,
{
    let n = a.len();
    if n <= 1 {
        return;
    }
    if n < 1 << 12 || bits == 0 {
        a.sort_unstable_by_key(|x| key(x));
        return;
    }
    let m = 1usize << bits;
    let rng = Rng::new(0x44e7_e44e);
    let log2n = (usize::BITS - n.leading_zeros()) as f64;

    // Step 1: cardinality upper bounds u(i) = c'·max(log²n, c(i)·log n)
    // from a 1/log n sample (we sample at a power-of-two rate near it).
    let sample_shift = (log2n as u32).next_power_of_two().trailing_zeros().min(6);
    let stride = 1usize << sample_shift;
    let sample_count = n.div_ceil(stride);
    // Histogram the sample over the m key values.
    let mut counts = vec![0usize; m];
    for i in 0..sample_count {
        let lo = i * stride;
        let hi = ((i + 1) * stride).min(n);
        let off = rng.at_bounded(i as u64, (hi - lo) as u64) as usize;
        counts[(key(&a[lo + off])) as usize] += 1;
    }

    // Retry loop: on overflow, grow the slack constant.
    let mut c_prime = 1.4f64;
    loop {
        // Step 2: allocate arrays via prefix sum of u(i).
        let scale = stride as f64; // ≈ 1/p
        let mut offsets: Vec<usize> = counts
            .iter()
            .map(|&c| {
                let u = c_prime
                    * (log2n * log2n)
                        .max(c as f64 * scale + c as f64 * log2n.sqrt() * scale.sqrt());
                (u as usize).max(4).next_power_of_two()
            })
            .collect();
        let sizes = offsets.clone();
        let total = scan_add_exclusive(&mut offsets);

        // Step 3: scatter into random slots (CAS + linear probing).
        if let Some(packed) = scatter_and_pack_keys(a, &offsets, &sizes, total, rng.fork(1), key) {
            a.copy_from_slice(&packed);
            return;
        }
        c_prime *= 2.0;
        assert!(c_prime < 1e6, "randomized sort failed to converge");
    }
}

/// Scatter each record into its key's array and pack the result. Returns
/// `None` if some array overflowed (caller retries with more slack).
fn scatter_and_pack_keys<T, F>(
    a: &[T],
    offsets: &[usize],
    sizes: &[usize],
    total: usize,
    rng: Rng,
    key: F,
) -> Option<Vec<T>>
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Send + Sync + Copy,
{
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    const VACANT: u64 = u64::MAX;

    let slot: Vec<AtomicU64> = (0..total)
        .into_par_iter()
        .with_min_len(1 << 14)
        .map(|_| AtomicU64::new(VACANT))
        .collect();
    let overflow = AtomicBool::new(false);

    a.par_iter()
        .enumerate()
        .with_min_len(4096)
        .for_each(|(i, x)| {
            // ORDERING: Relaxed abort hint; a missed flag only places a
            // few more records before the overall run is discarded.
            // publishes-via: fork-join barrier (for_each join)
            if overflow.load(Ordering::Relaxed) {
                return;
            }
            let k = key(x) as usize;
            let base = offsets[k];
            let size = sizes[k];
            let mask = size - 1;
            let mut s = (rng.at(i as u64) as usize) & mask;
            for _ in 0..size {
                let cell = &slot[base + s];
                // ORDERING: Relaxed vacancy probe + fully Relaxed CAS: the
                // claim payload is the index itself (no side data to
                // publish), and the pack phase reads it after the join.
                // publishes-via: fork-join barrier (for_each join)
                if cell.load(Ordering::Relaxed) == VACANT
                    && cell
                        .compare_exchange(VACANT, i as u64, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                {
                    return;
                }
                s = (s + 1) & mask;
            }
            // ORDERING: Relaxed monotone flag set, read after the join.
            // publishes-via: fork-join barrier (for_each join)
            overflow.store(true, Ordering::Relaxed);
        });
    // ORDERING: Relaxed post-join read; all setters joined above.
    // publishes-via: fork-join barrier (for_each join)
    if overflow.load(Ordering::Relaxed) {
        return None;
    }

    // Step 4: pack out the vacancies (blocked).
    let blocks = crate::slices::num_blocks(total);
    let mut pack_off: Vec<usize> = (0..blocks)
        .into_par_iter()
        .map(|b| {
            // ORDERING: Relaxed post-join reads of scatter results.
            // publishes-via: fork-join barrier (scatter join)
            crate::slices::block_range(b, blocks, total)
                .filter(|&i| slot[i].load(Ordering::Relaxed) != VACANT)
                .count()
        })
        .collect();
    let n_out = scan_add_exclusive(&mut pack_off);
    debug_assert_eq!(n_out, a.len());
    let mut out: Vec<T> = Vec::with_capacity(n_out);
    let ptr = SendPtr(out.spare_capacity_mut().as_mut_ptr());
    (0..blocks).into_par_iter().for_each(|b| {
        let mut pos = pack_off[b];
        let p = ptr;
        for i in crate::slices::block_range(b, blocks, total) {
            // ORDERING: Relaxed post-join read of scatter results.
            // publishes-via: fork-join barrier (scatter join)
            let v = slot[i].load(Ordering::Relaxed);
            if v != VACANT {
                // SAFETY: blocks write disjoint [pos..) ranges by the scan.
                unsafe { (*p.0.add(pos)).write(a[v as usize]) };
                pos += 1;
            }
        }
    });
    // SAFETY: exactly n_out slots initialized.
    unsafe { out.set_len(n_out) };
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash64;

    #[test]
    fn randomized_sort_small_range() {
        let mut a: Vec<u64> = (0..100_000u64).map(|i| hash64(i) % 64).collect();
        let mut want = a.clone();
        want.sort_unstable();
        randomized_unstable_sort(&mut a, 6, |&x| x);
        assert_eq!(a, want);
    }

    #[test]
    fn randomized_sort_skewed_counts() {
        // One key holds 90% of the records: the u(i) estimate must stretch.
        let mut a: Vec<u64> = (0..80_000u64)
            .map(|i| if i % 10 == 0 { hash64(i) % 16 } else { 3 })
            .collect();
        let mut want = a.clone();
        want.sort_unstable();
        randomized_unstable_sort(&mut a, 4, |&x| x);
        assert_eq!(a, want);
    }

    #[test]
    fn rr_sorts_full_range() {
        let mut a: Vec<u64> = (0..150_000).map(hash64).collect();
        let mut want = a.clone();
        want.sort_unstable();
        rr_sort_by_key(&mut a, 64, |&x| x);
        assert_eq!(a, want);
    }

    #[test]
    fn rr_sorts_medium_range_pairs() {
        // Keys in [n·log²n]-ish range, with payloads: the RR use case.
        let range_bits = 24;
        let mut a: Vec<(u64, u64)> = (0..120_000u64)
            .map(|i| (hash64(i) & ((1 << range_bits) - 1), i))
            .collect();
        let mut want: Vec<u64> = a.iter().map(|p| p.0).collect();
        want.sort_unstable();
        rr_sort_by_key(&mut a, range_bits, |p| p.0);
        let got: Vec<u64> = a.iter().map(|p| p.0).collect();
        assert_eq!(got, want);
        // Permutation witness.
        let mut payloads: Vec<u64> = a.iter().map(|p| p.1).collect();
        payloads.sort_unstable();
        assert!(payloads.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn rr_small_input_falls_back() {
        let mut a = vec![5u64, 3, 9, 1];
        rr_sort_by_key(&mut a, 8, |&x| x);
        assert_eq!(a, vec![1, 3, 5, 9]);
    }

    #[test]
    fn rr_empty_and_single() {
        let mut e: Vec<u64> = vec![];
        rr_sort_by_key(&mut e, 10, |&x| x);
        let mut s = vec![7u64];
        rr_sort_by_key(&mut s, 10, |&x| x);
        assert_eq!(s, vec![7]);
    }

    #[test]
    fn rr_all_equal_keys() {
        let mut a: Vec<u64> = vec![42; 50_000];
        rr_sort_by_key(&mut a, 16, |&x| x);
        assert!(a.iter().all(|&x| x == 42));
    }

    #[test]
    fn rr_dense_labels_like_semisort_preprocessing() {
        // Exactly the §3.2 scenario: dense labels in [n] after naming.
        let n = 100_000u64;
        let mut a: Vec<(u64, u64)> = (0..n).map(|i| (hash64(i) % (n / 4), i)).collect();
        let bits = 64 - (n / 4 - 1).leading_zeros();
        rr_sort_by_key(&mut a, bits, |p| p.0);
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
