//! Parallel histogram over a bounded key range.
//!
//! A PBBS staple and a cousin of the semisort: where the semisort *moves*
//! records with equal keys together, the histogram only *counts* them.
//! Blocked implementation: each block accumulates a private histogram
//! sequentially (no contention), then the per-block histograms are summed
//! column-parallel. `O(n + m·blocks)` work, `O(log n + m)` depth.

use rayon::prelude::*;

use crate::slices::{block_range, num_blocks};

/// Count occurrences of each key in `[0, m)`: `out[k] = #{i : key(i) = k}`.
///
/// # Panics
///
/// Panics if a key is `>= m`.
pub fn histogram_by<T, F>(items: &[T], m: usize, key: F) -> Vec<usize>
where
    T: Sync,
    F: Fn(&T) -> usize + Send + Sync,
{
    let n = items.len();
    if n == 0 {
        return vec![0; m];
    }
    // Cap block count so the m·blocks scratch stays proportional to n.
    let blocks = num_blocks(n).min(n.div_ceil(m.max(1)).max(1));
    if blocks == 1 {
        let mut out = vec![0usize; m];
        for x in items {
            let k = key(x);
            assert!(k < m, "key {k} out of range [0, {m})");
            out[k] += 1;
        }
        return out;
    }
    let partial: Vec<Vec<usize>> = (0..blocks)
        .into_par_iter()
        .map(|b| {
            let mut h = vec![0usize; m];
            for x in &items[block_range(b, blocks, n)] {
                let k = key(x);
                assert!(k < m, "key {k} out of range [0, {m})");
                h[k] += 1;
            }
            h
        })
        .collect();
    let mut out = vec![0usize; m];
    out.par_iter_mut()
        .enumerate()
        .with_min_len(512)
        .for_each(|(k, slot)| {
            *slot = partial.iter().map(|h| h[k]).sum();
        });
    out
}

/// Histogram of ready-made `usize` keys.
///
/// ```
/// assert_eq!(parlay::histogram::histogram(&[0, 2, 2, 1], 3), vec![1, 1, 2]);
/// ```
pub fn histogram(keys: &[usize], m: usize) -> Vec<usize> {
    histogram_by(keys, m, |&k| k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        assert_eq!(histogram(&[], 4), vec![0; 4]);
    }

    #[test]
    fn small_matches_manual_count() {
        let keys = vec![0usize, 2, 2, 1, 2, 0];
        assert_eq!(histogram(&keys, 3), vec![2, 1, 3]);
    }

    #[test]
    fn large_matches_reference() {
        let keys: Vec<usize> = (0..300_000).map(|i| (i * 7919) % 100).collect();
        let got = histogram(&keys, 100);
        let mut want = vec![0usize; 100];
        for &k in &keys {
            want[k] += 1;
        }
        assert_eq!(got, want);
        assert_eq!(got.iter().sum::<usize>(), keys.len());
    }

    #[test]
    fn by_key_extractor() {
        let items: Vec<(u8, &str)> = vec![(1, "a"), (0, "b"), (1, "c")];
        assert_eq!(histogram_by(&items, 2, |x| x.0 as usize), vec![1, 2]);
    }

    #[test]
    fn large_key_range_small_input() {
        // blocks capped so the m·blocks scratch stays bounded.
        let keys = vec![99_999usize; 10];
        let h = histogram(&keys, 100_000);
        assert_eq!(h[99_999], 10);
        assert_eq!(h.iter().sum::<usize>(), 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        histogram(&[5], 5);
    }
}
