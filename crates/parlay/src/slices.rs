//! Block decomposition helpers.
//!
//! The blocked algorithms in this crate (scan, pack, counting sort) follow
//! the PBBS pattern: split the input into `num_blocks` contiguous blocks,
//! run a sequential pass per block in parallel, combine per-block summaries
//! with a small scan, then run a second sequential pass per block. These
//! helpers centralize the arithmetic so every algorithm agrees on block
//! boundaries.

/// Sequential fallback threshold: parallel primitives run sequentially below
/// this many elements. Chosen to amortize rayon's task overhead (a few
/// microseconds) against ~1 ns/element loop bodies.
pub const GRAIN: usize = 8192;

/// Number of blocks to use for an input of length `n`.
///
/// Aims for blocks of roughly `GRAIN` elements, but never more than
/// `8 * num_threads^2` blocks (enough slack for work stealing to balance)
/// and always at least 1.
pub fn num_blocks(n: usize) -> usize {
    if n <= GRAIN {
        return 1;
    }
    let by_grain = n.div_ceil(GRAIN);
    let cap = 8 * rayon::current_num_threads().pow(2).max(1);
    by_grain.min(cap).max(1)
}

/// The half-open range of block `i` out of `blocks` over `n` elements.
///
/// Blocks differ in size by at most one element and exactly tile `[0, n)`.
#[inline]
pub fn block_range(i: usize, blocks: usize, n: usize) -> std::ops::Range<usize> {
    debug_assert!(i < blocks);
    let lo = (n * i) / blocks;
    let hi = (n * (i + 1)) / blocks;
    lo..hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_tile_exactly() {
        for n in [0usize, 1, 2, 100, 8191, 8192, 8193, 1_000_000] {
            let b = num_blocks(n);
            let mut covered = 0;
            let mut prev_end = 0;
            for i in 0..b {
                let r = block_range(i, b, n);
                assert_eq!(r.start, prev_end, "blocks must be contiguous");
                prev_end = r.end;
                covered += r.len();
            }
            assert_eq!(covered, n);
            assert_eq!(prev_end, n);
        }
    }

    #[test]
    fn block_sizes_balanced() {
        let (n, b) = (1_000_003, 97);
        let sizes: Vec<usize> = (0..b).map(|i| block_range(i, b, n).len()).collect();
        let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
        assert!(max - min <= 1);
    }

    #[test]
    fn small_inputs_get_one_block() {
        assert_eq!(num_blocks(0), 1);
        assert_eq!(num_blocks(GRAIN), 1);
        assert!(num_blocks(GRAIN + 1) > 1);
    }
}
