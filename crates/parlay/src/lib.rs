//! PBBS-style parallel primitives, written from scratch on top of rayon's
//! fork-join scheduler.
//!
//! The SPAA 2015 semisort paper builds on the Problem Based Benchmark Suite
//! (PBBS), which provides "simple and efficient parallel code to a number of
//! problems and parallel primitives, including prefix sum, filter/pack, radix
//! sort, and concurrent hash tables based on linear probing". This crate is
//! the equivalent substrate:
//!
//! - [`scan`] — blocked two-pass parallel prefix sums (exclusive/inclusive),
//!   generic over an associative combining operation.
//! - [`mod@pack`] — parallel filter/pack: keep the elements whose flag is set,
//!   preserving order.
//! - [`counting_sort`] — the stable parallel counting sort of Rajasekaran and
//!   Reif (three blocked phases; §2 of the paper).
//! - [`radix_sort`] — a top-down (MSD-first) parallel radix sort processing
//!   8 bits per round, the PBBS `intSort` analogue. This is both the sample
//!   sorting subroutine of the semisort (Phase 1) and the paper's main
//!   baseline.
//! - [`sample_sort`] — a cache-friendly parallel comparison sample sort
//!   (the "Sample Sort" baseline of §5.5).
//! - [`rr_sort`] — the Rajasekaran–Reif integer sort (unstable randomized
//!   round + stable counting rounds), the bottom-up ancestor the semisort
//!   paper contrasts itself with in §3.2.
//! - [`merge`] — parallel merge and merge sort (the practical stand-in for
//!   Cole's mergesort used in the theoretical analysis).
//! - [`histogram`] — blocked parallel counting over a bounded key range.
//! - [`reduce`] — blocked parallel reduction (sum/min/max/find-first).
//! - [`flatten`] — parallel concatenation of nested sequences (the inverse
//!   of `group_by`).
//! - [`shuffle`] — parallel uniform random shuffle.
//! - [`seq_ops`] — granularity-controlled tabulate/map/zip helpers.
//! - [`hash_table`] — a phase-concurrent linear-probing hash table in the
//!   style of Shun and Blelloch (SPAA 2014), used for the heavy-key table
//!   `T` and for the naming problem.
//! - [`hash`] — 64-bit mixing functions (splitmix64 finalizer and friends).
//! - [`random`] — counter-based deterministic pseudorandomness: the i-th
//!   draw is a pure function of (seed, i), so parallel algorithms that use
//!   randomness stay deterministic at any thread count.
//! - [`shared`] — `SharedSlice`, a bounds-unchecked, intentionally racy
//!   write-shared slice used by scatter-style algorithms whose safety
//!   argument is "each index is written by exactly one winner, reads happen
//!   after the phase barrier".
//! - [`slices`] — block decomposition helpers shared by the blocked
//!   algorithms above.
//! - [`pool`] — small helpers for running a closure on a rayon pool with an
//!   explicit thread count (used by every experiment in the harness).
//!
//! # Granularity
//!
//! Every parallel primitive here degrades to a purely sequential loop below
//! [`slices::GRAIN`] elements, so the primitives can be called obliviously
//! from recursive code (e.g. the top-down radix sort recursing into small
//! buckets) without paying fork-join overhead.

#![warn(missing_docs)]

pub mod counting_sort;
pub mod flatten;
pub mod hash;
pub mod hash_table;
pub mod histogram;
pub mod merge;
pub mod pack;
pub mod pool;
pub mod radix_sort;
pub mod random;
pub mod reduce;
pub mod rr_sort;
pub mod sample_sort;
pub mod scan;
pub mod seq_ops;
pub mod shared;
pub mod shuffle;
pub mod slices;

pub use hash::{hash64, hash64_with_seed};
pub use pack::{pack, pack_index, pack_into};
pub use pool::with_threads;
pub use scan::{scan_add_exclusive, scan_add_inclusive};
