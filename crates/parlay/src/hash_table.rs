//! Phase-concurrent linear-probing hash table.
//!
//! After Shun and Blelloch, *Phase-concurrent hash tables for determinism*
//! (SPAA 2014) — the PBBS table the paper cites in §1 and uses for the
//! heavy-key map `T` (§4, Phase 2) and the naming problem (§2). "Phase
//! concurrent" means operations of the *same kind* may run concurrently,
//! but inserts and lookups must be separated by a barrier: lookups during an
//! insert phase could observe a key whose value is still being written.
//!
//! Layout: open addressing over a power-of-two table, one `AtomicU64` key
//! per slot plus a plain value slot. An insert claims a slot by CAS-ing the
//! key from `EMPTY`, then writes the value; linear probing on CAS failure
//! (the same cache-friendly choice the semisort scatter makes in Phase 3).
//! Lookups are wait-free probes. Expected `O(1)` work per operation at load
//! factor ≤ 1/2; the longest probe run is `O(log n)` w.h.p. (CLRS).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::hash::hash64;

/// Sentinel meaning "slot unoccupied". Keys must not equal `EMPTY`; the
/// semisort remaps its hash values away from this value (one branch), and
/// `insert` asserts it in debug builds.
pub const EMPTY: u64 = u64::MAX;

/// A phase-concurrent hash map from `u64` keys (≠ [`EMPTY`]) to `V`.
///
/// ```
/// use parlay::hash_table::PhaseConcurrentMap;
/// let t = PhaseConcurrentMap::<u32>::new(16);
/// assert!(t.insert(7, 70));   // insert phase (may be concurrent)
/// assert!(!t.insert(7, 71));  // duplicate: first value wins
/// assert_eq!(t.lookup(7), Some(70)); // lookup phase
/// assert_eq!(t.lookup(8), None);
/// ```
pub struct PhaseConcurrentMap<V> {
    keys: Box<[AtomicU64]>,
    values: Box<[UnsafeCell<V>]>,
    mask: usize,
    seed: u64,
}

// SAFETY: value slots are written only by the thread that won the key CAS
// for that slot, and read only in a later phase (caller contract).
unsafe impl<V: Send> Send for PhaseConcurrentMap<V> {}
unsafe impl<V: Send + Sync> Sync for PhaseConcurrentMap<V> {}

impl<V: Copy + Default> PhaseConcurrentMap<V> {
    /// A table able to hold `capacity` distinct keys at load factor ≤ 1/2.
    pub fn new(capacity: usize) -> Self {
        Self::with_seed(capacity, 0x7e57_ab1e)
    }

    /// Like [`PhaseConcurrentMap::new`] with an explicit probe-hash seed
    /// (used by retry paths to re-randomize probe sequences).
    pub fn with_seed(capacity: usize, seed: u64) -> Self {
        let slots = (capacity.max(1) * 2).next_power_of_two();
        let keys = (0..slots).map(|_| AtomicU64::new(EMPTY)).collect();
        let values = (0..slots).map(|_| UnsafeCell::new(V::default())).collect();
        PhaseConcurrentMap {
            keys,
            values,
            mask: slots - 1,
            // Pre-mix the seed once; slot_of then pays a single hash64.
            seed: hash64(seed),
        }
    }

    /// Number of slots (2 × capacity, rounded up to a power of two).
    pub fn slots(&self) -> usize {
        self.keys.len()
    }

    /// Insert `key → value`. Returns `true` if this call inserted the key,
    /// `false` if the key was already present (the existing value wins, as
    /// in the PBBS table; concurrent duplicate inserts elect one winner).
    ///
    /// May run concurrently with other `insert`s, but not with `lookup`s.
    pub fn insert(&self, key: u64, value: V) -> bool {
        debug_assert_ne!(key, EMPTY, "EMPTY sentinel used as key");
        let mut i = self.slot_of(key);
        loop {
            // ORDERING: Relaxed probe; an EMPTY answer is re-validated by
            // the CAS, a key answer is stable (keys never change once set).
            // publishes-via: the winning CAS below
            let cur = self.keys[i].load(Ordering::Relaxed);
            if cur == key {
                return false;
            }
            if cur == EMPTY {
                // ORDERING: AcqRel success claims the slot and publishes
                // the key; Relaxed failure re-inspects the found key.
                // publishes-via: this CAS's own AcqRel success edge
                match self.keys[i].compare_exchange(EMPTY, key, Ordering::AcqRel, Ordering::Relaxed)
                {
                    Ok(_) => {
                        // SAFETY: we own this slot (CAS winner): readers
                        // only arrive in the next phase (after a barrier),
                        // so the plain write cannot race with a read.
                        unsafe { *self.values[i].get() = value };
                        return true;
                    }
                    Err(found) if found == key => return false,
                    Err(_) => { /* lost the race to a different key: probe on */ }
                }
            } else {
                i = (i + 1) & self.mask;
            }
        }
    }

    /// Look up `key`. May run concurrently with other `lookup`s, but not
    /// with `insert`s (phase-concurrency contract).
    pub fn lookup(&self, key: u64) -> Option<V> {
        debug_assert_ne!(key, EMPTY);
        let mut i = self.slot_of(key);
        loop {
            // ORDERING: Acquire pairs with the insert phase's AcqRel CAS
            // (belt-and-braces under the phase barrier) so the value write
            // of an observed key happened-before us.
            let cur = self.keys[i].load(Ordering::Acquire);
            if cur == key {
                // SAFETY: the insert phase finished (caller contract), so the
                // winning writer's store to this slot happened-before us.
                return Some(unsafe { *self.values[i].get() });
            }
            if cur == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// True if the key is present (same phase rules as [`Self::lookup`]).
    pub fn contains(&self, key: u64) -> bool {
        self.lookup(key).is_some()
    }

    /// Iterate over occupied `(key, value)` entries (single-phase: no
    /// concurrent mutation).
    pub fn entries(&self) -> Vec<(u64, V)> {
        (0..self.keys.len())
            .filter_map(|i| {
                // ORDERING: Acquire, same pairing as `lookup`.
                let k = self.keys[i].load(Ordering::Acquire);
                // SAFETY: the insert phase has ended (single-phase use);
                // an occupied key's value write happened-before this load.
                (k != EMPTY).then(|| (k, unsafe { *self.values[i].get() }))
            })
            .collect()
    }

    #[inline(always)]
    fn slot_of(&self, key: u64) -> usize {
        (hash64(key ^ self.seed) as usize) & self.mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn insert_then_lookup() {
        let t = PhaseConcurrentMap::<u64>::new(100);
        assert!(t.insert(5, 50));
        assert!(t.insert(6, 60));
        assert!(!t.insert(5, 999), "duplicate insert must be rejected");
        assert_eq!(t.lookup(5), Some(50));
        assert_eq!(t.lookup(6), Some(60));
        assert_eq!(t.lookup(7), None);
    }

    #[test]
    fn slots_are_power_of_two_and_doubled() {
        let t = PhaseConcurrentMap::<u64>::new(100);
        assert!(t.slots().is_power_of_two());
        assert!(t.slots() >= 200);
    }

    #[test]
    fn parallel_distinct_inserts_all_found() {
        let n = 100_000u64;
        let t = PhaseConcurrentMap::<u64>::new(n as usize);
        (0..n).into_par_iter().for_each(|k| {
            assert!(t.insert(k + 1, k * 2));
        });
        // Phase barrier: par_iter joined. Now lookups.
        (0..n).into_par_iter().for_each(|k| {
            assert_eq!(t.lookup(k + 1), Some(k * 2));
        });
        assert_eq!(t.entries().len(), n as usize);
    }

    #[test]
    fn concurrent_duplicate_inserts_elect_one_winner() {
        let t = PhaseConcurrentMap::<u64>::new(1000);
        let wins: usize = (0..1000u64)
            .into_par_iter()
            .map(|i| t.insert(42, i) as usize)
            .sum();
        assert_eq!(wins, 1, "exactly one insert of a duplicate key may win");
        let v = t.lookup(42).unwrap();
        assert!(v < 1000);
    }

    #[test]
    fn full_capacity_distinct_keys() {
        // Exactly `capacity` distinct keys must fit (load factor 1/2).
        let t = PhaseConcurrentMap::<u32>::new(4096);
        for k in 0..4096u64 {
            assert!(t.insert(k + 1, k as u32));
        }
        for k in 0..4096u64 {
            assert_eq!(t.lookup(k + 1), Some(k as u32));
        }
    }

    #[test]
    fn adversarial_clustered_keys() {
        // Sequential keys hash to scattered slots, but colliding hashes force
        // probing; this exercises wraparound at the table end too.
        let t = PhaseConcurrentMap::<u64>::new(64);
        for k in 1..=64u64 {
            t.insert(k, k * 10);
        }
        for k in 1..=64u64 {
            assert_eq!(t.lookup(k), Some(k * 10));
        }
        assert_eq!(t.lookup(65), None);
    }

    #[test]
    fn entries_returns_exactly_inserted_set() {
        let t = PhaseConcurrentMap::<u64>::new(50);
        for k in [3u64, 9, 27] {
            t.insert(k, k + 1);
        }
        let mut e = t.entries();
        e.sort_unstable();
        assert_eq!(e, vec![(3, 4), (9, 10), (27, 28)]);
    }
}
