//! The [`Strategy`] trait and the `prop_map` adapter.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<R, F: Fn(Self::Value) -> R>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, R, F: Fn(S::Value) -> R> Strategy for Map<S, F> {
    type Value = R;
    fn generate(&self, rng: &mut TestRng) -> R {
        (self.f)(self.base.generate(rng))
    }
}
