//! Sampling helpers (`prop::sample::Index`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use crate::{AnyPrimitive, Arbitrary};

/// An index into a collection whose length is only known inside the test
/// body; scale with [`Index::index`].
#[derive(Clone, Copy, Debug)]
pub struct Index(u64);

impl Index {
    /// Reduce to `[0, len)`. Panics when `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        (((self.0 as u128) * (len as u128)) >> 64) as usize
    }
}

impl Arbitrary for Index {
    type Strategy = AnyPrimitive<Index>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

impl Strategy for AnyPrimitive<Index> {
    type Value = Index;
    fn generate(&self, rng: &mut TestRng) -> Index {
        Index(rng.next_u64())
    }
}
