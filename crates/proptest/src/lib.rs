//! A registry-free stand-in for the `proptest` crate.
//!
//! The build sandbox has no access to crates.io, so this crate provides the
//! subset of the proptest API the workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, numeric-range / tuple /
//! collection / regex-string strategies, [`any`], `prop::sample::Index`, and
//! the `prop_assert*` macros.
//!
//! Differences from real proptest, on purpose:
//!
//! - **No shrinking.** A failing case reports its deterministic case index;
//!   re-running the test replays the identical inputs (generation is a pure
//!   function of test name + case index), which substitutes for persistence
//!   *and* makes failures trivially reproducible in CI.
//! - **Regex strategies** support only the character-class-with-repetition
//!   shapes used here (e.g. `"[a-c]{1,3}"`), and panic on anything fancier.

#![warn(missing_docs)]

use std::ops::Range;

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;
pub use test_runner::{TestCaseError, TestRng};

/// Everything a test file needs from `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

/// Per-`proptest!`-block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Strategy for any type with a canonical "arbitrary" distribution.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The strategy type `any` returns.
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy produced by [`any`] for primitive types.
pub struct AnyPrimitive<T>(pub(crate) std::marker::PhantomData<T>);

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i32, i64);

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

range_strategy_signed!(i32, i64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Regex-subset string strategy: a sequence of literal chars or `[...]`
/// classes, each optionally followed by `{m}`, `{m,n}`, `?`, `+`, or `*`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pat: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pat.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a literal character.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unterminated class in pattern {pat:?}"))
                + i;
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j], chars[j + 2]);
                    assert!(lo <= hi, "bad class range in pattern {pat:?}");
                    for c in lo..=hi {
                        set.push(c);
                    }
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            assert!(!set.is_empty(), "empty class in pattern {pat:?}");
            i = close + 1;
            set
        } else {
            let c = chars[i];
            assert!(
                !"(){}|.*+?\\^$".contains(c),
                "unsupported regex syntax {c:?} in pattern {pat:?}"
            );
            i += 1;
            vec![c]
        };
        // Optional quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pat:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("bad quantifier"),
                    n.trim().parse::<usize>().expect("bad quantifier"),
                ),
                None => {
                    let m = body.trim().parse::<usize>().expect("bad quantifier");
                    (m, m)
                }
            }
        } else if i < chars.len() && (chars[i] == '?' || chars[i] == '*' || chars[i] == '+') {
            let q = chars[i];
            i += 1;
            match q {
                '?' => (0, 1),
                '*' => (0, 8),
                _ => (1, 8),
            }
        } else {
            (1, 1)
        };
        let reps = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..reps {
            let k = rng.below(alphabet.len() as u64) as usize;
            out.push(alphabet[k]);
        }
    }
    out
}

/// Drive every case of one property-test function. Called by the
/// [`proptest!`] expansion; not part of the public proptest API.
#[doc(hidden)]
pub fn run_cases(
    cfg: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    for i in 0..cfg.cases {
        let mut rng = TestRng::for_case(name, i);
        if let Err(e) = case(&mut rng) {
            panic!(
                "proptest: case {i}/{} of `{name}` failed: {e}\n\
                 (inputs are a pure function of the test name and case index; \
                 re-running the test reproduces this case exactly)",
                cfg.cases
            );
        }
    }
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{ @fns ($cfg) $($rest)* }
    };
    (@fns ($cfg:expr)) => {};
    (@fns ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($args:tt)* ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg = $cfg;
            $crate::run_cases(&cfg, stringify!($name), |prop_rng| {
                $crate::proptest_bind!(prop_rng, $($args)*);
                $body
                #[allow(unreachable_code)]
                ::std::result::Result::Ok(())
            });
        }
        $crate::proptest!{ @fns ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest!{ @fns ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Bind `pat in strategy` argument lists inside [`proptest!`] bodies.
#[doc(hidden)]
#[macro_export]
macro_rules! proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $p:pat in $s:expr $(, $($rest:tt)*)?) => {
        let $p = $crate::strategy::Strategy::generate(&($s), $rng);
        $crate::proptest_bind!($rng $(, $($rest)*)?);
    };
}

/// Assert inside a proptest body; failure reports the case instead of
/// panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Inequality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = crate::strategy::Strategy::generate(&(10u64..20), &mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn pattern_strings_match_shape() {
        let mut rng = crate::TestRng::for_case("pat", 0);
        for _ in 0..200 {
            let s = crate::strategy::Strategy::generate(&"[a-c]{1,3}", &mut rng);
            assert!((1..=3).contains(&s.len()), "bad len: {s:?}");
            assert!(
                s.chars().all(|c| ('a'..='c').contains(&c)),
                "bad chars: {s:?}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = crate::collection::vec((0u64..100, any::<u64>()), 0..50);
        let a = crate::strategy::Strategy::generate(&s, &mut crate::TestRng::for_case("d", 3));
        let b = crate::strategy::Strategy::generate(&s, &mut crate::TestRng::for_case("d", 3));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_and_asserts(v in prop::collection::vec(0u32..10, 0..100), flip in any::<bool>()) {
            prop_assert!(v.iter().all(|&x| x < 10));
            prop_assert_eq!(flip, flip);
        }

        #[test]
        fn index_is_in_bounds(v in prop::collection::vec(0u8..5, 1..50), i in any::<prop::sample::Index>()) {
            let k = i.index(v.len());
            prop_assert!(k < v.len());
        }
    }
}
