//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length range for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}
