//! Deterministic case RNG and the test-case error type.

/// Failure of a single generated case (produced by `prop_assert*`).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Alias used by real proptest; kept for drop-in compatibility.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Counter-based deterministic RNG: the k-th draw of case `i` of test `t`
/// is a pure function of `(t, i, k)`. No state is persisted and no entropy
/// is consumed, so every failure replays identically.
pub struct TestRng {
    seed: u64,
    ctr: u64,
}

impl TestRng {
    /// RNG for one (test, case) pair.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            seed: mix(h ^ ((case as u64) << 32 | 0x9e37)),
            ctr: 0,
        }
    }

    /// Next 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.ctr += 1;
        mix(self
            .seed
            .wrapping_add(self.ctr.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }

    /// Next draw reduced to `[0, bound)` (`bound` > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}

/// splitmix64 finalizer.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}
