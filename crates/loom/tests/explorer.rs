//! Self-tests for the schedule explorer: the shim must genuinely explore
//! distinct interleavings (not just replay one), terminate, and surface
//! model panics — otherwise the race models in `crates/semisort` would
//! vacuously pass.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering as StdOrdering};
use std::sync::Mutex;

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::Arc;
use loom::thread;

#[test]
fn store_store_race_reaches_both_final_values() {
    // Two threads each store their id into one cell: exhaustive
    // exploration must witness both "1 wins" and "2 wins" orders.
    let outcomes = Arc::new(Mutex::new(BTreeSet::new()));
    let sink = outcomes.clone();
    loom::model(move || {
        let cell = Arc::new(AtomicU64::new(0));
        let a = {
            let cell = cell.clone();
            thread::spawn(move || cell.store(1, Ordering::SeqCst))
        };
        let b = {
            let cell = cell.clone();
            thread::spawn(move || cell.store(2, Ordering::SeqCst))
        };
        a.join().unwrap();
        b.join().unwrap();
        sink.lock().unwrap().insert(cell.unsync_load());
    });
    assert_eq!(
        *outcomes.lock().unwrap(),
        BTreeSet::from([1, 2]),
        "explorer must reach both store orders"
    );
}

#[test]
fn load_then_store_race_is_interleavable() {
    // The classic lost-update shape: both threads read 0, both write
    // read+1, final value 1. A sound explorer must find it (and also the
    // serialized schedules where the final value is 2).
    let outcomes = Arc::new(Mutex::new(BTreeSet::new()));
    let sink = outcomes.clone();
    loom::model(move || {
        let cell = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cell = cell.clone();
                thread::spawn(move || {
                    let v = cell.load(Ordering::SeqCst);
                    cell.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        sink.lock().unwrap().insert(cell.unsync_load());
    });
    assert_eq!(
        *outcomes.lock().unwrap(),
        BTreeSet::from([1, 2]),
        "explorer must reach both the lost-update and the serialized outcomes"
    );
}

#[test]
fn fetch_add_never_loses_updates() {
    // The atomic counterpart of the test above: fetch_add is exclusive in
    // every interleaving, so the final value is always 2.
    loom::model(|| {
        let cell = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cell = cell.clone();
                thread::spawn(move || {
                    cell.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cell.unsync_load(), 2);
    });
}

#[test]
fn model_panic_propagates_to_caller() {
    // An assertion that fails only under one interleaving must escape
    // loom::model as a panic — this is what the duplicate-claim injection
    // test in the semisort race models relies on.
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let cell = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let cell = cell.clone();
                    thread::spawn(move || {
                        let v = cell.load(Ordering::SeqCst);
                        cell.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(cell.unsync_load(), 2, "lost update");
        });
    }));
    assert!(result.is_err(), "the lost-update schedule must panic out");
}

#[test]
fn execution_count_is_bounded_and_plural() {
    // Sanity on the DFS bookkeeping: a 2-thread, 2-op model explores more
    // than one schedule and terminates well under the execution cap.
    let runs = std::sync::Arc::new(AtomicUsize::new(0));
    let counter = runs.clone();
    loom::model(move || {
        counter.fetch_add(1, StdOrdering::Relaxed);
        let cell = Arc::new(AtomicU64::new(0));
        let a = {
            let cell = cell.clone();
            thread::spawn(move || cell.store(1, Ordering::SeqCst))
        };
        cell.store(2, Ordering::SeqCst);
        a.join().unwrap();
    });
    let n = runs.load(StdOrdering::Relaxed);
    assert!(n > 1, "must explore more than one schedule, got {n}");
    assert!(n < 1000, "tiny model exploded to {n} schedules");
}

#[test]
fn compare_exchange_is_exclusive() {
    // Two threads CAS 0→id on one cell: exactly one wins in every
    // interleaving, and the loser observes the winner's value.
    loom::model(|| {
        let cell = Arc::new(AtomicU64::new(0));
        let wins = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (1..=2u64)
            .map(|id| {
                let cell = cell.clone();
                let wins = wins.clone();
                thread::spawn(move || {
                    if cell
                        .compare_exchange(0, id, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        wins.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(wins.unsync_load(), 1, "exactly one CAS may claim");
        assert_ne!(cell.unsync_load(), 0, "the claim must be visible");
    });
}
