//! Model-aware threads: `loom::thread::spawn`/`join` mirroring
//! `std::thread`, scheduled by the explorer in the private `rt` module.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::rt;

/// Handle to a model thread, as returned by [`spawn`].
pub struct JoinHandle<T> {
    real: std::thread::JoinHandle<T>,
    tid: usize,
    ctx: Arc<crate::rt::Ctx>,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish, yielding to the scheduler so other
    /// threads interleave while this one blocks. Returns the closure's
    /// value, or `Err` with the panic payload if it unwound (matching
    /// `std::thread::JoinHandle::join`).
    pub fn join(self) -> std::thread::Result<T> {
        let (_, me) = rt::current().expect("join called outside the owning model");
        self.ctx.join_wait(me, self.tid);
        self.real.join()
    }
}

/// Spawn a model thread. Must be called from inside [`crate::model`]; the
/// thread starts executing only when the explorer schedules it, and every
/// handle must be joined before the model closure returns.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (ctx, _) = rt::current().expect("loom::thread::spawn outside loom::model");
    let tid = ctx.register_thread();
    let child_ctx = ctx.clone();
    let real = std::thread::spawn(move || {
        rt::install(child_ctx.clone(), tid);
        child_ctx.wait_until_scheduled(tid);
        let out = catch_unwind(AssertUnwindSafe(f));
        child_ctx.on_finish(tid);
        rt::uninstall();
        match out {
            Ok(v) => v,
            Err(p) => resume_unwind(p),
        }
    });
    JoinHandle { real, tid, ctx }
}

/// An explicit yield point (a scheduling opportunity with no memory
/// effect), mirroring `loom::thread::yield_now`.
pub fn yield_now() {
    rt::step();
}
