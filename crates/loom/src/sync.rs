//! Model-aware synchronization primitives: atomics whose every operation
//! is a yield point for the schedule explorer. `Arc` is re-exported from
//! `std` (reference counting has no schedule-visible effect the models
//! care about), matching the loom API surface the workspace uses.

pub use std::sync::Arc;

/// Model-aware atomic integers. Every operation runs under `SeqCst`
/// regardless of the ordering passed (the explorer walks the
/// sequentially-consistent interleaving space; see the crate docs).
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::rt;

    macro_rules! model_atomic {
        ($(#[$doc:meta])* $name:ident, $std:ident, $ty:ty) => {
            $(#[$doc])*
            #[derive(Debug, Default)]
            pub struct $name(std::sync::atomic::$std);

            impl $name {
                /// A new atomic holding `v`.
                pub const fn new(v: $ty) -> Self {
                    Self(std::sync::atomic::$std::new(v))
                }

                /// Model-scheduled load (explored as `SeqCst`).
                pub fn load(&self, _order: Ordering) -> $ty {
                    rt::step();
                    self.0.load(Ordering::SeqCst)
                }

                /// Model-scheduled store (explored as `SeqCst`).
                pub fn store(&self, v: $ty, _order: Ordering) {
                    rt::step();
                    self.0.store(v, Ordering::SeqCst)
                }

                /// Model-scheduled fetch-add (explored as `SeqCst`).
                pub fn fetch_add(&self, v: $ty, _order: Ordering) -> $ty {
                    rt::step();
                    self.0.fetch_add(v, Ordering::SeqCst)
                }

                /// Model-scheduled compare-exchange (explored as `SeqCst`).
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$ty, $ty> {
                    rt::step();
                    self.0
                        .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                }

                /// Model-scheduled weak compare-exchange. Never fails
                /// spuriously in the model (spurious failure adds schedules
                /// without adding protocol outcomes).
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.compare_exchange(current, new, success, failure)
                }

                /// Read the final value without scheduling — for asserting
                /// on the outcome *after* every model thread has joined.
                pub fn unsync_load(&self) -> $ty {
                    self.0.load(Ordering::SeqCst)
                }
            }
        };
    }

    model_atomic!(
        /// Model-aware `AtomicU64` (the scatter's slot-key type).
        AtomicU64,
        AtomicU64,
        u64
    );
    model_atomic!(
        /// Model-aware `AtomicUsize` (the blocked scatter's slab cursors).
        AtomicUsize,
        AtomicUsize,
        usize
    );
    model_atomic!(
        /// Model-aware `AtomicU32`.
        AtomicU32,
        AtomicU32,
        u32
    );
    model_atomic!(
        /// Model-aware `AtomicIsize` (the work-stealing deque's
        /// `top`/`bottom` indices, which go transiently negative in `pop`).
        AtomicIsize,
        AtomicIsize,
        isize
    );

    /// Model-aware `AtomicBool` (overflow latch, cancel token, spin
    /// latch). Bools have no fetch-add, so this is not macro-generated;
    /// it carries the flag subset the protocols use.
    #[derive(Debug, Default)]
    pub struct AtomicBool(std::sync::atomic::AtomicBool);

    impl AtomicBool {
        /// A new atomic holding `v`.
        pub const fn new(v: bool) -> Self {
            Self(std::sync::atomic::AtomicBool::new(v))
        }

        /// Model-scheduled load (explored as `SeqCst`).
        pub fn load(&self, _order: Ordering) -> bool {
            rt::step();
            self.0.load(Ordering::SeqCst)
        }

        /// Model-scheduled store (explored as `SeqCst`).
        pub fn store(&self, v: bool, _order: Ordering) {
            rt::step();
            self.0.store(v, Ordering::SeqCst)
        }

        /// Model-scheduled swap (explored as `SeqCst`).
        pub fn swap(&self, v: bool, _order: Ordering) -> bool {
            rt::step();
            self.0.swap(v, Ordering::SeqCst)
        }

        /// Model-scheduled compare-exchange (explored as `SeqCst`).
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            _success: Ordering,
            _failure: Ordering,
        ) -> Result<bool, bool> {
            rt::step();
            self.0
                .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
        }

        /// Read the final value without scheduling — for asserting on the
        /// outcome *after* every model thread has joined.
        pub fn unsync_load(&self) -> bool {
            self.0.load(Ordering::SeqCst)
        }
    }

    /// Model-scheduled memory fence. The explorer runs every atomic op
    /// `SeqCst`, so the fence contributes no extra ordering — it is a
    /// yield point only, letting schedules branch where the production
    /// code has its Dekker-style fences.
    pub fn fence(_order: Ordering) {
        crate::rt::step();
    }
}
