//! The schedule explorer: a cooperative scheduler over real threads plus a
//! depth-first search over scheduling decisions. See the crate docs for
//! the execution model.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Upper bound on schedules explored per [`model`] call. A model that
/// exceeds it has a state space too large to walk exhaustively and must be
/// shrunk (fewer threads or fewer atomic ops), exactly as with real loom.
pub const MAX_EXECUTIONS: usize = 1 << 20;

/// Upper bound on scheduling decisions within one execution — a livelock
/// guard (e.g. a CAS retry loop that never makes progress under some
/// schedule would otherwise spin forever).
pub const MAX_STEPS: usize = 1 << 16;

/// Per-thread bookkeeping inside one execution.
struct ThreadState {
    /// Eligible to be scheduled (false while blocked in `join` or after
    /// finishing).
    runnable: bool,
    /// The thread's closure has returned (or unwound).
    finished: bool,
    /// Set while blocked joining another model thread; cleared (and
    /// `runnable` restored) when that thread finishes.
    waiting_on: Option<usize>,
}

/// Shared state of one execution.
struct State {
    threads: Vec<ThreadState>,
    /// The single thread currently admitted to run.
    current: usize,
    /// Decision vector: `schedule[k]` = index into the runnable set chosen
    /// at decision `k`. A replayed prefix plus `0`s appended at the
    /// frontier.
    schedule: Vec<usize>,
    /// Number of runnable choices that existed at each decision (recorded
    /// during the run; drives backtracking).
    alternatives: Vec<usize>,
    /// Next decision index.
    pos: usize,
}

impl State {
    /// Record the next scheduling decision and return the chosen thread.
    /// Panics on deadlock (no runnable thread while some are unfinished).
    fn pick_next(&mut self) -> Option<usize> {
        let runnable: Vec<usize> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.runnable && !t.finished)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            assert!(
                self.threads.iter().all(|t| t.finished),
                "loom model deadlock: no runnable thread but {} unfinished",
                self.threads.iter().filter(|t| !t.finished).count()
            );
            return None;
        }
        let k = self.pos;
        assert!(
            k < MAX_STEPS,
            "loom model exceeded {MAX_STEPS} decisions in one execution"
        );
        if k == self.schedule.len() {
            self.schedule.push(0);
        }
        // `alternatives` is rebuilt from scratch every execution (the
        // schedule prefix is replayed, the alternative counts re-observed;
        // determinism makes them identical to the previous run's).
        debug_assert_eq!(k, self.alternatives.len());
        self.alternatives.push(runnable.len());
        let choice = self.schedule[k];
        debug_assert!(
            choice < runnable.len(),
            "stale schedule replayed non-deterministically"
        );
        self.pos += 1;
        Some(runnable[choice])
    }
}

/// One execution's scheduler, shared by all its threads.
pub(crate) struct Ctx {
    state: Mutex<State>,
    cv: Condvar,
}

impl Ctx {
    fn new(schedule: Vec<usize>) -> Self {
        Ctx {
            state: Mutex::new(State {
                threads: vec![ThreadState {
                    runnable: true,
                    finished: false,
                    waiting_on: None,
                }],
                current: 0,
                schedule,
                alternatives: Vec::new(),
                pos: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Lock the state, shrugging off poisoning (a panicking model thread
    /// must not wedge the rest of the execution).
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The yield point: record a scheduling decision, hand the baton to the
    /// chosen thread, and block until this thread is chosen again.
    pub(crate) fn yield_point(&self, tid: usize) {
        let mut st = self.lock();
        debug_assert_eq!(st.current, tid, "yield from a thread that is not current");
        let next = st.pick_next().expect("running thread is always runnable");
        st.current = next;
        if next != tid {
            self.cv.notify_all();
            while st.current != tid {
                st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    /// Register a newly spawned model thread; it is runnable immediately
    /// but executes only once scheduled.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.lock();
        st.threads.push(ThreadState {
            runnable: true,
            finished: false,
            waiting_on: None,
        });
        st.threads.len() - 1
    }

    /// Block a freshly spawned thread until the scheduler first picks it.
    pub(crate) fn wait_until_scheduled(&self, tid: usize) {
        let mut st = self.lock();
        while st.current != tid {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Mark `tid` finished, wake its joiners, and hand the baton onward.
    pub(crate) fn on_finish(&self, tid: usize) {
        let mut st = self.lock();
        st.threads[tid].finished = true;
        st.threads[tid].runnable = false;
        for t in &mut st.threads {
            if t.waiting_on == Some(tid) {
                t.waiting_on = None;
                t.runnable = true;
            }
        }
        if let Some(next) = st.pick_next() {
            st.current = next;
        }
        self.cv.notify_all();
    }

    /// Block `me` until `target` finishes (the scheduling half of
    /// [`crate::thread::JoinHandle::join`]; the real `join` follows it).
    pub(crate) fn join_wait(&self, me: usize, target: usize) {
        let mut st = self.lock();
        if st.threads[target].finished {
            return;
        }
        st.threads[me].runnable = false;
        st.threads[me].waiting_on = Some(target);
        let next = st.pick_next().expect("join would deadlock");
        st.current = next;
        self.cv.notify_all();
        while st.current != me {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

thread_local! {
    /// The execution this OS thread belongs to, and its model thread id.
    static CURRENT: RefCell<Option<(Arc<Ctx>, usize)>> = const { RefCell::new(None) };
}

/// The calling thread's execution context, if it is inside a model.
pub(crate) fn current() -> Option<(Arc<Ctx>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Bind this OS thread to a model execution (used by `thread::spawn`).
pub(crate) fn install(ctx: Arc<Ctx>, tid: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((ctx, tid)));
}

/// Unbind this OS thread from its model execution.
pub(crate) fn uninstall() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// A yield point for the calling thread, if it is inside a model (atomic
/// wrappers call this before every operation; outside a model it is free).
pub(crate) fn step() {
    if let Some((ctx, tid)) = current() {
        ctx.yield_point(tid);
    }
}

/// Run `f` under every interleaving of its threads' atomic operations.
///
/// `f` is invoked once per schedule; it must create its shared state
/// afresh each call (the loom idiom: build `Arc`s inside the closure),
/// spawn threads with [`crate::thread::spawn`], and join every handle
/// before returning. A panic inside the model (a failed assertion, i.e. a
/// protocol violation found on some schedule) propagates to the caller on
/// the first schedule that triggers it.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let mut schedule: Vec<usize> = Vec::new();
    let mut executions = 0usize;
    loop {
        executions += 1;
        assert!(
            executions <= MAX_EXECUTIONS,
            "loom model explored {MAX_EXECUTIONS} schedules without converging; shrink the model"
        );
        let ctx = Arc::new(Ctx::new(schedule.clone()));
        install(ctx.clone(), 0);
        let result = catch_unwind(AssertUnwindSafe(&f));
        uninstall();
        if let Err(payload) = result {
            resume_unwind(payload);
        }
        // Depth-first backtrack: bump the last decision with an untried
        // alternative, discard everything after it.
        let st = ctx.lock();
        schedule = st.schedule.clone();
        let alternatives = st.alternatives.clone();
        drop(st);
        let mut k = schedule.len();
        loop {
            if k == 0 {
                return; // every schedule explored
            }
            k -= 1;
            if schedule[k] + 1 < alternatives[k] {
                schedule[k] += 1;
                schedule.truncate(k + 1);
                break;
            }
        }
    }
}
