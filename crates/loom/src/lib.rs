//! A registry-free stand-in for the `loom` crate.
//!
//! The build sandbox for this workspace has no access to crates.io (see the
//! `rayon`/`proptest` shims), so the real `loom` cannot be vendored. This
//! crate re-implements the *idea* of loom for the subset of the API the
//! workspace uses: [`model`] runs a closure under **every** interleaving of
//! its threads' atomic operations, so an assertion that holds across the
//! whole run proves a concurrency property exhaustively rather than
//! probabilistically.
//!
//! # How the explorer works
//!
//! Real OS threads execute the model body, but a cooperative scheduler
//! (one mutex + condvar) admits exactly **one** runnable thread at a time.
//! Every operation on a [`sync::atomic`] wrapper first reaches a *yield
//! point*, where the running thread consults the current schedule — a
//! vector of decision indices — to pick which runnable thread executes
//! next (possibly itself). When an execution finishes, the schedule
//! backtracks depth-first: the last decision that still has an untried
//! alternative is incremented and everything after it is discarded, and
//! [`model`] replays the closure under the new schedule. Exploration ends
//! when no decision has alternatives left, i.e. after every schedule has
//! run.
//!
//! Because only one thread runs between yield points and each decision is
//! replayed deterministically, executions are reproducible; a panic (a
//! failed assertion in the model) surfaces on the first schedule that
//! triggers it. All wrapped atomic operations run under `SeqCst`, so the
//! explorer checks the sequentially-consistent interleaving space — which
//! is exactly the level of the claims the scatter protocols make (slot
//! claims are CAS-exclusive regardless of ordering relaxations; see
//! `crates/semisort/tests/race_model.rs`).
//!
//! # Differences from real loom
//!
//! - No `Relaxed`/`Acquire`/`Release` weak-memory modeling: every atomic op
//!   is explored as `SeqCst`. Weak-memory bugs are ThreadSanitizer's job
//!   (see the `tsan` CI lane); this shim proves *protocol* properties.
//! - No `UnsafeCell` access tracking and no partial-order reduction; the
//!   state space is walked whole, so models must stay small (2–3 threads,
//!   a handful of atomic ops each — the same discipline real loom needs).
//! - Thread-count and execution-count limits guard against runaway models:
//!   [`MAX_EXECUTIONS`] schedules, [`MAX_STEPS`] decisions per execution.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod sync;
pub mod thread;

mod rt;

pub use rt::{model, MAX_EXECUTIONS, MAX_STEPS};
