//! End-to-end tests of `cargo xtask bench-diff` as a subprocess: exit
//! codes and the `semisort-bench-diff-v1` verdict for a regressing, a
//! healthy, and an empty trajectory.

use std::path::PathBuf;
use std::process::Output;

use semisort::Json;

fn record_line(wall: f64, scatter_s: f64) -> String {
    format!(
        concat!(
            "{{\"schema\": \"semisort-bench-v1\", \"bin\": \"t\", \"threads\": 2, ",
            "\"wall_s\": {}, \"stats\": {{\"n\": 1000, ",
            "\"config\": {{\"scatter_strategy\": \"random-cas\", \"telemetry\": \"off\"}}, ",
            "\"phases\": {{\"scatter_s\": {}}}, ",
            "\"outcome\": {{\"degraded\": false, \"faults_injected\": 0}}}}}}"
        ),
        wall, scatter_s
    )
}

fn tmp_file(name: &str, lines: &[String]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("semisort-bench-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, lines.join("\n") + "\n").unwrap();
    path
}

fn run_diff(args: &[&str]) -> (Output, Json) {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("bench-diff")
        .args(args)
        .output()
        .expect("spawn xtask");
    let stdout = String::from_utf8(out.stdout.clone()).expect("utf8 stdout");
    let doc = Json::parse(stdout.trim())
        .unwrap_or_else(|e| panic!("stdout is not a bench-diff report: {e}\n{stdout}"));
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("semisort-bench-diff-v1")
    );
    (out, doc)
}

#[test]
fn regressing_trajectory_exits_nonzero() {
    let traj = tmp_file(
        "regress.jsonl",
        &[record_line(1.0, 0.5), record_line(1.6, 0.5)],
    );
    let (out, doc) = run_diff(&["--trajectory", traj.to_str().unwrap()]);
    assert!(!out.status.success(), "regression must exit nonzero");
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("regression"));
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    assert!(doc.get("wall_delta_pct").and_then(Json::as_f64).unwrap() > 49.0);
}

#[test]
fn healthy_trajectory_exits_zero() {
    let traj = tmp_file(
        "healthy.jsonl",
        &[record_line(1.0, 0.5), record_line(1.05, 0.5)],
    );
    let (out, doc) = run_diff(&["--trajectory", traj.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
}

#[test]
fn single_record_is_no_baseline_and_exits_zero() {
    let traj = tmp_file("first.jsonl", &[record_line(1.0, 0.5)]);
    let (out, doc) = run_diff(&["--trajectory", traj.to_str().unwrap()]);
    assert!(out.status.success(), "first-ever record must not fail CI");
    assert_eq!(
        doc.get("status").and_then(Json::as_str),
        Some("no-baseline")
    );
}

#[test]
fn threshold_flag_loosens_the_gate() {
    let traj = tmp_file(
        "loose.jsonl",
        &[record_line(1.0, 0.5), record_line(1.6, 0.5)],
    );
    let (out, doc) = run_diff(&[
        "--trajectory",
        traj.to_str().unwrap(),
        "--threshold-pct",
        "100",
        "--phase-threshold-pct",
        "100",
    ]);
    assert!(out.status.success());
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
}

#[test]
fn baseline_file_is_honored() {
    let traj = tmp_file("cand.jsonl", &[record_line(1.5, 0.5)]);
    let base = tmp_file("base.jsonl", &[record_line(1.0, 0.5)]);
    let (out, doc) = run_diff(&[
        "--trajectory",
        traj.to_str().unwrap(),
        "--baseline",
        base.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("regression"));
    assert_eq!(doc.get("baseline_wall_s").and_then(Json::as_f64), Some(1.0));
}

#[test]
fn corrupt_trajectory_is_a_usage_error() {
    let traj = tmp_file("corrupt.jsonl", &["not json".to_string()]);
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["bench-diff", "--trajectory"])
        .arg(&traj)
        .output()
        .expect("spawn xtask");
    assert_eq!(out.status.code(), Some(2), "corrupt input is exit 2, not 1");
}
