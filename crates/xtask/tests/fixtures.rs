//! End-to-end tests of the lint gate binary against the fixture trees in
//! `crates/xtask/fixtures/`: each known-bad tree must produce the expected
//! `semisort-lint-v1` diagnostic AND a nonzero exit, the clean tree must
//! exit 0, and the real workspace must be clean (the gate guards itself).

use std::path::{Path, PathBuf};
use std::process::Output;

use semisort::Json;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn run_lint(root: &Path) -> (Output, Json) {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--root"])
        .arg(root)
        .output()
        .expect("spawn xtask");
    let stdout = String::from_utf8(out.stdout.clone()).expect("utf8 stdout");
    let doc = Json::parse(stdout.trim())
        .unwrap_or_else(|e| panic!("stdout is not valid semisort-lint-v1 JSON: {e}\n{stdout}"));
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("semisort-lint-v1"),
        "report must carry the schema tag"
    );
    (out, doc)
}

/// The single violation of a one-violation report.
fn sole_violation(doc: &Json) -> &Json {
    let v = doc.get("violations").and_then(Json::as_arr).expect("array");
    assert_eq!(v.len(), 1, "expected exactly one violation, got {doc}");
    &v[0]
}

#[test]
fn missing_safety_fixture_fails_with_undocumented_unsafe() {
    let (out, doc) = run_lint(&fixture("missing_safety"));
    assert!(!out.status.success(), "lint must exit nonzero");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    let v = sole_violation(&doc);
    assert_eq!(
        v.get("rule").and_then(Json::as_str),
        Some("undocumented-unsafe")
    );
    assert_eq!(
        v.get("file").and_then(Json::as_str),
        Some("crates/semisort/src/pool.rs")
    );
    assert_eq!(v.get("line").and_then(Json::as_u64), Some(6));
}

#[test]
fn unlisted_unsafe_fixture_fails_with_allowlist_violation() {
    let (out, doc) = run_lint(&fixture("unlisted_unsafe"));
    assert!(!out.status.success(), "lint must exit nonzero");
    let v = sole_violation(&doc);
    assert_eq!(
        v.get("rule").and_then(Json::as_str),
        Some("unsafe-outside-allowlist")
    );
    assert_eq!(
        v.get("file").and_then(Json::as_str),
        Some("crates/semisort/src/driver.rs")
    );
    assert_eq!(v.get("line").and_then(Json::as_u64), Some(7));
}

#[test]
fn index_cast_fixture_fails_with_cast_violation() {
    let (out, doc) = run_lint(&fixture("index_cast"));
    assert!(!out.status.success(), "lint must exit nonzero");
    let v = sole_violation(&doc);
    assert_eq!(
        v.get("rule").and_then(Json::as_str),
        Some("as-cast-in-index")
    );
    assert_eq!(
        v.get("file").and_then(Json::as_str),
        Some("crates/semisort/src/scatter.rs")
    );
    assert_eq!(v.get("line").and_then(Json::as_u64), Some(6));
}

#[test]
fn inplace_allowlisted_fixture_passes() {
    // The in-place scatter module is on the unsafe allowlist: a
    // SAFETY-documented unsafe block there is not a violation.
    let (out, doc) = run_lint(&fixture("inplace_allowlisted"));
    assert!(out.status.success(), "allowlisted unsafe must exit 0");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        doc.get("violations").and_then(Json::as_arr).map(<[_]>::len),
        Some(0)
    );
}

#[test]
fn clean_fixture_passes() {
    let (out, doc) = run_lint(&fixture("clean"));
    assert!(out.status.success(), "clean tree must exit 0");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        doc.get("violations").and_then(Json::as_arr).map(<[_]>::len),
        Some(0)
    );
    assert_eq!(doc.get("files_scanned").and_then(Json::as_u64), Some(1));
}

#[test]
fn real_workspace_is_clean() {
    // The gate guards the actual tree too: `cargo test` fails the moment
    // someone lands undocumented unsafe, an unlisted unsafe module, a
    // hot-path index cast, or a stray process::exit.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let (out, doc) = run_lint(root);
    assert!(
        out.status.success(),
        "workspace lint violations:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    // Sanity: the scan actually visited the workspace, not an empty dir.
    assert!(doc.get("files_scanned").and_then(Json::as_u64).unwrap() > 30);
}
