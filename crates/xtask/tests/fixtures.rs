//! End-to-end tests of the xtask gate binary against the fixture trees in
//! `crates/xtask/fixtures/`: each known-bad tree must produce the expected
//! diagnostic (`semisort-lint-v1` for the lint gate, `semisort-audit-v1`
//! for the atomics audit) AND a nonzero exit, the clean trees must exit 0,
//! and the real workspace must pass both gates (they guard themselves —
//! plain `cargo test` fails the moment either gate does).

use std::path::{Path, PathBuf};
use std::process::Output;

use semisort::Json;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn run_lint(root: &Path) -> (Output, Json) {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--root"])
        .arg(root)
        .output()
        .expect("spawn xtask");
    let stdout = String::from_utf8(out.stdout.clone()).expect("utf8 stdout");
    let doc = Json::parse(stdout.trim())
        .unwrap_or_else(|e| panic!("stdout is not valid semisort-lint-v1 JSON: {e}\n{stdout}"));
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("semisort-lint-v1"),
        "report must carry the schema tag"
    );
    (out, doc)
}

/// Run `xtask audit-atomics --root <root>`; returns the process output and
/// the single pass entry of the `semisort-audit-v1` report.
fn run_audit_atomics(root: &Path) -> (Output, Json) {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["audit-atomics", "--root"])
        .arg(root)
        .output()
        .expect("spawn xtask");
    let stdout = String::from_utf8(out.stdout.clone()).expect("utf8 stdout");
    let json_line = stdout
        .lines()
        .find(|l| l.trim_start().starts_with('{'))
        .unwrap_or_else(|| panic!("no JSON document on stdout:\n{stdout}"));
    let doc = Json::parse(json_line.trim())
        .unwrap_or_else(|e| panic!("stdout is not valid semisort-audit-v1 JSON: {e}\n{stdout}"));
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("semisort-audit-v1"),
        "report must carry the schema tag"
    );
    let passes = doc.get("passes").and_then(Json::as_arr).expect("passes");
    assert_eq!(passes.len(), 1, "audit-atomics runs exactly one pass");
    let pass = passes[0].clone();
    assert_eq!(
        pass.get("pass").and_then(Json::as_str),
        Some("audit-atomics")
    );
    (out, pass)
}

/// `(rule, file, line)` triples of a pass entry's violations, in order.
fn violations(pass: &Json) -> Vec<(String, String, u64)> {
    pass.get("violations")
        .and_then(Json::as_arr)
        .expect("violations array")
        .iter()
        .map(|v| {
            (
                v.get("rule").and_then(Json::as_str).unwrap().to_string(),
                v.get("file").and_then(Json::as_str).unwrap().to_string(),
                v.get("line").and_then(Json::as_u64).unwrap(),
            )
        })
        .collect()
}

/// The single violation of a one-violation report.
fn sole_violation(doc: &Json) -> &Json {
    let v = doc.get("violations").and_then(Json::as_arr).expect("array");
    assert_eq!(v.len(), 1, "expected exactly one violation, got {doc}");
    &v[0]
}

#[test]
fn missing_safety_fixture_fails_with_undocumented_unsafe() {
    let (out, doc) = run_lint(&fixture("missing_safety"));
    assert!(!out.status.success(), "lint must exit nonzero");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    let v = sole_violation(&doc);
    assert_eq!(
        v.get("rule").and_then(Json::as_str),
        Some("undocumented-unsafe")
    );
    assert_eq!(
        v.get("file").and_then(Json::as_str),
        Some("crates/semisort/src/pool.rs")
    );
    assert_eq!(v.get("line").and_then(Json::as_u64), Some(6));
}

#[test]
fn unlisted_unsafe_fixture_fails_with_allowlist_violation() {
    let (out, doc) = run_lint(&fixture("unlisted_unsafe"));
    assert!(!out.status.success(), "lint must exit nonzero");
    let v = sole_violation(&doc);
    assert_eq!(
        v.get("rule").and_then(Json::as_str),
        Some("unsafe-outside-allowlist")
    );
    assert_eq!(
        v.get("file").and_then(Json::as_str),
        Some("crates/semisort/src/driver.rs")
    );
    assert_eq!(v.get("line").and_then(Json::as_u64), Some(7));
}

#[test]
fn index_cast_fixture_fails_with_cast_violation() {
    let (out, doc) = run_lint(&fixture("index_cast"));
    assert!(!out.status.success(), "lint must exit nonzero");
    let v = sole_violation(&doc);
    assert_eq!(
        v.get("rule").and_then(Json::as_str),
        Some("as-cast-in-index")
    );
    assert_eq!(
        v.get("file").and_then(Json::as_str),
        Some("crates/semisort/src/scatter.rs")
    );
    assert_eq!(v.get("line").and_then(Json::as_u64), Some(6));
}

#[test]
fn inplace_allowlisted_fixture_passes() {
    // The in-place scatter module is on the unsafe allowlist: a
    // SAFETY-documented unsafe block there is not a violation.
    let (out, doc) = run_lint(&fixture("inplace_allowlisted"));
    assert!(out.status.success(), "allowlisted unsafe must exit 0");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        doc.get("violations").and_then(Json::as_arr).map(<[_]>::len),
        Some(0)
    );
}

#[test]
fn clean_fixture_passes() {
    let (out, doc) = run_lint(&fixture("clean"));
    assert!(out.status.success(), "clean tree must exit 0");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        doc.get("violations").and_then(Json::as_arr).map(<[_]>::len),
        Some(0)
    );
    assert_eq!(doc.get("files_scanned").and_then(Json::as_u64), Some(1));
}

#[test]
fn stale_unsafe_allowlist_fixture_fails_lint() {
    // The tree's own copy of the lint source allowlists a file the tree
    // does not contain; the staleness rule reads the list from the
    // scanned tree, so the stale entry fires without recompiling.
    let (out, doc) = run_lint(&fixture("stale_allowlist"));
    assert!(!out.status.success(), "lint must exit nonzero");
    let v = doc
        .get("violations")
        .and_then(Json::as_arr)
        .expect("violations array");
    let stale: Vec<_> = v
        .iter()
        .filter(|v| v.get("rule").and_then(Json::as_str) == Some("stale-allowlist-entry"))
        .collect();
    assert_eq!(stale.len(), 1, "expected one stale entry, got {doc}");
    assert!(stale[0]
        .get("message")
        .and_then(Json::as_str)
        .unwrap()
        .contains("crates/semisort/src/vanished.rs"));
}

// ---- audit-atomics fixtures --------------------------------------------

#[test]
fn missing_ordering_fixture_fails() {
    let (out, pass) = run_audit_atomics(&fixture("atomics_missing_ordering"));
    assert!(!out.status.success(), "audit must exit nonzero");
    assert_eq!(pass.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        violations(&pass),
        vec![(
            "missing-ordering-contract".into(),
            "crates/semisort/src/scatter.rs".into(),
            12
        )]
    );
}

#[test]
fn undocumented_relaxed_fixture_fails() {
    let (out, pass) = run_audit_atomics(&fixture("atomics_undocumented_relaxed"));
    assert!(!out.status.success(), "audit must exit nonzero");
    assert_eq!(
        violations(&pass),
        vec![(
            "undocumented-relaxed".into(),
            "crates/semisort/src/scatter.rs".into(),
            13
        )]
    );
}

#[test]
fn unlisted_module_fixture_fails() {
    // The site carries a perfectly good contract — the module still is
    // not on ATOMICS_ALLOWLIST, and that alone must fail the audit.
    let (out, pass) = run_audit_atomics(&fixture("atomics_unlisted_module"));
    assert!(!out.status.success(), "audit must exit nonzero");
    assert_eq!(
        violations(&pass),
        vec![(
            "atomics-outside-allowlist".into(),
            "crates/semisort/src/driver.rs".into(),
            13
        )]
    );
}

#[test]
fn seqcst_fixture_fails() {
    let (out, pass) = run_audit_atomics(&fixture("atomics_seqcst"));
    assert!(!out.status.success(), "audit must exit nonzero");
    assert_eq!(
        violations(&pass),
        vec![(
            "seqcst-outside-allowlist".into(),
            "crates/semisort/src/scatter.rs".into(),
            13
        )]
    );
}

#[test]
fn weak_cas_without_retry_fixture_fails() {
    // Contract and manifest are both in order in this tree; the weak CAS
    // outside a retry loop is the only finding.
    let (out, pass) = run_audit_atomics(&fixture("atomics_weak_cas_no_loop"));
    assert!(!out.status.success(), "audit must exit nonzero");
    assert_eq!(
        violations(&pass),
        vec![(
            "weak-cas-without-retry".into(),
            "crates/semisort/src/scatter.rs".into(),
            16
        )]
    );
}

#[test]
fn stale_manifest_fixture_fails_both_ways() {
    // One entry lists a deleted file; the other anchors a test fn that no
    // longer exists — both staleness rules must fire, against the
    // manifest's own [[protocol]] header lines.
    let (out, pass) = run_audit_atomics(&fixture("atomics_stale_manifest"));
    assert!(!out.status.success(), "audit must exit nonzero");
    assert_eq!(
        violations(&pass),
        vec![
            (
                "stale-manifest-file".into(),
                "crates/xtask/atomics.toml".into(),
                3
            ),
            (
                "stale-manifest-test".into(),
                "crates/xtask/atomics.toml".into(),
                8
            ),
        ]
    );
}

#[test]
fn unmodeled_protocol_fixture_fails() {
    // A fully-contracted compare-exchange with no manifest in the tree:
    // the claim protocol has no loom model on record.
    let (out, pass) = run_audit_atomics(&fixture("atomics_unmodeled_protocol"));
    assert!(!out.status.success(), "audit must exit nonzero");
    assert_eq!(
        violations(&pass),
        vec![(
            "unmodeled-protocol".into(),
            "crates/semisort/src/scatter.rs".into(),
            15
        )]
    );
}

#[test]
fn stale_allowlist_fixture_fails() {
    // The tree's own copy of the auditor source allowlists a file the
    // tree does not contain; the audit reads the list from the scanned
    // tree, so the stale entry fires without recompiling the auditor.
    let (out, pass) = run_audit_atomics(&fixture("stale_allowlist"));
    assert!(!out.status.success(), "audit must exit nonzero");
    assert_eq!(
        violations(&pass),
        vec![(
            "stale-atomics-allowlist-entry".into(),
            "crates/xtask/src/audit_atomics.rs".into(),
            1
        )]
    );
}

#[test]
fn atomics_clean_fixture_passes() {
    let (out, pass) = run_audit_atomics(&fixture("atomics_clean"));
    assert!(out.status.success(), "clean tree must exit 0");
    assert_eq!(pass.get("ok").and_then(Json::as_bool), Some(true));
    assert!(violations(&pass).is_empty());
    assert_eq!(pass.get("files_scanned").and_then(Json::as_u64), Some(2));
}

#[test]
fn real_workspace_audit_is_clean() {
    // The audit gate guards the actual tree: `cargo test` fails the
    // moment someone lands an uncontracted atomic, an undocumented
    // Relaxed, a stray SeqCst, or a CAS protocol without a loom model.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let (out, pass) = run_audit_atomics(root);
    let found = violations(&pass);
    assert!(
        out.status.success(),
        "workspace audit violations:\n{found:?}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(pass.get("ok").and_then(Json::as_bool), Some(true));
    // Sanity: the scan actually visited the workspace, not an empty dir.
    assert!(pass.get("files_scanned").and_then(Json::as_u64).unwrap() > 30);
}

#[test]
fn real_workspace_is_clean() {
    // The gate guards the actual tree too: `cargo test` fails the moment
    // someone lands undocumented unsafe, an unlisted unsafe module, a
    // hot-path index cast, or a stray process::exit.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let (out, doc) = run_lint(root);
    assert!(
        out.status.success(),
        "workspace lint violations:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    // Sanity: the scan actually visited the workspace, not an empty dir.
    assert!(doc.get("files_scanned").and_then(Json::as_u64).unwrap() > 30);
}
