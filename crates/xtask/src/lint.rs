//! The unsafe-code lint gate.
//!
//! Five textual rules over the workspace's Rust sources, chosen to encode
//! the memory-safety discipline DESIGN.md §11 describes. They complement —
//! not replace — the compiler lints (`unsafe_op_in_unsafe_fn`,
//! `clippy::undocumented_unsafe_blocks`): the textual pass also covers
//! cfg'd-out code, runs in seconds without a build, and produces the
//! machine-readable `semisort-lint-v1` report CI archives.
//!
//! - **`undocumented-unsafe`** — every `unsafe` block must be immediately
//!   preceded by a `// SAFETY:` comment (same line, or directly above with
//!   only comment/attribute lines between).
//! - **`unsafe-outside-allowlist`** — the `unsafe` keyword may appear only
//!   in the audited module set ([`UNSAFE_ALLOWLIST`]); growing that set is
//!   an explicit, reviewed act of editing this file.
//! - **`stale-allowlist-entry`** — every allowlist entry must still name a
//!   file that exists: a module that was deleted or renamed must leave the
//!   list, so the audited set never silently outgrows reality. The list is
//!   read from the *scanned tree's* own `crates/xtask/src/lint.rs`, which
//!   is what lets the fixture suite carry a deliberately stale list.
//! - **`as-cast-in-index`** — no `as` casts inside index brackets in the
//!   scatter/pack hot paths ([`HOT_PATHS`]): a truncating cast inside
//!   `buf[i as usize]` silently wraps on 32-bit targets where a
//!   `usize::from`/explicit widening would fail to compile.
//! - **`process-exit-outside-bin`** — `std::process::exit` only in binary
//!   roots (`src/bin/`, `src/main.rs`); library code must return errors so
//!   callers (and tests) keep control.
//!
//! The scanner ([`crate::scan`]) masks comments, strings, and char
//! literals before matching, so prose like this paragraph's mention of
//! `unsafe` never trips a rule.

use semisort::Json;

use crate::scan::{self, PassReport, Violation, Workspace};

/// Files (workspace-relative, `/`-separated) allowed to contain the
/// `unsafe` keyword. Everything here has been audited: each entry's blocks
/// carry `// SAFETY:` comments checked by the `undocumented-unsafe` rule.
pub const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/baselines/src/scatter_pack.rs",
    "crates/baselines/src/seq_two_phase.rs",
    "crates/bench/src/alloc_track.rs",
    "crates/parlay/src/counting_sort.rs",
    "crates/parlay/src/flatten.rs",
    "crates/parlay/src/hash_table.rs",
    "crates/parlay/src/pack.rs",
    "crates/parlay/src/rr_sort.rs",
    "crates/parlay/src/shared.rs",
    "crates/rayon/src/deque.rs",
    "crates/rayon/src/iter.rs",
    "crates/rayon/src/job.rs",
    "crates/rayon/src/lib.rs",
    "crates/rayon/src/registry.rs",
    "crates/rayon/src/slice.rs",
    "crates/semisort/src/blocked_scatter.rs",
    "crates/semisort/src/inplace_scatter.rs",
    "crates/semisort/src/local_sort.rs",
    "crates/semisort/src/pack_phase.rs",
    "crates/semisort/src/pool.rs",
    "crates/semisort/src/scatter.rs",
    "crates/semisort/tests/miri_suite.rs",
];

/// Hot-path files where the `as-cast-in-index` rule applies: the scatter
/// and pack inner loops, where index arithmetic runs per record.
pub const HOT_PATHS: &[&str] = &[
    "crates/semisort/src/blocked_scatter.rs",
    "crates/semisort/src/local_sort.rs",
    "crates/semisort/src/pack_phase.rs",
    "crates/semisort/src/pool.rs",
    "crates/semisort/src/scatter.rs",
];

/// The lint pass over a loaded workspace — the entry the pass registry in
/// `main.rs` dispatches to.
pub fn run(ws: &Workspace) -> PassReport {
    let mut violations = Vec::new();
    for f in &ws.files {
        violations.extend(lint_source(&f.rel, &f.text));
    }
    check_allowlist_staleness(ws, &mut violations);
    PassReport {
        pass: "lint",
        violations,
        files_scanned: ws.files.len(),
    }
}

/// The `semisort-lint-v1` document (validated in CI by
/// `semisort-cli validate-json --schema semisort-lint-v1`). Kept alongside
/// the newer aggregated `semisort-audit-v1` so existing consumers of the
/// standalone lint report keep working.
pub fn lint_v1_json(report: &PassReport) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::str("semisort-lint-v1")),
        ("ok".into(), Json::Bool(report.ok())),
        (
            "files_scanned".into(),
            Json::num(report.files_scanned as u64),
        ),
        (
            "violations".into(),
            Json::Arr(report.violations.iter().map(scan::violation_json).collect()),
        ),
    ])
}

// ---- rule: stale allowlist entries -------------------------------------

/// Every entry of the scanned tree's own `UNSAFE_ALLOWLIST` must still
/// name an existing file. The list is parsed out of the tree's
/// `crates/xtask/src/lint.rs` (not this compiled binary), so a fixture
/// tree can carry its own deliberately-stale list; trees that don't ship
/// the linter (the small rule fixtures) skip the check.
fn check_allowlist_staleness(ws: &Workspace, out: &mut Vec<Violation>) {
    const SELF_PATH: &str = "crates/xtask/src/lint.rs";
    let Some(lint_src) = ws.get(SELF_PATH) else {
        return;
    };
    let Some(entries) = scan::parse_const_string_list(&lint_src.text, "UNSAFE_ALLOWLIST") else {
        return;
    };
    for entry in entries {
        if ws.get(&entry).is_none() {
            out.push(Violation {
                rule: "stale-allowlist-entry",
                file: SELF_PATH.to_string(),
                line: 1,
                message: format!(
                    "UNSAFE_ALLOWLIST entry `{entry}` names a file that no longer \
                     exists; remove the entry (the audited set must track reality)"
                ),
            });
        }
    }
}

/// Lint one file's source text. `file` is the workspace-relative path used
/// both for reporting and for the per-file rule scoping.
pub fn lint_source(file: &str, text: &str) -> Vec<Violation> {
    let original: Vec<&str> = text.lines().collect();
    let code = scan::mask_non_code(text);
    let code_lines: Vec<&str> = code.lines().collect();
    let mut out = Vec::new();
    check_unsafe_rules(file, &original, &code_lines, &mut out);
    if HOT_PATHS.contains(&file) {
        check_index_casts(file, &code, &mut out);
    }
    check_process_exit(file, &code_lines, &mut out);
    out
}

// ---- rule: unsafe placement + SAFETY comments --------------------------

fn check_unsafe_rules(
    file: &str,
    original: &[&str],
    code_lines: &[&str],
    out: &mut Vec<Violation>,
) {
    let mut first_unsafe: Option<usize> = None;
    for (idx, line) in code_lines.iter().enumerate() {
        for col in scan::token_positions(line, "unsafe") {
            first_unsafe.get_or_insert(idx + 1);
            // Only *blocks* need a SAFETY comment here; `unsafe fn`
            // bodies are covered by `unsafe_op_in_unsafe_fn`, which
            // forces interior blocks that land right back in this rule.
            if is_unsafe_block(code_lines, idx, col + "unsafe".len())
                && !has_safety_comment(original, idx)
            {
                out.push(Violation {
                    rule: "undocumented-unsafe",
                    file: file.to_string(),
                    line: idx + 1,
                    message: "unsafe block without a `// SAFETY:` comment on the line \
                              above (or on the same line)"
                        .into(),
                });
            }
        }
    }
    if let Some(line) = first_unsafe {
        if !UNSAFE_ALLOWLIST.contains(&file) {
            out.push(Violation {
                rule: "unsafe-outside-allowlist",
                file: file.to_string(),
                line,
                message: "`unsafe` outside the audited allowlist; move the code into \
                          an allowlisted module or extend UNSAFE_ALLOWLIST in \
                          crates/xtask/src/lint.rs (with review)"
                    .into(),
            });
        }
    }
}

/// Does the `unsafe` token ending at `(line_idx, after)` introduce a block
/// (as opposed to an `unsafe fn` / `unsafe impl` / `unsafe trait` /
/// `unsafe extern` declaration)? Looks at the next non-whitespace token,
/// crossing line boundaries.
fn is_unsafe_block(code_lines: &[&str], line_idx: usize, after: usize) -> bool {
    let mut idx = line_idx;
    let mut rest = &code_lines[idx][after..];
    loop {
        let trimmed = rest.trim_start();
        if let Some(c) = trimmed.chars().next() {
            return match c {
                '{' => true,
                _ => !["fn", "impl", "trait", "extern"]
                    .iter()
                    .any(|kw| scan::token_positions(trimmed, kw).first() == Some(&0)),
            };
        }
        idx += 1;
        match code_lines.get(idx) {
            Some(l) => rest = l,
            None => return false,
        }
    }
}

/// Is the unsafe block on `line_idx` (0-based) covered by a SAFETY
/// comment? Accepts `SAFETY:` on the same line or on the lines directly
/// above, skipping only comment and attribute lines.
fn has_safety_comment(original: &[&str], line_idx: usize) -> bool {
    if original[line_idx].contains("SAFETY:") {
        return true;
    }
    let mut i = line_idx;
    while i > 0 {
        i -= 1;
        let t = original[i].trim_start();
        if t.starts_with("//") {
            if t.contains("SAFETY:") {
                return true;
            }
        } else if !t.starts_with("#[") && !t.starts_with("#!") {
            return false;
        }
    }
    false
}

// ---- rule: `as` casts inside index brackets ----------------------------

fn check_index_casts(file: &str, code: &str, out: &mut Vec<Violation>) {
    // Bracket kinds: `[` in expression position is an index (or array
    // literal — none with casts on the hot paths); `#[...]` attributes and
    // `mac![...]` invocations are not index arithmetic.
    let mut depth_index = 0usize; // open non-attribute, non-macro `[`s
    let mut stack: Vec<bool> = Vec::new(); // true = counts toward depth_index
    let mut prev_nonspace = '\0';
    let mut line = 1usize;
    let mut reported_on: Option<usize> = None;
    let bytes: Vec<char> = code.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => line += 1,
            '[' => {
                let indexing = prev_nonspace != '#' && prev_nonspace != '!';
                stack.push(indexing);
                if indexing {
                    depth_index += 1;
                }
            }
            // The guard pops exactly once per `]` (no other arm matches it).
            ']' if stack.pop().unwrap_or(false) => {
                depth_index = depth_index.saturating_sub(1);
            }
            'a' if depth_index > 0
                && scan::is_token_at(&bytes, i, "as")
                && reported_on != Some(line) =>
            {
                reported_on = Some(line);
                out.push(Violation {
                    rule: "as-cast-in-index",
                    file: file.to_string(),
                    line,
                    message: "`as` cast inside index arithmetic on a hot path; hoist \
                              the cast to a named `usize` binding (or use a widening \
                              `usize::from`) before indexing"
                        .into(),
                });
            }
            _ => {}
        }
        if !c.is_whitespace() {
            prev_nonspace = c;
        }
        i += 1;
    }
}

// ---- rule: process::exit outside binaries ------------------------------

fn check_process_exit(file: &str, code_lines: &[&str], out: &mut Vec<Violation>) {
    let is_bin = file.contains("/src/bin/")
        || file.starts_with("src/bin/")
        || file.ends_with("/src/main.rs")
        || file == "src/main.rs"
        || file == "build.rs";
    if is_bin {
        return;
    }
    for (idx, line) in code_lines.iter().enumerate() {
        if line.contains("process::exit") {
            out.push(Violation {
                rule: "process-exit-outside-bin",
                file: file.to_string(),
                line: idx + 1,
                message: "`std::process::exit` outside a binary root; return a value \
                          (or an error) and let `main` decide the exit code"
                    .into(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(file: &str, src: &str) -> Vec<&'static str> {
        lint_source(file, src).into_iter().map(|v| v.rule).collect()
    }

    const ALLOWED: &str = "crates/semisort/src/pool.rs"; // allowlisted + hot

    #[test]
    fn documented_unsafe_in_allowlisted_file_is_clean() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
        assert!(rules(ALLOWED, src).is_empty());
    }

    #[test]
    fn same_line_safety_comment_is_accepted() {
        let src =
            "fn f(p: *const u8) -> u8 {\n    unsafe { *p } // SAFETY: p valid per contract.\n}\n";
        assert!(rules(ALLOWED, src).is_empty());
    }

    #[test]
    fn missing_safety_comment_is_flagged() {
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        assert_eq!(rules(ALLOWED, src), vec!["undocumented-unsafe"]);
    }

    #[test]
    fn safety_comment_must_be_adjacent() {
        let src = "// SAFETY: far away.\nfn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        assert_eq!(rules(ALLOWED, src), vec!["undocumented-unsafe"]);
    }

    #[test]
    fn attribute_between_comment_and_block_is_ok() {
        let src = "// SAFETY: fine.\n#[allow(clippy::all)]\nunsafe { work() };\n";
        assert!(rules(ALLOWED, src).is_empty());
    }

    #[test]
    fn unsafe_fn_declaration_needs_no_block_comment() {
        // The body's interior blocks are forced (and checked) separately.
        let src = "unsafe fn f() {}\nunsafe impl Send for X {}\n";
        assert!(rules(ALLOWED, src).is_empty());
    }

    #[test]
    fn unsafe_outside_allowlist_is_flagged() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: documented but misplaced.\n    unsafe { *p }\n}\n";
        assert_eq!(
            rules("crates/semisort/src/driver.rs", src),
            vec!["unsafe-outside-allowlist"]
        );
    }

    #[test]
    fn unsafe_in_comments_and_strings_is_ignored() {
        let src = "// unsafe in prose\nfn f() { let s = \"unsafe {\"; let _ = s; }\n/* unsafe */\n";
        assert!(rules("crates/semisort/src/driver.rs", src).is_empty());
    }

    #[test]
    fn unsafe_code_identifier_is_not_the_keyword() {
        let src = "#![deny(unsafe_code)]\nfn f() {}\n";
        assert!(rules("crates/loom/src/lib.rs", src).is_empty());
    }

    #[test]
    fn as_cast_in_index_is_flagged_on_hot_paths_only() {
        let src = "fn f(v: &[u32], i: u32) -> u32 { v[i as usize] }\n";
        assert_eq!(rules(ALLOWED, src), vec!["as-cast-in-index"]);
        assert!(rules("crates/semisort/src/driver.rs", src).is_empty());
    }

    #[test]
    fn hoisted_cast_is_clean() {
        let src = "fn f(v: &[u32], i: u32) -> u32 { let i = i as usize; v[i] }\n";
        assert!(rules(ALLOWED, src).is_empty());
    }

    #[test]
    fn as_in_attribute_or_macro_brackets_is_ignored() {
        let src =
            "#[doc(alias = \"x as y\")]\nfn f() { let v = vec![0u8; n as usize]; let _ = v; }\n";
        assert!(rules(ALLOWED, src).is_empty());
    }

    #[test]
    fn nested_index_cast_is_flagged() {
        let src = "fn f(v: &[u32], m: &[u32], i: u32) -> u32 { v[m[i as usize] as usize] }\n";
        let got = rules(ALLOWED, src);
        assert!(!got.is_empty() && got.iter().all(|r| *r == "as-cast-in-index"));
    }

    #[test]
    fn process_exit_placement() {
        let src = "fn f() { std::process::exit(1); }\n";
        assert_eq!(
            rules("crates/bench/src/cli.rs", src),
            vec!["process-exit-outside-bin"]
        );
        assert!(rules("src/bin/semisort-cli.rs", src).is_empty());
        assert!(rules("crates/xtask/src/main.rs", src).is_empty());
    }

    #[test]
    fn report_json_shape() {
        let report = PassReport {
            pass: "lint",
            violations: vec![Violation {
                rule: "undocumented-unsafe",
                file: "a.rs".into(),
                line: 3,
                message: "m".into(),
            }],
            files_scanned: 7,
        };
        let doc = lint_v1_json(&report).to_string();
        let back = Json::parse(&doc).expect("lint JSON must round-trip");
        assert_eq!(
            back.get("schema").and_then(Json::as_str),
            Some("semisort-lint-v1")
        );
        assert_eq!(back.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(back.get("files_scanned").and_then(Json::as_u64), Some(7));
        let v = &back.get("violations").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(v.get("line").and_then(Json::as_u64), Some(3));
        assert_eq!(
            v.get("rule").and_then(Json::as_str),
            Some("undocumented-unsafe")
        );
    }

    #[test]
    fn raw_strings_and_char_literals_are_masked() {
        let src = "fn f() { let a = r#\"unsafe { }\"#; let b = '['; let c = '\\''; let _ = (a, b, c); }\n";
        assert!(rules(ALLOWED, src).is_empty());
    }
}
