//! Workspace automation tasks, invoked as `cargo xtask <task>` (the alias
//! lives in `.cargo/config.toml`).
//!
//! The static-analysis tasks share one substrate (see [`scan`]): a masked
//! source scanner plus a pass registry ([`PASSES`]), each pass a set of
//! textual rules producing a [`scan::PassReport`]. Reports aggregate into
//! the `semisort-audit-v1` JSON document CI archives.
//!
//! Tasks:
//!
//! - `lint [--root <dir>] [--json <path>]` — run the unsafe-code lint gate
//!   (see [`lint`]) over the workspace tree. Human-readable violations go
//!   to stderr; the `semisort-lint-v1` JSON report goes to stdout (or to
//!   `--json <path>`). Exits 0 on a clean tree, 1 on violations, 2 on
//!   usage or I/O errors.
//! - `audit-atomics [--root <dir>] [--json <path>]` — run the
//!   atomics/ordering contract audit (see [`audit_atomics`]): ORDERING
//!   contracts on every atomic site, publication edges for Relaxed,
//!   SeqCst/module allowlists, weak-CAS retry discipline, and the
//!   `crates/xtask/atomics.toml` protocol→loom-model manifest. Emits a
//!   one-pass `semisort-audit-v1` report; same exit codes as `lint`.
//! - `audit [--root <dir>] [--json <path>]` — run every registered pass
//!   and emit the aggregated `semisort-audit-v1` report.
//! - `bench-diff [--trajectory <file>] [--baseline <file>]
//!   [--threshold-pct <f>] [--phase-threshold-pct <f>] [--min-wall-s <f>]
//!   [--json <path>]` — compare the last trajectory run record against
//!   the best earlier same-configuration run (see [`bench_diff`]). Exits
//!   0 when within thresholds (or when there is nothing to compare), 1 on
//!   a regression, 2 on usage or I/O errors.

use std::path::PathBuf;

mod audit_atomics;
mod bench_diff;
mod lint;
mod manifest;
mod scan;

/// One registered static-analysis pass.
struct Pass {
    /// Pass identifier (the `pass` field of `semisort-audit-v1` entries).
    name: &'static str,
    /// The pass body over a loaded workspace.
    run: fn(&scan::Workspace) -> scan::PassReport,
}

/// The pass registry: `audit` runs these in order; `lint` and
/// `audit-atomics` each run one. New passes plug in here.
const PASSES: &[Pass] = &[
    Pass {
        name: "lint",
        run: lint::run,
    },
    Pass {
        name: "audit-atomics",
        run: audit_atomics::run,
    },
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_passes(&args[1..], &["lint"], Emit::LintV1),
        Some("audit-atomics") => run_passes(&args[1..], &["audit-atomics"], Emit::AuditV1),
        Some("audit") => {
            let names: Vec<&str> = PASSES.iter().map(|p| p.name).collect();
            run_passes(&args[1..], &names, Emit::AuditV1);
        }
        Some("bench-diff") => run_bench_diff(&args[1..]),
        _ => {
            eprintln!(
                "usage:\n  cargo xtask lint [--root <dir>] [--json <path>]\n  cargo xtask audit-atomics [--root <dir>] [--json <path>]\n  cargo xtask audit [--root <dir>] [--json <path>]\n  cargo xtask bench-diff [--trajectory <file>] [--baseline <file>] [--threshold-pct <f>] [--phase-threshold-pct <f>] [--min-wall-s <f>] [--json <path>]"
            );
            std::process::exit(2);
        }
    }
}

/// Which JSON document a run emits: the legacy standalone lint report or
/// the aggregated audit report.
enum Emit {
    LintV1,
    AuditV1,
}

fn run_passes(args: &[String], which: &[&str], emit: Emit) {
    let mut root: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--root" => root = Some(PathBuf::from(value("--root"))),
            "--json" => json_path = Some(PathBuf::from(value("--json"))),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let root = root.unwrap_or_else(workspace_root);
    let ws = match scan::Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("cannot scan {}: {e}", root.display());
            std::process::exit(2);
        }
    };
    let report = scan::AuditReport {
        passes: PASSES
            .iter()
            .filter(|p| which.contains(&p.name))
            .map(|p| (p.run)(&ws))
            .collect(),
    };
    for pass in &report.passes {
        for v in &pass.violations {
            eprintln!("{v}");
        }
        eprintln!(
            "{}: {} file(s) scanned, {} violation(s)",
            pass.pass,
            pass.files_scanned,
            pass.violations.len()
        );
    }
    let doc = match emit {
        Emit::LintV1 => lint::lint_v1_json(&report.passes[0]).to_string(),
        Emit::AuditV1 => report.to_json().to_string(),
    };
    match &json_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(2);
            }
        }
        None => println!("{doc}"),
    }
    if !report.ok() {
        std::process::exit(1);
    }
}

/// Under `cargo xtask` the cwd is the workspace root; under a direct
/// `cargo run -p xtask` from elsewhere, fall back to the manifest's
/// grandparent (crates/xtask -> workspace root).
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().expect("cwd");
    if cwd.join("Cargo.toml").exists() && cwd.join("crates").is_dir() {
        cwd
    } else {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .expect("workspace root")
            .to_path_buf()
    }
}

fn run_bench_diff(args: &[String]) {
    let mut trajectory = "BENCH_semisort.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut cfg = bench_diff::DiffConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        let parse_f = |name: &str, v: String| -> f64 {
            v.parse().unwrap_or_else(|_| {
                eprintln!("bad value for {name}: {v}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--trajectory" => trajectory = value("--trajectory"),
            "--baseline" => baseline_path = Some(value("--baseline")),
            "--threshold-pct" => {
                cfg.threshold_pct = parse_f("--threshold-pct", value("--threshold-pct"));
            }
            "--phase-threshold-pct" => {
                cfg.phase_threshold_pct =
                    parse_f("--phase-threshold-pct", value("--phase-threshold-pct"));
            }
            "--min-wall-s" => cfg.min_wall_s = parse_f("--min-wall-s", value("--min-wall-s")),
            "--json" => json_path = Some(PathBuf::from(value("--json"))),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let read_records = |path: &str| -> Vec<semisort::Json> {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench-diff: cannot read {path}: {e}");
            std::process::exit(2);
        });
        bench_diff::parse_jsonl(&text).unwrap_or_else(|e| {
            eprintln!("bench-diff: {path}: {e}");
            std::process::exit(2);
        })
    };
    let records = read_records(&trajectory);
    let baseline = baseline_path.as_deref().map(read_records);
    let report = bench_diff::diff(&records, baseline.as_deref(), &cfg);
    for note in &report.notes {
        eprintln!("bench-diff: {note}");
    }
    let doc = report.to_json().to_string();
    match &json_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
                eprintln!("bench-diff: cannot write {}: {e}", path.display());
                std::process::exit(2);
            }
        }
        None => println!("{doc}"),
    }
    eprintln!("bench-diff: status {}", report.status);
    if !report.ok() {
        std::process::exit(1);
    }
}
