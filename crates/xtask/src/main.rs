//! Workspace automation tasks, invoked as `cargo xtask <task>` (the alias
//! lives in `.cargo/config.toml`).
//!
//! Tasks:
//!
//! - `lint [--root <dir>] [--json <path>]` — run the unsafe-code lint gate
//!   (see [`lint`]) over the workspace tree. Human-readable violations go
//!   to stderr; the `semisort-lint-v1` JSON report goes to stdout (or to
//!   `--json <path>`). Exits 0 on a clean tree, 1 on violations, 2 on
//!   usage or I/O errors.

use std::path::PathBuf;

mod lint;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        _ => {
            eprintln!("usage: cargo xtask lint [--root <dir>] [--json <path>]");
            std::process::exit(2);
        }
    }
}

fn run_lint(args: &[String]) {
    let mut root: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--root" => root = Some(PathBuf::from(value("--root"))),
            "--json" => json_path = Some(PathBuf::from(value("--json"))),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    // Under `cargo xtask` the cwd is the workspace root; under a direct
    // `cargo run -p xtask` from elsewhere, fall back to the manifest's
    // grandparent (crates/xtask -> workspace root).
    let root = root.unwrap_or_else(|| {
        let cwd = std::env::current_dir().expect("cwd");
        if cwd.join("Cargo.toml").exists() && cwd.join("crates").is_dir() {
            cwd
        } else {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .parent()
                .and_then(|p| p.parent())
                .expect("workspace root")
                .to_path_buf()
        }
    });
    let report = match lint::lint_tree(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: cannot scan {}: {e}", root.display());
            std::process::exit(2);
        }
    };
    for v in &report.violations {
        eprintln!("{v}");
    }
    let doc = report.to_json().to_string();
    match &json_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
                eprintln!("lint: cannot write {}: {e}", path.display());
                std::process::exit(2);
            }
        }
        None => println!("{doc}"),
    }
    eprintln!(
        "lint: {} file(s) scanned, {} violation(s)",
        report.files_scanned,
        report.violations.len()
    );
    if !report.ok() {
        std::process::exit(1);
    }
}
