//! Workspace automation tasks, invoked as `cargo xtask <task>` (the alias
//! lives in `.cargo/config.toml`).
//!
//! Tasks:
//!
//! - `lint [--root <dir>] [--json <path>]` — run the unsafe-code lint gate
//!   (see [`lint`]) over the workspace tree. Human-readable violations go
//!   to stderr; the `semisort-lint-v1` JSON report goes to stdout (or to
//!   `--json <path>`). Exits 0 on a clean tree, 1 on violations, 2 on
//!   usage or I/O errors.
//! - `bench-diff [--trajectory <file>] [--baseline <file>]
//!   [--threshold-pct <f>] [--phase-threshold-pct <f>] [--min-wall-s <f>]
//!   [--json <path>]` — compare the last trajectory run record against
//!   the best earlier same-configuration run (see [`bench_diff`]). Exits
//!   0 when within thresholds (or when there is nothing to compare), 1 on
//!   a regression, 2 on usage or I/O errors.

use std::path::PathBuf;

mod bench_diff;
mod lint;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("bench-diff") => run_bench_diff(&args[1..]),
        _ => {
            eprintln!(
                "usage:\n  cargo xtask lint [--root <dir>] [--json <path>]\n  cargo xtask bench-diff [--trajectory <file>] [--baseline <file>] [--threshold-pct <f>] [--phase-threshold-pct <f>] [--min-wall-s <f>] [--json <path>]"
            );
            std::process::exit(2);
        }
    }
}

fn run_bench_diff(args: &[String]) {
    let mut trajectory = "BENCH_semisort.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut cfg = bench_diff::DiffConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        let parse_f = |name: &str, v: String| -> f64 {
            v.parse().unwrap_or_else(|_| {
                eprintln!("bad value for {name}: {v}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--trajectory" => trajectory = value("--trajectory"),
            "--baseline" => baseline_path = Some(value("--baseline")),
            "--threshold-pct" => {
                cfg.threshold_pct = parse_f("--threshold-pct", value("--threshold-pct"));
            }
            "--phase-threshold-pct" => {
                cfg.phase_threshold_pct =
                    parse_f("--phase-threshold-pct", value("--phase-threshold-pct"));
            }
            "--min-wall-s" => cfg.min_wall_s = parse_f("--min-wall-s", value("--min-wall-s")),
            "--json" => json_path = Some(PathBuf::from(value("--json"))),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let read_records = |path: &str| -> Vec<semisort::Json> {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench-diff: cannot read {path}: {e}");
            std::process::exit(2);
        });
        bench_diff::parse_jsonl(&text).unwrap_or_else(|e| {
            eprintln!("bench-diff: {path}: {e}");
            std::process::exit(2);
        })
    };
    let records = read_records(&trajectory);
    let baseline = baseline_path.as_deref().map(read_records);
    let report = bench_diff::diff(&records, baseline.as_deref(), &cfg);
    for note in &report.notes {
        eprintln!("bench-diff: {note}");
    }
    let doc = report.to_json().to_string();
    match &json_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
                eprintln!("bench-diff: cannot write {}: {e}", path.display());
                std::process::exit(2);
            }
        }
        None => println!("{doc}"),
    }
    eprintln!("bench-diff: status {}", report.status);
    if !report.ok() {
        std::process::exit(1);
    }
}

fn run_lint(args: &[String]) {
    let mut root: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--root" => root = Some(PathBuf::from(value("--root"))),
            "--json" => json_path = Some(PathBuf::from(value("--json"))),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    // Under `cargo xtask` the cwd is the workspace root; under a direct
    // `cargo run -p xtask` from elsewhere, fall back to the manifest's
    // grandparent (crates/xtask -> workspace root).
    let root = root.unwrap_or_else(|| {
        let cwd = std::env::current_dir().expect("cwd");
        if cwd.join("Cargo.toml").exists() && cwd.join("crates").is_dir() {
            cwd
        } else {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .parent()
                .and_then(|p| p.parent())
                .expect("workspace root")
                .to_path_buf()
        }
    });
    let report = match lint::lint_tree(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: cannot scan {}: {e}", root.display());
            std::process::exit(2);
        }
    };
    for v in &report.violations {
        eprintln!("{v}");
    }
    let doc = report.to_json().to_string();
    match &json_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
                eprintln!("lint: cannot write {}: {e}", path.display());
                std::process::exit(2);
            }
        }
        None => println!("{doc}"),
    }
    eprintln!(
        "lint: {} file(s) scanned, {} violation(s)",
        report.files_scanned,
        report.violations.len()
    );
    if !report.ok() {
        std::process::exit(1);
    }
}
