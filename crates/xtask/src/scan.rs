//! Shared source-scanning substrate for every xtask static-analysis pass.
//!
//! PR 5's lint gate and the atomics audit both work the same way: walk the
//! workspace's `.rs` files, mask away comments/strings/char literals so
//! rules only ever see real code tokens, then match textual rules against
//! the masked lines (reporting against the original lines). This module
//! owns that substrate — the file walk, the masking state machine, the
//! token helpers, and the report types every pass emits — so a new pass is
//! only its rules plus an entry in the registry in `main.rs`.
//!
//! Report model: each pass produces a [`PassReport`] (violations + scan
//! extent); one or more pass reports aggregate into an [`AuditReport`],
//! serialized as the `semisort-audit-v1` document that CI archives and
//! `semisort-cli validate-json` understands.

use std::fmt;
use std::path::{Path, PathBuf};

use semisort::Json;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Rule identifier (stable; part of the report schemas).
    pub rule: &'static str,
    /// Workspace-relative `/`-separated path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One pass's full run: every violation plus how much was scanned.
#[derive(Debug)]
pub struct PassReport {
    /// Pass identifier (stable; part of `semisort-audit-v1`).
    pub pass: &'static str,
    /// All violations, in file order.
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl PassReport {
    /// True when the pass found nothing.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// This pass as one entry of an `semisort-audit-v1` `passes` array.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("pass".into(), Json::str(self.pass)),
            ("ok".into(), Json::Bool(self.ok())),
            ("files_scanned".into(), Json::num(self.files_scanned as u64)),
            (
                "violations".into(),
                Json::Arr(self.violations.iter().map(violation_json).collect()),
            ),
        ])
    }
}

/// A violation as the JSON object shared by both report schemas.
pub fn violation_json(v: &Violation) -> Json {
    Json::Obj(vec![
        ("rule".into(), Json::str(v.rule)),
        ("file".into(), Json::str(&*v.file)),
        ("line".into(), Json::num(v.line as u64)),
        ("message".into(), Json::str(&*v.message)),
    ])
}

/// An aggregated multi-pass run — the `semisort-audit-v1` document.
#[derive(Debug)]
pub struct AuditReport {
    /// One report per executed pass, in registry order.
    pub passes: Vec<PassReport>,
}

impl AuditReport {
    /// True when every pass is clean.
    pub fn ok(&self) -> bool {
        self.passes.iter().all(PassReport::ok)
    }

    /// The `semisort-audit-v1` document (validated in CI by
    /// `semisort-cli validate-json --schema semisort-audit-v1`).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::str("semisort-audit-v1")),
            ("ok".into(), Json::Bool(self.ok())),
            (
                "passes".into(),
                Json::Arr(self.passes.iter().map(PassReport::to_json).collect()),
            ),
        ])
    }
}

/// One workspace source file, pre-masked for rule matching.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative `/`-separated path.
    pub rel: String,
    /// Original text (for comment-aware rules and reporting).
    pub text: String,
    /// [`mask_non_code`] of `text`: comments/strings/chars blanked.
    pub masked: String,
}

/// The loaded workspace: every `.rs` file under the root (skipping
/// `target/`, `.git/`, and pass fixture trees), sorted by path.
#[derive(Debug)]
pub struct Workspace {
    /// Absolute root the files were loaded from.
    pub root: PathBuf,
    /// All files, sorted by relative path.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Load every `.rs` file under `root`.
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut paths = Vec::new();
        collect_rs_files(root, root, &mut paths)?;
        paths.sort();
        let mut files = Vec::new();
        for rel in paths {
            let text = std::fs::read_to_string(root.join(&rel))?;
            let rel = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let masked = mask_non_code(&text);
            files.push(SourceFile { rel, text, masked });
        }
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
        })
    }

    /// The file at `rel`, if the workspace contains it.
    pub fn get(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
        }
    }
    Ok(())
}

/// Extract the string entries of a `const NAME: &[&str] = &[ "…", … ];`
/// declaration from raw (unmasked) source text. Used by the staleness
/// checks to read an allowlist out of the *scanned tree's* own source, so
/// fixture trees can carry deliberately-stale lists without recompiling
/// the auditor. Returns `None` when the declaration is absent.
pub fn parse_const_string_list(text: &str, name: &str) -> Option<Vec<String>> {
    let decl = text.find(&format!("{name}:"))?;
    // Skip the `&[&str]` type annotation: the list body is the `[` after
    // the `=`.
    let eq = decl + text[decl..].find('=')?;
    let open = eq + text[eq..].find('[')?;
    let close = open + text[open..].find(']')?;
    let body = &text[open + 1..close];
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(q) = rest.find('"') {
        let after = &rest[q + 1..];
        let end = after.find('"')?;
        out.push(after[..end].to_string());
        rest = &after[end + 1..];
    }
    Some(out)
}

// ---- token helpers -----------------------------------------------------

/// Is `c` part of a Rust identifier?
pub fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Does `tok` appear at char index `i` of `chars` as a standalone token?
pub fn is_token_at(chars: &[char], i: usize, tok: &str) -> bool {
    let tchars: Vec<char> = tok.chars().collect();
    if i + tchars.len() > chars.len() || chars[i..i + tchars.len()] != tchars[..] {
        return false;
    }
    let before_ok = i == 0 || !is_ident_char(chars[i - 1]);
    let after_ok = i + tchars.len() == chars.len() || !is_ident_char(chars[i + tchars.len()]);
    before_ok && after_ok
}

/// Byte offsets (per line) where `tok` appears as a standalone token.
pub fn token_positions(line: &str, tok: &str) -> Vec<usize> {
    let chars: Vec<char> = line.chars().collect();
    let mut out = Vec::new();
    let mut byte = 0usize;
    for (i, c) in chars.iter().enumerate() {
        if *c == tok.chars().next().unwrap() && is_token_at(&chars, i, tok) {
            out.push(byte);
        }
        byte += c.len_utf8();
    }
    out
}

/// Does the line contain `tok` as a standalone token (masked input)?
pub fn has_token(line: &str, tok: &str) -> bool {
    !token_positions(line, tok).is_empty()
}

// ---- source masking ----------------------------------------------------

/// Replace comments, string literals, and char literals with spaces
/// (newlines preserved) so rules only ever see real code tokens.
pub fn mask_non_code(text: &str) -> String {
    #[derive(PartialEq)]
    enum St {
        Code,
        Line,
        Block(usize),  // nesting depth (Rust block comments nest)
        Str,           // inside "..."
        RawStr(usize), // inside r#"..."# with N hashes
    }
    let chars: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut st = St::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match st {
            St::Code => match c {
                '/' if next == Some('/') => {
                    st = St::Line;
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    st = St::Block(1);
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                '"' => {
                    st = St::Str;
                    out.push(' ');
                }
                'r' if matches!(next, Some('"') | Some('#'))
                    && (i == 0 || !is_ident_char(chars[i - 1])) =>
                {
                    // Raw string r"..." / r#"..."#; count the hashes.
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        for _ in i..=j {
                            out.push(' ');
                        }
                        st = St::RawStr(hashes);
                        i = j + 1;
                        continue;
                    }
                    out.push(c);
                }
                '\'' => {
                    // Char literal vs lifetime: a literal closes with ' a
                    // character (or escape) later; a lifetime never does.
                    let close = match next {
                        Some('\\') => {
                            // Escape: skip the escaped character, then find
                            // the closing quote (handles '\'' and '\u{..}').
                            let mut j = i + 3;
                            while j < chars.len() && chars[j] != '\'' {
                                j += 1;
                            }
                            Some(j)
                        }
                        Some(_) if chars.get(i + 2) == Some(&'\'') => Some(i + 2),
                        _ => None,
                    };
                    if let Some(end) = close {
                        for _ in i..=end.min(chars.len() - 1) {
                            out.push(' ');
                        }
                        i = end + 1;
                        continue;
                    }
                    out.push(c); // lifetime tick: harmless to keep
                }
                _ => out.push(c),
            },
            St::Line => {
                if c == '\n' {
                    st = St::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            St::Block(depth) => {
                if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                if c == '*' && next == Some('/') {
                    out.push(' ');
                    i += 2;
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::Block(depth - 1)
                    };
                    continue;
                }
                if c == '/' && next == Some('*') {
                    out.push(' ');
                    i += 2;
                    st = St::Block(depth + 1);
                    continue;
                }
            }
            St::Str => {
                if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                if c == '\\' {
                    if next == Some('\n') {
                        out.push('\n');
                    } else {
                        out.push(' ');
                    }
                    i += 2;
                    continue;
                }
                if c == '"' {
                    st = St::Code;
                }
            }
            St::RawStr(hashes) => {
                if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                if c == '"' && chars[i + 1..].iter().take(hashes).all(|&h| h == '#') {
                    for _ in 0..hashes {
                        out.push(' ');
                    }
                    i += 1 + hashes;
                    st = St::Code;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_blanked() {
        let m = mask_non_code("let x = 1; // unsafe { }\nlet y = 2;\n");
        assert!(!m.contains("unsafe"));
        assert!(m.contains("let y = 2;"));
    }

    #[test]
    fn nested_block_comments_are_blanked_to_the_outer_close() {
        // Rust block comments nest: the first `*/` closes only the inner
        // comment, so `unsafe` after it is still commentary.
        let m = mask_non_code("/* outer /* inner */ unsafe { } */ let x = 1;\n");
        assert!(!m.contains("unsafe"), "masked: {m:?}");
        assert!(m.contains("let x = 1;"));
    }

    #[test]
    fn line_comment_marker_inside_string_does_not_start_a_comment() {
        // The `//` inside the literal must not eat the rest of the line:
        // the call after the string is real code.
        let m = mask_non_code("let u = \"https://example.com\"; danger();\n");
        assert!(!m.contains("example.com"));
        assert!(m.contains("danger();"));
    }

    #[test]
    fn raw_strings_mask_embedded_quotes_and_hashes() {
        let m = mask_non_code("let s = r#\"say \"unsafe\" // not a comment\"#; f();\n");
        assert!(!m.contains("unsafe"));
        assert!(!m.contains("not a comment"));
        assert!(m.contains("f();"));
    }

    #[test]
    fn raw_string_with_two_hashes_needs_both_to_close() {
        let m = mask_non_code("let s = r##\"one \"# still inside\"##; g();\n");
        assert!(!m.contains("still inside"));
        assert!(m.contains("g();"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let m = mask_non_code("let b: &'a u8 = &x; let q = '\"'; let t = '\\''; h(\"k\");\n");
        // The quote char literal must not open a string state that would
        // swallow the rest of the line.
        assert!(m.contains("h("));
        assert!(m.contains("&'a u8"), "lifetimes survive masking: {m:?}");
    }

    #[test]
    fn escaped_quote_inside_string_does_not_close_it() {
        let m = mask_non_code("let s = \"a\\\"b unsafe\"; i();\n");
        assert!(!m.contains("unsafe"));
        assert!(m.contains("i();"));
    }

    #[test]
    fn newlines_are_preserved_for_line_reporting() {
        let src = "a\n/* x\ny */\nb\n";
        assert_eq!(mask_non_code(src).lines().count(), src.lines().count());
    }

    #[test]
    fn token_positions_respect_identifier_boundaries() {
        assert_eq!(token_positions("unsafe unsafe_code", "unsafe"), vec![0]);
        assert!(token_positions("deny(unsafe_code)", "unsafe").is_empty());
    }

    #[test]
    fn const_string_list_parses_entries() {
        let src = "pub const LIST: &[&str] = &[\n    \"a/b.rs\",\n    \"c/d.rs\",\n];\n";
        assert_eq!(
            parse_const_string_list(src, "LIST"),
            Some(vec!["a/b.rs".into(), "c/d.rs".into()])
        );
        assert_eq!(parse_const_string_list(src, "OTHER"), None);
    }

    #[test]
    fn audit_report_json_shape() {
        let report = AuditReport {
            passes: vec![PassReport {
                pass: "lint",
                violations: vec![Violation {
                    rule: "r",
                    file: "f.rs".into(),
                    line: 2,
                    message: "m".into(),
                }],
                files_scanned: 3,
            }],
        };
        let doc = report.to_json().to_string();
        let back = Json::parse(&doc).expect("audit JSON must round-trip");
        assert_eq!(
            back.get("schema").and_then(Json::as_str),
            Some("semisort-audit-v1")
        );
        assert_eq!(back.get("ok").and_then(Json::as_bool), Some(false));
        let passes = back.get("passes").and_then(Json::as_arr).unwrap();
        assert_eq!(passes.len(), 1);
        assert_eq!(passes[0].get("pass").and_then(Json::as_str), Some("lint"));
        assert_eq!(
            passes[0].get("files_scanned").and_then(Json::as_u64),
            Some(3)
        );
    }
}
