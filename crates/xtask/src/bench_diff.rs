//! `cargo xtask bench-diff` — the benchmark regression gate.
//!
//! Reads the trajectory file (`BENCH_semisort.json`, JSONL of
//! `semisort-bench-v1` run records), takes the **last** usable record as
//! the candidate, and compares it against the best earlier record with
//! the same configuration key `(bin, n, threads, scatter, telemetry)` —
//! or against a separate `--baseline` file when one is given. The gate
//! fails (exit 1) when candidate wall time regresses by more than
//! `--threshold-pct` percent, or any phase regresses by more than
//! `--phase-threshold-pct` percent.
//!
//! Guard rails that keep the gate honest rather than noisy:
//!
//! - degraded or fault-injected runs never participate (neither as
//!   candidate nor as baseline) — they measure the fallback path;
//! - the baseline is the *fastest* earlier same-key run (`min` wall), so
//!   one slow CI machine in history cannot mask a real regression;
//! - runs faster than `--min-wall-s` are compared but never failed —
//!   sub-noise walls regress by 50% when the allocator sneezes;
//! - phases shorter than [`PHASE_FLOOR_S`] in *both* runs are skipped —
//!   a 0.2 ms `construct_buckets` doubling is not a finding;
//! - no same-key history is a clean exit 0 with `status: "no-baseline"`,
//!   so the gate can run in CI from the first commit.
//!
//! The machine-readable verdict (`semisort-bench-diff-v1`) goes to
//! stdout or `--json <path>`.

use semisort::Json;

/// Phase members of a `semisort-stats-v2` object compared by the gate.
pub const PHASES: [&str; 5] = [
    "sample_sort_s",
    "construct_buckets_s",
    "scatter_s",
    "local_sort_s",
    "pack_s",
];

/// Phases shorter than this (in both runs) are excluded from the phase
/// gate; relative thresholds are meaningless below timer noise.
pub const PHASE_FLOOR_S: f64 = 0.005;

/// Gate thresholds.
pub struct DiffConfig {
    /// Wall-time regression (percent) that fails the gate.
    pub threshold_pct: f64,
    /// Per-phase regression (percent) that fails the gate.
    pub phase_threshold_pct: f64,
    /// Walls below this (seconds) are reported but never failed.
    pub min_wall_s: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            threshold_pct: 20.0,
            phase_threshold_pct: 35.0,
            min_wall_s: 0.05,
        }
    }
}

/// The configuration identity of a run record: two records are comparable
/// only when every member matches.
#[derive(Clone, Debug, PartialEq)]
pub struct RunKey {
    bin: String,
    n: u64,
    threads: u64,
    scatter: String,
    telemetry: String,
}

impl std::fmt::Display for RunKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} n={} threads={} scatter={} telemetry={}",
            self.bin, self.n, self.threads, self.scatter, self.telemetry
        )
    }
}

fn key_of(rec: &Json) -> Option<RunKey> {
    let stats = rec.get("stats")?;
    let cfg = stats.get("config")?;
    Some(RunKey {
        bin: rec.get("bin")?.as_str()?.to_string(),
        n: stats.get("n")?.as_u64()?,
        threads: rec.get("threads")?.as_u64()?,
        scatter: cfg.get("scatter_strategy")?.as_str()?.to_string(),
        telemetry: cfg.get("telemetry")?.as_str()?.to_string(),
    })
}

/// A record qualifies as candidate/baseline material only when it parsed
/// a key, has a wall time, and measured the real algorithm (not a
/// degraded fallback or a fault-injection run).
fn usable(rec: &Json) -> bool {
    let Some(outcome) = rec.get("stats").and_then(|s| s.get("outcome")) else {
        return false;
    };
    key_of(rec).is_some()
        && rec.get("wall_s").and_then(Json::as_f64).is_some()
        && outcome.get("degraded").and_then(Json::as_bool) == Some(false)
        && outcome.get("faults_injected").and_then(Json::as_u64) == Some(0)
}

fn wall_of(rec: &Json) -> f64 {
    rec.get("wall_s").and_then(Json::as_f64).unwrap_or(f64::NAN)
}

fn phase_of(rec: &Json, phase: &str) -> Option<f64> {
    rec.get("stats")?.get("phases")?.get(phase)?.as_f64()
}

fn pct_delta(base: f64, cand: f64) -> f64 {
    if base <= 0.0 {
        return 0.0;
    }
    (cand - base) / base * 100.0
}

/// One phase's comparison row.
pub struct PhaseDelta {
    /// Stats member name (e.g. `scatter_s`).
    pub phase: &'static str,
    /// Baseline seconds.
    pub baseline_s: f64,
    /// Candidate seconds.
    pub candidate_s: f64,
    /// Relative change in percent (positive = slower).
    pub delta_pct: f64,
    /// Whether this row alone fails the gate.
    pub regressed: bool,
}

/// The gate's verdict over one trajectory.
pub struct DiffReport {
    /// `ok`, `regression`, `no-baseline`, or `no-records`.
    pub status: &'static str,
    /// Human-readable one-liners (what was compared, what was skipped).
    pub notes: Vec<String>,
    /// The comparison key, when a candidate was found.
    pub key: Option<RunKey>,
    /// Baseline wall seconds (when a baseline was found).
    pub baseline_wall_s: Option<f64>,
    /// Candidate wall seconds (when a candidate was found).
    pub candidate_wall_s: Option<f64>,
    /// Wall delta percent (when both sides exist).
    pub wall_delta_pct: Option<f64>,
    /// Per-phase rows (when both sides exist).
    pub phases: Vec<PhaseDelta>,
}

impl DiffReport {
    /// False exactly when the gate should exit 1.
    pub fn ok(&self) -> bool {
        self.status != "regression"
    }

    /// The `semisort-bench-diff-v1` report object.
    pub fn to_json(&self) -> Json {
        let opt_num = |v: Option<f64>| match v {
            Some(x) => Json::Num(x),
            None => Json::Null,
        };
        Json::Obj(vec![
            ("schema".into(), Json::str("semisort-bench-diff-v1")),
            ("status".into(), Json::str(self.status)),
            ("ok".into(), Json::Bool(self.ok())),
            (
                "key".into(),
                match &self.key {
                    Some(k) => Json::Str(k.to_string()),
                    None => Json::Null,
                },
            ),
            ("baseline_wall_s".into(), opt_num(self.baseline_wall_s)),
            ("candidate_wall_s".into(), opt_num(self.candidate_wall_s)),
            ("wall_delta_pct".into(), opt_num(self.wall_delta_pct)),
            (
                "phases".into(),
                Json::Arr(
                    self.phases
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("phase".into(), Json::str(p.phase)),
                                ("baseline_s".into(), Json::Num(p.baseline_s)),
                                ("candidate_s".into(), Json::Num(p.candidate_s)),
                                ("delta_pct".into(), Json::Num(p.delta_pct)),
                                ("regressed".into(), Json::Bool(p.regressed)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "notes".into(),
                Json::Arr(self.notes.iter().map(|n| Json::Str(n.clone())).collect()),
            ),
        ])
    }
}

fn no_candidate(status: &'static str, note: String) -> DiffReport {
    DiffReport {
        status,
        notes: vec![note],
        key: None,
        baseline_wall_s: None,
        candidate_wall_s: None,
        wall_delta_pct: None,
        phases: Vec::new(),
    }
}

/// Parse a JSONL trajectory into records, skipping blank lines. Malformed
/// lines are an error: a corrupt trajectory should fail loudly, not
/// silently shrink the baseline pool.
pub fn parse_jsonl(text: &str) -> Result<Vec<Json>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(Json::parse(line).map_err(|e| format!("line {}: malformed JSON: {e}", i + 1))?);
    }
    Ok(out)
}

/// Run the gate: candidate = last usable record of `records`; baseline
/// pool = earlier usable same-key records of `records`, or the usable
/// same-key records of `baseline` when one is supplied.
pub fn diff(records: &[Json], baseline: Option<&[Json]>, cfg: &DiffConfig) -> DiffReport {
    let Some(candidate) = records.iter().rev().find(|r| usable(r)) else {
        return no_candidate(
            "no-records",
            "no usable run record found (degraded and fault-injection runs are excluded)".into(),
        );
    };
    let key = key_of(candidate).expect("usable implies key");
    let candidate_wall = wall_of(candidate);

    // Everything before the candidate (by position) with the same key —
    // or the whole separate baseline file.
    let candidate_pos = records
        .iter()
        .position(|r| std::ptr::eq(r, candidate))
        .expect("candidate came from records");
    let pool: Vec<&Json> = match baseline {
        Some(base) => base
            .iter()
            .filter(|r| usable(r) && key_of(r).as_ref() == Some(&key))
            .collect(),
        None => records[..candidate_pos]
            .iter()
            .filter(|r| usable(r) && key_of(r).as_ref() == Some(&key))
            .collect(),
    };
    let Some(best) = pool
        .iter()
        .copied()
        .min_by(|a, b| wall_of(a).total_cmp(&wall_of(b)))
    else {
        return DiffReport {
            status: "no-baseline",
            notes: vec![format!(
                "no earlier run matches key [{key}]; nothing to gate"
            )],
            key: Some(key),
            baseline_wall_s: None,
            candidate_wall_s: Some(candidate_wall),
            wall_delta_pct: None,
            phases: Vec::new(),
        };
    };
    let baseline_wall = wall_of(best);
    let wall_delta = pct_delta(baseline_wall, candidate_wall);
    let mut notes = vec![format!(
        "compared against best of {} earlier run(s) with key [{key}]",
        pool.len()
    )];

    let below_noise = baseline_wall < cfg.min_wall_s && candidate_wall < cfg.min_wall_s;
    if below_noise {
        notes.push(format!(
            "both walls below --min-wall-s {}; thresholds not enforced",
            cfg.min_wall_s
        ));
    }

    let mut phases = Vec::new();
    for phase in PHASES {
        let (Some(b), Some(c)) = (phase_of(best, phase), phase_of(candidate, phase)) else {
            continue;
        };
        if b < PHASE_FLOOR_S && c < PHASE_FLOOR_S {
            continue;
        }
        let delta = pct_delta(b, c);
        phases.push(PhaseDelta {
            phase,
            baseline_s: b,
            candidate_s: c,
            delta_pct: delta,
            regressed: !below_noise && delta > cfg.phase_threshold_pct,
        });
    }

    let wall_regressed = !below_noise && wall_delta > cfg.threshold_pct;
    let regressed = wall_regressed || phases.iter().any(|p| p.regressed);
    if wall_regressed {
        notes.push(format!(
            "wall {baseline_wall:.4}s -> {candidate_wall:.4}s ({wall_delta:+.1}%) exceeds {}%",
            cfg.threshold_pct
        ));
    }
    for p in phases.iter().filter(|p| p.regressed) {
        notes.push(format!(
            "phase {} {:.4}s -> {:.4}s ({:+.1}%) exceeds {}%",
            p.phase, p.baseline_s, p.candidate_s, p.delta_pct, cfg.phase_threshold_pct
        ));
    }

    DiffReport {
        status: if regressed { "regression" } else { "ok" },
        notes,
        key: Some(key),
        baseline_wall_s: Some(baseline_wall),
        candidate_wall_s: Some(candidate_wall),
        wall_delta_pct: Some(wall_delta),
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a minimal usable run record (the nested `semisort-stats-v2`
    /// sections the gate reads: config, phases, outcome).
    fn rec(bin: &str, n: u64, threads: u64, wall: f64, scatter_s: f64) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::str("semisort-bench-v1")),
            ("bin".into(), Json::str(bin)),
            ("threads".into(), Json::num(threads)),
            ("wall_s".into(), Json::Num(wall)),
            (
                "stats".into(),
                Json::Obj(vec![
                    ("n".into(), Json::num(n)),
                    (
                        "config".into(),
                        Json::Obj(vec![
                            ("scatter_strategy".into(), Json::str("random-cas")),
                            ("telemetry".into(), Json::str("off")),
                        ]),
                    ),
                    (
                        "phases".into(),
                        Json::Obj(vec![
                            ("scatter_s".into(), Json::Num(scatter_s)),
                            ("pack_s".into(), Json::Num(0.0001)),
                        ]),
                    ),
                    (
                        "outcome".into(),
                        Json::Obj(vec![
                            ("degraded".into(), Json::Bool(false)),
                            ("faults_injected".into(), Json::num(0)),
                        ]),
                    ),
                ]),
            ),
        ])
    }

    fn degraded(mut r: Json) -> Json {
        let Json::Obj(members) = &mut r else { panic!() };
        let Some((_, Json::Obj(stats))) = members.iter_mut().find(|(k, _)| k == "stats") else {
            panic!()
        };
        let Some((_, Json::Obj(outcome))) = stats.iter_mut().find(|(k, _)| k == "outcome") else {
            panic!()
        };
        outcome.retain(|(k, _)| k != "degraded");
        outcome.push(("degraded".into(), Json::Bool(true)));
        r
    }

    #[test]
    fn identical_runs_pass() {
        let records = vec![rec("b", 100, 2, 1.0, 0.5), rec("b", 100, 2, 1.0, 0.5)];
        let report = diff(&records, None, &DiffConfig::default());
        assert_eq!(report.status, "ok");
        assert!(report.ok());
        assert_eq!(report.wall_delta_pct, Some(0.0));
    }

    #[test]
    fn wall_regression_fails() {
        let records = vec![rec("b", 100, 2, 1.0, 0.5), rec("b", 100, 2, 1.5, 0.5)];
        let report = diff(&records, None, &DiffConfig::default());
        assert_eq!(report.status, "regression");
        assert!(!report.ok());
        assert!(report.wall_delta_pct.unwrap() > 49.0);
    }

    #[test]
    fn phase_regression_fails_even_with_flat_wall() {
        let records = vec![rec("b", 100, 2, 1.0, 0.2), rec("b", 100, 2, 1.0, 0.4)];
        let report = diff(&records, None, &DiffConfig::default());
        assert_eq!(report.status, "regression");
        let scatter = report
            .phases
            .iter()
            .find(|p| p.phase == "scatter_s")
            .unwrap();
        assert!(scatter.regressed);
        // The sub-floor pack phase must not appear at all.
        assert!(report.phases.iter().all(|p| p.phase != "pack_s"));
    }

    #[test]
    fn improvement_passes() {
        let records = vec![rec("b", 100, 2, 1.5, 0.5), rec("b", 100, 2, 1.0, 0.2)];
        let report = diff(&records, None, &DiffConfig::default());
        assert_eq!(report.status, "ok");
        assert!(report.wall_delta_pct.unwrap() < 0.0);
    }

    #[test]
    fn different_key_is_no_baseline() {
        // Same bin, different n and threads: not comparable.
        let records = vec![rec("b", 100, 2, 1.0, 0.5), rec("b", 200, 4, 9.0, 4.0)];
        let report = diff(&records, None, &DiffConfig::default());
        assert_eq!(report.status, "no-baseline");
        assert!(report.ok(), "no baseline must not fail CI");
    }

    #[test]
    fn baseline_is_best_of_history_not_latest() {
        // History: fast, then slow. A candidate matching the slow run
        // must still fail against the fast one.
        let records = vec![
            rec("b", 100, 2, 1.0, 0.5),
            rec("b", 100, 2, 1.6, 0.5),
            rec("b", 100, 2, 1.55, 0.5),
        ];
        let report = diff(&records, None, &DiffConfig::default());
        assert_eq!(report.status, "regression");
        assert_eq!(report.baseline_wall_s, Some(1.0));
    }

    #[test]
    fn degraded_and_fault_runs_are_invisible() {
        // A degraded candidate is skipped; the last usable record wins.
        let records = vec![
            rec("b", 100, 2, 1.0, 0.5),
            rec("b", 100, 2, 1.05, 0.5),
            degraded(rec("b", 100, 2, 9.0, 4.0)),
        ];
        let report = diff(&records, None, &DiffConfig::default());
        assert_eq!(report.status, "ok");
        assert_eq!(report.candidate_wall_s, Some(1.05));
    }

    #[test]
    fn sub_noise_walls_never_fail() {
        let records = vec![
            rec("b", 100, 2, 0.010, 0.001),
            rec("b", 100, 2, 0.030, 0.001),
        ];
        let report = diff(&records, None, &DiffConfig::default());
        assert_eq!(report.status, "ok", "200% on a 10ms wall is noise");
    }

    #[test]
    fn explicit_baseline_file_overrides_history() {
        // In-file history would pass; the stricter external baseline fails.
        let records = vec![rec("b", 100, 2, 1.5, 0.5), rec("b", 100, 2, 1.45, 0.5)];
        let baseline = vec![rec("b", 100, 2, 1.0, 0.5)];
        let report = diff(&records, Some(&baseline), &DiffConfig::default());
        assert_eq!(report.status, "regression");
        assert_eq!(report.baseline_wall_s, Some(1.0));
    }

    #[test]
    fn empty_trajectory_is_no_records() {
        let report = diff(&[], None, &DiffConfig::default());
        assert_eq!(report.status, "no-records");
        assert!(report.ok());
    }

    #[test]
    fn report_json_round_trips() {
        let records = vec![rec("b", 100, 2, 1.0, 0.5), rec("b", 100, 2, 1.5, 0.5)];
        let report = diff(&records, None, &DiffConfig::default());
        let doc = report.to_json();
        let back = Json::parse(&doc.to_string()).expect("parse back");
        assert_eq!(
            back.get("schema").and_then(Json::as_str),
            Some("semisort-bench-diff-v1")
        );
        assert_eq!(back.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            back.get("status").and_then(Json::as_str),
            Some("regression")
        );
    }

    #[test]
    fn parse_jsonl_rejects_corrupt_lines() {
        assert!(parse_jsonl("{\"a\": 1}\nnot json\n").is_err());
        assert_eq!(parse_jsonl("{\"a\": 1}\n\n{\"b\": 2}\n").unwrap().len(), 2);
    }
}
