//! The atomics/ordering contract audit (`cargo xtask audit-atomics`).
//!
//! The paper's correctness argument rests on a handful of lock-free claim
//! protocols (CAS + linear probing, `fetch_add` slab/cursor reservation,
//! the Chase–Lev deque, the cancellation latch). Every one of them is a
//! chain of `Ordering::*` choices whose justification used to live in
//! folklore comments. This pass makes the contract machine-checked:
//!
//! - **`atomics-outside-allowlist`** — `Ordering::*` call sites may appear
//!   only in the audited module set ([`ATOMICS_ALLOWLIST`]); growing the
//!   set is an explicit, reviewed edit of this file. The loom shim
//!   (`crates/loom/`) and test files are exempt: models restate production
//!   protocols whose real sites are already under contract.
//! - **`missing-ordering-contract`** — every atomic load/store/RMW/fence
//!   site must carry an `// ORDERING:` comment (the `// SAFETY:` sibling):
//!   on the statement itself, or directly above it with only
//!   comment/attribute lines between. One contract covers one statement,
//!   however many orderings it names (`compare_exchange` has two).
//! - **`undocumented-relaxed`** — a contract for a site that uses
//!   `Ordering::Relaxed` must name the edge that actually publishes the
//!   data, as `publishes-via: <edge>` (e.g. `publishes-via: fork-join
//!   barrier`, `publishes-via: none (telemetry counter ...)`). "Relaxed is
//!   fine because something else synchronizes" is exactly the claim that
//!   must be written down.
//! - **`seqcst-outside-allowlist`** — `Ordering::SeqCst` only in
//!   [`SEQCST_ALLOWLIST`] (the Chase–Lev deque and the sleep/injector
//!   Dekker handshake, where the fence pairs genuinely need it);
//!   everywhere else SeqCst is a smell that hides a missing argument.
//! - **`weak-cas-without-retry`** — `compare_exchange_weak` may fail
//!   spuriously, so a site outside a `loop`/`while`/`for` retry scope is
//!   a correctness bug on LL/SC targets.
//! - **`invalid-manifest` / `stale-manifest-file` / `stale-manifest-test`**
//!   — the committed manifest (`crates/xtask/atomics.toml`) must parse,
//!   its protocol files must exist *and still contain atomic sites*, and
//!   each `loom_test` anchor must name a test function that exists in a
//!   `race_model.rs` file.
//! - **`unmodeled-protocol`** — any non-exempt file containing a
//!   compare-exchange must be claimed by some manifest protocol: a claim
//!   protocol cannot gain CAS sites without a loom model on record.
//! - **`stale-atomics-allowlist-entry`** — like the unsafe gate's
//!   staleness rule: allowlist entries (read from the scanned tree's own
//!   copy of this file) must name files that still exist.

use crate::manifest;
use crate::scan::{self, has_token, PassReport, SourceFile, Violation, Workspace};

/// Files (workspace-relative, `/`-separated) allowed to contain atomic
/// call sites. Everything here carries `// ORDERING:` contracts checked
/// by the `missing-ordering-contract` rule.
pub const ATOMICS_ALLOWLIST: &[&str] = &[
    "crates/baselines/src/scatter_pack.rs",
    "crates/bench/src/alloc_track.rs",
    "crates/parlay/src/hash_table.rs",
    "crates/parlay/src/rr_sort.rs",
    "crates/rayon/src/deque.rs",
    "crates/rayon/src/iter.rs",
    "crates/rayon/src/job.rs",
    "crates/rayon/src/registry.rs",
    "crates/rayon/src/trace.rs",
    "crates/semisort/src/blocked_scatter.rs",
    "crates/semisort/src/cancel.rs",
    "crates/semisort/src/inplace_scatter.rs",
    "crates/semisort/src/obs.rs",
    "crates/semisort/src/pool.rs",
    "crates/semisort/src/scatter.rs",
    "crates/semisortd/src/bin/semisortd-load.rs",
    "crates/semisortd/src/server.rs",
];

/// Files allowed to use `Ordering::SeqCst`: the Chase–Lev deque's fence
/// pairs and the registry's sleep/injector Dekker handshake, where the
/// store/load pairs on different locations need a total order.
pub const SEQCST_ALLOWLIST: &[&str] =
    &["crates/rayon/src/deque.rs", "crates/rayon/src/registry.rs"];

/// The committed protocol→model manifest, relative to the workspace root.
pub const MANIFEST_PATH: &str = "crates/xtask/atomics.toml";

/// The five ordering variants an atomic site can name.
const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Is `rel` exempt from the contract rules? The loom shim implements the
/// model atomics themselves, and test files (including the loom models)
/// restate protocols whose production sites are already under contract.
fn is_exempt(rel: &str) -> bool {
    rel.starts_with("crates/loom/") || rel.starts_with("tests/") || rel.contains("/tests/")
}

/// The audit pass over a loaded workspace — the entry the pass registry
/// in `main.rs` dispatches to.
pub fn run(ws: &Workspace) -> PassReport {
    let mut violations = Vec::new();
    let mut cas_files: Vec<(&str, usize)> = Vec::new(); // (rel, first CAS line)
    let mut site_counts: Vec<(&str, usize)> = Vec::new();
    for f in &ws.files {
        let sites = find_sites(&f.masked);
        site_counts.push((&f.rel, sites.len()));
        if let Some(line) = first_cas_line(&f.masked) {
            cas_files.push((&f.rel, line));
        }
        if is_exempt(&f.rel) {
            continue;
        }
        if !sites.is_empty() && !ATOMICS_ALLOWLIST.contains(&f.rel.as_str()) {
            violations.push(Violation {
                rule: "atomics-outside-allowlist",
                file: f.rel.clone(),
                line: sites[0].start_line + 1,
                message: "atomic call site outside the audited allowlist; move the \
                          code into an allowlisted module or extend ATOMICS_ALLOWLIST \
                          in crates/xtask/src/audit_atomics.rs (with review)"
                    .into(),
            });
        }
        check_contracts(f, &sites, &mut violations);
        check_weak_cas(f, &mut violations);
    }
    check_manifest(ws, &site_counts, &cas_files, &mut violations);
    check_allowlist_staleness(ws, &mut violations);
    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    PassReport {
        pass: "audit-atomics",
        violations,
        files_scanned: ws.files.len(),
    }
}

// ---- site inventory ----------------------------------------------------

/// One audited atomic site: a statement using one or more `Ordering::*`
/// values (a `compare_exchange` names two; a multi-line call is one site).
#[derive(Debug, PartialEq)]
pub struct Site {
    /// 0-based line the statement starts on (where the contract binds).
    pub start_line: usize,
    /// 0-based line of the statement's last `Ordering::` occurrence.
    pub last_line: usize,
    /// Which ordering variants the site names.
    pub orderings: Vec<&'static str>,
}

impl Site {
    fn uses(&self, variant: &str) -> bool {
        self.orderings.contains(&variant)
    }
}

/// Inventory the atomic sites of one masked source text, grouping
/// `Ordering::` occurrences into statements: a line whose bracket depth is
/// still open, or that starts as a continuation (`.`, `)`, `]`, `?`,
/// `&&`, `||`), belongs to the statement above it.
pub fn find_sites(masked: &str) -> Vec<Site> {
    let lines: Vec<&str> = masked.lines().collect();
    let depths = paren_depth_at_line_start(&lines);
    let mut sites: Vec<Site> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let mut found: Vec<&'static str> = Vec::new();
        for variant in ORDERINGS {
            let needle = format!("Ordering::{variant}");
            let chars: Vec<char> = line.chars().collect();
            let mut start = 0usize;
            while let Some(pos) = line[start..].find(&needle) {
                let abs = start + pos;
                // Token boundary after the variant (so `Relaxed` does not
                // match `Relaxed2`); char index == byte index is fine here
                // because the needle is pure ASCII and we re-derive the
                // char index from the byte prefix.
                let char_idx = line[..abs].chars().count();
                let end = char_idx + needle.chars().count();
                let after_ok = end >= chars.len() || !scan::is_ident_char(chars[end]);
                if after_ok {
                    found.push(variant);
                }
                start = abs + needle.len();
            }
        }
        if found.is_empty() {
            continue;
        }
        let start_line = statement_start(&lines, &depths, idx);
        match sites.last_mut() {
            Some(site) if site.start_line == start_line => {
                site.last_line = idx;
                for v in found {
                    if !site.orderings.contains(&v) {
                        site.orderings.push(v);
                    }
                }
            }
            _ => sites.push(Site {
                start_line,
                last_line: idx,
                orderings: found,
            }),
        }
    }
    sites
}

/// Bracket (`(`/`[`) depth at the start of each line of masked code,
/// scoped to the innermost brace block: entering `{` opens a fresh
/// context, so the statements of a closure body passed as a call argument
/// (`.for_each(|..| { ... })`) are NOT continuations of the call line,
/// even though the call's paren is still open around them.
fn paren_depth_at_line_start(lines: &[&str]) -> Vec<usize> {
    let mut depths = Vec::with_capacity(lines.len());
    let mut stack: Vec<usize> = vec![0];
    for line in lines {
        depths.push(*stack.last().unwrap());
        for c in line.chars() {
            match c {
                '(' | '[' => *stack.last_mut().unwrap() += 1,
                ')' | ']' => {
                    let top = stack.last_mut().unwrap();
                    *top = top.saturating_sub(1);
                }
                '{' => stack.push(0),
                '}' if stack.len() > 1 => {
                    stack.pop();
                }
                _ => {}
            }
        }
    }
    depths
}

/// Brace (`{`) depth at the start of each line of masked code.
fn brace_depth_at_line_start(lines: &[&str]) -> Vec<usize> {
    let mut depths = Vec::with_capacity(lines.len());
    let mut depth = 0usize;
    for line in lines {
        depths.push(depth);
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
    }
    depths
}

/// Walk up from `idx` to the first line of the enclosing statement.
fn statement_start(lines: &[&str], depths: &[usize], idx: usize) -> usize {
    const CONTINUATIONS: &[&str] = &[".", ")", "]", "?", "&&", "||"];
    let mut s = idx;
    while s > 0 {
        let trimmed = lines[s].trim_start();
        let continues = depths[s] > 0 || CONTINUATIONS.iter().any(|p| trimmed.starts_with(p));
        if !continues {
            break;
        }
        s -= 1;
    }
    s
}

/// 1-based line of the first compare-exchange in masked text, if any.
fn first_cas_line(masked: &str) -> Option<usize> {
    for (idx, line) in masked.lines().enumerate() {
        if has_token(line, "compare_exchange") || has_token(line, "compare_exchange_weak") {
            return Some(idx + 1);
        }
    }
    None
}

// ---- contract grammar --------------------------------------------------

/// Find the `// ORDERING:` contract covering the statement spanning
/// 0-based `[start, last]` of `original`. Accepts a trailing comment on
/// any statement line, or a comment block directly above the statement
/// (only comment/attribute lines between); a block contract may continue
/// over following `//` lines (`publishes-via:` can sit on a continuation
/// line). Returns the contract text after the `ORDERING:` marker.
pub fn find_contract(original: &[&str], start: usize, last: usize) -> Option<String> {
    // Trailing form: `...store(x, Ordering::Release); // ORDERING: ...`
    for line in &original[start..=last.min(original.len() - 1)] {
        if let Some(pos) = line.find("// ORDERING:") {
            return Some(line[pos + "// ORDERING:".len()..].trim().to_string());
        }
    }
    // Block form above the statement.
    let mut block: Vec<&str> = Vec::new(); // comment lines, nearest first
    let mut i = start;
    while i > 0 {
        i -= 1;
        let t = original[i].trim_start();
        if t.starts_with("//") {
            block.push(t);
        } else if !t.starts_with("#[") && !t.starts_with("#!") {
            break;
        }
    }
    // `block` is ordered nearest→farthest; the contract is the nearest
    // line carrying the marker plus every comment line below it.
    let marker = block.iter().position(|l| l.contains("ORDERING:"))?;
    let mut parts: Vec<String> = Vec::new();
    let after = &block[marker][block[marker].find("ORDERING:").unwrap() + "ORDERING:".len()..];
    parts.push(after.trim().to_string());
    for l in block[..marker].iter().rev() {
        parts.push(l.trim_start_matches('/').trim().to_string());
    }
    Some(parts.join(" "))
}

/// Does a contract name a non-empty publication edge?
pub fn names_publication_edge(contract: &str) -> bool {
    contract
        .split("publishes-via:")
        .nth(1)
        .is_some_and(|rest| !rest.trim().is_empty())
}

fn check_contracts(f: &SourceFile, sites: &[Site], out: &mut Vec<Violation>) {
    let original: Vec<&str> = f.text.lines().collect();
    for site in sites {
        if site.uses("SeqCst") && !SEQCST_ALLOWLIST.contains(&f.rel.as_str()) {
            out.push(Violation {
                rule: "seqcst-outside-allowlist",
                file: f.rel.clone(),
                line: site.start_line + 1,
                message: "`Ordering::SeqCst` outside the SeqCst allowlist; justify a \
                          weaker ordering, or (for a genuine Dekker-style pattern) \
                          extend SEQCST_ALLOWLIST in crates/xtask/src/audit_atomics.rs"
                    .into(),
            });
        }
        match find_contract(&original, site.start_line, site.last_line) {
            None => out.push(Violation {
                rule: "missing-ordering-contract",
                file: f.rel.clone(),
                line: site.start_line + 1,
                message: format!(
                    "atomic site (orderings: {}) without an `// ORDERING:` contract \
                     on the statement or directly above it",
                    site.orderings.join(", ")
                ),
            }),
            Some(contract) => {
                if site.uses("Relaxed") && !names_publication_edge(&contract) {
                    out.push(Violation {
                        rule: "undocumented-relaxed",
                        file: f.rel.clone(),
                        line: site.start_line + 1,
                        message: "Relaxed site whose ORDERING contract does not name \
                                  its publication edge; add `publishes-via: <edge>` \
                                  (e.g. `publishes-via: fork-join barrier`)"
                            .into(),
                    });
                }
            }
        }
    }
}

// ---- rule: compare_exchange_weak without a retry loop ------------------

fn check_weak_cas(f: &SourceFile, out: &mut Vec<Violation>) {
    let lines: Vec<&str> = f.masked.lines().collect();
    let depths = brace_depth_at_line_start(&lines);
    for (idx, line) in lines.iter().enumerate() {
        if !has_token(line, "compare_exchange_weak") {
            continue;
        }
        let mut covered =
            has_token(line, "loop") || has_token(line, "while") || has_token(line, "for");
        let mut target = depths[idx];
        let mut i = idx;
        while !covered && i > 0 {
            i -= 1;
            if depths[i] < target {
                // Line `i` opens an enclosing block; is it a retry scope?
                if has_token(lines[i], "loop")
                    || has_token(lines[i], "while")
                    || has_token(lines[i], "for")
                {
                    covered = true;
                } else if has_token(lines[i], "fn") {
                    break;
                }
                target = depths[i];
            }
        }
        if !covered {
            out.push(Violation {
                rule: "weak-cas-without-retry",
                file: f.rel.clone(),
                line: idx + 1,
                message: "`compare_exchange_weak` outside a retry loop: the weak form \
                          may fail spuriously on LL/SC targets; wrap it in a \
                          loop/while, or use `compare_exchange`"
                    .into(),
            });
        }
    }
}

// ---- manifest checks ---------------------------------------------------

fn check_manifest(
    ws: &Workspace,
    site_counts: &[(&str, usize)],
    cas_files: &[(&str, usize)],
    out: &mut Vec<Violation>,
) {
    let manifest = match std::fs::read_to_string(ws.root.join(MANIFEST_PATH)) {
        Ok(text) => match manifest::parse(&text) {
            Ok(m) => m,
            Err(e) => {
                out.push(Violation {
                    rule: "invalid-manifest",
                    file: MANIFEST_PATH.to_string(),
                    line: e.line,
                    message: e.message,
                });
                return;
            }
        },
        Err(_) => manifest::Manifest::default(),
    };
    for p in &manifest.protocols {
        for file in &p.files {
            match site_counts.iter().find(|(rel, _)| rel == file) {
                None => out.push(Violation {
                    rule: "stale-manifest-file",
                    file: MANIFEST_PATH.to_string(),
                    line: p.line,
                    message: format!("protocol `{}` lists `{file}`, which does not exist", p.name),
                }),
                Some((_, 0)) => out.push(Violation {
                    rule: "stale-manifest-file",
                    file: MANIFEST_PATH.to_string(),
                    line: p.line,
                    message: format!(
                        "protocol `{}` lists `{file}`, which no longer has atomic \
                         sites; the entry is stale",
                        p.name
                    ),
                }),
                Some(_) => {}
            }
        }
        match p.loom_anchor() {
            None => out.push(Violation {
                rule: "stale-manifest-test",
                file: MANIFEST_PATH.to_string(),
                line: p.line,
                message: format!(
                    "protocol `{}` loom_test `{}` is not of the `path::test_fn` form",
                    p.name, p.loom_test
                ),
            }),
            Some((file, test_fn)) => {
                if !file.ends_with("race_model.rs") {
                    out.push(Violation {
                        rule: "stale-manifest-test",
                        file: MANIFEST_PATH.to_string(),
                        line: p.line,
                        message: format!(
                            "protocol `{}` loom_test must live in a race_model.rs \
                             suite, got `{file}`",
                            p.name
                        ),
                    });
                } else {
                    match ws.get(file) {
                        None => out.push(Violation {
                            rule: "stale-manifest-test",
                            file: MANIFEST_PATH.to_string(),
                            line: p.line,
                            message: format!(
                                "protocol `{}` loom_test file `{file}` does not exist",
                                p.name
                            ),
                        }),
                        Some(src) => {
                            let defines = src
                                .masked
                                .lines()
                                .any(|l| has_token(l, "fn") && has_token(l, test_fn));
                            if !defines {
                                out.push(Violation {
                                    rule: "stale-manifest-test",
                                    file: MANIFEST_PATH.to_string(),
                                    line: p.line,
                                    message: format!(
                                        "protocol `{}`: no test fn `{test_fn}` in \
                                         `{file}`; the model anchor is stale",
                                        p.name
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    for (rel, line) in cas_files {
        if is_exempt(rel) {
            continue;
        }
        if !manifest.covers(rel) {
            out.push(Violation {
                rule: "unmodeled-protocol",
                file: rel.to_string(),
                line: *line,
                message: format!(
                    "compare-exchange site in a file no manifest protocol claims; \
                     add (or extend) a [[protocol]] entry in {MANIFEST_PATH} naming \
                     the loom model that covers this claim protocol"
                ),
            });
        }
    }
}

// ---- rule: stale atomics allowlists ------------------------------------

/// Entries of the scanned tree's own `ATOMICS_ALLOWLIST`/`SEQCST_ALLOWLIST`
/// must still name existing files (mirrors the unsafe gate's staleness
/// rule; the lists are parsed from the tree so fixtures can go stale).
fn check_allowlist_staleness(ws: &Workspace, out: &mut Vec<Violation>) {
    const SELF_PATH: &str = "crates/xtask/src/audit_atomics.rs";
    let Some(src) = ws.get(SELF_PATH) else {
        return;
    };
    for list in ["ATOMICS_ALLOWLIST", "SEQCST_ALLOWLIST"] {
        let Some(entries) = scan::parse_const_string_list(&src.text, list) else {
            continue;
        };
        for entry in entries {
            if ws.get(&entry).is_none() {
                out.push(Violation {
                    rule: "stale-atomics-allowlist-entry",
                    file: SELF_PATH.to_string(),
                    line: 1,
                    message: format!(
                        "{list} entry `{entry}` names a file that no longer exists; \
                         remove the entry"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::mask_non_code;

    /// Run the per-file rules (not the manifest/staleness checks) on one
    /// synthetic source at `rel`.
    fn file_rules(rel: &str, src: &str) -> Vec<&'static str> {
        let f = SourceFile {
            rel: rel.to_string(),
            text: src.to_string(),
            masked: mask_non_code(src),
        };
        let sites = find_sites(&f.masked);
        let mut out = Vec::new();
        if !sites.is_empty() && !is_exempt(rel) && !ATOMICS_ALLOWLIST.contains(&rel) {
            out.push(Violation {
                rule: "atomics-outside-allowlist",
                file: rel.into(),
                line: sites[0].start_line + 1,
                message: String::new(),
            });
        }
        if !is_exempt(rel) {
            check_contracts(&f, &sites, &mut out);
            check_weak_cas(&f, &mut out);
        }
        out.into_iter().map(|v| v.rule).collect()
    }

    const ALLOWED: &str = "crates/semisort/src/scatter.rs"; // atomics + no SeqCst

    // ---- grammar accept/reject table -----------------------------------

    #[test]
    fn accept_block_contract_above_statement() {
        let src = "fn f(a: &A) -> u64 {\n    // ORDERING: Acquire pairs with the Release in set().\n    a.v.load(Ordering::Acquire)\n}\n";
        assert!(file_rules(ALLOWED, src).is_empty());
    }

    #[test]
    fn accept_trailing_contract_on_statement_line() {
        let src =
            "fn f(a: &A) {\n    a.v.store(1, Ordering::Release); // ORDERING: publishes the slot; pairs with load in probe().\n}\n";
        assert!(file_rules(ALLOWED, src).is_empty());
    }

    #[test]
    fn accept_relaxed_with_publishes_via_on_same_line() {
        let src = "fn f(a: &A) -> u64 {\n    // ORDERING: Relaxed; publishes-via: fork-join barrier.\n    a.v.load(Ordering::Relaxed)\n}\n";
        assert!(file_rules(ALLOWED, src).is_empty());
    }

    #[test]
    fn accept_multi_line_contract_with_publishes_via_on_continuation() {
        let src = "fn f(a: &A) -> u64 {\n    // ORDERING: Relaxed — the claim cursor orders nothing itself;\n    // the claimed range is exclusive and the data is\n    // publishes-via: fork-join barrier (join precedes every read).\n    a.v.fetch_add(1, Ordering::Relaxed)\n}\n";
        assert!(file_rules(ALLOWED, src).is_empty());
    }

    #[test]
    fn accept_one_contract_for_multi_line_compare_exchange() {
        // The CAS names two orderings across two lines; one contract on
        // the statement covers both (continuation lines join upward).
        let src = "fn f(a: &A) {\n    // ORDERING: AcqRel on success claims + publishes; Relaxed failure\n    // probe rereads; publishes-via: acquire of the winning CAS.\n    let _ = a\n        .v\n        .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed);\n}\n";
        assert!(file_rules(ALLOWED, src).is_empty());
    }

    #[test]
    fn accept_attribute_between_contract_and_statement() {
        let src = "fn f(a: &A) -> u64 {\n    // ORDERING: Acquire pairs with Release store.\n    #[allow(unused)]\n    a.v.load(Ordering::Acquire)\n}\n";
        assert!(file_rules(ALLOWED, src).is_empty());
    }

    #[test]
    fn reject_missing_contract() {
        let src = "fn f(a: &A) -> u64 {\n    a.v.load(Ordering::Acquire)\n}\n";
        assert_eq!(file_rules(ALLOWED, src), vec!["missing-ordering-contract"]);
    }

    #[test]
    fn reject_far_away_contract() {
        // A contract separated from the statement by a code line does not
        // bind — same adjacency discipline as `// SAFETY:`.
        let src = "fn f(a: &A) -> u64 {\n    // ORDERING: Acquire pairs with Release store.\n    let x = 1;\n    a.v.load(Ordering::Acquire) + x\n}\n";
        assert_eq!(file_rules(ALLOWED, src), vec!["missing-ordering-contract"]);
    }

    #[test]
    fn reject_relaxed_without_publishes_via() {
        let src = "fn f(a: &A) -> u64 {\n    // ORDERING: Relaxed is fine because fork/join publishes.\n    a.v.load(Ordering::Relaxed)\n}\n";
        assert_eq!(file_rules(ALLOWED, src), vec!["undocumented-relaxed"]);
    }

    #[test]
    fn reject_empty_publishes_via_edge() {
        let src = "fn f(a: &A) -> u64 {\n    // ORDERING: Relaxed; publishes-via:\n    a.v.load(Ordering::Relaxed)\n}\n";
        assert_eq!(file_rules(ALLOWED, src), vec!["undocumented-relaxed"]);
    }

    #[test]
    fn reject_contract_in_string_site_still_missing() {
        // An ORDERING marker inside a string literal is prose, but note
        // the *site* detection works on masked code, so the string's fake
        // `Ordering::Acquire` is not a site either: only the real load
        // needs (and here lacks) a contract.
        let src = "fn f(a: &A) -> u64 {\n    let _s = \"// ORDERING: Ordering::Acquire\";\n    a.v.load(Ordering::Acquire)\n}\n";
        assert_eq!(file_rules(ALLOWED, src), vec!["missing-ordering-contract"]);
    }

    #[test]
    fn ordering_in_comments_and_strings_is_not_a_site() {
        let src = "// prose about Ordering::SeqCst\nfn f() { let s = \"Ordering::Relaxed\"; let _ = s; }\n";
        assert!(file_rules("crates/semisort/src/driver.rs", src).is_empty());
    }

    // ---- allowlists ----------------------------------------------------

    #[test]
    fn atomics_outside_allowlist_is_flagged() {
        let src = "fn f(a: &A) -> u64 {\n    // ORDERING: Acquire pairs with Release store.\n    a.v.load(Ordering::Acquire)\n}\n";
        assert_eq!(
            file_rules("crates/semisort/src/driver.rs", src),
            vec!["atomics-outside-allowlist"]
        );
    }

    #[test]
    fn loom_shim_and_tests_are_exempt() {
        let src = "fn f(a: &A) -> u64 { a.v.load(Ordering::SeqCst) }\n";
        assert!(file_rules("crates/loom/src/sync.rs", src).is_empty());
        assert!(file_rules("crates/semisort/tests/race_model.rs", src).is_empty());
        assert!(file_rules("tests/scatter_differential.rs", src).is_empty());
    }

    #[test]
    fn seqcst_outside_allowlist_is_flagged() {
        let src = "fn f(a: &A) -> u64 {\n    // ORDERING: total order with the sleepers counter.\n    a.v.load(Ordering::SeqCst)\n}\n";
        assert_eq!(file_rules(ALLOWED, src), vec!["seqcst-outside-allowlist"]);
        let src_deque = src;
        assert!(file_rules("crates/rayon/src/deque.rs", src_deque).is_empty());
    }

    // ---- weak CAS ------------------------------------------------------

    #[test]
    fn weak_cas_inside_loop_is_clean() {
        let src = "fn f(a: &A) {\n    loop {\n        // ORDERING: AcqRel claim; Relaxed failure probe; publishes-via: winning CAS acquire.\n        if a.v.compare_exchange_weak(0, 1, Ordering::AcqRel, Ordering::Relaxed).is_ok() {\n            break;\n        }\n    }\n}\n";
        assert!(file_rules(ALLOWED, src).is_empty());
    }

    #[test]
    fn weak_cas_in_while_condition_is_clean() {
        let src = "fn f(a: &A) {\n    // ORDERING: AcqRel claim; Relaxed failure probe; publishes-via: winning CAS acquire.\n    while a.v.compare_exchange_weak(0, 1, Ordering::AcqRel, Ordering::Relaxed).is_err() {}\n}\n";
        assert!(file_rules(ALLOWED, src).is_empty());
    }

    #[test]
    fn weak_cas_without_retry_is_flagged() {
        let src = "fn f(a: &A) {\n    // ORDERING: AcqRel claim; Relaxed failure probe; publishes-via: winning CAS acquire.\n    let _ = a.v.compare_exchange_weak(0, 1, Ordering::AcqRel, Ordering::Relaxed);\n}\n";
        assert_eq!(file_rules(ALLOWED, src), vec!["weak-cas-without-retry"]);
    }

    // ---- site grouping -------------------------------------------------

    #[test]
    fn sites_group_multi_line_statements() {
        let masked = mask_non_code(
            "fn f(a: &A) {\n    let _ = a\n        .v\n        .compare_exchange(0, 1, Ordering::AcqRel,\n            Ordering::Relaxed);\n    a.w.store(1, Ordering::Release);\n}\n",
        );
        let sites = find_sites(&masked);
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].start_line, 1);
        assert_eq!(sites[0].orderings, vec!["AcqRel", "Relaxed"]);
        assert_eq!(sites[1].start_line, 5);
        assert_eq!(sites[1].orderings, vec!["Release"]);
    }

    #[test]
    fn fence_is_a_site() {
        let masked = mask_non_code("fn f() { fence(Ordering::SeqCst); }\n");
        assert_eq!(find_sites(&masked).len(), 1);
    }
}
