//! Parser for `crates/xtask/atomics.toml` — the committed manifest that
//! maps each lock-free claim protocol to the loom model that verifies it.
//!
//! The workspace builds offline with zero external dependencies, so this
//! is a hand-rolled parser for the exact TOML subset the manifest uses:
//! `[[protocol]]` array-of-tables sections whose keys are bare
//! identifiers, values either a double-quoted string (no escapes) or a
//! single-line array of double-quoted strings, plus `#` comments and
//! blank lines. Anything outside that subset is a parse error — the audit
//! pass turns parse errors into violations rather than guessing.
//!
//! ```toml
//! [[protocol]]
//! name = "cas-probe"
//! files = ["crates/semisort/src/scatter.rs"]
//! loom_test = "crates/semisort/tests/race_model.rs::cas_linear_probe_claims_are_exclusive"
//! ```

/// One `[[protocol]]` entry of the atomics manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Protocol {
    /// Protocol identifier (e.g. `cas-probe`, `deque-claim`).
    pub name: String,
    /// Workspace-relative source files implementing the protocol.
    pub files: Vec<String>,
    /// `path::test_fn` anchor of the loom model covering the protocol.
    pub loom_test: String,
    /// 1-based line of the `[[protocol]]` header (for diagnostics).
    pub line: usize,
}

impl Protocol {
    /// Split the `loom_test` anchor into `(file, test_fn)`.
    /// Returns `None` when the anchor is not of the `path::fn` form.
    pub fn loom_anchor(&self) -> Option<(&str, &str)> {
        let (file, test) = self.loom_test.rsplit_once("::")?;
        if file.is_empty() || test.is_empty() {
            return None;
        }
        Some((file, test))
    }
}

/// The parsed manifest.
#[derive(Debug, Default, PartialEq)]
pub struct Manifest {
    /// All protocol entries, in file order.
    pub protocols: Vec<Protocol>,
}

impl Manifest {
    /// Do any of the protocol entries claim `file`?
    pub fn covers(&self, file: &str) -> bool {
        self.protocols
            .iter()
            .any(|p| p.files.iter().any(|f| f == file))
    }
}

/// A manifest parse error with its 1-based line.
#[derive(Debug, PartialEq)]
pub struct ParseError {
    /// 1-based line the error was detected on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

/// Parse the manifest text. See the module docs for the accepted subset.
pub fn parse(text: &str) -> Result<Manifest, ParseError> {
    /// An in-progress `[[protocol]]` entry: header line, then the three
    /// keys as they arrive.
    type Partial = (usize, Option<String>, Vec<String>, Option<String>);
    let mut protocols: Vec<Protocol> = Vec::new();
    let mut current: Option<Partial> = None;
    let finish = |entry: Partial| -> Result<Protocol, ParseError> {
        let (line, name, files, loom_test) = entry;
        let name = name.ok_or_else(|| ParseError {
            line,
            message: "[[protocol]] entry is missing `name`".into(),
        })?;
        if files.is_empty() {
            return Err(ParseError {
                line,
                message: format!("protocol `{name}` has no `files`"),
            });
        }
        let loom_test = loom_test.ok_or_else(|| ParseError {
            line,
            message: format!("protocol `{name}` is missing `loom_test`"),
        })?;
        Ok(Protocol {
            name,
            files,
            loom_test,
            line,
        })
    };
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[protocol]]" {
            if let Some(entry) = current.take() {
                protocols.push(finish(entry)?);
            }
            current = Some((lineno, None, Vec::new(), None));
            continue;
        }
        if line.starts_with('[') {
            return Err(ParseError {
                line: lineno,
                message: format!("unsupported section `{line}` (only [[protocol]])"),
            });
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(ParseError {
                line: lineno,
                message: format!("expected `key = value`, got `{line}`"),
            });
        };
        let Some(entry) = current.as_mut() else {
            return Err(ParseError {
                line: lineno,
                message: "key outside a [[protocol]] section".into(),
            });
        };
        let key = key.trim();
        let value = value.trim();
        match key {
            "name" => entry.1 = Some(parse_string(value, lineno)?),
            "files" => entry.2 = parse_string_array(value, lineno)?,
            "loom_test" => entry.3 = Some(parse_string(value, lineno)?),
            other => {
                return Err(ParseError {
                    line: lineno,
                    message: format!("unknown key `{other}`"),
                });
            }
        }
    }
    if let Some(entry) = current.take() {
        protocols.push(finish(entry)?);
    }
    Ok(Manifest { protocols })
}

/// Drop a `#` comment, respecting `#` inside double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str, line: usize) -> Result<String, ParseError> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| ParseError {
            line,
            message: format!("expected a double-quoted string, got `{value}`"),
        })?;
    if inner.contains('"') || inner.contains('\\') {
        return Err(ParseError {
            line,
            message: "escapes and embedded quotes are not supported".into(),
        });
    }
    Ok(inner.to_string())
}

fn parse_string_array(value: &str, line: usize) -> Result<Vec<String>, ParseError> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| ParseError {
            line,
            message: format!("expected a single-line [\"…\", …] array, got `{value}`"),
        })?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue; // trailing comma
        }
        out.push(parse_string(item, line)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# The claim-protocol manifest.
[[protocol]]
name = "cas-probe"
files = ["crates/semisort/src/scatter.rs"]
loom_test = "crates/semisort/tests/race_model.rs::cas_linear_probe_claims_are_exclusive"

[[protocol]]
name = "deque-claim"   # trailing comment
files = ["crates/rayon/src/deque.rs", "crates/rayon/src/registry.rs",]
loom_test = "crates/rayon/tests/race_model.rs::last_element_pop_vs_steal_is_exactly_once"
"#;

    #[test]
    fn parses_protocol_entries() {
        let m = parse(GOOD).expect("manifest parses");
        assert_eq!(m.protocols.len(), 2);
        assert_eq!(m.protocols[0].name, "cas-probe");
        assert_eq!(
            m.protocols[0].loom_anchor(),
            Some((
                "crates/semisort/tests/race_model.rs",
                "cas_linear_probe_claims_are_exclusive"
            ))
        );
        assert_eq!(m.protocols[1].files.len(), 2);
        assert!(m.covers("crates/rayon/src/registry.rs"));
        assert!(!m.covers("crates/rayon/src/job.rs"));
    }

    #[test]
    fn missing_loom_test_is_an_error() {
        let err = parse("[[protocol]]\nname = \"x\"\nfiles = [\"a.rs\"]\n").unwrap_err();
        assert!(err.message.contains("loom_test"), "{err:?}");
    }

    #[test]
    fn missing_name_is_an_error() {
        let err = parse("[[protocol]]\nfiles = [\"a.rs\"]\nloom_test = \"t.rs::f\"\n").unwrap_err();
        assert!(err.message.contains("name"), "{err:?}");
    }

    #[test]
    fn empty_files_is_an_error() {
        let err =
            parse("[[protocol]]\nname = \"x\"\nfiles = []\nloom_test = \"t.rs::f\"\n").unwrap_err();
        assert!(err.message.contains("no `files`"), "{err:?}");
    }

    #[test]
    fn key_outside_section_is_an_error() {
        let err = parse("name = \"x\"\n").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn unknown_key_and_bad_anchor() {
        assert!(parse("[[protocol]]\nbogus = \"x\"\n").is_err());
        let p = Protocol {
            name: "x".into(),
            files: vec!["a.rs".into()],
            loom_test: "no-separator".into(),
            line: 1,
        };
        assert_eq!(p.loom_anchor(), None);
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let m = parse(
            "[[protocol]]\nname = \"has#hash\"\nfiles = [\"a.rs\"]\nloom_test = \"t.rs::f\"\n",
        )
        .unwrap();
        assert_eq!(m.protocols[0].name, "has#hash");
    }
}
