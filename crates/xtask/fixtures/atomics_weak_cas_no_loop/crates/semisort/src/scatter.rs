//! Fixture: a `compare_exchange_weak` outside any retry loop — the weak
//! form may fail spuriously, so the audit must flag it. Contract and
//! manifest are both in order, isolating the one rule.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Slot {
    v: AtomicU64,
}

impl Slot {
    pub fn try_claim(&self, key: u64) -> bool {
        // ORDERING: AcqRel claim; Relaxed failure probe;
        // publishes-via: the winning CAS's own AcqRel success edge.
        self.v
            .compare_exchange_weak(0, key, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
    }
}
