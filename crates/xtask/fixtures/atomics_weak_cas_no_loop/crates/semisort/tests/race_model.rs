//! Fixture loom-model anchor for the manifest entry.

#[test]
fn probe_claims_are_exclusive() {}
