//! Lint fixture: a correctly documented unsafe block in a file that is
//! NOT on the unsafe allowlist — must trip `unsafe-outside-allowlist`
//! (and only that; the SAFETY comment satisfies `undocumented-unsafe`).

pub fn read(p: *const u8) -> u8 {
    // SAFETY: documented, but this module is not audited for unsafe.
    unsafe { *p }
}
