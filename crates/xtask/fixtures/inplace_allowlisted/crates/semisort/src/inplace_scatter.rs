//! Lint fixture: a SAFETY-documented unsafe block in the in-place scatter
//! module, which IS on the unsafe allowlist — the linter must exit 0 with
//! zero violations (pinning that the allowlist covers the in-place path).

pub fn read(p: *const u8) -> u8 {
    // SAFETY: fixture stand-in for the audited cursor-claim accesses.
    unsafe { *p }
}
