//! Lint fixture: an allowlisted file whose unsafe block has no
//! `// SAFETY:` comment — must trip `undocumented-unsafe` (and nothing
//! else; the path is on the allowlist and holds no index casts).

pub fn read(p: *const u8) -> u8 {
    unsafe { *p }
}
