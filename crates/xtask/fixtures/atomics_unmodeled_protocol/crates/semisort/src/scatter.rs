//! Fixture: a fully-contracted compare-exchange in a tree with no
//! manifest — a claim protocol without a loom model on record must fail.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Slot {
    v: AtomicU64,
}

impl Slot {
    pub fn claim(&self, key: u64) -> bool {
        // ORDERING: AcqRel claim; Relaxed failure probe;
        // publishes-via: the winning CAS's own AcqRel success edge.
        self.v
            .compare_exchange(0, key, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
    }
}
