//! Fixture: an allowlisted module with an atomic site that carries no
//! `// ORDERING:` contract — the audit must flag it.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Flag {
    v: AtomicU64,
}

impl Flag {
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Acquire)
    }
}
