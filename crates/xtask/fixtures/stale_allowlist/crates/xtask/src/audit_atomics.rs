//! Fixture copy of the auditor source whose allowlist has gone stale:
//! `ATOMICS_ALLOWLIST` names a file this tree does not contain. The audit
//! parses the list out of the scanned tree's own source, so this fires
//! `stale-atomics-allowlist-entry` without recompiling the auditor.

pub const ATOMICS_ALLOWLIST: &[&str] = &["crates/semisort/src/ghost.rs"];

pub const SEQCST_ALLOWLIST: &[&str] = &[];
