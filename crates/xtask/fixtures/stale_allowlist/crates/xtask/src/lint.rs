//! Fixture copy of the lint source whose unsafe allowlist has gone
//! stale: `UNSAFE_ALLOWLIST` names a file this tree does not contain.
//! The lint parses the list out of the scanned tree's own source, so
//! this fires `stale-allowlist-entry` without recompiling the linter.

pub const UNSAFE_ALLOWLIST: &[&str] = &["crates/semisort/src/vanished.rs"];
