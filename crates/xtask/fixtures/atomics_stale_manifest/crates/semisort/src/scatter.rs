//! Fixture: a contracted atomic site whose manifest entries have gone
//! stale (one lists a deleted file, one anchors a renamed test).

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Flag {
    v: AtomicU64,
}

impl Flag {
    pub fn get(&self) -> u64 {
        // ORDERING: Acquire pairs with the Release in set().
        self.v.load(Ordering::Acquire)
    }
}
