//! Fixture loom-model suite: `probe_claims_are_exclusive` exists, but the
//! manifest's second entry anchors a test that does not.

#[test]
fn probe_claims_are_exclusive() {}
