//! Fixture: `Ordering::SeqCst` in a module outside `SEQCST_ALLOWLIST` —
//! the audit must flag it even though the site carries a contract.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Flag {
    v: AtomicU64,
}

impl Flag {
    pub fn get(&self) -> u64 {
        // ORDERING: total order with the other flag (but not a Dekker pair).
        self.v.load(Ordering::SeqCst)
    }
}
