//! Fixture: a fully-contracted claim protocol with a manifest entry and a
//! live model anchor — the audit must pass this tree with zero findings.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Slot {
    v: AtomicU64,
}

impl Slot {
    pub fn claim(&self, key: u64) -> bool {
        // ORDERING: Relaxed vacancy pre-check (racy, revalidated by the
        // CAS); AcqRel claim; Relaxed failure probe;
        // publishes-via: the winning CAS's own AcqRel success edge.
        self.v.load(Ordering::Relaxed) == 0
            && self
                .v
                .compare_exchange(0, key, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
    }

    pub fn get(&self) -> u64 {
        // ORDERING: Acquire pairs with the winning CAS's Release half.
        self.v.load(Ordering::Acquire)
    }
}
