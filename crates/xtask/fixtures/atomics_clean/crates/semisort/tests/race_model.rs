//! Fixture loom-model suite anchoring the manifest entry.

#[test]
fn probe_claims_are_exclusive() {}
