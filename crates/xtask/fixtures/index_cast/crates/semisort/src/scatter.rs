//! Lint fixture: a truncating `as` cast inside index brackets on a
//! hot-path file — must trip `as-cast-in-index` (and nothing else; no
//! unsafe in sight).

pub fn pick(v: &[u32], i: u32) -> u32 {
    v[i as usize]
}
