//! Fixture: a Relaxed site whose contract never names its publication
//! edge (`publishes-via:`) — the audit must flag it.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Tally {
    hits: AtomicU64,
}

impl Tally {
    pub fn bump(&self) {
        // ORDERING: Relaxed tally; something else synchronizes.
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
}
