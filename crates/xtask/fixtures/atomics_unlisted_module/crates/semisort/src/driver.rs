//! Fixture: a fully-contracted atomic site in a module that is NOT on
//! `ATOMICS_ALLOWLIST` — the audit must flag the module, contract or not.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Flag {
    v: AtomicU64,
}

impl Flag {
    pub fn get(&self) -> u64 {
        // ORDERING: Acquire pairs with the Release in set().
        self.v.load(Ordering::Acquire)
    }
}
