//! Lint fixture: a clean hot-path file — the linter must exit 0 and
//! report zero violations.

pub fn pick(v: &[u32], i: u32) -> u32 {
    let i = i as usize;
    v[i]
}
