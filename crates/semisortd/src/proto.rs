//! The wire protocol: length-prefixed binary frames over any
//! `Read + Write` transport (TCP or stdio).
//!
//! Every message is `[u32 payload_len (LE)][payload]`. Requests carry an
//! opcode, an optional relative deadline, and the `(key, value)` records;
//! responses carry either an op-specific success body or a structured
//! `(code, kind, message)` error triple that mirrors
//! [`semisort::SemisortError::kind`] / `exit_code`. All integers are
//! little-endian; keys are raw (unhashed) `u64`s — the server hashes.
//!
//! The payload length is bounded by [`MAX_FRAME_BYTES`] *before* any
//! allocation happens: a malicious or corrupt length prefix cannot make
//! the server allocate unboundedly. (Per-request record caps are the
//! admission layer's job; this bound is the framing layer's last line.)

use std::io::{self, Read, Write};

/// Hard upper bound on one frame's payload, checked before allocating.
/// Generous enough for tens of millions of records, small enough that a
/// corrupt prefix cannot OOM the process.
pub const MAX_FRAME_BYTES: usize = 1 << 30;

/// Wire opcodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Op {
    /// Semisort the records; reply with the reordered records.
    Semisort,
    /// Semisort and group; reply with records plus group boundaries.
    GroupBy,
    /// Reply with one `(key, count)` per distinct key.
    CountByKey,
    /// Reply with the server's `semisort-stats-v2` JSON (service section
    /// filled).
    Stats,
    /// Drain every in-flight request, then shut the server down.
    Shutdown,
}

impl Op {
    fn to_byte(self) -> u8 {
        match self {
            Op::Semisort => 0,
            Op::GroupBy => 1,
            Op::CountByKey => 2,
            Op::Stats => 3,
            Op::Shutdown => 4,
        }
    }

    fn from_byte(b: u8) -> Option<Op> {
        Some(match b {
            0 => Op::Semisort,
            1 => Op::GroupBy,
            2 => Op::CountByKey,
            3 => Op::Stats,
            4 => Op::Shutdown,
            _ => return None,
        })
    }
}

/// One parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// What to do.
    pub op: Op,
    /// Relative deadline in milliseconds; 0 means none.
    pub deadline_ms: u32,
    /// The `(key, value)` records (empty for `Stats` / `Shutdown`).
    pub records: Vec<(u64, u64)>,
}

/// One parsed response.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Response {
    /// Semisorted records (every key one contiguous run).
    Records(Vec<(u64, u64)>),
    /// Semisorted records plus group boundaries: group `g` is
    /// `records[starts[g]..starts[g + 1]]`.
    Groups {
        /// The semisorted records.
        records: Vec<(u64, u64)>,
        /// `num_groups + 1` boundaries into `records`.
        starts: Vec<u32>,
    },
    /// One `(key, count)` per distinct key.
    Counts(Vec<(u64, u64)>),
    /// The server's stats JSON text.
    Stats(String),
    /// Drain acknowledged; the server is exiting.
    ShutdownAck,
    /// Structured failure: `(exit code, error kind, human message)`.
    /// `kind` matches [`semisort::SemisortError::kind`] for engine errors,
    /// plus `"invalid-request"` for protocol-level rejections.
    Error {
        /// Process-exit-style code ([`semisort::SemisortError::exit_code`]).
        code: u8,
        /// Stable machine-readable kind.
        kind: String,
        /// Human-readable detail.
        message: String,
    },
}

/// Error kind for requests the server could not even parse.
pub const KIND_INVALID_REQUEST: &str = "invalid-request";
/// Exit-style code paired with [`KIND_INVALID_REQUEST`].
pub const CODE_INVALID_REQUEST: u8 = 10;

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// A bounds-checked cursor over one frame's payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn pairs(&mut self, n: usize) -> Option<Vec<(u64, u64)>> {
        // Size sanity before the allocation: n pairs need 16 n bytes of
        // remaining payload, so a lying count can't reserve gigabytes.
        if self.buf.len().saturating_sub(self.pos) < n.checked_mul(16)? {
            return None;
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push((self.u64()?, self.u64()?));
        }
        Some(v)
    }

    fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }
}

impl Request {
    /// Serialize into one frame (length prefix included).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(9 + self.records.len() * 16);
        payload.push(self.op.to_byte());
        put_u32(&mut payload, self.deadline_ms);
        put_u32(&mut payload, self.records.len() as u32);
        for &(k, v) in &self.records {
            put_u64(&mut payload, k);
            put_u64(&mut payload, v);
        }
        frame(payload)
    }

    /// Parse one frame's payload. `None` on any malformed content
    /// (unknown op, lying lengths, trailing bytes).
    pub fn decode(payload: &[u8]) -> Option<Request> {
        let mut c = Cursor::new(payload);
        let op = Op::from_byte(c.u8()?)?;
        let deadline_ms = c.u32()?;
        let n = c.u32()? as usize;
        let records = c.pairs(n)?;
        c.at_end().then_some(Request {
            op,
            deadline_ms,
            records,
        })
    }
}

impl Response {
    /// Serialize into one frame (length prefix included).
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            Response::Records(records) => {
                p.push(0u8);
                put_u32(&mut p, records.len() as u32);
                for &(k, v) in records {
                    put_u64(&mut p, k);
                    put_u64(&mut p, v);
                }
            }
            Response::Groups { records, starts } => {
                p.push(1u8);
                put_u32(&mut p, records.len() as u32);
                for &(k, v) in records {
                    put_u64(&mut p, k);
                    put_u64(&mut p, v);
                }
                put_u32(&mut p, starts.len() as u32);
                for &s in starts {
                    put_u32(&mut p, s);
                }
            }
            Response::Counts(counts) => {
                p.push(2u8);
                put_u32(&mut p, counts.len() as u32);
                for &(k, c) in counts {
                    put_u64(&mut p, k);
                    put_u64(&mut p, c);
                }
            }
            Response::Stats(json) => {
                p.push(3u8);
                put_str(&mut p, json);
            }
            Response::ShutdownAck => p.push(4u8),
            Response::Error {
                code,
                kind,
                message,
            } => {
                p.push(5u8);
                p.push(*code);
                put_str(&mut p, kind);
                put_str(&mut p, message);
            }
        }
        frame(p)
    }

    /// Parse one frame's payload. `None` on malformed content.
    pub fn decode(payload: &[u8]) -> Option<Response> {
        let mut c = Cursor::new(payload);
        let resp = match c.u8()? {
            0 => Response::Records(c.u32().and_then(|n| c.pairs(n as usize))?),
            1 => {
                let records = c.u32().and_then(|n| c.pairs(n as usize))?;
                let g = c.u32()? as usize;
                if c.buf.len().saturating_sub(c.pos) < g.checked_mul(4)? {
                    return None;
                }
                let mut starts = Vec::with_capacity(g);
                for _ in 0..g {
                    starts.push(c.u32()?);
                }
                Response::Groups { records, starts }
            }
            2 => Response::Counts(c.u32().and_then(|n| c.pairs(n as usize))?),
            3 => Response::Stats(c.str()?),
            4 => Response::ShutdownAck,
            5 => Response::Error {
                code: c.u8()?,
                kind: c.str()?,
                message: c.str()?,
            },
            _ => return None,
        };
        c.at_end().then_some(resp)
    }
}

fn frame(payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Write one already-encoded frame.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

/// Read one frame's payload. `Ok(None)` on clean EOF at a frame boundary
/// (the peer hung up between requests); `Err` on short reads mid-frame,
/// transport errors, or a length prefix beyond [`MAX_FRAME_BYTES`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    // Hand-rolled first read so EOF-before-any-byte is clean (None) while
    // EOF mid-prefix is a short read (Err).
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut len_buf[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "short read in frame length",
                ))
            }
            k => got += k,
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds cap of {MAX_FRAME_BYTES}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip(frame: &[u8]) -> &[u8] {
        &frame[4..]
    }

    #[test]
    fn request_round_trips() {
        let req = Request {
            op: Op::GroupBy,
            deadline_ms: 250,
            records: vec![(1, 10), (u64::MAX, 0), (1, 11)],
        };
        let enc = req.encode();
        let len = u32::from_le_bytes(enc[..4].try_into().unwrap()) as usize;
        assert_eq!(len, enc.len() - 4);
        assert_eq!(Request::decode(strip(&enc)), Some(req));
    }

    #[test]
    fn response_variants_round_trip() {
        let cases = [
            Response::Records(vec![(3, 4), (3, 5)]),
            Response::Groups {
                records: vec![(1, 1), (1, 2), (9, 0)],
                starts: vec![0, 2, 3],
            },
            Response::Counts(vec![(7, 2), (9, 1)]),
            Response::Stats("{\"schema\":\"semisort-stats-v2\"}".into()),
            Response::ShutdownAck,
            Response::Error {
                code: 3,
                kind: "overloaded".into(),
                message: "queue full".into(),
            },
        ];
        for resp in cases {
            let enc = resp.encode();
            assert_eq!(Response::decode(strip(&enc)), Some(resp));
        }
    }

    #[test]
    fn malformed_payloads_are_rejected_not_panicked() {
        assert_eq!(Request::decode(&[]), None);
        assert_eq!(Request::decode(&[99, 0, 0, 0, 0, 0, 0, 0, 0]), None);
        // Lying record count: claims 1000 records with no bytes behind it.
        let mut lying = vec![0u8];
        lying.extend_from_slice(&0u32.to_le_bytes());
        lying.extend_from_slice(&1000u32.to_le_bytes());
        assert_eq!(Request::decode(&lying), None);
        // Trailing garbage after a valid body.
        let mut trailing = Request {
            op: Op::Semisort,
            deadline_ms: 0,
            records: vec![],
        }
        .encode()[4..]
            .to_vec();
        trailing.push(0xFF);
        assert_eq!(Request::decode(&trailing), None);
        assert_eq!(Response::decode(&[200]), None);
    }

    #[test]
    fn frame_io_handles_eof_and_oversize() {
        use std::io::Cursor as IoCursor;
        // Clean EOF at a boundary.
        let mut empty = IoCursor::new(Vec::<u8>::new());
        assert!(matches!(read_frame(&mut empty), Ok(None)));
        // Short read mid-prefix.
        let mut short = IoCursor::new(vec![1u8, 0]);
        assert!(read_frame(&mut short).is_err());
        // Short read mid-payload.
        let mut truncated = IoCursor::new({
            let mut b = 100u32.to_le_bytes().to_vec();
            b.extend_from_slice(&[0u8; 10]);
            b
        });
        assert!(read_frame(&mut truncated).is_err());
        // Oversize prefix refused before allocation.
        let mut oversize = IoCursor::new(((MAX_FRAME_BYTES as u32) + 1).to_le_bytes().to_vec());
        assert!(read_frame(&mut oversize).is_err());
        // Round trip through the io layer.
        let req = Request {
            op: Op::Stats,
            deadline_ms: 0,
            records: vec![],
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &req.encode()).unwrap();
        let mut rd = IoCursor::new(buf);
        let payload = read_frame(&mut rd).unwrap().unwrap();
        assert_eq!(Request::decode(&payload), Some(req));
        assert!(matches!(read_frame(&mut rd), Ok(None)));
    }
}
