//! Deterministic fault injection for the service layer.
//!
//! [`semisort::FaultPlan`] makes the *engine's* failure ladder testable;
//! [`ServiceFaultPlan`] does the same for the *service's*: dropped
//! replies, delayed processing, forced shard panics, and short-written
//! request frames. The spec grammar mirrors the engine's
//! (`kind:arg` clauses joined by commas, `"none"` for inert) so chaos
//! recipes read the same at both layers.
//!
//! Faults fire on a deterministic **every-k-th** schedule against a
//! request counter the caller supplies (the server numbers admitted
//! requests; the load generator numbers sent requests). `k = 0` disables
//! a clause; `k = 1` fires on every request. Counters are 1-based so
//! `drop:3` means requests 3, 6, 9, … — the first request always works,
//! which keeps "server is actually up" distinguishable from "everything
//! is on fire".

use std::time::Duration;

/// A deterministic service-fault schedule. Each `*_every` field is the
/// period `k` of an every-k-th trigger (0 = never).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceFaultPlan {
    /// Drop the connection instead of replying (client sees EOF).
    pub drop_every: u32,
    /// Sleep [`ServiceFaultPlan::delay`] before processing (backs queues
    /// up, expires deadlines).
    pub delay_every: u32,
    /// How long a triggered delay sleeps, in milliseconds.
    pub delay_ms: u32,
    /// Run the request with an engine plan of `panic:1`, forcing a shard
    /// panic for `catch_unwind` to contain.
    pub panic_every: u32,
    /// Client-side: write only half the request frame, then close
    /// (exercises the server's short-read handling).
    pub short_write_every: u32,
}

impl ServiceFaultPlan {
    /// A plan that injects nothing (the default).
    pub const NONE: ServiceFaultPlan = ServiceFaultPlan {
        drop_every: 0,
        delay_every: 0,
        delay_ms: 0,
        panic_every: 0,
        short_write_every: 0,
    };

    /// Whether this plan injects no faults at all.
    pub fn is_inert(&self) -> bool {
        self.drop_every == 0
            && self.delay_every == 0
            && self.panic_every == 0
            && self.short_write_every == 0
    }

    fn every(period: u32, seq: u64) -> bool {
        period > 0 && seq > 0 && seq.is_multiple_of(u64::from(period))
    }

    /// Whether request `seq` (1-based) gets its reply dropped.
    pub fn drops(&self, seq: u64) -> bool {
        Self::every(self.drop_every, seq)
    }

    /// The processing delay for request `seq`, if one triggers.
    pub fn delay(&self, seq: u64) -> Option<Duration> {
        Self::every(self.delay_every, seq).then(|| Duration::from_millis(u64::from(self.delay_ms)))
    }

    /// Whether request `seq` forces a shard panic.
    pub fn panics(&self, seq: u64) -> bool {
        Self::every(self.panic_every, seq)
    }

    /// Whether request `seq` is short-written by the client.
    pub fn short_writes(&self, seq: u64) -> bool {
        Self::every(self.short_write_every, seq)
    }

    /// Parse a spec: comma-separated clauses out of `drop:k`,
    /// `delay-ms:d:k`, `panic:k`, `short-write:k`; `""`/`"none"` is inert.
    pub fn parse(spec: &str) -> Result<ServiceFaultPlan, String> {
        let mut plan = ServiceFaultPlan::default();
        if spec.is_empty() || spec == "none" {
            return Ok(plan);
        }
        for clause in spec.split(',') {
            let (kind, rest) = clause
                .split_once(':')
                .ok_or_else(|| format!("service fault clause `{clause}` is not `kind:arg`"))?;
            let num = |s: &str| -> Result<u32, String> {
                s.parse()
                    .map_err(|_| format!("bad number `{s}` in `{clause}`"))
            };
            match kind {
                "drop" => plan.drop_every = num(rest)?,
                "delay-ms" => {
                    let (d, k) = rest
                        .split_once(':')
                        .ok_or_else(|| format!("`{clause}` is not `delay-ms:millis:k`"))?;
                    plan.delay_ms = num(d)?;
                    plan.delay_every = num(k)?;
                }
                "panic" => plan.panic_every = num(rest)?,
                "short-write" => plan.short_write_every = num(rest)?,
                other => return Err(format!("unknown service fault kind `{other}`")),
            }
        }
        Ok(plan)
    }

    /// The canonical spec string (round-trips through
    /// [`ServiceFaultPlan::parse`]; `"none"` when inert). Echoed into
    /// ready/report lines so a chaos run is self-describing.
    pub fn spec(&self) -> String {
        if self.is_inert() {
            return "none".into();
        }
        let mut parts = Vec::new();
        if self.drop_every > 0 {
            parts.push(format!("drop:{}", self.drop_every));
        }
        if self.delay_every > 0 {
            parts.push(format!("delay-ms:{}:{}", self.delay_ms, self.delay_every));
        }
        if self.panic_every > 0 {
            parts.push(format!("panic:{}", self.panic_every));
        }
        if self.short_write_every > 0 {
            parts.push(format!("short-write:{}", self.short_write_every));
        }
        parts.join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_inert() {
        let p = ServiceFaultPlan::default();
        assert!(p.is_inert());
        assert_eq!(p, ServiceFaultPlan::NONE);
        assert_eq!(p.spec(), "none");
        for seq in 0..10 {
            assert!(!p.drops(seq) && !p.panics(seq) && !p.short_writes(seq));
            assert_eq!(p.delay(seq), None);
        }
    }

    #[test]
    fn every_kth_schedule_is_one_based() {
        let p = ServiceFaultPlan {
            drop_every: 3,
            ..Default::default()
        };
        let fired: Vec<u64> = (0..10).filter(|&s| p.drops(s)).collect();
        assert_eq!(fired, vec![3, 6, 9], "first request never faulted");
        let every = ServiceFaultPlan {
            panic_every: 1,
            ..Default::default()
        };
        assert!(every.panics(1) && every.panics(2));
        assert!(!every.panics(0), "seq 0 is reserved as 'no request'");
    }

    #[test]
    fn delay_carries_duration() {
        let p = ServiceFaultPlan {
            delay_every: 2,
            delay_ms: 40,
            ..Default::default()
        };
        assert_eq!(p.delay(1), None);
        assert_eq!(p.delay(2), Some(Duration::from_millis(40)));
    }

    #[test]
    fn parse_round_trips() {
        for spec in [
            "none",
            "drop:3",
            "delay-ms:40:2",
            "panic:5",
            "short-write:7",
            "drop:3,delay-ms:40:2,panic:5,short-write:7",
        ] {
            let plan = ServiceFaultPlan::parse(spec).expect(spec);
            assert_eq!(plan.spec(), spec, "round-trip of {spec}");
            assert_eq!(ServiceFaultPlan::parse(&plan.spec()).unwrap(), plan);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ServiceFaultPlan::parse("drop").is_err());
        assert!(ServiceFaultPlan::parse("drop:x").is_err());
        assert!(ServiceFaultPlan::parse("delay-ms:40").is_err());
        assert!(ServiceFaultPlan::parse("explode:1").is_err());
        assert!(ServiceFaultPlan::parse("drop:1,,").is_err());
    }
}
