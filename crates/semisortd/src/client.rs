//! The client: framed requests over TCP with a jittered-exponential,
//! budget-capped retry policy.
//!
//! Retry classification follows the degradation ladder: **transport
//! failures** (dropped connections, short reads) and **`overloaded`** /
//! **`engine-poisoned`** replies are retryable — the condition is expected
//! to clear, and backing off is exactly what admission control asks of
//! clients. **`deadline-exceeded`** is not retried (the answer is already
//! late) and neither are invalid-request rejections (retrying a malformed
//! request re-sends the same malformed request).
//!
//! Backoff is exponential with multiplicative jitter in `[0.5, 1.0)` of
//! the nominal delay (decorrelates clients that were shed by the same
//! overload spike) and is capped by a **cumulative sleep budget**: a
//! client gives up when retrying would exceed the budget, bounding the
//! worst-case time a caller spends on one logical request.

use std::io::{self, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::proto::{read_frame, write_frame, Op, Request, Response};

/// Jittered exponential backoff with a cumulative budget.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Nominal delay before the first retry.
    pub base: Duration,
    /// Multiplier applied per retry (nominal delay = base × factor^k).
    pub factor: f64,
    /// Maximum retries (0 = never retry).
    pub max_retries: u32,
    /// Cumulative sleep budget; a retry whose backoff would exceed the
    /// remaining budget is not taken.
    pub budget: Duration,
    /// Seed for the jitter stream (vary per client thread).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: Duration::from_millis(5),
            factor: 2.0,
            max_retries: 6,
            budget: Duration::from_secs(2),
            jitter_seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..Default::default()
        }
    }

    /// The jittered backoff before retry `k` (0-based), or `None` when
    /// `k` exceeds `max_retries` or the remaining budget can't cover it.
    /// `slept` is the total backoff already spent on this request.
    pub fn backoff(&self, k: u32, slept: Duration, jitter: &mut u64) -> Option<Duration> {
        if k >= self.max_retries {
            return None;
        }
        let nominal = self.base.as_secs_f64() * self.factor.powi(k as i32);
        // Multiplicative jitter in [0.5, 1.0): half the nominal delay is
        // always respected, full synchronization never happens.
        let frac = 0.5 + 0.5 * (splitmix64(jitter) >> 11) as f64 / (1u64 << 53) as f64;
        let delay = Duration::from_secs_f64(nominal * frac);
        (slept + delay <= self.budget).then_some(delay)
    }
}

/// The splitmix64 stream (same mixer the engine uses for retry seeds):
/// full avalanche, so adjacent seeds still decorrelate.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *state;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Why a request ultimately failed at the client.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed and retries (if any) were exhausted.
    Io(io::Error),
    /// The server replied with a structured error that is not retried
    /// (or retries were exhausted); carries `(code, kind, message)`.
    Server {
        /// Exit-style code from the wire.
        code: u8,
        /// Stable error kind (`overloaded`, `deadline-exceeded`, …).
        kind: String,
        /// Human-readable detail.
        message: String,
    },
    /// The reply frame did not parse.
    Protocol(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Server {
                code,
                kind,
                message,
            } => write!(f, "server error {kind} (code {code}): {message}"),
            ClientError::Protocol(what) => write!(f, "protocol: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Whether a structured server error kind is worth retrying.
pub fn retryable_kind(kind: &str) -> bool {
    matches!(kind, "overloaded" | "engine-poisoned")
}

/// A connection to a `semisortd` server, reconnecting lazily after
/// transport failures.
pub struct Client {
    addr: String,
    stream: Option<TcpStream>,
    policy: RetryPolicy,
    jitter: u64,
    /// Retries taken across this client's lifetime (observability for the
    /// load generator's report).
    pub retries_taken: u64,
    /// Total backoff slept across this client's lifetime.
    pub backoff_slept: Duration,
}

impl Client {
    /// Create a client for `addr` (e.g. `127.0.0.1:7400`). Connects on
    /// first use.
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> Client {
        let policy = RetryPolicy {
            jitter_seed: policy.jitter_seed,
            ..policy
        };
        Client {
            addr: addr.into(),
            stream: None,
            jitter: policy.jitter_seed,
            policy,
            retries_taken: 0,
            backoff_slept: Duration::ZERO,
        }
    }

    fn stream(&mut self) -> io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let s = TcpStream::connect(&self.addr)?;
            s.set_nodelay(true)?;
            self.stream = Some(s);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// One send/receive without retries. Transport errors drop the
    /// connection so the next attempt reconnects.
    fn request_once(&mut self, frame: &[u8]) -> Result<Response, ClientError> {
        let attempt = (|| -> io::Result<Option<Vec<u8>>> {
            let s = self.stream()?;
            write_frame(s, frame)?;
            read_frame(s)
        })();
        match attempt {
            Ok(Some(payload)) => {
                Response::decode(&payload).ok_or(ClientError::Protocol("unparseable response"))
            }
            Ok(None) => {
                // Server hung up without replying (drop fault / died).
                self.stream = None;
                Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    "server closed connection without a reply",
                )))
            }
            Err(e) => {
                self.stream = None;
                Err(ClientError::Io(e))
            }
        }
    }

    /// Send a request, applying the retry policy to transport failures
    /// and retryable server errors.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        let frame = req.encode();
        let mut slept = Duration::ZERO;
        let mut k = 0u32;
        loop {
            let outcome = self.request_once(&frame);
            let retryable = match &outcome {
                Ok(Response::Error { kind, .. }) => retryable_kind(kind),
                Ok(_) => return outcome,
                Err(ClientError::Io(_)) => true,
                Err(_) => false,
            };
            if !retryable {
                return finalize(outcome);
            }
            match self.policy.backoff(k, slept, &mut self.jitter) {
                Some(delay) => {
                    std::thread::sleep(delay);
                    slept += delay;
                    self.backoff_slept += delay;
                    self.retries_taken += 1;
                    k += 1;
                }
                None => return finalize(outcome),
            }
        }
    }

    /// Convenience: semisort `records` with an optional deadline.
    pub fn semisort(
        &mut self,
        records: Vec<(u64, u64)>,
        deadline_ms: u32,
    ) -> Result<Response, ClientError> {
        self.request(&Request {
            op: Op::Semisort,
            deadline_ms,
            records,
        })
    }

    /// Convenience: fetch the server's stats JSON.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.request(&Request {
            op: Op::Stats,
            deadline_ms: 0,
            records: vec![],
        })? {
            Response::Stats(json) => Ok(json),
            _ => Err(ClientError::Protocol("stats reply had wrong variant")),
        }
    }

    /// Convenience: ask the server to drain and shut down.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request {
            op: Op::Shutdown,
            deadline_ms: 0,
            records: vec![],
        })? {
            Response::ShutdownAck => Ok(()),
            _ => Err(ClientError::Protocol("shutdown reply had wrong variant")),
        }
    }

    /// Chaos helper: write `frac` of the request frame, flush, and close
    /// the connection — the client side of a short-read fault. The next
    /// request reconnects.
    pub fn short_write(&mut self, req: &Request, frac: f64) -> io::Result<()> {
        let frame = req.encode();
        let cut = ((frame.len() as f64 * frac.clamp(0.0, 1.0)) as usize).min(frame.len());
        let s = self.stream()?;
        s.write_all(&frame[..cut])?;
        s.flush()?;
        self.stream = None; // drop → close
        Ok(())
    }
}

/// Turn a retryable-but-exhausted outcome into its terminal error form.
fn finalize(outcome: Result<Response, ClientError>) -> Result<Response, ClientError> {
    match outcome {
        Ok(Response::Error {
            code,
            kind,
            message,
        }) => Err(ClientError::Server {
            code,
            kind,
            message,
        }),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_jittered_exponential_and_budget_capped() {
        let policy = RetryPolicy {
            base: Duration::from_millis(10),
            factor: 2.0,
            max_retries: 10,
            budget: Duration::from_millis(100),
            jitter_seed: 7,
        };
        let mut jitter = policy.jitter_seed;
        let mut slept = Duration::ZERO;
        let mut delays = Vec::new();
        let mut k = 0;
        while let Some(d) = policy.backoff(k, slept, &mut jitter) {
            // Jitter keeps every delay within [0.5, 1.0) of nominal.
            let nominal = policy.base.as_secs_f64() * policy.factor.powi(k as i32);
            assert!(d.as_secs_f64() >= nominal * 0.5 - 1e-9, "k={k}");
            assert!(d.as_secs_f64() < nominal + 1e-9, "k={k}");
            slept += d;
            delays.push(d);
            k += 1;
        }
        assert!(!delays.is_empty(), "some retries must fit the budget");
        assert!(slept <= policy.budget, "cumulative sleep within budget");
        // The budget stops it well before max_retries (10 nominal retries
        // would sleep > 10s against a 100ms budget).
        assert!(k < policy.max_retries);
    }

    #[test]
    fn zero_retries_means_none() {
        let policy = RetryPolicy::none();
        let mut jitter = 1;
        assert_eq!(policy.backoff(0, Duration::ZERO, &mut jitter), None);
    }

    #[test]
    fn jitter_streams_decorrelate_by_seed() {
        let policy = RetryPolicy::default();
        let mut a_seed = 1u64;
        let mut b_seed = 2u64;
        let a = policy.backoff(3, Duration::ZERO, &mut a_seed);
        let b = policy.backoff(3, Duration::ZERO, &mut b_seed);
        assert_ne!(a, b, "different seeds should jitter differently");
    }

    #[test]
    fn retryable_kinds_follow_the_ladder() {
        assert!(retryable_kind("overloaded"));
        assert!(retryable_kind("engine-poisoned"));
        assert!(!retryable_kind("deadline-exceeded"));
        assert!(!retryable_kind("invalid-request"));
        assert!(!retryable_kind("invalid-config"));
    }
}
