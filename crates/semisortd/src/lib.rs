//! `semisortd`: a long-running semisort service built for overload.
//!
//! The library crates answer *"how fast can one semisort go?"*; this crate
//! answers *"what happens when a million of them arrive at once?"*. The
//! design goal is **survival under load** (DESIGN.md §14): bounded memory,
//! bounded latency, and structured failure instead of crashes.
//!
//! # Architecture
//!
//! One [`server::Server`] owns a fixed set of **engine shards** — each a
//! [`semisort::Semisorter`] pinned to its own worker thread with a warm
//! scratch pool and a bounded request queue. Connections (TCP or stdio)
//! speak the length-prefixed protocol of [`proto`]; each parsed request
//! passes **admission control** (drain state, request-size cap, arena-byte
//! estimate, queue capacity) before it may touch an engine. Requests that
//! fail admission are *shed* with a structured `overloaded` error —
//! the server never queues unboundedly and never blocks the accept path on
//! engine work.
//!
//! # The degradation ladder
//!
//! In order of increasing distress, a request can experience:
//!
//! 1. **Served** — admitted, semisorted within its deadline.
//! 2. **Shed** — rejected at admission with `overloaded` (the client's
//!    [`client::RetryPolicy`] backs off and retries).
//! 3. **Deadlined** — admitted but its per-request deadline expired; the
//!    engine's [`semisort::CancelToken`] is polled at phase boundaries,
//!    so the run aborts all-or-nothing and the client gets
//!    `deadline-exceeded` (not retried: the answer is already late).
//! 4. **Poisoned** — the engine panicked mid-run. `catch_unwind` contains
//!    the unwind, the request fails with `engine-poisoned`, and the shard
//!    transparently **rebuilds** a fresh engine before its next request.
//! 5. **Drained** — on shutdown the server stops admitting, answers every
//!    in-flight request, then exits cleanly.
//!
//! Every rung increments a counter on [`semisort::ServiceCounters`],
//! surfaced through the `service` section of the `semisort-stats-v2` JSON.
//!
//! The [`faults`] module extends the deterministic fault discipline of
//! [`semisort::FaultPlan`] to the service layer (dropped replies, delayed
//! processing, forced shard panics, short writes), which is what lets the
//! chaos soak in `semisortd-load` *prove* the ladder end-to-end.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod client;
pub mod faults;
pub mod latency;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError, RetryPolicy};
pub use faults::ServiceFaultPlan;
pub use latency::LatencyRecorder;
pub use proto::{Op, Request, Response};
pub use server::{Server, ServerConfig};
