//! Latency recording for sustained-throughput reporting.
//!
//! The load generator records one microsecond sample per *successful*
//! request and reports records/sec plus p50/p99 request latency — the
//! sustained-throughput entries appended to `BENCH_semisort.json`.

/// A bag of microsecond latency samples with percentile queries.
///
/// Samples are kept raw (one `u64` each); percentiles sort a copy on
/// demand. For the load generator's scale (≤ millions of samples) that is
/// simpler and more exact than a sketch.
#[derive(Clone, Debug, Default)]
pub struct LatencyRecorder {
    samples_us: Vec<u64>,
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record_us(&mut self, us: u64) {
        self.samples_us.push(us);
    }

    /// Merge another recorder's samples into this one (per-thread
    /// recorders, merged at report time).
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples_us.extend_from_slice(&other.samples_us);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    /// The `q`-quantile (0.0 ≤ q ≤ 1.0) in microseconds, by the
    /// nearest-rank method. `None` when empty.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        if self.samples_us.is_empty() {
            return None;
        }
        let mut sorted = self.samples_us.clone();
        sorted.sort_unstable();
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank: ceil(q * N), 1-based; q = 0 maps to rank 1.
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        Some(sorted[rank - 1])
    }

    /// Median latency in seconds. `None` when empty.
    pub fn p50_s(&self) -> Option<f64> {
        self.quantile_us(0.50).map(|us| us as f64 / 1e6)
    }

    /// 99th-percentile latency in seconds. `None` when empty.
    pub fn p99_s(&self) -> Option<f64> {
        self.quantile_us(0.99).map(|us| us as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_quantiles() {
        let r = LatencyRecorder::new();
        assert!(r.is_empty());
        assert_eq!(r.quantile_us(0.5), None);
        assert_eq!(r.p50_s(), None);
        assert_eq!(r.p99_s(), None);
    }

    #[test]
    fn nearest_rank_quantiles() {
        let mut r = LatencyRecorder::new();
        for us in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            r.record_us(us);
        }
        assert_eq!(r.len(), 10);
        assert_eq!(r.quantile_us(0.0), Some(10));
        assert_eq!(r.quantile_us(0.50), Some(50));
        assert_eq!(r.quantile_us(0.99), Some(100));
        assert_eq!(r.quantile_us(1.0), Some(100));
        assert_eq!(r.p50_s(), Some(50e-6));
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyRecorder::new();
        a.record_us(1);
        let mut b = LatencyRecorder::new();
        b.record_us(3);
        b.record_us(2);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.quantile_us(1.0), Some(3));
        // Order of recording doesn't matter.
        assert_eq!(a.quantile_us(0.5), Some(2));
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut r = LatencyRecorder::new();
        r.record_us(77);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(r.quantile_us(q), Some(77));
        }
    }
}
