//! `semisortd-load` — chaos soak and sustained-throughput load generator.
//!
//! Hosts a [`semisortd::Server`] in-process on `127.0.0.1:0`, hammers it
//! from `--concurrency` client threads (each with a jittered-exponential,
//! budget-capped retry policy), and verifies the degradation ladder held:
//!
//! * every request ends in exactly one rung — served correctly, shed with
//!   a structured `overloaded`, expired with `deadline-exceeded`, failed
//!   with `engine-poisoned` (and the shard came back), or dropped by an
//!   injected transport fault;
//! * served replies are genuinely semisorted (spot-checked);
//! * counters reconcile: `admitted = completed + deadline_exceeded +
//!   cancelled + engine-poisoned failures`;
//! * the final drain completes and the process never aborts.
//!
//! Any violated invariant prints `{"event":"violation",...}` and exits 1 —
//! which is what CI's chaos-soak job asserts on. On success it prints one
//! `{"event":"load-report",...}` line with sustained records/sec and
//! p50/p99 request latency, and (unless `--trajectory none`) appends a
//! `semisort-bench-v1` service record to `BENCH_semisort.json`.
//!
//! ```sh
//! semisortd-load --requests 200 --concurrency 4 --n 50k \
//!     --server-fault drop:17,delay-ms:30:11,panic:23 \
//!     --client-fault short-write:13 --deadline-ms 2000
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use semisort::{Json, SemisortConfig};
use semisortd::{
    Client, ClientError, LatencyRecorder, Op, Request, Response, RetryPolicy, Server, ServerConfig,
    ServiceFaultPlan,
};
use workloads::Distribution;

/// Everything the client threads tally, merged into the final report.
#[derive(Default)]
struct Tally {
    sent: AtomicU64,
    ok: AtomicU64,
    shed: AtomicU64,
    deadline: AtomicU64,
    poisoned: AtomicU64,
    transport: AtomicU64,
    short_written: AtomicU64,
    violations: AtomicU64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = parse_flags(&args);

    let requests: u64 = flags.parse_or("requests", 200);
    let concurrency: usize = flags.parse_or("concurrency", 4);
    let n: usize = flags.get("n").map(parse_count).unwrap_or(20_000);
    let deadline_ms: u32 = flags.parse_or("deadline-ms", 0);
    let server_fault = flags
        .get("server-fault")
        .map(|s| ServiceFaultPlan::parse(s).unwrap_or_else(|e| die(&e)))
        .unwrap_or(ServiceFaultPlan::NONE);
    let client_fault = flags
        .get("client-fault")
        .map(|s| ServiceFaultPlan::parse(s).unwrap_or_else(|e| die(&e)))
        .unwrap_or(ServiceFaultPlan::NONE);
    let trajectory = flags.get("trajectory").unwrap_or("none").to_string();

    let mut engine = SemisortConfig::default();
    if let Some(v) = flags.get("max-arena-bytes") {
        engine.max_arena_bytes = parse_count(v);
    }
    if let Some(v) = flags.get("max-scratch-bytes") {
        engine.max_scratch_bytes = parse_count(v);
    }
    let cfg = ServerConfig {
        shards: flags.parse_or("shards", 2),
        queue_depth: flags.parse_or("queue-depth", 4),
        max_request_records: flags
            .get("max-request-records")
            .map(parse_count)
            .unwrap_or(1 << 22),
        engine,
        fault: server_fault,
    };
    let server = Server::start(cfg, 0).unwrap_or_else(|e| die(&format!("server start: {e}")));
    let addr = format!("127.0.0.1:{}", server.port());
    eprintln!(
        "{{\"event\":\"ready\",\"addr\":\"{addr}\",\"server_fault\":\"{}\",\"client_fault\":\"{}\"}}",
        cfg.fault.spec(),
        client_fault.spec()
    );

    // One fixed input per run: sorted once up front, every served reply is
    // checked against the same grouping invariant.
    let records = workloads::generate(
        Distribution::Uniform {
            n: (n as u64 / 4).max(1),
        },
        n,
        42,
    );

    let tally = Arc::new(Tally::default());
    let latency = std::sync::Mutex::new(LatencyRecorder::new());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..concurrency {
            let tally = Arc::clone(&tally);
            let addr = addr.clone();
            let records = &records;
            let latency = &latency;
            scope.spawn(move || {
                let policy = RetryPolicy {
                    jitter_seed: 0x1_0000 + t as u64,
                    ..RetryPolicy::default()
                };
                let mut client = Client::new(addr, policy);
                let mut local = LatencyRecorder::new();
                let mut seq = 0u64;
                // ORDERING: Relaxed work-claiming ticket; only RMW
                // atomicity is needed to split `requests` across workers.
                // publishes-via: none needed (RMW atomicity suffices)
                while tally.sent.fetch_add(1, Ordering::Relaxed) < requests {
                    seq += 1;
                    let req = Request {
                        op: match seq % 3 {
                            0 => Op::CountByKey,
                            1 => Op::Semisort,
                            _ => Op::GroupBy,
                        },
                        deadline_ms,
                        records: records.clone(),
                    };
                    if client_fault.short_writes(seq) {
                        // Send a truncated frame and hang up: the server
                        // must treat it as a dead session, not a request.
                        let _ = client.short_write(&req, 0.5);
                // ORDERING: Relaxed load-harness tally; totals are read
                // after the thread scope joins.
                // publishes-via: fork-join barrier (thread scope join)
                        tally.short_written.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    let t0 = Instant::now();
                    match client.request(&req) {
                        Ok(resp) => {
                            local.record_us(t0.elapsed().as_micros() as u64);
                // ORDERING: Relaxed load-harness tally; totals are read
                // after the thread scope joins.
                // publishes-via: fork-join barrier (thread scope join)
                            tally.ok.fetch_add(1, Ordering::Relaxed);
                            if !reply_is_sound(&req, &resp) {
                                // ORDERING: as above. publishes-via:
                                // fork-join barrier (thread scope join)
                                tally.violations.fetch_add(1, Ordering::Relaxed);
                                eprintln!(
                                    "{{\"event\":\"violation\",\"what\":\"unsound reply\",\"seq\":{seq}}}"
                                );
                            }
                        }
                        Err(ClientError::Server { kind, .. }) => match kind.as_str() {
                            "overloaded" => {
                                // ORDERING: Relaxed tally (see above).
                                // publishes-via: fork-join barrier
                                tally.shed.fetch_add(1, Ordering::Relaxed);
                            }
                            "deadline-exceeded" => {
                                // ORDERING: as above. publishes-via:
                                // fork-join barrier (thread scope join)
                                tally.deadline.fetch_add(1, Ordering::Relaxed);
                            }
                            "engine-poisoned" => {
                                // ORDERING: as above. publishes-via:
                                // fork-join barrier (thread scope join)
                                tally.poisoned.fetch_add(1, Ordering::Relaxed);
                            }
                            other => {
                                // ORDERING: as above. publishes-via:
                                // fork-join barrier (thread scope join)
                                tally.violations.fetch_add(1, Ordering::Relaxed);
                                eprintln!(
                                    "{{\"event\":\"violation\",\"what\":\"unexpected error kind {other}\",\"seq\":{seq}}}"
                                );
                            }
                        },
                        Err(ClientError::Io(_)) => {
                            // Retries exhausted against injected drops —
                            // an accepted rung, not a violation.
                            // ORDERING: as above. publishes-via:
                            // fork-join barrier (thread scope join)
                            tally.transport.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ClientError::Protocol(what)) => {
                            // ORDERING: as above. publishes-via:
                            // fork-join barrier (thread scope join)
                            tally.violations.fetch_add(1, Ordering::Relaxed);
                            eprintln!(
                                "{{\"event\":\"violation\",\"what\":\"protocol: {what}\",\"seq\":{seq}}}"
                            );
                        }
                    }
                }
                latency.lock().unwrap().merge(&local);
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();

    // Post-soak probe: whatever the chaos did, a fresh request on a clean
    // connection must succeed — shards poisoned mid-soak must have been
    // rebuilt.
    let mut probe = Client::new(addr.clone(), RetryPolicy::default());
    let probe_records: Vec<(u64, u64)> = (0..64u64).map(|i| (i % 5, i)).collect();
    match probe.semisort(probe_records, 0) {
        Ok(Response::Records(r)) if r.len() == 64 => {}
        other => {
            // ORDERING: Relaxed post-join tally; the worker scope ended.
            // publishes-via: single-threaded from here on
            tally.violations.fetch_add(1, Ordering::Relaxed);
            eprintln!("{{\"event\":\"violation\",\"what\":\"post-soak probe failed: {other:?}\"}}");
        }
    }

    let stats_json = probe
        .stats()
        .unwrap_or_else(|e| die(&format!("stats fetch: {e}")));
    let stats = Json::parse(&stats_json).unwrap_or_else(|_| die("stats reply is not JSON"));

    // Drain via the protocol, then stop. The drain must complete (this
    // returns) and count exactly once.
    probe
        .shutdown()
        .unwrap_or_else(|e| die(&format!("shutdown: {e}")));
    let snap = server.counters();
    server.drain_and_stop();

    // Counter reconciliation: every admitted request reached exactly one
    // terminal rung inside the server.
    let accounted =
        snap.completed + snap.deadline_exceeded + snap.cancelled + snap.panics_contained;
    if snap.admitted != accounted {
        // ORDERING: Relaxed post-join tally (single-threaded here).
        // publishes-via: single-threaded from here on
        tally.violations.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "{{\"event\":\"violation\",\"what\":\"counter mismatch\",\"admitted\":{},\"accounted\":{accounted}}}",
            snap.admitted
        );
    }
    if snap.panics_contained != snap.shards_rebuilt {
        // ORDERING: as above. publishes-via: single-threaded from here on
        tally.violations.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "{{\"event\":\"violation\",\"what\":\"poisoned shard not rebuilt\",\"panics\":{},\"rebuilt\":{}}}",
            snap.panics_contained, snap.shards_rebuilt
        );
    }
    if snap.drains != 1 {
        // ORDERING: as above. publishes-via: single-threaded from here on
        tally.violations.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "{{\"event\":\"violation\",\"what\":\"drain count\",\"drains\":{}}}",
            snap.drains
        );
    }

    let lat = latency.into_inner().unwrap();
    // ORDERING: Relaxed post-join reads; all workers joined above.
    // publishes-via: fork-join barrier (thread scope join)
    let ok = tally.ok.load(Ordering::Relaxed);
    let records_per_s = (ok as f64 * n as f64) / wall_s.max(1e-9);
    let p50 = lat.p50_s().unwrap_or(0.0);
    let p99 = lat.p99_s().unwrap_or(0.0);
    // ORDERING: as above. publishes-via: fork-join barrier
    let violations = tally.violations.load(Ordering::Relaxed);
    // ORDERING: Relaxed post-join tally reads (see `ok` above).
    // publishes-via: fork-join barrier (thread scope join)
    println!(
        "{{\"event\":\"load-report\",\"requests\":{requests},\"ok\":{ok},\"shed\":{},\"deadline\":{},\"poisoned\":{},\"transport\":{},\"short_written\":{},\"violations\":{violations},\"wall_s\":{wall_s:.3},\"records_per_s\":{records_per_s:.0},\"latency_p50_s\":{p50:.6},\"latency_p99_s\":{p99:.6},\"server\":{{\"admitted\":{},\"completed\":{},\"shed_overload\":{},\"deadline_exceeded\":{},\"panics_contained\":{},\"shards_rebuilt\":{},\"drains\":{}}}}}",
        tally.shed.load(Ordering::Relaxed),
        tally.deadline.load(Ordering::Relaxed),
        tally.poisoned.load(Ordering::Relaxed),
        tally.transport.load(Ordering::Relaxed),
        tally.short_written.load(Ordering::Relaxed),
        snap.admitted,
        snap.completed,
        snap.shed_overload,
        snap.deadline_exceeded,
        snap.panics_contained,
        snap.shards_rebuilt,
        snap.drains,
    );

    if trajectory != "none" && violations == 0 {
        let record = bench::trajectory::service_record(
            "semisortd-load",
            concurrency,
            wall_s,
            records_per_s,
            p50,
            p99,
            stats,
        );
        bench::trajectory::append_line(&trajectory, &record);
    }

    if violations > 0 {
        std::process::exit(1);
    }
}

/// Spot-check a served reply against the request: right shape, right
/// size, and (for `Semisort`/`GroupBy`) equal keys are contiguous.
fn reply_is_sound(req: &Request, resp: &Response) -> bool {
    match (req.op, resp) {
        (Op::Semisort, Response::Records(out)) => {
            out.len() == req.records.len() && keys_are_grouped(out)
        }
        (Op::GroupBy, Response::Groups { records, starts }) => {
            records.len() == req.records.len()
                && keys_are_grouped(records)
                && starts.last().copied().unwrap_or(0) as usize == records.len()
        }
        (Op::CountByKey, Response::Counts(counts)) => {
            counts.iter().map(|&(_, c)| c).sum::<u64>() == req.records.len() as u64
        }
        _ => false,
    }
}

fn keys_are_grouped(records: &[(u64, u64)]) -> bool {
    let mut seen = std::collections::HashSet::new();
    let mut prev = None;
    for &(k, _) in records {
        if prev != Some(k) && !seen.insert(k) {
            return false; // key reappeared after its run ended
        }
        prev = Some(k);
    }
    true
}

fn die(msg: &str) -> ! {
    eprintln!("{{\"event\":\"violation\",\"what\":\"{msg}\"}}");
    std::process::exit(1);
}

struct Flags(Vec<(String, String)>);

impl Flags {
    fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
    fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("bad value `{v}` for --{name}");
                std::process::exit(2);
            }),
            None => default,
        }
    }
}

fn parse_flags(args: &[String]) -> Flags {
    let mut out = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let Some(name) = a.strip_prefix("--") else {
            eprintln!("unexpected argument {a}");
            std::process::exit(2);
        };
        let value = match it.peek() {
            Some(v) if !v.starts_with("--") => it.next().unwrap().clone(),
            _ => "true".to_string(),
        };
        out.push((name.to_string(), value));
    }
    Flags(out)
}

fn parse_count(s: &str) -> usize {
    let lower = s.to_ascii_lowercase();
    let (head, mult) = match lower.chars().last() {
        Some('k') => (&lower[..lower.len() - 1], 1_000f64),
        Some('m') => (&lower[..lower.len() - 1], 1_000_000f64),
        Some('g') => (&lower[..lower.len() - 1], 1_000_000_000f64),
        _ => (lower.as_str(), 1f64),
    };
    (head.parse::<f64>().unwrap_or_else(|_| {
        eprintln!("bad count `{s}`");
        std::process::exit(2);
    }) * mult) as usize
}
