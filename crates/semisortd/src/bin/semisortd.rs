//! `semisortd` — the overload-safe semisort service.
//!
//! ```sh
//! semisortd --port 7400 --shards 4 --queue-depth 4 \
//!           --max-arena-bytes 256m --max-scratch-bytes 64m
//! ```
//!
//! Listens on `127.0.0.1` (`--port 0` picks a free port), prints one
//! `{"event":"ready","port":N,...}` line to stdout, and serves framed
//! `semisort` / `group_by` / `count_by_key` / `stats` / `shutdown`
//! requests until a client sends `shutdown` (graceful drain) or the
//! process receives SIGTERM. `--stdio` serves a single session over
//! stdin/stdout instead of TCP (for harnesses without sockets).
//!
//! `--fault <spec>` arms the server-side chaos schedule
//! (`drop:k,delay-ms:d:k,panic:k` — see `semisortd::faults`).

use std::io::Write;
use std::time::Duration;

use semisort::SemisortConfig;
use semisortd::{Server, ServerConfig, ServiceFaultPlan};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = parse_flags(&args);
    if flags.has("help") {
        usage_and_exit();
    }

    let mut engine = SemisortConfig::default();
    if let Some(v) = flags.get("max-arena-bytes") {
        engine.max_arena_bytes = parse_bytes(v);
    }
    if let Some(v) = flags.get("max-scratch-bytes") {
        engine.max_scratch_bytes = parse_bytes(v);
    }
    let fault = match flags.get("fault") {
        Some(spec) => ServiceFaultPlan::parse(spec).unwrap_or_else(|e| {
            eprintln!("{{\"event\":\"error\",\"kind\":\"invalid-config\",\"message\":\"{e}\"}}");
            std::process::exit(2);
        }),
        None => ServiceFaultPlan::NONE,
    };
    let cfg = ServerConfig {
        shards: flags
            .get("shards")
            .map(|v| v.parse().unwrap_or_else(|_| bad_flag("shards", v)))
            .unwrap_or(2),
        queue_depth: flags
            .get("queue-depth")
            .map(|v| v.parse().unwrap_or_else(|_| bad_flag("queue-depth", v)))
            .unwrap_or(4),
        max_request_records: flags
            .get("max-request-records")
            .map(parse_bytes)
            .unwrap_or(1 << 22),
        engine,
        fault,
    };
    if let Err(e) = cfg.try_validate() {
        eprintln!(
            "{{\"event\":\"error\",\"kind\":\"{}\",\"message\":\"{}\"}}",
            e.kind(),
            e
        );
        std::process::exit(e.exit_code());
    }

    if flags.has("stdio") {
        // One session over stdin/stdout; the ready line goes to stderr so
        // it doesn't interleave with reply frames.
        let server = Server::start_local(cfg).expect("config validated above");
        eprintln!(
            "{{\"event\":\"ready\",\"transport\":\"stdio\",\"shards\":{},\"fault\":\"{}\"}}",
            cfg.shards,
            cfg.fault.spec()
        );
        let mut stream = StdioStream;
        let end = server.serve_connection(&mut stream);
        server.drain_and_stop();
        match end {
            Ok(_) => std::process::exit(0),
            Err(e) => {
                eprintln!("{{\"event\":\"error\",\"kind\":\"io\",\"message\":\"{e}\"}}");
                std::process::exit(1);
            }
        }
    }

    let port: u16 = flags
        .get("port")
        .map(|v| v.parse().unwrap_or_else(|_| bad_flag("port", v)))
        .unwrap_or(7400);
    let server = match Server::start(cfg, port) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{{\"event\":\"error\",\"kind\":\"io\",\"message\":\"{e}\"}}");
            std::process::exit(1);
        }
    };
    println!(
        "{{\"event\":\"ready\",\"port\":{},\"shards\":{},\"queue_depth\":{},\"fault\":\"{}\"}}",
        server.port(),
        cfg.shards,
        cfg.queue_depth,
        cfg.fault.spec()
    );
    let _ = std::io::stdout().flush();

    // The accept loop and shard workers run on their own threads; the
    // main thread just waits for a protocol-level shutdown.
    while !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(20));
    }
    server.drain_and_stop();
}

/// `Read`+`Write` over the process's stdin/stdout for `--stdio` mode.
struct StdioStream;

impl std::io::Read for StdioStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        std::io::stdin().lock().read(buf)
    }
}

impl std::io::Write for StdioStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        std::io::stdout().lock().write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        std::io::stdout().lock().flush()
    }
}

fn usage_and_exit() -> ! {
    eprintln!(
        "usage:\n  semisortd [--port <p|0>] [--shards <k>] [--queue-depth <k>] [--max-request-records <n>] [--max-arena-bytes <bytes>] [--max-scratch-bytes <bytes>] [--fault <spec>] [--stdio]\n\nfault spec clauses: drop:k, delay-ms:millis:k, panic:k (1-based every-k-th request)"
    );
    std::process::exit(2);
}

fn bad_flag(name: &str, value: &str) -> ! {
    eprintln!("bad value `{value}` for --{name}");
    std::process::exit(2);
}

struct Flags(Vec<(String, String)>);

impl Flags {
    fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
    fn has(&self, name: &str) -> bool {
        self.get(name).is_some()
    }
}

fn parse_flags(args: &[String]) -> Flags {
    let mut out = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let Some(name) = a.strip_prefix("--") else {
            eprintln!("unexpected argument {a}");
            std::process::exit(2);
        };
        let value = match it.peek() {
            Some(v) if !v.starts_with("--") => it.next().unwrap().clone(),
            _ => "true".to_string(),
        };
        out.push((name.to_string(), value));
    }
    Flags(out)
}

/// Parse a byte/count value with optional k/m/g suffix (powers of 1000,
/// matching the CLI's `parse_count`).
fn parse_bytes(s: &str) -> usize {
    let lower = s.to_ascii_lowercase();
    let (head, mult) = match lower.chars().last() {
        Some('k') => (&lower[..lower.len() - 1], 1_000f64),
        Some('m') => (&lower[..lower.len() - 1], 1_000_000f64),
        Some('g') => (&lower[..lower.len() - 1], 1_000_000_000f64),
        _ => (lower.as_str(), 1f64),
    };
    (head.parse::<f64>().unwrap_or_else(|_| {
        eprintln!("bad byte count `{s}`");
        std::process::exit(2);
    }) * mult) as usize
}
