//! The `semisortd` server: engine shards, admission control, panic
//! containment, and graceful drain.
//!
//! # Request path
//!
//! A connection thread parses one [`Request`] at a time and walks the
//! admission ladder (cheapest check first, every rejection a structured
//! `overloaded` reply, never a queue):
//!
//! 1. **drain state** — a draining server admits nothing new;
//! 2. **request-size cap** — `max_request_records` bounds one request's
//!    memory before anything is allocated for it;
//! 3. **arena estimate** — the request's projected scatter-arena demand
//!    (slot size × blowup bound) is checked against the engine's
//!    `max_arena_bytes` budget: work that would be rejected by the engine
//!    mid-run is cheaper to reject at the door;
//! 4. **queue capacity** — a bounded `sync_channel` per shard; `try_send`
//!    round-robins across shards and a full sweep means the server is
//!    saturated — shed, don't buffer.
//!
//! Admitted jobs run on the shard worker, which arms the engine's
//! [`CancelToken`](semisort::CancelToken) with the request deadline, wraps the engine call in
//! `catch_unwind`, and — if the engine panics — **poisons and rebuilds**
//! the shard: the panicking request fails with `engine-poisoned`, the next
//! request gets a fresh engine with a cold pool. Scratch leases are
//! borrow-scoped inside the engine, so an unwind cannot leak or dangle
//! them (see `crates/semisort/tests/poison_recovery.rs`).

use std::io::{self, Read, Write};
use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use semisort::obs::{epoch_micros, log_event_kv, ServiceCounters};
use semisort::scatter::Slot;
use semisort::{SemisortConfig, SemisortError, SemisortStats, Semisorter};

use crate::faults::ServiceFaultPlan;
use crate::proto::{
    read_frame, write_frame, Op, Request, Response, CODE_INVALID_REQUEST, KIND_INVALID_REQUEST,
};

/// Conservative slots-per-record blowup used by the admission estimate.
/// Lemma 3.5 bounds the *expected* slot total by a constant factor of `n`;
/// the repo's `space_is_linear` test observes blowup < 8, and admission
/// wants an upper-ish bound that still admits real work.
const ARENA_BLOWUP_EST: u64 = 4;

/// How the server is sized and what it injects.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Engine shards (one pinned `Semisorter` + worker thread each).
    pub shards: usize,
    /// Bounded queue depth per shard; a full sweep of full queues sheds.
    pub queue_depth: usize,
    /// Per-request record cap (admission rung 2).
    pub max_request_records: usize,
    /// The engine configuration every shard runs (its `max_arena_bytes` /
    /// `max_scratch_bytes` are the service's memory budgets).
    pub engine: SemisortConfig,
    /// Server-side fault schedule (drop / delay / forced panics).
    pub fault: ServiceFaultPlan,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 2,
            queue_depth: 4,
            max_request_records: 1 << 22,
            engine: SemisortConfig::default(),
            fault: ServiceFaultPlan::NONE,
        }
    }
}

impl ServerConfig {
    /// Validate the service-level knobs plus the embedded engine config.
    pub fn try_validate(&self) -> Result<(), SemisortError> {
        if self.shards == 0 {
            return Err(SemisortError::InvalidConfig {
                reason: "shards must be >= 1",
            });
        }
        if self.queue_depth == 0 {
            return Err(SemisortError::InvalidConfig {
                reason: "queue_depth must be >= 1",
            });
        }
        self.engine.try_validate()
    }
}

/// Why a session ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionEnd {
    /// The peer closed the connection (or the transport failed mid-frame).
    Eof,
    /// A `Shutdown` request drained the server; the owner should stop it.
    Shutdown,
    /// A `drop` service fault closed the connection without a reply.
    Dropped,
}

enum ShardMsg {
    Job(Job),
    Stop,
}

struct Job {
    op: Op,
    records: Vec<(u64, u64)>,
    deadline_us: Option<u64>,
    delay: Option<Duration>,
    panic_fault: bool,
    resp: Sender<Response>,
}

struct Inner {
    cfg: ServerConfig,
    counters: ServiceCounters,
    draining: AtomicBool,
    shutdown_requested: AtomicBool,
    stop_accept: AtomicBool,
    /// Jobs admitted (queued or running) and not yet replied to.
    inflight: AtomicU64,
    /// 1-based request sequence for the deterministic fault schedule.
    req_seq: AtomicU64,
    /// Round-robin cursor for shard selection.
    next_shard: AtomicUsize,
    /// Stats of the most recent successful engine run, served by `Stats`.
    last_stats: Mutex<SemisortStats>,
}

/// A running server: engine shards plus (optionally) a TCP accept loop.
///
/// Created with [`Server::start`] (TCP) or [`Server::start_local`]
/// (shards only — sessions are driven explicitly through
/// [`Server::serve_connection`], which is also how stdio mode and the
/// in-process tests work). Stopped with [`Server::drain_and_stop`].
pub struct Server {
    inner: Arc<Inner>,
    senders: Vec<SyncSender<ShardMsg>>,
    shard_threads: Vec<JoinHandle<()>>,
    accept_thread: Option<JoinHandle<()>>,
    port: u16,
}

impl Server {
    /// Start shards and listen on `127.0.0.1:port` (0 picks a free port;
    /// see [`Server::port`]).
    pub fn start(cfg: ServerConfig, port: u16) -> io::Result<Server> {
        let mut server = Server::start_local(cfg).map_err(io::Error::other)?;
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        server.port = listener.local_addr()?.port();
        listener.set_nonblocking(true)?;
        let inner = Arc::clone(&server.inner);
        let senders = server.senders.clone();
        server.accept_thread = Some(
            thread::Builder::new()
                .name("semisortd-accept".into())
                .spawn(move || accept_loop(listener, inner, senders))
                .expect("spawn accept thread"),
        );
        Ok(server)
    }

    /// Start engine shards without a listener. Sessions are served
    /// explicitly via [`Server::serve_connection`].
    pub fn start_local(cfg: ServerConfig) -> Result<Server, SemisortError> {
        cfg.try_validate()?;
        let inner = Arc::new(Inner {
            cfg,
            counters: ServiceCounters::default(),
            draining: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            stop_accept: AtomicBool::new(false),
            inflight: AtomicU64::new(0),
            req_seq: AtomicU64::new(0),
            next_shard: AtomicUsize::new(0),
            last_stats: Mutex::new(SemisortStats::default()),
        });
        let mut senders = Vec::with_capacity(cfg.shards);
        let mut shard_threads = Vec::with_capacity(cfg.shards);
        for shard in 0..cfg.shards {
            let (tx, rx) = mpsc::sync_channel::<ShardMsg>(cfg.queue_depth);
            let inner = Arc::clone(&inner);
            shard_threads.push(
                thread::Builder::new()
                    .name(format!("semisortd-shard-{shard}"))
                    .spawn(move || shard_worker(shard as u32, inner, rx))
                    .expect("spawn shard thread"),
            );
            senders.push(tx);
        }
        Ok(Server {
            inner,
            senders,
            shard_threads,
            accept_thread: None,
            port: 0,
        })
    }

    /// The bound TCP port (0 when started with [`Server::start_local`]).
    pub fn port(&self) -> u16 {
        self.port
    }

    /// A point-in-time snapshot of the service counters.
    pub fn counters(&self) -> semisort::ServiceSnapshot {
        self.inner.counters.snapshot()
    }

    /// Whether a `Shutdown` request has drained the server (the owner
    /// should now call [`Server::drain_and_stop`]).
    pub fn shutdown_requested(&self) -> bool {
        // ORDERING: Acquire pairs with the Release store in the Shutdown
        // handler, so the owner observes the completed drain.
        self.inner.shutdown_requested.load(Ordering::Acquire)
    }

    /// The `semisort-stats-v2` JSON the `Stats` op serves: the most recent
    /// engine run's stats with the `service` section filled in.
    pub fn stats_json(&self) -> String {
        stats_json(&self.inner)
    }

    /// Serve one session (sequence of framed requests) on any transport —
    /// the stdio mode of the binary and the direct-stream tests.
    pub fn serve_connection<S: Read + Write>(&self, stream: &mut S) -> io::Result<SessionEnd> {
        serve_session(stream, &self.inner, &self.senders)
    }

    /// Stop admitting, answer every in-flight request, then stop shards
    /// and the accept loop and join their threads. Idempotent with a
    /// protocol-level `Shutdown` (the drain itself only runs once).
    pub fn drain_and_stop(mut self) {
        drain(&self.inner);
        // ORDERING: Release pairs with the accept loop's Acquire load.
        self.inner.stop_accept.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for tx in &self.senders {
            let _ = tx.send(ShardMsg::Stop);
        }
        for t in self.shard_threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Stop admitting and wait until every admitted request has been replied
/// to. Only the caller that flips the drain flag bumps the counter, so a
/// protocol `Shutdown` followed by [`Server::drain_and_stop`] counts one
/// drain, not two.
fn drain(inner: &Inner) {
    // ORDERING: AcqRel swap elects the single drain owner (exactly one
    // caller sees false) and publishes the flag to admission's Acquire.
    let first = !inner.draining.swap(true, Ordering::AcqRel);
    // ORDERING: Acquire pairs with the AcqRel inflight decrements so a
    // zero count means every reply was fully sent.
    while inner.inflight.load(Ordering::Acquire) > 0 {
        thread::sleep(Duration::from_millis(1));
    }
    if first {
        ServiceCounters::bump(&inner.counters.drains);
        log_event_kv("drain", &[("state", "complete")], &[]);
    }
}

fn stats_json(inner: &Inner) -> String {
    let mut stats = inner
        .last_stats
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    stats.service = Some(inner.counters.snapshot());
    stats.to_json().to_string()
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>, senders: Vec<SyncSender<ShardMsg>>) {
    loop {
        // ORDERING: Acquire pairs with `drain_and_stop`'s Release store.
        if inner.stop_accept.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_nodelay(true);
                let inner = Arc::clone(&inner);
                let senders = senders.clone();
                let _ = thread::Builder::new()
                    .name("semisortd-conn".into())
                    .spawn(move || {
                        let _ = serve_session(&mut stream, &inner, &senders);
                    });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            // Transient accept errors (e.g. the peer already hung up)
            // must not kill the listener.
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn error_response(e: &SemisortError) -> Response {
    Response::Error {
        code: e.exit_code().clamp(0, u8::MAX as i32) as u8,
        kind: e.kind().into(),
        message: e.to_string(),
    }
}

fn invalid_request(message: &str) -> Response {
    Response::Error {
        code: CODE_INVALID_REQUEST,
        kind: KIND_INVALID_REQUEST.into(),
        message: message.into(),
    }
}

/// The projected scatter-arena demand of an `n`-record request, for
/// admission rung 3.
fn estimated_arena_bytes(n: usize) -> u64 {
    (n as u64).saturating_mul(std::mem::size_of::<Slot<u64>>() as u64 * ARENA_BLOWUP_EST)
}

fn serve_session<S: Read + Write>(
    stream: &mut S,
    inner: &Inner,
    senders: &[SyncSender<ShardMsg>],
) -> io::Result<SessionEnd> {
    loop {
        let Some(payload) = read_frame(stream)? else {
            return Ok(SessionEnd::Eof);
        };
        let Some(req) = Request::decode(&payload) else {
            // Malformed but complete frame: structured rejection, keep
            // the connection (the framing is still in sync).
            write_frame(stream, &invalid_request("unparseable request").encode())?;
            continue;
        };
        match req.op {
            Op::Stats => {
                write_frame(stream, &Response::Stats(stats_json(inner)).encode())?;
            }
            Op::Shutdown => {
                drain(inner);
                // ORDERING: Release — the owner's Acquire in
                // `shutdown_requested` must see the finished drain above.
                inner.shutdown_requested.store(true, Ordering::Release);
                write_frame(stream, &Response::ShutdownAck.encode())?;
                return Ok(SessionEnd::Shutdown);
            }
            Op::Semisort | Op::GroupBy | Op::CountByKey => {
                // ORDERING: Relaxed sequence tick — only uniqueness is
                // needed (fault injection keys off it), no ordering.
                // publishes-via: none needed — RMW atomicity suffices
                let seq = inner.req_seq.fetch_add(1, Ordering::Relaxed) + 1;
                if inner.cfg.fault.drops(seq) {
                    // Simulated network failure: no reply, connection
                    // gone. The client's retry policy owns recovery.
                    return Ok(SessionEnd::Dropped);
                }
                let resp = admit_and_run(inner, senders, req, seq);
                write_frame(stream, &resp.encode())?;
            }
        }
    }
}

/// Admission rungs 1–4, then hand the job to a shard and wait for its
/// reply. Every rejection is an `overloaded` [`Response::Error`].
fn admit_and_run(
    inner: &Inner,
    senders: &[SyncSender<ShardMsg>],
    req: Request,
    seq: u64,
) -> Response {
    let n = req.records.len();
    let shed = |reason: &'static str, required: u64, limit: u64| {
        ServiceCounters::bump(&inner.counters.shed_overload);
        log_event_kv(
            "shed",
            &[("reason", reason)],
            &[("n", n as u64), ("seq", seq)],
        );
        error_response(&SemisortError::Overloaded {
            reason,
            required,
            limit,
        })
    };
    // ORDERING: Acquire pairs with `drain`'s AcqRel swap.
    if inner.draining.load(Ordering::Acquire) {
        return shed("draining", 1, 0);
    }
    if n > inner.cfg.max_request_records {
        return shed(
            "request-too-large",
            n as u64,
            inner.cfg.max_request_records as u64,
        );
    }
    let budget = inner.cfg.engine.max_arena_bytes;
    if budget != usize::MAX {
        let required = estimated_arena_bytes(n);
        if required > budget as u64 {
            return shed("arena-budget", required, budget as u64);
        }
    }
    let deadline_us = (req.deadline_ms > 0)
        .then(|| epoch_micros().saturating_add(u64::from(req.deadline_ms) * 1000));
    let (resp_tx, resp_rx) = mpsc::channel();
    let mut job = Job {
        op: req.op,
        records: req.records,
        deadline_us,
        delay: inner.cfg.fault.delay(seq),
        panic_fault: inner.cfg.fault.panics(seq),
        resp: resp_tx,
    };
    // Count the job in-flight *before* enqueueing so a drain that begins
    // while it sits in a queue still waits for it.
    // ORDERING: AcqRel — the increment must be visible before the job is
    // enqueued so a concurrent drain's Acquire loop waits for it.
    inner.inflight.fetch_add(1, Ordering::AcqRel);
    // ORDERING: Relaxed round-robin cursor; only distribution matters.
    // publishes-via: none needed — RMW atomicity suffices
    let start = inner.next_shard.fetch_add(1, Ordering::Relaxed);
    for i in 0..senders.len() {
        let tx = &senders[(start + i) % senders.len()];
        match tx.try_send(ShardMsg::Job(job)) {
            Ok(()) => {
                ServiceCounters::bump(&inner.counters.admitted);
                // The worker always replies (success, structured error,
                // or poison report) and always decrements inflight.
                return match resp_rx.recv() {
                    Ok(resp) => resp,
                    Err(_) => invalid_request("shard hung up"),
                };
            }
            Err(
                TrySendError::Full(ShardMsg::Job(j)) | TrySendError::Disconnected(ShardMsg::Job(j)),
            ) => {
                job = j;
            }
            Err(_) => unreachable!("only jobs are try_sent"),
        }
    }
    // Every queue full: the server is saturated. Shed.
    // ORDERING: AcqRel undo of the optimistic increment above, same
    // pairing with the drain loop's Acquire.
    inner.inflight.fetch_sub(1, Ordering::AcqRel);
    shed(
        "queue-full",
        (senders.len() * inner.cfg.queue_depth + 1) as u64,
        (senders.len() * inner.cfg.queue_depth) as u64,
    )
}

fn shard_worker(shard: u32, inner: Arc<Inner>, rx: Receiver<ShardMsg>) {
    let base = inner.cfg.engine;
    let mut engine = Semisorter::new(base).expect("config validated at start");
    while let Ok(msg) = rx.recv() {
        let job = match msg {
            ShardMsg::Stop => break,
            ShardMsg::Job(job) => job,
        };
        if let Some(d) = job.delay {
            thread::sleep(d);
        }
        let reply = run_job(shard, &inner, &mut engine, &base, &job);
        // ORDERING: AcqRel — releases the finished job's effects to the
        // drain loop's Acquire read of a zero count.
        inner.inflight.fetch_sub(1, Ordering::AcqRel);
        // A dead session (client hung up mid-wait) is not an error.
        let _ = job.resp.send(reply);
    }
}

fn run_job(
    shard: u32,
    inner: &Inner,
    engine: &mut Semisorter,
    base: &SemisortConfig,
    job: &Job,
) -> Response {
    // Deadline pre-check: a request that expired in the queue must not
    // charge the engine for hashing before the first token poll.
    if let Some(deadline_us) = job.deadline_us {
        let now_us = epoch_micros();
        if now_us >= deadline_us {
            ServiceCounters::bump(&inner.counters.deadline_exceeded);
            return error_response(&SemisortError::DeadlineExceeded {
                deadline_us,
                now_us,
            });
        }
    }
    if job.panic_fault {
        // Arm the forced panic by rebuilding this shard's engine with a
        // plan that panics mid-scatter: the panic then unwinds out of the
        // *shard's own* engine, so the poison/rebuild path below is the
        // real one, not a simulation.
        let mut cfg = *base;
        cfg.fault.panic_attempts = 1;
        *engine = Semisorter::new(cfg).expect("base config already validated");
    }
    let token = engine.cancel_token().clone();
    token.reset();
    if let Some(d) = job.deadline_us {
        token.set_deadline_at(d);
    }
    let result = catch_unwind(AssertUnwindSafe(|| run_op(engine, job.op, &job.records)));
    match result {
        Ok(Ok(resp)) => {
            ServiceCounters::bump(&inner.counters.completed);
            *inner.last_stats.lock().unwrap_or_else(|e| e.into_inner()) =
                engine.last_stats().clone();
            resp
        }
        Ok(Err(e)) => {
            match e {
                SemisortError::DeadlineExceeded { .. } => {
                    ServiceCounters::bump(&inner.counters.deadline_exceeded);
                }
                SemisortError::Cancelled => {
                    ServiceCounters::bump(&inner.counters.cancelled);
                }
                _ => {}
            }
            error_response(&e)
        }
        Err(_panic) => {
            // The engine unwound mid-run: poison it (drop everything it
            // held — leases are borrow-scoped, so nothing dangles) and
            // rebuild from the base config so the next request gets a
            // healthy shard.
            ServiceCounters::bump(&inner.counters.panics_contained);
            *engine = Semisorter::new(*base).expect("base config already validated");
            ServiceCounters::bump(&inner.counters.shards_rebuilt);
            log_event_kv(
                "poisoned",
                &[("action", "rebuilt")],
                &[("shard", u64::from(shard))],
            );
            error_response(&SemisortError::EnginePoisoned { shard })
        }
    }
}

fn run_op(
    engine: &mut Semisorter,
    op: Op,
    records: &[(u64, u64)],
) -> Result<Response, SemisortError> {
    match op {
        Op::Semisort => Ok(Response::Records(engine.sort_by_key(records, |p| p.0)?)),
        Op::GroupBy => {
            let sorted = engine.sort_by_key(records, |p| p.0)?;
            let mut starts: Vec<u32> = vec![0];
            for i in 1..sorted.len() {
                if sorted[i].0 != sorted[i - 1].0 {
                    starts.push(i as u32);
                }
            }
            if sorted.is_empty() {
                // `[0]` alone: zero groups (`starts.len() - 1 == 0`).
            } else {
                starts.push(sorted.len() as u32);
            }
            Ok(Response::Groups {
                records: sorted,
                starts,
            })
        }
        Op::CountByKey => {
            let counts = engine.count_by_key(records, |p| p.0)?;
            Ok(Response::Counts(
                counts.into_iter().map(|(k, c)| (k, c as u64)).collect(),
            ))
        }
        // Routed at the session layer; reaching here is a server bug but
        // must not panic inside the catch_unwind that guards engine runs.
        Op::Stats | Op::Shutdown => Ok(invalid_request("control op routed to a shard")),
    }
}
