//! End-to-end service tests: a real `Server` on a real TCP socket, driven
//! by the real `Client`, exercising every rung of the degradation ladder.

use std::time::Duration;

use semisort::SemisortConfig;
use semisortd::{
    Client, ClientError, Op, Request, Response, RetryPolicy, Server, ServerConfig, ServiceFaultPlan,
};

/// Engine sized so a few thousand records take the full parallel path
/// (forced panics fire mid-scatter, which the sequential fallback never
/// reaches).
fn small_engine() -> SemisortConfig {
    SemisortConfig {
        seq_threshold: 64,
        ..SemisortConfig::default()
    }
}

fn start(cfg: ServerConfig) -> (Server, Client) {
    let server = Server::start(cfg, 0).expect("bind");
    let client = Client::new(format!("127.0.0.1:{}", server.port()), RetryPolicy::none());
    (server, client)
}

fn sample_records(n: usize) -> Vec<(u64, u64)> {
    (0..n as u64).map(|i| (i % 17, i)).collect()
}

fn assert_grouped(records: &[(u64, u64)]) {
    let mut seen = std::collections::HashSet::new();
    let mut prev = None;
    for &(k, _) in records {
        if prev != Some(k) {
            assert!(seen.insert(k), "key {k} appears in two separate runs");
        }
        prev = Some(k);
    }
}

#[test]
fn all_three_ops_round_trip_over_tcp() {
    let (server, mut client) = start(ServerConfig {
        engine: small_engine(),
        ..ServerConfig::default()
    });
    let records = sample_records(4096);

    match client.semisort(records.clone(), 0).expect("semisort") {
        Response::Records(out) => {
            assert_eq!(out.len(), records.len());
            assert_grouped(&out);
            let mut want = records.clone();
            let mut got = out.clone();
            want.sort_unstable();
            got.sort_unstable();
            assert_eq!(want, got, "output is a permutation of the input");
        }
        other => panic!("wrong reply: {other:?}"),
    }

    match client
        .request(&Request {
            op: Op::GroupBy,
            deadline_ms: 0,
            records: records.clone(),
        })
        .expect("group_by")
    {
        Response::Groups {
            records: out,
            starts,
        } => {
            assert_eq!(out.len(), records.len());
            assert_grouped(&out);
            assert_eq!(starts.len(), 17 + 1, "17 distinct keys");
            assert_eq!(*starts.first().unwrap(), 0);
            assert_eq!(*starts.last().unwrap() as usize, out.len());
            for w in starts.windows(2) {
                let (a, b) = (w[0] as usize, w[1] as usize);
                assert!(a < b, "group boundaries strictly increase");
                assert!(
                    out[a..b].iter().all(|r| r.0 == out[a].0),
                    "each group is one key"
                );
            }
        }
        other => panic!("wrong reply: {other:?}"),
    }

    match client
        .request(&Request {
            op: Op::CountByKey,
            deadline_ms: 0,
            records: records.clone(),
        })
        .expect("count_by_key")
    {
        Response::Counts(counts) => {
            assert_eq!(counts.len(), 17);
            assert_eq!(
                counts.iter().map(|&(_, c)| c).sum::<u64>(),
                records.len() as u64
            );
        }
        other => panic!("wrong reply: {other:?}"),
    }

    server.drain_and_stop();
}

#[test]
fn oversized_requests_shed_with_structured_overloaded() {
    let (server, mut client) = start(ServerConfig {
        max_request_records: 100,
        engine: small_engine(),
        ..ServerConfig::default()
    });
    match client.semisort(sample_records(101), 0) {
        Err(ClientError::Server {
            code,
            kind,
            message,
        }) => {
            assert_eq!(kind, "overloaded");
            assert_eq!(code, 3, "Overloaded maps to exit code 3");
            assert!(message.contains("request-too-large"), "message: {message}");
        }
        other => panic!("expected overloaded, got {other:?}"),
    }
    // At the cap is still admitted.
    assert!(client.semisort(sample_records(100), 0).is_ok());
    let snap = server.counters();
    assert_eq!(snap.shed_overload, 1);
    assert_eq!(snap.admitted, 1);
    server.drain_and_stop();
}

#[test]
fn arena_budget_gates_admission() {
    // Budget below the 4-slots-per-record estimate for 4096 records: the
    // request is rejected at the door, deterministically, without running.
    let mut engine = small_engine();
    engine.max_arena_bytes = 4096; // far below estimate for 4096 records
    let (server, mut client) = start(ServerConfig {
        engine,
        ..ServerConfig::default()
    });
    match client.semisort(sample_records(4096), 0) {
        Err(ClientError::Server { kind, message, .. }) => {
            assert_eq!(kind, "overloaded");
            assert!(message.contains("arena-budget"), "message: {message}");
        }
        other => panic!("expected overloaded, got {other:?}"),
    }
    // A request small enough to fit the budget is served (it also fits
    // seq_threshold, so the engine never allocates a big arena).
    assert!(client.semisort(sample_records(32), 0).is_ok());
    server.drain_and_stop();
}

#[test]
fn expired_deadlines_reply_deadline_exceeded() {
    // Every request is delayed 50ms before processing; a 5ms deadline is
    // therefore always expired by the time the shard looks at it.
    let (server, mut client) = start(ServerConfig {
        fault: ServiceFaultPlan::parse("delay-ms:50:1").unwrap(),
        engine: small_engine(),
        ..ServerConfig::default()
    });
    match client.semisort(sample_records(4096), 5) {
        Err(ClientError::Server { code, kind, .. }) => {
            assert_eq!(kind, "deadline-exceeded");
            assert_eq!(code, 4);
        }
        other => panic!("expected deadline-exceeded, got {other:?}"),
    }
    // A generous deadline still succeeds despite the delay.
    assert!(client.semisort(sample_records(4096), 5_000).is_ok());
    let snap = server.counters();
    assert_eq!(snap.deadline_exceeded, 1);
    assert_eq!(snap.completed, 1);
    server.drain_and_stop();
}

#[test]
fn poisoned_shards_rebuild_and_recover() {
    // One shard so the poisoned engine and the follow-up request can't
    // dodge each other; panic on requests 2, 4, 6, …
    let (server, mut client) = start(ServerConfig {
        shards: 1,
        fault: ServiceFaultPlan::parse("panic:2").unwrap(),
        engine: small_engine(),
        ..ServerConfig::default()
    });
    let records = sample_records(4096);
    assert!(
        client.semisort(records.clone(), 0).is_ok(),
        "request 1 clean"
    );
    match client.semisort(records.clone(), 0) {
        Err(ClientError::Server {
            code,
            kind,
            message,
        }) => {
            assert_eq!(kind, "engine-poisoned");
            assert_eq!(code, 6);
            assert!(message.contains("shard 0"), "message: {message}");
        }
        other => panic!("expected engine-poisoned, got {other:?}"),
    }
    // The shard was rebuilt: the very next request (odd seq, no fault)
    // runs on the fresh engine and succeeds.
    match client.semisort(records, 0).expect("rebuilt shard serves") {
        Response::Records(out) => assert_grouped(&out),
        other => panic!("wrong reply: {other:?}"),
    }
    let snap = server.counters();
    assert_eq!(snap.panics_contained, 1);
    assert_eq!(snap.shards_rebuilt, 1);
    assert_eq!(snap.completed, 2);
    server.drain_and_stop();
}

#[test]
fn retry_policy_rides_out_a_poisoned_shard() {
    // With retries enabled the client absorbs the engine-poisoned reply
    // and the retried request lands on the rebuilt engine.
    let (server, client) = start(ServerConfig {
        shards: 1,
        fault: ServiceFaultPlan::parse("panic:2").unwrap(),
        engine: small_engine(),
        ..ServerConfig::default()
    });
    drop(client);
    let mut client = Client::new(
        format!("127.0.0.1:{}", server.port()),
        RetryPolicy::default(),
    );
    let records = sample_records(4096);
    assert!(client.semisort(records.clone(), 0).is_ok());
    // Request 2 panics the shard; the retry (request 3) succeeds.
    assert!(
        client.semisort(records, 0).is_ok(),
        "retry hides the poison"
    );
    assert!(client.retries_taken >= 1);
    assert_eq!(server.counters().panics_contained, 1);
    server.drain_and_stop();
}

#[test]
fn dropped_replies_surface_as_transport_errors_and_reconnect_works() {
    let (server, mut client) = start(ServerConfig {
        fault: ServiceFaultPlan::parse("drop:2").unwrap(),
        engine: small_engine(),
        ..ServerConfig::default()
    });
    let records = sample_records(256);
    assert!(client.semisort(records.clone(), 0).is_ok());
    match client.semisort(records.clone(), 0) {
        Err(ClientError::Io(_)) => {}
        other => panic!("expected a transport error, got {other:?}"),
    }
    // The client reconnects transparently on the next request.
    assert!(client.semisort(records, 0).is_ok());
    server.drain_and_stop();
}

#[test]
fn short_written_frames_do_not_wedge_the_server() {
    let (server, mut client) = start(ServerConfig {
        engine: small_engine(),
        ..ServerConfig::default()
    });
    let records = sample_records(512);
    let req = Request {
        op: Op::Semisort,
        deadline_ms: 0,
        records: records.clone(),
    };
    for _ in 0..3 {
        client.short_write(&req, 0.5).expect("short write");
    }
    // The server tore those sessions down; a full request still works.
    assert!(client.semisort(records, 0).is_ok());
    let snap = server.counters();
    assert_eq!(snap.admitted, 1, "half-frames are never admitted");
    server.drain_and_stop();
}

#[test]
fn shutdown_drains_once_and_draining_server_sheds() {
    let (server, mut client) = start(ServerConfig {
        engine: small_engine(),
        ..ServerConfig::default()
    });
    assert!(client.semisort(sample_records(128), 0).is_ok());
    client.shutdown().expect("shutdown ack");
    assert!(server.shutdown_requested());

    // New work after the drain is shed, not queued.
    let mut late = Client::new(format!("127.0.0.1:{}", server.port()), RetryPolicy::none());
    match late.semisort(sample_records(128), 0) {
        Err(ClientError::Server { kind, message, .. }) => {
            assert_eq!(kind, "overloaded");
            assert!(message.contains("draining"), "message: {message}");
        }
        other => panic!("expected draining shed, got {other:?}"),
    }

    let snap = server.counters();
    assert_eq!(snap.drains, 1);
    server.drain_and_stop();
    // drain_and_stop after a protocol shutdown must not double-count.
}

#[test]
fn stats_op_serves_semisort_stats_v2_with_service_section() {
    let (server, mut client) = start(ServerConfig {
        max_request_records: 100,
        engine: small_engine(),
        ..ServerConfig::default()
    });
    assert!(client.semisort(sample_records(64), 0).is_ok());
    let _ = client.semisort(sample_records(101), 0); // one shed
    let json = client.stats().expect("stats");
    let parsed = semisort::Json::parse(&json).expect("stats JSON parses");
    assert_eq!(
        parsed.get("schema").and_then(semisort::Json::as_str),
        Some("semisort-stats-v2")
    );
    let service = parsed.get("service").expect("service section present");
    assert_eq!(
        service.get("admitted").and_then(semisort::Json::as_u64),
        Some(1)
    );
    assert_eq!(
        service.get("completed").and_then(semisort::Json::as_u64),
        Some(1)
    );
    assert_eq!(
        service
            .get("shed_overload")
            .and_then(semisort::Json::as_u64),
        Some(1)
    );
    server.drain_and_stop();
}

#[test]
fn malformed_frames_get_structured_rejections_without_killing_the_session() {
    use std::io::{Read as _, Write as _};
    let server = Server::start(
        ServerConfig {
            engine: small_engine(),
            ..ServerConfig::default()
        },
        0,
    )
    .expect("bind");
    let mut stream = std::net::TcpStream::connect(("127.0.0.1", server.port())).expect("connect");
    // A complete frame whose payload is garbage.
    stream.write_all(&3u32.to_le_bytes()).unwrap();
    stream.write_all(b"\xff\xff\xff").unwrap();
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).unwrap();
    let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut payload).unwrap();
    match Response::decode(&payload) {
        Some(Response::Error { code, kind, .. }) => {
            assert_eq!(kind, "invalid-request");
            assert_eq!(code, 10);
        }
        other => panic!("expected invalid-request, got {other:?}"),
    }
    // Same connection still serves a valid request afterwards.
    let req = Request {
        op: Op::CountByKey,
        deadline_ms: 0,
        records: sample_records(32),
    };
    stream.write_all(&req.encode()).unwrap(); // encode() includes the prefix
    stream.read_exact(&mut len).unwrap();
    let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut payload).unwrap();
    assert!(matches!(
        Response::decode(&payload),
        Some(Response::Counts(_))
    ));
    server.drain_and_stop();
}

#[test]
fn queue_saturation_sheds_instead_of_buffering() {
    // One shard, depth-1 queue, every job delayed 100ms: park one job in
    // the worker and one in the queue, then a burst of concurrent
    // requests must shed with queue-full (the admission sweep finds every
    // queue busy).
    let (server, _client) = start(ServerConfig {
        shards: 1,
        queue_depth: 1,
        fault: ServiceFaultPlan::parse("delay-ms:100:1").unwrap(),
        engine: small_engine(),
        ..ServerConfig::default()
    });
    let addr = format!("127.0.0.1:{}", server.port());
    let shed_seen = std::sync::atomic::AtomicU64::new(0);
    let ok_seen = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..6 {
            let addr = addr.clone();
            let shed_seen = &shed_seen;
            let ok_seen = &ok_seen;
            scope.spawn(move || {
                let mut c = Client::new(addr, RetryPolicy::none());
                match c.semisort(sample_records(256), 0) {
                    Ok(_) => {
                        ok_seen.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    Err(ClientError::Server { kind, message, .. }) => {
                        assert_eq!(kind, "overloaded");
                        assert!(message.contains("queue-full"), "message: {message}");
                        shed_seen.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    Err(other) => panic!("unexpected failure: {other:?}"),
                }
            });
        }
    });
    let shed = shed_seen.load(std::sync::atomic::Ordering::Relaxed);
    let ok = ok_seen.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(shed + ok, 6);
    assert!(shed >= 1, "a depth-1 queue cannot absorb a 6-wide burst");
    let snap = server.counters();
    assert_eq!(snap.shed_overload, shed);
    assert_eq!(snap.admitted, ok);
    server.drain_and_stop();
}

#[test]
fn drain_waits_for_queued_work() {
    // Two slow jobs in flight, then drain: both must be answered before
    // drain_and_stop returns (inflight reaches zero), and the counters
    // must agree nothing was abandoned.
    let (server, _client) = start(ServerConfig {
        shards: 1,
        queue_depth: 2,
        fault: ServiceFaultPlan::parse("delay-ms:60:1").unwrap(),
        engine: small_engine(),
        ..ServerConfig::default()
    });
    let addr = format!("127.0.0.1:{}", server.port());
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::new(addr, RetryPolicy::none());
                c.semisort(sample_records(256), 0).map(|_| ())
            })
        })
        .collect();
    // Let both requests reach the shard queue before draining.
    std::thread::sleep(Duration::from_millis(20));
    server.drain_and_stop();
    for h in handles {
        h.join()
            .expect("client thread")
            .expect("in-flight requests complete during drain");
    }
}
