//! The high-probability size estimator `f(s)` of §3.1.
//!
//! Given a key set that appears `s` times in a `p`-sample of the input, how
//! big must its bucket be so it overflows with probability at most `n^−c`?
//! Lemma 3.2 answers:
//!
//! ```text
//! f(s) = (s + c·ln n + sqrt(c²·ln²n + 2·s·c·ln n)) / p
//! ```
//!
//! and Lemma 3.5 shows the estimates sum to `Θ(n)` in expectation, so the
//! total allocated space stays linear. The implementation allocates
//! `α·f(s)` slots rounded up to the next power of two (§4 Phase 2, α = 1.1,
//! c = 1.25) — the power-of-two rounding also turns the scatter's modulo
//! into a mask.

/// The estimator `f(s)`: a bound on the number of input records for a key
/// set with `s` sample occurrences, exceeded with probability ≤ `n^−c`.
///
/// `p` is the sampling probability, `ln_n` is `ln` of the input size.
///
/// ```
/// use semisort::estimate::f_estimate;
/// let ln_n = (100_000_000f64).ln();
/// // 16 sample hits at p = 1/16 ⇒ ≈256 expected records; the w.h.p. bound
/// // is necessarily larger, but within a small constant.
/// let f = f_estimate(16, 1.0 / 16.0, 1.25, ln_n);
/// assert!(f > 256.0 && f < 1500.0);
/// ```
#[inline]
pub fn f_estimate(s: usize, p: f64, c: f64, ln_n: f64) -> f64 {
    let s = s as f64;
    let cl = c * ln_n;
    (s + cl + (cl * cl + 2.0 * s * cl).sqrt()) / p
}

/// The bucket capacity actually allocated: `α·f(s)` rounded up to a power
/// of two (never below 2 so a bucket can always absorb CAS retries).
#[inline]
pub fn bucket_capacity(s: usize, p: f64, c: f64, ln_n: f64, alpha: f64) -> usize {
    let raw = (alpha * f_estimate(s, p, c, ln_n)).ceil() as usize;
    raw.max(2).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: f64 = 1.0 / 16.0;
    const C: f64 = 1.25;

    fn ln_n(n: usize) -> f64 {
        (n as f64).ln()
    }

    #[test]
    fn f_is_monotone_in_s() {
        let l = ln_n(100_000_000);
        let mut prev = f_estimate(0, P, C, l);
        for s in 1..1000 {
            let cur = f_estimate(s, P, C, l);
            assert!(cur > prev, "f must increase with s");
            prev = cur;
        }
    }

    #[test]
    fn f_upper_bounds_the_naive_scaleup() {
        // f(s) must exceed s/p — the point of the additive and sqrt terms.
        let l = ln_n(1_000_000);
        for s in 0..10_000 {
            assert!(f_estimate(s, P, C, l) >= s as f64 / P);
        }
    }

    #[test]
    fn f_at_zero_is_positive() {
        // Even an unsampled bucket gets Θ(log n / p) slack: records with
        // unsampled keys still land somewhere.
        let l = ln_n(1_000_000);
        let f0 = f_estimate(0, P, C, l);
        assert!(f0 >= 2.0 * C * l / P - 1e-9);
        assert!(f0 <= 2.0 * C * l / P + 1e-9, "f(0) = 2c·ln n / p exactly");
    }

    #[test]
    fn f_is_a_high_probability_bound_empirically() {
        // Simulate Lemma 3.2: a key with true multiplicity ν = f(s) should
        // yield more than s sample hits almost always. Equivalently, sample
        // ν records at rate p many times; the observed s' should satisfy
        // f(s') ≥ ν in the overwhelming majority of trials.
        use parlay::random::Rng;
        let n = 1_000_000usize;
        let l = ln_n(n);
        let rng = Rng::new(42);
        let mut failures = 0;
        let trials = 300;
        for t in 0..trials {
            let nu = 5_000usize; // true multiplicity
            let stream = rng.fork(t);
            let s_observed = (0..nu).filter(|&i| stream.at_f64(i as u64) < P).count();
            if f_estimate(s_observed, P, C, l) < nu as f64 {
                failures += 1;
            }
        }
        // Lemma 3.2 promises failure probability ≤ n^−c ≈ 3e-8; allow a
        // couple of failures for simulation noise anyway.
        assert!(failures <= 1, "estimator failed {failures}/{trials} trials");
    }

    #[test]
    fn expected_total_is_linear_lemma_3_5() {
        // Σ f(s_i) over buckets should be O(n): simulate the bucket structure
        // of a uniform input — n keys spread over R = n / log²n buckets.
        let n = 1_000_000usize;
        let l = ln_n(n);
        let log2n = (n as f64).log2();
        let r = (n as f64 / (log2n * log2n)) as usize; // ≈ 2500 buckets
        let samples_per_bucket = ((n as f64 * P) / r as f64) as usize;
        let total: f64 = (0..r)
            .map(|_| f_estimate(samples_per_bucket, P, C, l))
            .sum();
        // Lemma 3.5: Θ(n). The constant is modest — check under 4n here.
        assert!(total >= n as f64, "must cover the input");
        assert!(total < 4.0 * n as f64, "total {total} should be O(n)");
    }

    #[test]
    fn capacity_is_power_of_two_and_covers_estimate() {
        let l = ln_n(100_000_000);
        for s in [0usize, 1, 5, 16, 100, 10_000] {
            let cap = bucket_capacity(s, P, C, l, 1.1);
            assert!(cap.is_power_of_two());
            assert!(cap as f64 >= 1.1 * f_estimate(s, P, C, l) - 1.0);
        }
    }

    #[test]
    fn capacity_minimum_is_two() {
        assert!(bucket_capacity(0, 0.5, 0.01, 0.1, 1.01) >= 2);
    }
}
