//! Observability: per-worker telemetry cells, merge sinks, and phase spans.
//!
//! The paper's entire evaluation (Tables 1–3, Figures 1–5, §5.2) is a
//! telemetry exercise — per-phase times, heavy-record fractions, space
//! blowup. This module supplies the machinery to collect the *fine-grained*
//! counterparts (CAS attempts, probe-length distributions, bucket occupancy,
//! retry causes) without perturbing the hot loops it observes:
//!
//! - Workers accumulate into plain, unshared [`WorkerCell`]s (registers and
//!   stack, no atomics) while walking their chunk of the input.
//! - At the end of each chunk — i.e. at the phase's fork-join barrier
//!   granularity — the cell is merged into the shared [`ObsSink`] with a
//!   handful of relaxed `fetch_add`s.
//! - The driver snapshots the sink into [`Telemetry`] (carried by
//!   [`crate::stats::SemisortStats`]) once the phase joins.
//!
//! Collection is gated by [`TelemetryLevel`]: at `Off` the per-record code
//! is a single never-taken branch on a bool hoisted out of the loop, at
//! `Counters` scalar counters are kept, and `Deep` adds the histograms.
//!
//! [`PhaseSpan`] replaces hand-rolled `Instant::now()` pairs for phase
//! timing and, when the `SEMISORT_LOG` environment variable is set to
//! anything other than `0` or the empty string, emits one structured JSON
//! line per span to stderr
//! (`{"event":"span","name":"scatter","t_us":87,"us":1234}`), so a run's
//! phase trace can be scraped without touching the binary's stdout tables.
//!
//! All timestamps — span starts, `SEMISORT_LOG` lines, and the scheduler
//! events in `rayon::trace` — share **one process-wide monotonic epoch**
//! ([`epoch_micros`], delegating to `rayon::trace::epoch_micros`). Earlier
//! versions timed each span with its own `Instant`, so lines from
//! different spans could not be ordered into a timeline; now every `t_us`
//! is an offset on the same axis, which is also what lets the Chrome-trace
//! exporter (`crate::trace`) interleave phase spans with scheduler parks
//! and steals.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// How much telemetry the semisort collects. Ordered: each level includes
/// everything below it.
///
/// Marked `#[non_exhaustive]`: levels may be added in future versions, so
/// downstream `match`es need a wildcard arm.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
#[non_exhaustive]
pub enum TelemetryLevel {
    /// No telemetry: the hot loops keep only the always-on aggregate
    /// counters that existed before this module (phase times, heavy/light
    /// record counts, block-flush totals). The default.
    #[default]
    Off,
    /// Scalar counters: CAS attempts/failures and records placed, merged
    /// per worker chunk.
    Counters,
    /// Counters plus distributions: the linear-probe-length histogram and
    /// the light-bucket occupancy histogram.
    Deep,
}

impl TelemetryLevel {
    /// Whether scalar counters are collected (`Counters` or `Deep`).
    #[inline(always)]
    pub fn counters(self) -> bool {
        self != TelemetryLevel::Off
    }

    /// Whether histograms are collected (`Deep` only).
    #[inline(always)]
    pub fn deep(self) -> bool {
        self == TelemetryLevel::Deep
    }

    /// Parse a CLI spelling (`off`, `counters`, `deep`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(TelemetryLevel::Off),
            "counters" => Some(TelemetryLevel::Counters),
            "deep" => Some(TelemetryLevel::Deep),
            _ => None,
        }
    }

    /// The CLI spelling of this level.
    pub fn as_str(self) -> &'static str {
        match self {
            TelemetryLevel::Off => "off",
            TelemetryLevel::Counters => "counters",
            TelemetryLevel::Deep => "deep",
        }
    }
}

/// Number of histogram buckets. Bucket 0 holds the value 0; bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`; the last bucket absorbs everything
/// larger.
pub const HIST_BUCKETS: usize = 32;

/// A power-of-two-bucketed histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hist {
    /// Per-bucket sample counts (see [`HIST_BUCKETS`] for the bucketing).
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Hist {
    /// Bucket index for a value.
    #[inline(always)]
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Record one sample.
    #[inline(always)]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// Add another histogram into this one.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&b| b == 0)
    }

    /// Inclusive lower bound of bucket `i`'s value range.
    pub fn bucket_lo(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }
}

/// Per-worker telemetry accumulated in plain (unshared) memory while a
/// worker walks its chunk, then merged into the [`ObsSink`] once per chunk.
#[derive(Clone, Debug, Default)]
pub struct WorkerCell {
    /// CAS instructions issued (including ones that lost the race).
    pub cas_attempts: u64,
    /// CAS instructions that lost the race to another worker.
    pub cas_failures: u64,
    /// Records this worker placed.
    pub records_placed: u64,
    /// Distribution of per-record probe lengths (slots examined beyond the
    /// first before the record landed). Deep level only.
    pub probe_hist: Hist,
}

impl WorkerCell {
    /// Whether nothing was recorded (cheap skip for the merge).
    pub fn is_empty(&self) -> bool {
        self.cas_attempts == 0 && self.records_placed == 0 && self.probe_hist.is_empty()
    }
}

/// Shared merge target for [`WorkerCell`]s: one per semisort attempt,
/// drained into [`Telemetry`] at the phase barrier.
pub struct ObsSink {
    level: TelemetryLevel,
    cas_attempts: AtomicU64,
    cas_failures: AtomicU64,
    records_placed: AtomicU64,
    probe_hist: [AtomicU64; HIST_BUCKETS],
    occupancy_hist: [AtomicU64; HIST_BUCKETS],
}

impl ObsSink {
    /// A sink collecting at `level`.
    pub fn new(level: TelemetryLevel) -> Self {
        ObsSink {
            level,
            cas_attempts: AtomicU64::new(0),
            cas_failures: AtomicU64::new(0),
            records_placed: AtomicU64::new(0),
            probe_hist: std::array::from_fn(|_| AtomicU64::new(0)),
            occupancy_hist: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// A sink that records nothing (for direct phase-function callers that
    /// don't care about telemetry, e.g. unit tests).
    pub fn disabled() -> Self {
        Self::new(TelemetryLevel::Off)
    }

    /// The collection level workers should gate on.
    #[inline(always)]
    pub fn level(&self) -> TelemetryLevel {
        self.level
    }

    /// Merge one worker's cell. Called once per worker chunk, at barrier
    /// granularity — a handful of relaxed RMWs, not a hot-loop cost.
    pub fn merge_cell(&self, cell: &WorkerCell) {
        if cell.is_empty() {
            return;
        }
        // ORDERING: Relaxed telemetry tallies; `snapshot` runs after the
        // scatter joins, so totals are complete without atomic ordering.
        // publishes-via: fork-join barrier
        self.cas_attempts
            .fetch_add(cell.cas_attempts, Ordering::Relaxed);
        // ORDERING: as above. publishes-via: fork-join barrier
        self.cas_failures
            .fetch_add(cell.cas_failures, Ordering::Relaxed);
        // ORDERING: as above. publishes-via: fork-join barrier
        self.records_placed
            .fetch_add(cell.records_placed, Ordering::Relaxed);
        if self.level.deep() && !cell.probe_hist.is_empty() {
            for (a, &b) in self.probe_hist.iter().zip(cell.probe_hist.buckets.iter()) {
                if b != 0 {
                    // ORDERING: Relaxed histogram tally, read after join.
                    // publishes-via: fork-join barrier
                    a.fetch_add(b, Ordering::Relaxed);
                }
            }
        }
    }

    /// Record one bucket's occupancy (record count) into the occupancy
    /// histogram. No-op below `Deep`.
    #[inline]
    pub fn record_occupancy(&self, records: u64) {
        if self.level.deep() {
            // ORDERING: Relaxed histogram tally, read after join.
            // publishes-via: fork-join barrier
            self.occupancy_hist[Hist::bucket_of(records)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot the merged counters (retry causes are appended by the
    /// driver, which owns the Las Vegas loop).
    pub fn snapshot(&self) -> Telemetry {
        let load = |h: &[AtomicU64; HIST_BUCKETS]| {
            let mut out = Hist::default();
            for (o, a) in out.buckets.iter_mut().zip(h.iter()) {
                // ORDERING: Relaxed snapshot read; all writers joined.
                // publishes-via: fork-join barrier
                *o = a.load(Ordering::Relaxed);
            }
            out
        };
        Telemetry {
            level: self.level,
            // ORDERING: Relaxed snapshot reads; all writers joined.
            // publishes-via: fork-join barrier
            cas_attempts: self.cas_attempts.load(Ordering::Relaxed),
            // ORDERING: as above. publishes-via: fork-join barrier
            cas_failures: self.cas_failures.load(Ordering::Relaxed),
            // ORDERING: as above. publishes-via: fork-join barrier
            records_placed: self.records_placed.load(Ordering::Relaxed),
            probe_hist: load(&self.probe_hist),
            light_occupancy_hist: load(&self.occupancy_hist),
            retry_causes: Vec::new(),
        }
    }
}

/// Per-run counters describing how the [`ScratchPool`](crate::pool::ScratchPool)
/// behaved: whether the arena lease was served from pooled capacity or had
/// to grow. Carried into
/// [`SemisortStats::scratch_reuse_hits`](crate::stats::SemisortStats::scratch_reuse_hits)
/// / [`SemisortStats::scratch_grows`](crate::stats::SemisortStats::scratch_grows);
/// a steady-state engine shows `grows == 0` from the second same-size call
/// on. Under `SEMISORT_LOG` the driver also emits one
/// `{"event":"scratch",…}` line per run that grew.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScratchCounters {
    /// Arena leases satisfied entirely from already-pooled capacity.
    pub reuse_hits: u32,
    /// Arena leases that had to (re)allocate backing memory.
    pub grows: u32,
}

/// Shared counters for the service layer (`semisortd`): one instance per
/// server, incremented from shard workers and the admission path, snapshot
/// into the stats JSON's `service` section. All increments are `Relaxed` —
/// these are monotonic tallies, not synchronization.
#[derive(Debug, Default)]
pub struct ServiceCounters {
    /// Requests admitted past admission control.
    pub admitted: AtomicU64,
    /// Requests that completed successfully.
    pub completed: AtomicU64,
    /// Requests shed with `Overloaded` (budget or queue admission).
    pub shed_overload: AtomicU64,
    /// Requests that failed with `DeadlineExceeded`.
    pub deadline_exceeded: AtomicU64,
    /// Requests that observed explicit cancellation.
    pub cancelled: AtomicU64,
    /// Engine-shard panics contained by `catch_unwind` (each poisons the
    /// shard).
    pub panics_contained: AtomicU64,
    /// Poisoned shards rebuilt with a fresh engine.
    pub shards_rebuilt: AtomicU64,
    /// Graceful drains completed (all in-flight requests answered before
    /// shutdown).
    pub drains: AtomicU64,
}

impl ServiceCounters {
    /// Bump one counter by 1 (`Relaxed`; tallies, not synchronization).
    #[inline]
    pub fn bump(counter: &AtomicU64) {
        // ORDERING: Relaxed monotonic tally; snapshots tolerate torn
        // cross-counter views (each counter is individually consistent).
        // publishes-via: none needed — approximate stats by design
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> ServiceSnapshot {
        ServiceSnapshot {
            // ORDERING: Relaxed stats reads; the snapshot is advisory and
            // tolerates skew between counters.
            // publishes-via: none needed — approximate stats by design
            admitted: self.admitted.load(Ordering::Relaxed),
            // ORDERING: as above. publishes-via: none needed
            completed: self.completed.load(Ordering::Relaxed),
            // ORDERING: as above. publishes-via: none needed
            shed_overload: self.shed_overload.load(Ordering::Relaxed),
            // ORDERING: as above. publishes-via: none needed
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            // ORDERING: as above. publishes-via: none needed
            cancelled: self.cancelled.load(Ordering::Relaxed),
            // ORDERING: as above. publishes-via: none needed
            panics_contained: self.panics_contained.load(Ordering::Relaxed),
            // ORDERING: as above. publishes-via: none needed
            shards_rebuilt: self.shards_rebuilt.load(Ordering::Relaxed),
            // ORDERING: as above. publishes-via: none needed
            drains: self.drains.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`ServiceCounters`], carried on
/// [`SemisortStats`](crate::stats::SemisortStats) as the `service` section
/// of the stats JSON (absent/`null` for library runs that never went
/// through a server).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceSnapshot {
    /// Requests admitted past admission control.
    pub admitted: u64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests shed with `Overloaded`.
    pub shed_overload: u64,
    /// Requests that failed with `DeadlineExceeded`.
    pub deadline_exceeded: u64,
    /// Requests that observed explicit cancellation.
    pub cancelled: u64,
    /// Engine-shard panics contained by `catch_unwind`.
    pub panics_contained: u64,
    /// Poisoned shards rebuilt with a fresh engine.
    pub shards_rebuilt: u64,
    /// Graceful drains completed.
    pub drains: u64,
}

/// Why one Las Vegas retry happened: the first bucket observed to overflow
/// on the failed attempt, with its demand versus its allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryCause {
    /// Which attempt failed (1-based; attempt 1 is the initial run).
    pub attempt: u32,
    /// Global bucket index that overflowed (heavy buckets come first).
    pub bucket: u32,
    /// Whether the overflowing bucket was a heavy-key bucket.
    pub heavy: bool,
    /// Slots allocated to the bucket (its power-of-two size).
    pub allocated: usize,
    /// Records observed to demand the bucket when the overflow was hit.
    /// For the blocked scatter this is the slab cursor (exact demand so
    /// far); for the CAS scatter the bucket is full when placement fails,
    /// so this is `allocated + 1` — a lower bound on true demand.
    pub observed: usize,
}

/// First-overflowing-bucket capture for a scatter pass: workers report the
/// bucket they failed in; the first report wins and later ones are dropped
/// (any one overflow forces a full retry, so one cause is enough).
pub struct OverflowCapture {
    set: AtomicBool,
    bucket: AtomicU64,
    allocated: AtomicU64,
    observed: AtomicU64,
}

impl Default for OverflowCapture {
    fn default() -> Self {
        Self::new()
    }
}

impl OverflowCapture {
    /// An empty capture.
    pub fn new() -> Self {
        OverflowCapture {
            set: AtomicBool::new(false),
            bucket: AtomicU64::new(0),
            allocated: AtomicU64::new(0),
            observed: AtomicU64::new(0),
        }
    }

    /// Whether any worker has reported an overflow (cheap abort check).
    #[inline(always)]
    pub fn is_set(&self) -> bool {
        // ORDERING: Relaxed abort hint inside the scatter loop; a missed
        // flag only delays the abort one block. Post-join readers (`take`)
        // are ordered by the barrier.
        // publishes-via: fork-join barrier
        self.set.load(Ordering::Relaxed)
    }

    /// Report an overflow in `bucket`. Only the first report is kept.
    pub fn report(&self, bucket: u32, allocated: usize, observed: usize) {
        // ORDERING: AcqRel first-report-wins latch — exactly one reporter
        // sees Ok and becomes the unique writer of the payload below;
        // Relaxed failure discards the duplicate report.
        // publishes-via: this CAS's own AcqRel success edge
        if self
            .set
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            // ORDERING: Relaxed payload stores by the unique latch winner;
            // `take` reads them only after the scatter joins.
            // publishes-via: fork-join barrier
            self.bucket.store(bucket as u64, Ordering::Relaxed);
            // ORDERING: as above. publishes-via: fork-join barrier
            self.allocated.store(allocated as u64, Ordering::Relaxed);
            // ORDERING: as above. publishes-via: fork-join barrier
            self.observed.store(observed as u64, Ordering::Relaxed);
        }
    }

    /// The captured `(bucket, allocated, observed)`, if any overflow was
    /// reported. Read after the scatter joins.
    pub fn take(&self) -> Option<(u32, usize, usize)> {
        if self.is_set() {
            // ORDERING: Relaxed post-join reads of the latch payload; the
            // scatter joined before `take` runs, so the winner's stores
            // are already visible.
            // publishes-via: fork-join barrier
            Some((
                self.bucket.load(Ordering::Relaxed) as u32,
                self.allocated.load(Ordering::Relaxed) as usize,
                self.observed.load(Ordering::Relaxed) as usize,
            ))
        } else {
            None
        }
    }
}

/// Merged telemetry for one semisort run, carried by
/// [`crate::stats::SemisortStats`]. All fields stay at their defaults when
/// the run's [`TelemetryLevel`] was `Off` (except `retry_causes`, which is
/// recorded on the cold retry path at every level — a run that retried is
/// exactly the run you want to diagnose).
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    /// Level the run collected at.
    pub level: TelemetryLevel,
    /// CAS instructions issued across the scatter (including the blocked
    /// scatter's tail fallback).
    pub cas_attempts: u64,
    /// CAS instructions that lost their race.
    pub cas_failures: u64,
    /// Records placed by an instrumented placement path.
    pub records_placed: u64,
    /// Distribution of per-record probe lengths (Deep only).
    pub probe_hist: Hist,
    /// Distribution of light-bucket occupancies after the scatter (Deep
    /// only). Heavy buckets are excluded: each holds a single key, so its
    /// occupancy is that key's multiplicity, already visible in
    /// `heavy_records` / `heavy_keys`.
    pub light_occupancy_hist: Hist,
    /// One entry per Las Vegas retry, in attempt order.
    pub retry_causes: Vec<RetryCause>,
}

/// Microseconds since the process-wide trace epoch — the shared monotonic
/// clock base for spans, `SEMISORT_LOG` lines, and scheduler trace events
/// (one axis; see the module docs).
#[inline]
pub fn epoch_micros() -> u64 {
    rayon::trace::epoch_micros()
}

/// Whether `SEMISORT_LOG` asks for structured span lines on stderr.
pub fn log_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("SEMISORT_LOG") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    })
}

/// Emit one structured event line to stderr (only when [`log_enabled`]).
/// `fields` are appended as JSON number members.
pub fn log_event(event: &str, fields: &[(&str, u64)]) {
    log_event_kv(event, &[], fields);
}

/// Like [`log_event`] but with string members too (e.g.
/// `{"event":"degraded","reason":"retries-exhausted","attempts":4}`).
/// String values must not need JSON escaping (they are the library's own
/// enum spellings).
pub fn log_event_kv(event: &str, strs: &[(&str, &str)], nums: &[(&str, u64)]) {
    if !log_enabled() {
        return;
    }
    // Every line carries its epoch offset so events and spans from one run
    // (or several) order into a single timeline.
    let mut line = format!("{{\"event\":\"{event}\",\"t_us\":{}", epoch_micros());
    for (k, v) in strs {
        line.push_str(&format!(",\"{k}\":\"{v}\""));
    }
    for (k, v) in nums {
        line.push_str(&format!(",\"{k}\":{v}"));
    }
    line.push('}');
    eprintln!("{line}");
}

/// One finished phase span: name plus epoch-relative endpoints, as carried
/// in [`SemisortStats::spans`](crate::stats::SemisortStats::spans) and laid
/// out on the Chrome-trace timeline by [`crate::trace`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Phase name (`"sample_sort"`, `"scatter"`, …).
    pub name: &'static str,
    /// Start, µs since the shared epoch ([`epoch_micros`]).
    pub start_us: u64,
    /// End, µs since the shared epoch (`end_us >= start_us`).
    pub end_us: u64,
    /// Pool worker the span ran on, or `None` when it ran on an external
    /// (non-pool) thread — e.g. the driver thread of a plain API call.
    pub worker: Option<usize>,
}

impl SpanRecord {
    /// The span's duration.
    pub fn duration(&self) -> Duration {
        Duration::from_micros(self.end_us - self.start_us)
    }
}

/// Scoped phase timer: replaces hand-rolled `Instant::now()` pairs in the
/// driver. [`PhaseSpan::finish`] returns the elapsed time and, under
/// `SEMISORT_LOG`, emits a `{"event":"span","name":…,"t_us":…,"us":…}`
/// line. All spans time against the shared epoch ([`epoch_micros`]), so
/// their endpoints compose into one timeline.
#[must_use = "a span that is never finished times nothing"]
pub struct PhaseSpan {
    name: &'static str,
    start_us: u64,
}

impl PhaseSpan {
    /// Start timing a phase.
    pub fn start(name: &'static str) -> Self {
        PhaseSpan {
            name,
            start_us: epoch_micros(),
        }
    }

    /// Stop timing; returns the elapsed duration.
    pub fn finish(self) -> Duration {
        self.finish_record().duration()
    }

    /// Stop timing; returns the elapsed duration after appending the full
    /// [`SpanRecord`] to `out` (the driver collects these into
    /// `SemisortStats::spans`).
    pub fn finish_into(self, out: &mut Vec<SpanRecord>) -> Duration {
        let rec = self.finish_record();
        out.push(rec);
        rec.duration()
    }

    fn finish_record(self) -> SpanRecord {
        let end_us = epoch_micros().max(self.start_us);
        let rec = SpanRecord {
            name: self.name,
            start_us: self.start_us,
            end_us,
            worker: rayon::current_worker_index(),
        };
        if log_enabled() {
            eprintln!(
                "{{\"event\":\"span\",\"name\":\"{}\",\"t_us\":{},\"us\":{}}}",
                rec.name,
                rec.start_us,
                end_us - rec.start_us
            );
        }
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_and_parse() {
        assert!(TelemetryLevel::Off < TelemetryLevel::Counters);
        assert!(TelemetryLevel::Counters < TelemetryLevel::Deep);
        assert!(!TelemetryLevel::Off.counters());
        assert!(TelemetryLevel::Counters.counters());
        assert!(!TelemetryLevel::Counters.deep());
        assert!(TelemetryLevel::Deep.deep());
        for l in [
            TelemetryLevel::Off,
            TelemetryLevel::Counters,
            TelemetryLevel::Deep,
        ] {
            assert_eq!(TelemetryLevel::parse(l.as_str()), Some(l));
        }
        assert_eq!(TelemetryLevel::parse("verbose"), None);
    }

    #[test]
    fn hist_bucketing() {
        assert_eq!(Hist::bucket_of(0), 0);
        assert_eq!(Hist::bucket_of(1), 1);
        assert_eq!(Hist::bucket_of(2), 2);
        assert_eq!(Hist::bucket_of(3), 2);
        assert_eq!(Hist::bucket_of(4), 3);
        assert_eq!(Hist::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        // Bucket i's range starts at bucket_lo(i) and bucket_of(lo) == i.
        for i in 1..20 {
            assert_eq!(Hist::bucket_of(Hist::bucket_lo(i)), i);
        }
    }

    #[test]
    fn hist_record_merge_count() {
        let mut a = Hist::default();
        assert!(a.is_empty());
        a.record(0);
        a.record(1);
        a.record(100);
        let mut b = Hist::default();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.buckets[Hist::bucket_of(100)], 2);
    }

    #[test]
    fn sink_merges_cells_per_level() {
        for level in [
            TelemetryLevel::Off,
            TelemetryLevel::Counters,
            TelemetryLevel::Deep,
        ] {
            let sink = ObsSink::new(level);
            let mut cell = WorkerCell {
                cas_attempts: 10,
                cas_failures: 2,
                records_placed: 8,
                ..Default::default()
            };
            cell.probe_hist.record(3);
            sink.merge_cell(&cell);
            sink.record_occupancy(17);
            let t = sink.snapshot();
            // The sink merges whatever it is handed; *gating* what lands in
            // the cell is the hot loop's job. Histograms are level-gated
            // here too, as is occupancy.
            assert_eq!(t.cas_attempts, 10);
            assert_eq!(t.cas_failures, 2);
            assert_eq!(t.probe_hist.is_empty(), !level.deep());
            assert_eq!(t.light_occupancy_hist.is_empty(), !level.deep());
        }
    }

    #[test]
    fn overflow_capture_first_report_wins() {
        let c = OverflowCapture::new();
        assert!(!c.is_set());
        assert_eq!(c.take(), None);
        c.report(7, 64, 80);
        c.report(9, 32, 33);
        assert_eq!(c.take(), Some((7, 64, 80)));
    }

    #[test]
    fn phase_span_measures_time() {
        let span = PhaseSpan::start("test");
        std::thread::sleep(Duration::from_millis(2));
        assert!(span.finish() >= Duration::from_millis(2));
    }

    #[test]
    fn span_records_order_on_one_clock_axis() {
        // The satellite fix this encodes: spans used to each carry their
        // own `Instant`, so two spans' timestamps were incomparable. Now
        // sequential spans must land on one monotone axis.
        let mut spans = Vec::new();
        let a = PhaseSpan::start("a");
        std::thread::sleep(Duration::from_millis(1));
        let da = a.finish_into(&mut spans);
        let b = PhaseSpan::start("b");
        let db = b.finish_into(&mut spans);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "a");
        assert_eq!(spans[1].name, "b");
        assert!(spans[0].start_us <= spans[0].end_us);
        assert!(spans[0].end_us <= spans[1].start_us, "spans share an epoch");
        assert_eq!(spans[0].duration(), da);
        assert_eq!(spans[1].duration(), db);
        // Not running on a pool worker here.
        assert_eq!(spans[0].worker, None);
    }
}
