//! Phase 5: pack everything into the contiguous output.
//!
//! "The algorithm that we use to pack the portion of the array for the
//! heavy key buckets consists of 3 steps: first, the array is divided into
//! 1000 intervals and each interval is packed individually and sequentially
//! by just scanning the interval; second, we apply a sequential prefix sum
//! on the counts for the intervals to compute the boundaries; finally, we
//! write the records into their appropriate indices in A′ in parallel. The
//! portion of the array for the light key buckets is already packed from
//! Phase 4 so we simply copy the records into A′ in parallel." (§4.)
//!
//! Correctness note: interval boundaries may straddle heavy buckets, but
//! compaction preserves slot order and each heavy bucket is a contiguous
//! slot range holding a single key — so every heavy key's records stay
//! contiguous in the packed output.

use parlay::shared::SendPtr;
use rayon::prelude::*;

use crate::buckets::BucketPlan;
use crate::scatter::Slot;

/// Number of heavy-region intervals (the paper's constant).
const INTERVALS: usize = 1000;

/// Assemble the semisorted output from the slot array: packed heavy region
/// first, then the light buckets' sorted fronts.
pub fn pack_output<V: Copy + Send + Sync>(
    plan: &BucketPlan,
    slots: &[Slot<V>],
    light_counts: &[usize],
) -> Vec<(u64, V)> {
    let mut out = Vec::new();
    pack_output_into(plan, slots, light_counts, &mut out);
    out
}

/// [`pack_output`] writing into a caller-owned buffer (cleared first), so
/// the engine's pooled output vector keeps its capacity across calls.
pub fn pack_output_into<V: Copy + Send + Sync>(
    plan: &BucketPlan,
    slots: &[Slot<V>],
    light_counts: &[usize],
    out: &mut Vec<(u64, V)>,
) {
    debug_assert_eq!(light_counts.len(), plan.num_light);
    let heavy_region = &slots[..plan.heavy_slots];

    // Step 1: pack each interval in place, sequentially per interval.
    let intervals = INTERVALS.min(plan.heavy_slots.max(1));
    let mut interval_counts: Vec<usize> = (0..intervals)
        .into_par_iter()
        .map(|t| {
            let lo = (plan.heavy_slots * t) / intervals;
            let hi = (plan.heavy_slots * (t + 1)) / intervals;
            let mut w = lo;
            for i in lo..hi {
                if heavy_region[i].occupied() {
                    if i != w {
                        // SAFETY: this task owns slots [lo, hi), scatter
                        // has joined, and slot i is occupied (initialized).
                        let (k, v) = (heavy_region[i].key(), unsafe { heavy_region[i].value() });
                        heavy_region[w].set(k, v);
                    }
                    w += 1;
                }
            }
            w - lo
        })
        .collect();

    // Step 2: interval boundaries in the output.
    let heavy_total = parlay::scan_add_exclusive(&mut interval_counts);
    let interval_offsets = interval_counts; // renamed post-scan

    // Light bucket boundaries follow the heavy region.
    let mut light_offsets = light_counts.to_vec();
    let light_total = parlay::scan_add_exclusive(&mut light_offsets);
    let n_out = heavy_total + light_total;

    // Step 3: parallel copies into the output.
    out.clear();
    out.reserve(n_out);
    let out_ptr = SendPtr(out.spare_capacity_mut().as_mut_ptr());

    // Heavy intervals.
    (0..intervals).into_par_iter().for_each(|t| {
        let lo = (plan.heavy_slots * t) / intervals;
        let hi = (plan.heavy_slots * (t + 1)) / intervals;
        let count = if t + 1 < intervals {
            interval_offsets[t + 1] - interval_offsets[t]
        } else {
            heavy_total - interval_offsets[t]
        };
        debug_assert!(count <= hi - lo);
        let ptr = out_ptr;
        for i in 0..count {
            let s = &heavy_region[lo + i];
            // SAFETY: disjoint output ranges per interval (offsets from the
            // scan); slots [lo, lo+count) were compacted/occupied above.
            unsafe { (*ptr.0.add(interval_offsets[t] + i)).write((s.key(), s.value())) };
        }
    });

    // Light buckets.
    (0..plan.num_light).into_par_iter().for_each(|li| {
        let b = plan.num_heavy + li;
        let base = plan.bucket_offset[b];
        let dst = heavy_total + light_offsets[li];
        let ptr = out_ptr;
        for i in 0..light_counts[li] {
            let s = &slots[base + i];
            // SAFETY: disjoint output ranges per bucket; the first
            // `light_counts[li]` slots hold Phase 4's sorted records.
            unsafe { (*ptr.0.add(dst + i)).write((s.key(), s.value())) };
        }
    });

    // SAFETY: heavy intervals wrote [0, heavy_total) and light buckets wrote
    // [heavy_total, n_out), jointly initializing every slot.
    unsafe { out.set_len(n_out) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buckets::build_plan;
    use crate::config::SemisortConfig;
    use crate::local_sort::local_sort_light_buckets;
    use crate::sample::strided_sample;
    use crate::scatter::{allocate_arena, scatter};
    use crate::verify::is_semisorted_by;
    use parlay::hash64;
    use parlay::random::Rng;

    fn full_pipeline(records: &[(u64, u64)]) -> Vec<(u64, u64)> {
        let cfg = SemisortConfig::default();
        let keys: Vec<u64> = records.iter().map(|r| r.0).collect();
        let mut sample = strided_sample(&keys, cfg.sample_shift, Rng::new(3));
        sample.sort_unstable();
        let plan = build_plan(&sample, records.len(), &cfg);
        let arena = allocate_arena::<u64>(&plan);
        let sink = crate::obs::ObsSink::disabled();
        let out = scatter(
            records,
            &plan,
            &arena.slots,
            cfg.probe_strategy,
            cfg.scatter.prefetch_distance,
            Rng::new(4),
            &sink,
            None,
        );
        assert!(!out.overflowed);
        let counts = local_sort_light_buckets(&plan, &arena.slots, cfg.local_sort_algo, &sink);
        pack_output(&plan, &arena.slots, &counts)
    }

    #[test]
    fn output_is_a_permutation() {
        let records: Vec<(u64, u64)> = (0..60_000u64).map(|i| (hash64(i % 3000), i)).collect();
        let out = full_pipeline(&records);
        assert_eq!(out.len(), records.len());
        let mut got = out.clone();
        got.sort_unstable();
        let mut want = records.clone();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn output_is_semisorted_mixed_heavy_light() {
        // Heavy keys (few, huge) + light keys (many, small).
        let records: Vec<(u64, u64)> = (0..80_000u64)
            .map(|i| {
                let k = if i % 2 == 0 { i % 4 } else { 10_000 + i };
                (hash64(k), i)
            })
            .collect();
        let out = full_pipeline(&records);
        assert!(is_semisorted_by(&out, |r| r.0));
    }

    #[test]
    fn all_heavy_input() {
        let records: Vec<(u64, u64)> = (0..50_000u64).map(|i| (hash64(i % 3), i)).collect();
        let out = full_pipeline(&records);
        assert_eq!(out.len(), records.len());
        assert!(is_semisorted_by(&out, |r| r.0));
    }

    #[test]
    fn pack_ignores_slots_beyond_light_bucket_counts() {
        // Regression: pack must read exactly `light_counts[li]` slots per
        // light bucket — records past the count fence (e.g. stale slots a
        // re-zeroing bug would leave behind in a reused arena) must never
        // reach the output.
        let cfg = SemisortConfig::default();
        let records: Vec<(u64, u64)> = (0..40_000u64).map(|i| (hash64(i), i)).collect();
        let keys: Vec<u64> = records.iter().map(|r| r.0).collect();
        let mut sample = strided_sample(&keys, cfg.sample_shift, Rng::new(3));
        sample.sort_unstable();
        let plan = build_plan(&sample, records.len(), &cfg);
        let arena = allocate_arena::<u64>(&plan);
        let sink = crate::obs::ObsSink::disabled();
        let out = scatter(
            &records,
            &plan,
            &arena.slots,
            cfg.probe_strategy,
            cfg.scatter.prefetch_distance,
            Rng::new(4),
            &sink,
            None,
        );
        assert!(!out.overflowed);
        let counts = local_sort_light_buckets(&plan, &arena.slots, cfg.local_sort_algo, &sink);

        // Poison the last slot of every light bucket with slack. (Heavy
        // buckets are excluded: the heavy pack legitimately scans occupancy.)
        const POISON: u64 = u64::MAX;
        let mut poisoned = 0usize;
        for (li, &cnt) in counts.iter().enumerate() {
            let b = plan.num_heavy + li;
            let base = plan.bucket_offset[b];
            let size = plan.bucket_size[b];
            if cnt < size {
                arena.slots[base + size - 1].set(POISON, POISON);
                poisoned += 1;
            }
        }
        assert!(poisoned > 0, "need at least one bucket with slack");

        let got = pack_output(&plan, &arena.slots, &counts);
        assert!(
            got.iter().all(|&(k, _)| k != POISON),
            "a poisoned slot beyond the count fence leaked into the output"
        );
        let mut sorted = got;
        sorted.sort_unstable();
        let mut want = records;
        want.sort_unstable();
        assert_eq!(sorted, want, "output must still be an exact permutation");
    }

    #[test]
    fn all_light_input() {
        let records: Vec<(u64, u64)> = (0..50_000u64).map(|i| (hash64(i), i)).collect();
        let out = full_pipeline(&records);
        assert_eq!(out.len(), records.len());
        assert!(is_semisorted_by(&out, |r| r.0));
    }
}
