//! Phase 2: heavy/light classification and bucket allocation.
//!
//! From the *sorted* sample this module derives the whole memory layout of
//! the scatter:
//!
//! - **Heavy keys** — hashed keys appearing at least δ times in the sample
//!   ("If the count for a key is greater than δ = 16, we insert the key
//!   into a hash table" — §4 Phase 2). Each heavy key gets its own bucket
//!   sized `α·f(count)`, and the phase-concurrent hash table `T` maps the
//!   key to its bucket id so the scatter can route heavy records in O(1).
//! - **Light keys** — everything else. The 64-bit hash range is split into
//!   `2^16` equal prefix classes; adjacent classes are merged until each
//!   bucket holds at least δ sample records (the ≤10% optimization of §4),
//!   and each merged bucket is sized `α·f(s)` from its sample count `s`.
//!
//! All buckets live in one big slot array — heavy buckets first, then light
//! ("To allow for efficient packing later, we use a single large array for
//! all of the buckets"), with each bucket's offset recorded. Sizes are
//! powers of two so the scatter's wraparound is a mask.

use parlay::hash_table::PhaseConcurrentMap;
use rayon::prelude::*;

use crate::config::SemisortConfig;
use crate::estimate::bucket_capacity;

/// The memory layout for one semisort run, produced from the sorted sample.
pub struct BucketPlan {
    /// Heavy-key table `T`: hashed key → heavy bucket id (dense, `0..num_heavy`).
    pub heavy_table: PhaseConcurrentMap<u32>,
    /// Number of heavy keys (== number of heavy buckets).
    pub num_heavy: usize,
    /// Number of sample records classified heavy (for the heavy-% stat).
    pub heavy_sample_records: usize,
    /// Per bucket (heavy buckets then light buckets): first slot index.
    pub bucket_offset: Vec<usize>,
    /// Per bucket: capacity in slots (a power of two).
    pub bucket_size: Vec<usize>,
    /// Total slots across heavy buckets (the heavy region is `[0, heavy_slots)`).
    pub heavy_slots: usize,
    /// Total slots overall.
    pub total_slots: usize,
    /// Hash-prefix → light bucket id (*global* id, i.e. already offset by
    /// `num_heavy`); length `2^light_bucket_log2`.
    pub prefix_to_bucket: Vec<u32>,
    /// Number of light buckets after merging.
    pub num_light: usize,
    /// Right-shift turning a hashed key into its prefix class.
    pub prefix_shift: u32,
}

impl BucketPlan {
    /// Total number of buckets (heavy + light).
    pub fn num_buckets(&self) -> usize {
        self.num_heavy + self.num_light
    }

    /// The global bucket id for a record with hashed key `key`:
    /// its heavy bucket if the key is heavy, else its prefix's light bucket.
    ///
    /// Only valid after the table's insert phase finished (it has).
    #[inline(always)]
    pub fn bucket_of(&self, key: u64) -> u32 {
        // All-light inputs (e.g. the representative uniform distribution)
        // skip the table probe entirely — a predictable branch.
        if self.num_heavy > 0 {
            if let Some(b) = self.heavy_table.lookup(key) {
                return b;
            }
        }
        self.prefix_to_bucket[(key >> self.prefix_shift) as usize]
    }

    /// Like [`Self::bucket_of`] but also reports heaviness (for stats).
    #[inline(always)]
    pub fn bucket_of_tagged(&self, key: u64) -> (u32, bool) {
        if self.num_heavy > 0 {
            if let Some(b) = self.heavy_table.lookup(key) {
                return (b, true);
            }
        }
        (
            self.prefix_to_bucket[(key >> self.prefix_shift) as usize],
            false,
        )
    }
}

/// Build the [`BucketPlan`] from the sorted sample (Steps 4, 5, 6a, 7a).
///
/// `n` is the input size (the estimator needs `ln n`); `sorted_sample` is
/// the Phase 1 output.
pub fn build_plan(sorted_sample: &[u64], n: usize, cfg: &SemisortConfig) -> BucketPlan {
    let s_len = sorted_sample.len();
    let p = cfg.sample_probability();
    let ln_n = (n.max(2) as f64).ln();
    // Θ(n/log²n) light buckets (§3, Step 7a), capped at the paper's 2^16
    // (their tuned constant for n = 10⁸, where n/log²n ≈ 2^17). At smaller
    // n the scaled count keeps per-bucket sample density — and therefore
    // the f(s) overhead ratio — at the level the paper tuned for.
    let prefix_bits = effective_prefix_bits(n, cfg.light_bucket_log2);
    let prefix_shift = 64 - prefix_bits;
    let num_prefixes = 1usize << prefix_bits;

    // Distinct-key boundaries: "compute the offsets corresponding to the
    // start of each key in the sorted array … with a simple comparison with
    // the preceding key", gathered with a parallel filter (§4 Phase 2).
    let starts = parlay::pack_index(s_len, |i| {
        i == 0 || sorted_sample[i] != sorted_sample[i - 1]
    });
    let num_distinct = starts.len();

    // Heavy keys: distinct keys whose run length reaches δ.
    let heavy: Vec<(u64, usize)> = {
        let run_len = |j: usize| {
            let end = if j + 1 < num_distinct {
                starts[j + 1]
            } else {
                s_len
            };
            end - starts[j]
        };
        let idx = parlay::pack_index(num_distinct, |j| run_len(j) >= cfg.heavy_threshold);
        idx.into_iter()
            .map(|j| (sorted_sample[starts[j]], run_len(j)))
            .collect()
    };
    let num_heavy = heavy.len();
    let heavy_sample_records: usize = heavy.iter().map(|h| h.1).sum();

    // Heavy table and bucket sizes.
    let heavy_table = PhaseConcurrentMap::with_seed(num_heavy.max(1), cfg.seed ^ TABLE_SEED);
    heavy
        .par_iter()
        .enumerate()
        .with_min_len(512)
        .for_each(|(b, &(key, _))| {
            let inserted = heavy_table.insert(key, b as u32);
            debug_assert!(inserted, "heavy keys are distinct by construction");
        });
    let mut sizes: Vec<usize> = Vec::with_capacity(num_heavy + 64);
    sizes.extend(
        heavy
            .iter()
            .map(|&(_, count)| bucket_capacity(count, p, cfg.c, ln_n, cfg.alpha)),
    );

    // Light sample count per prefix class. The sample is sorted, so each
    // prefix class is a contiguous run: count it by binary search, then
    // subtract the (few) heavy runs inside it.
    let mut light_count: Vec<usize> = (0..num_prefixes)
        .into_par_iter()
        .with_min_len(1024)
        .map(|pfx| {
            let lo = lower_bound_prefix(sorted_sample, pfx as u64, prefix_shift);
            let hi = lower_bound_prefix(sorted_sample, pfx as u64 + 1, prefix_shift);
            hi - lo
        })
        .collect();
    for &(key, count) in &heavy {
        light_count[(key >> prefix_shift) as usize] -= count;
    }

    // Merge adjacent prefixes into light buckets of ≥ δ samples.
    let mut prefix_to_bucket = vec![0u32; num_prefixes];
    let mut num_light = 0usize;
    {
        let mut acc = 0usize;
        let mut bucket_start_pfx = 0usize;
        let close = |sizes: &mut Vec<usize>, acc: usize| {
            sizes.push(bucket_capacity(acc, p, cfg.c, ln_n, cfg.alpha));
        };
        for pfx in 0..num_prefixes {
            prefix_to_bucket[pfx] = (num_heavy + num_light) as u32;
            acc += light_count[pfx];
            let done = if cfg.merge_light_buckets {
                acc >= cfg.heavy_threshold
            } else {
                true
            };
            if done {
                close(&mut sizes, acc);
                num_light += 1;
                acc = 0;
                bucket_start_pfx = pfx + 1;
            }
        }
        if acc > 0 || bucket_start_pfx < num_prefixes {
            // Trailing prefixes that never reached δ form a final bucket.
            close(&mut sizes, acc);
            num_light += 1;
        }
    }

    // Offsets: exclusive scan over sizes; heavy region first.
    let mut bucket_offset = sizes.clone();
    let total_slots = parlay::scan_add_exclusive(&mut bucket_offset);
    let heavy_slots = if num_heavy < bucket_offset.len() {
        bucket_offset[num_heavy]
    } else {
        total_slots
    };

    BucketPlan {
        heavy_table,
        num_heavy,
        heavy_sample_records,
        bucket_offset,
        bucket_size: sizes,
        heavy_slots,
        total_slots,
        prefix_to_bucket,
        num_light,
        prefix_shift,
    }
}

/// Number of prefix bits for the light-bucket partition: `log₂(n/log₂²n)`
/// rounded down, clamped to `[6, cap]`. With the paper's cap of 16 and
/// n = 10⁸ this saturates at 16 (their configuration); smaller inputs get
/// proportionally fewer, larger buckets, preserving the Θ(n/log²n) count
/// and the per-bucket sample density the estimator was tuned for.
pub fn effective_prefix_bits(n: usize, cap: u32) -> u32 {
    let nf = n.max(64) as f64;
    let log2n = nf.log2();
    let buckets = (nf / (log2n * log2n)).max(2.0);
    let lo = cap.min(6); // degenerate caps (< 6) win over the floor
    (buckets.log2().floor() as u32).clamp(lo, cap)
}

/// First index in the sorted sample whose prefix class is ≥ `pfx`.
fn lower_bound_prefix(sorted: &[u64], pfx: u64, shift: u32) -> usize {
    let (mut lo, mut hi) = (0, sorted.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if (sorted[mid] >> shift) < pfx {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Domain-separation constant so the heavy table's probe hash differs from
/// every other seeded hash in a run.
const TABLE_SEED: u64 = 0x7ab1_e5ee_d000_0001;

#[cfg(test)]
mod tests {
    use super::*;
    use parlay::hash64;

    fn sorted_sample_of(keys: &[u64]) -> Vec<u64> {
        let mut s = keys.to_vec();
        s.sort_unstable();
        s
    }

    fn cfg() -> SemisortConfig {
        SemisortConfig::default()
    }

    #[test]
    fn all_light_when_no_repeats() {
        let sample = sorted_sample_of(&(0..1000u64).map(hash64).collect::<Vec<_>>());
        let plan = build_plan(&sample, 16_000, &cfg());
        assert_eq!(plan.num_heavy, 0);
        assert_eq!(plan.heavy_sample_records, 0);
        assert!(plan.num_light > 0);
        assert_eq!(plan.heavy_slots, 0);
    }

    #[test]
    fn one_heavy_key_detected() {
        let mut keys: Vec<u64> = (0..500u64).map(hash64).collect();
        keys.extend(std::iter::repeat_n(hash64(0xDEAD), 100));
        let sample = sorted_sample_of(&keys);
        let plan = build_plan(&sample, 9600, &cfg());
        assert_eq!(plan.num_heavy, 1);
        assert_eq!(plan.heavy_sample_records, 100);
        assert_eq!(plan.heavy_table.lookup(hash64(0xDEAD)), Some(0));
        assert_eq!(plan.heavy_table.lookup(hash64(1)), None);
    }

    #[test]
    fn threshold_is_at_least_delta() {
        // 15 repeats: light. 16 repeats: heavy.
        for (reps, expect_heavy) in [(15usize, 0usize), (16, 1)] {
            let mut keys: Vec<u64> = (0..200u64).map(hash64).collect();
            // The repeated key must be outside 0..200 or it gets +1 count.
            keys.extend(std::iter::repeat_n(hash64(9_999), reps));
            let sample = sorted_sample_of(&keys);
            let plan = build_plan(&sample, 6400, &cfg());
            assert_eq!(plan.num_heavy, expect_heavy, "reps={reps}");
        }
    }

    #[test]
    fn offsets_tile_total_slots() {
        let keys: Vec<u64> = (0..5000u64).map(|i| hash64(i % 300)).collect();
        let sample = sorted_sample_of(&keys);
        let plan = build_plan(&sample, 80_000, &cfg());
        let mut expect = 0usize;
        for b in 0..plan.num_buckets() {
            assert_eq!(plan.bucket_offset[b], expect);
            assert!(plan.bucket_size[b].is_power_of_two());
            expect += plan.bucket_size[b];
        }
        assert_eq!(expect, plan.total_slots);
    }

    #[test]
    fn bucket_of_routes_heavy_and_light() {
        let mut keys: Vec<u64> = (0..500u64).map(hash64).collect();
        keys.extend(std::iter::repeat_n(hash64(7), 50));
        let sample = sorted_sample_of(&keys);
        let plan = build_plan(&sample, 8800, &cfg());
        let (b_heavy, is_heavy) = plan.bucket_of_tagged(hash64(7));
        assert!(is_heavy);
        assert!((b_heavy as usize) < plan.num_heavy);
        // An unsampled key routes to its prefix's light bucket.
        let novel = hash64(0xABCDEF);
        let (b_light, is_heavy) = plan.bucket_of_tagged(novel);
        assert!(!is_heavy);
        assert!((b_light as usize) >= plan.num_heavy);
        assert!((b_light as usize) < plan.num_buckets());
        assert_eq!(
            b_light,
            plan.prefix_to_bucket[(novel >> plan.prefix_shift) as usize]
        );
    }

    #[test]
    fn merged_buckets_monotone_over_prefixes() {
        let keys: Vec<u64> = (0..3000u64).map(hash64).collect();
        let sample = sorted_sample_of(&keys);
        let plan = build_plan(&sample, 48_000, &cfg());
        // prefix→bucket must be non-decreasing and cover exactly the light range.
        let mut prev = plan.num_heavy as u32;
        for &b in &plan.prefix_to_bucket {
            assert!(b >= prev || b == prev, "non-monotone prefix map");
            assert!(b >= plan.num_heavy as u32);
            assert!((b as usize) < plan.num_buckets());
            prev = prev.max(b);
        }
    }

    #[test]
    fn no_merging_gives_one_bucket_per_prefix() {
        let mut c = cfg();
        c.merge_light_buckets = false;
        c.light_bucket_log2 = 8; // keep the test small
        let keys: Vec<u64> = (0..2000u64).map(hash64).collect();
        let sample = sorted_sample_of(&keys);
        let plan = build_plan(&sample, 32_000, &c);
        let prefixes = 1usize << effective_prefix_bits(32_000, 8);
        assert_eq!(plan.num_light, prefixes);
        for (pfx, &b) in plan.prefix_to_bucket.iter().enumerate() {
            assert_eq!(b as usize, plan.num_heavy + pfx);
        }
    }

    #[test]
    fn empty_sample_still_produces_light_buckets() {
        // Tiny inputs can sample nothing; every record must still route.
        let plan = build_plan(&[], 10, &cfg());
        assert_eq!(plan.num_heavy, 0);
        assert!(plan.num_light >= 1);
        assert!(plan.total_slots > 0);
        let b = plan.bucket_of(hash64(3));
        assert!((b as usize) < plan.num_buckets());
    }

    #[test]
    fn capacity_covers_sample_scaleup() {
        // A heavy key with s sample hits gets at least s/p slots.
        let mut keys = vec![hash64(1); 64];
        keys.extend((0..100u64).map(hash64));
        let sample = sorted_sample_of(&keys);
        let c = cfg();
        let plan = build_plan(&sample, 2624, &c);
        assert_eq!(plan.num_heavy, 1);
        assert!(plan.bucket_size[0] >= 64 * c.sample_stride());
    }
}
