//! The reusable semisort engine: [`Semisorter`].
//!
//! The free functions in [`crate::api`] are *one-shot*: each call allocates
//! its scatter arena, hashed-record buffer, sample buffer and per-worker
//! scatter state, uses them once, and frees them. For a caller that
//! semisorts in a loop — a shuffle stage, a `GROUP BY` executor, a graph
//! algorithm iterating over edge buckets — that allocation traffic is pure
//! overhead: the buffers wanted on call *k+1* are exactly the ones call *k*
//! just released.
//!
//! [`Semisorter`] owns a [`ScratchPool`] and keeps it warm across calls.
//! Leases grow monotonically to the high-water mark of the inputs seen, so
//! a steady-state workload reaches `scratch_grows == 0` after its first
//! call at the largest `n` (observable via
//! [`SemisortStats::scratch_grows`] /
//! [`SemisortStats::scratch_reuse_hits`]). Retention is bounded by
//! [`SemisortConfig::max_scratch_bytes`] and can be released eagerly with
//! [`Semisorter::trim`].
//!
//! Every method returns `Result<_, SemisortError>`; the engine has no
//! panicking twins (use the [`crate::api`] wrappers if you want those).
//! With the default [`OverflowPolicy::Fallback`](crate::config::OverflowPolicy::Fallback)
//! a method can only fail on an invalid configuration — and
//! [`Semisorter::new`] already rejects those.
//!
//! ```
//! use semisort::prelude::*;
//!
//! let mut engine = Semisorter::new(SemisortConfig::default()).unwrap();
//! for round in 0..3u64 {
//!     let records: Vec<(u64, u64)> = (0..10_000u64)
//!         .map(|i| (parlay::hash64(i % 50 + round), i))
//!         .collect();
//!     let out = engine.sort_pairs(&records).unwrap();
//!     assert!(semisort::verify::is_semisorted_by(&out, |r| r.0));
//! }
//! // After the first call the pool is at its high-water mark.
//! assert_eq!(engine.last_stats().scratch_grows, 0);
//! ```

use std::hash::Hash;
use std::mem;

use rayon::prelude::*;

use crate::api::{
    apply_permutation_with_scratch, hash_key, repair_collisions_on_perm, repair_hash_collisions,
    Groups,
};
use crate::cancel::CancelToken;
use crate::config::SemisortConfig;
use crate::driver::try_semisort_into_pooled;
use crate::error::SemisortError;
use crate::pool::ScratchPool;
use crate::stats::SemisortStats;

/// A reusable semisort engine holding a warm [`ScratchPool`].
///
/// Construct once with [`Semisorter::new`], call repeatedly; see the
/// [module docs](self) for the reuse model. The engine is `Send` (move it
/// into a worker thread) but not `Sync` — each engine serves one semisort
/// at a time, which is what lets it reuse its scratch without
/// synchronization.
#[derive(Debug, Default)]
pub struct Semisorter {
    cfg: SemisortConfig,
    pool: ScratchPool,
    last_stats: SemisortStats,
    cancel: CancelToken,
}

impl Semisorter {
    /// Create an engine from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SemisortError::InvalidConfig`] when
    /// [`SemisortConfig::try_validate`] rejects `cfg` — the engine never
    /// holds a configuration its methods would have to re-reject.
    #[must_use = "the Err carries the validation failure"]
    pub fn new(cfg: SemisortConfig) -> Result<Self, SemisortError> {
        cfg.try_validate()?;
        Ok(Semisorter {
            cfg,
            pool: ScratchPool::new(),
            last_stats: SemisortStats::default(),
            cancel: CancelToken::new(),
        })
    }

    /// The configuration every call runs with.
    pub fn config(&self) -> &SemisortConfig {
        &self.cfg
    }

    /// The engine's [`CancelToken`], polled at phase boundaries by every
    /// method. Clone it to another thread to cancel or deadline a call in
    /// flight; the engine does **not** reset it between calls — services
    /// that reuse a token per request call [`CancelToken::reset`]
    /// themselves (see `semisortd`'s shard loop).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Stats of the most recent successful call (default-initialized before
    /// the first).
    pub fn last_stats(&self) -> &SemisortStats {
        &self.last_stats
    }

    /// Bytes of scratch currently retained for the next call.
    pub fn scratch_bytes_held(&self) -> usize {
        self.pool.bytes_held()
    }

    /// Release all retained scratch now (the next call re-grows from
    /// empty). Equivalent to what a call does on exit when the pool
    /// exceeds [`SemisortConfig::max_scratch_bytes`].
    pub fn trim(&mut self) {
        self.pool.trim();
        self.last_stats.scratch_bytes_held = self.pool.bytes_held();
    }

    /// Re-apply the retention budget and refresh the held-bytes stat after
    /// pooled buffers have been put back (methods that temporarily take
    /// buffers out of the pool restore them *after* the core has enforced
    /// the budget, so the engine enforces it once more on its own exit).
    fn finish(&mut self) {
        self.pool.enforce_budget(self.cfg.max_scratch_bytes);
        self.last_stats.scratch_bytes_held = self.pool.bytes_held();
    }

    /// Semisort pre-hashed `(key, payload)` records — the pooled
    /// counterpart of [`crate::try_semisort_with_stats`] (whose output and
    /// semantics this matches exactly; stats land in
    /// [`Self::last_stats`]).
    #[must_use = "the Err carries the failure that the config asked to surface"]
    pub fn sort_pairs<V: Copy + Send + Sync>(
        &mut self,
        records: &[(u64, V)],
    ) -> Result<Vec<(u64, V)>, SemisortError> {
        let mut out = Vec::new();
        let result =
            try_semisort_into_pooled(records, &self.cfg, &mut self.pool, &mut out, &self.cancel);
        self.finish();
        self.last_stats = result?;
        self.last_stats.scratch_bytes_held = self.pool.bytes_held();
        Ok(out)
    }

    /// Hash `items`' keys into the pool's hashed-record buffer, semisort
    /// into the pool's placed buffer, and leave both restored. The shared
    /// front half of every by-key method.
    fn place_by_key<T, K, F>(&mut self, items: &[T], key: &F) -> Result<(), SemisortError>
    where
        T: Sync,
        K: Hash + Eq,
        F: Fn(&T) -> K + Send + Sync,
    {
        let mut hashed = mem::take(&mut self.pool.hashed);
        let mut placed = mem::take(&mut self.pool.placed);
        hashed.clear();
        hashed.resize(items.len(), (0, 0));
        hashed
            .par_iter_mut()
            .enumerate()
            .with_min_len(4096)
            .for_each(|(i, slot)| *slot = (hash_key(&key(&items[i])), i as u64));
        let result = try_semisort_into_pooled(
            &hashed,
            &self.cfg,
            &mut self.pool,
            &mut placed,
            &self.cancel,
        );
        self.pool.hashed = hashed;
        self.pool.placed = placed;
        self.finish();
        self.last_stats = result?;
        self.last_stats.scratch_bytes_held = self.pool.bytes_held();
        Ok(())
    }

    /// Semisort `items` by an arbitrary `Hash + Eq` key, with exact 64-bit
    /// hash-collision repair — the pooled counterpart of
    /// [`crate::api::try_semisort_by_key`].
    #[must_use = "the Err carries the failure that the config asked to surface"]
    pub fn sort_by_key<T, K, F>(&mut self, items: &[T], key: F) -> Result<Vec<T>, SemisortError>
    where
        T: Clone + Send + Sync,
        K: Hash + Eq,
        F: Fn(&T) -> K + Send + Sync,
    {
        self.place_by_key(items, &key)?;
        let placed = &self.pool.placed;
        let mut out: Vec<T> = placed
            .par_iter()
            .with_min_len(4096)
            .map(|&(_, i)| items[i as usize].clone())
            .collect();
        repair_hash_collisions(&mut out, placed, &key);
        debug_assert_eq!(out.len(), items.len());
        Ok(out)
    }

    /// Compute the semisort permutation into `perm` (cleared first); the
    /// by-index core of [`Self::permutation`], [`Self::stable_by_key`] and
    /// [`Self::in_place`].
    fn permutation_into<T, K, F>(
        &mut self,
        items: &[T],
        key: &F,
        perm: &mut Vec<usize>,
    ) -> Result<(), SemisortError>
    where
        T: Sync,
        K: Hash + Eq,
        F: Fn(&T) -> K + Send + Sync,
    {
        self.place_by_key(items, key)?;
        let placed = &self.pool.placed;
        perm.clear();
        perm.extend(placed.iter().map(|&(_, i)| i as usize));
        repair_collisions_on_perm(perm, placed, items, key);
        Ok(())
    }

    /// The permutation a semisort would apply (`perm[j] = i` ⇒ output `j`
    /// takes input `i`) — the pooled counterpart of
    /// [`crate::api::try_semisort_permutation`].
    #[must_use = "the Err carries the failure that the config asked to surface"]
    pub fn permutation<T, K, F>(&mut self, items: &[T], key: F) -> Result<Vec<usize>, SemisortError>
    where
        T: Sync,
        K: Hash + Eq,
        F: Fn(&T) -> K + Send + Sync,
    {
        let mut perm = Vec::new();
        self.permutation_into(items, &key, &mut perm)?;
        Ok(perm)
    }

    /// Stable semisort (input order survives within each group) — the
    /// pooled counterpart of [`crate::api::try_semisort_stable_by_key`].
    #[must_use = "the Err carries the failure that the config asked to surface"]
    pub fn stable_by_key<T, K, F>(&mut self, items: &[T], key: F) -> Result<Vec<T>, SemisortError>
    where
        T: Clone + Send + Sync,
        K: Hash + Eq,
        F: Fn(&T) -> K + Send + Sync,
    {
        let n = items.len();
        let mut perm = mem::take(&mut self.pool.perm);
        let result = self.permutation_into(items, &key, &mut perm);
        let result = result.map(|()| {
            // Restore input order inside each key run (the scatter
            // randomizes within buckets), then gather.
            let bounds: Vec<usize> = {
                let mut b = parlay::pack_index(n, |j| {
                    j == 0 || key(&items[perm[j]]) != key(&items[perm[j - 1]])
                });
                b.push(n);
                b
            };
            let mut rest: &mut [usize] = &mut perm;
            let mut runs: Vec<&mut [usize]> = Vec::with_capacity(bounds.len());
            for w in bounds.windows(2) {
                let (head, tail) = rest.split_at_mut(w[1] - w[0]);
                runs.push(head);
                rest = tail;
            }
            runs.into_par_iter().for_each(|run| run.sort_unstable());
            perm.par_iter()
                .with_min_len(4096)
                .map(|&i| items[i].clone())
                .collect()
        });
        self.pool.perm = perm;
        self.finish();
        result
    }

    /// Semisort `items` in place without cloning: permutation into pooled
    /// scratch, then cycle rotation with a pooled visited bitset — the
    /// pooled counterpart of [`crate::api::try_semisort_in_place`], and
    /// the only by-key path that allocates nothing at steady state.
    ///
    /// On `Err` the items are untouched.
    #[must_use = "the Err carries the failure that the config asked to surface"]
    pub fn in_place<T, K, F>(&mut self, items: &mut [T], key: F) -> Result<(), SemisortError>
    where
        T: Sync,
        K: Hash + Eq,
        F: Fn(&T) -> K + Send + Sync,
    {
        let mut perm = mem::take(&mut self.pool.perm);
        let mut visited = mem::take(&mut self.pool.visited);
        let result = self.permutation_into(items, &key, &mut perm);
        let result = result.map(|()| apply_permutation_with_scratch(items, &perm, &mut visited));
        self.pool.perm = perm;
        self.pool.visited = visited;
        self.finish();
        result
    }

    /// Group `items` by key — the pooled counterpart of
    /// [`crate::api::try_group_by`].
    #[must_use = "the Err carries the failure that the config asked to surface"]
    pub fn group_by<T, K, F>(&mut self, items: &[T], key: F) -> Result<Groups<T>, SemisortError>
    where
        T: Clone + Send + Sync,
        K: Hash + Eq,
        F: Fn(&T) -> K + Send + Sync,
    {
        let sorted = self.sort_by_key(items, &key)?;
        let n = sorted.len();
        let mut starts =
            parlay::pack_index(n, |i| i == 0 || key(&sorted[i]) != key(&sorted[i - 1]));
        starts.push(n);
        Ok(Groups {
            items: sorted,
            starts,
        })
    }

    /// Fold every group into one `(key, accumulator)` — the pooled
    /// counterpart of [`crate::api::try_reduce_by_key`].
    #[must_use = "the Err carries the failure that the config asked to surface"]
    pub fn reduce_by_key<T, K, A, F, G>(
        &mut self,
        items: &[T],
        key: F,
        init: A,
        fold: G,
    ) -> Result<Vec<(K, A)>, SemisortError>
    where
        T: Clone + Send + Sync,
        K: Hash + Eq + Send + Sync,
        A: Clone + Send + Sync,
        F: Fn(&T) -> K + Send + Sync,
        G: Fn(A, &T) -> A + Send + Sync,
    {
        let groups = self.group_by(items, &key)?;
        Ok((0..groups.len())
            .into_par_iter()
            .map(|g| {
                let slice = groups.group(g);
                let acc = slice.iter().fold(init.clone(), &fold);
                (key(&slice[0]), acc)
            })
            .collect())
    }

    /// Histogram of items per distinct key — the pooled counterpart of
    /// [`crate::api::try_count_by_key`].
    #[must_use = "the Err carries the failure that the config asked to surface"]
    pub fn count_by_key<T, K, F>(
        &mut self,
        items: &[T],
        key: F,
    ) -> Result<Vec<(K, usize)>, SemisortError>
    where
        T: Clone + Send + Sync,
        K: Hash + Eq + Send + Sync,
        F: Fn(&T) -> K + Send + Sync,
    {
        self.reduce_by_key(items, key, 0usize, |a, _| a + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{is_permutation_of, is_semisorted_by};
    use parlay::hash64;

    fn cfg() -> SemisortConfig {
        SemisortConfig {
            seq_threshold: 64,
            ..Default::default()
        }
    }

    #[test]
    fn new_rejects_invalid_config() {
        let bad = SemisortConfig {
            alpha: 1.0,
            ..Default::default()
        };
        assert!(matches!(
            Semisorter::new(bad),
            Err(SemisortError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn sort_pairs_reuses_scratch() {
        let mut eng = Semisorter::new(SemisortConfig::default()).unwrap();
        let recs: Vec<(u64, u64)> = (0..50_000u64).map(|i| (hash64(i % 500), i)).collect();
        let first = eng.sort_pairs(&recs).unwrap();
        assert!(is_semisorted_by(&first, |r| r.0));
        assert!(eng.last_stats().scratch_grows >= 1, "first call must grow");
        assert!(eng.scratch_bytes_held() > 0);
        let held = eng.scratch_bytes_held();
        for _ in 0..3 {
            let out = eng.sort_pairs(&recs).unwrap();
            assert!(is_semisorted_by(&out, |r| r.0));
            assert!(is_permutation_of(&out, &recs));
            assert_eq!(eng.last_stats().scratch_grows, 0, "steady state");
            assert!(eng.last_stats().scratch_reuse_hits >= 1);
            assert_eq!(eng.scratch_bytes_held(), held, "high-water mark stable");
        }
    }

    #[test]
    fn trim_releases_everything() {
        let mut eng = Semisorter::new(SemisortConfig::default()).unwrap();
        let recs: Vec<(u64, u64)> = (0..40_000u64).map(|i| (hash64(i), i)).collect();
        eng.sort_pairs(&recs).unwrap();
        assert!(eng.scratch_bytes_held() > 0);
        eng.trim();
        assert_eq!(eng.scratch_bytes_held(), 0);
        // Still works after a trim (re-grows).
        let out = eng.sort_pairs(&recs).unwrap();
        assert!(is_semisorted_by(&out, |r| r.0));
        assert!(eng.last_stats().scratch_grows >= 1);
    }

    #[test]
    fn max_scratch_bytes_bounds_retention() {
        let cfg = SemisortConfig::default().with_max_scratch_bytes(1024);
        let mut eng = Semisorter::new(cfg).unwrap();
        let recs: Vec<(u64, u64)> = (0..40_000u64).map(|i| (hash64(i % 100), i)).collect();
        let out = eng.sort_pairs(&recs).unwrap();
        assert!(is_semisorted_by(&out, |r| r.0));
        // The run needed far more than 1 KiB, so nothing is retained.
        assert_eq!(eng.scratch_bytes_held(), 0);
        assert_eq!(eng.last_stats().scratch_bytes_held, 0);
    }

    #[test]
    fn by_key_methods_work_and_reuse() {
        let mut eng = Semisorter::new(cfg()).unwrap();
        let items: Vec<u32> = (0..30_000).map(|i| i % 321).collect();
        let out = eng.sort_by_key(&items, |&x| x).unwrap();
        assert!(is_semisorted_by(&out, |&x| x));
        assert!(is_permutation_of(&out, &items));
        let g = eng.group_by(&items, |&x| x).unwrap();
        assert_eq!(g.len(), 321);
        assert_eq!(eng.last_stats().scratch_grows, 0, "same n ⇒ no growth");
        let mut counts = eng.count_by_key(&items, |&x| x).unwrap();
        counts.sort_unstable();
        assert_eq!(counts.iter().map(|c| c.1).sum::<usize>(), items.len());
    }

    #[test]
    fn stable_and_in_place_match_semantics() {
        let mut eng = Semisorter::new(cfg()).unwrap();
        let items: Vec<(u32, u32)> = (0..20_000).map(|i| (i % 97, i)).collect();
        let out = eng.stable_by_key(&items, |p| p.0).unwrap();
        assert!(is_semisorted_by(&out, |p| p.0));
        for w in out.windows(2) {
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated");
            }
        }
        let mut v: Vec<u32> = (0..20_000).map(|i| i % 123).collect();
        let orig = v.clone();
        eng.in_place(&mut v, |&x| x).unwrap();
        assert!(is_semisorted_by(&v, |&x| x));
        assert!(is_permutation_of(&v, &orig));
    }

    #[test]
    fn permutation_is_valid() {
        let mut eng = Semisorter::new(cfg()).unwrap();
        let items: Vec<u32> = (0..15_000).map(|i| (i * 37) % 450).collect();
        let perm = eng.permutation(&items, |&x| x).unwrap();
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert!(sorted.iter().enumerate().all(|(i, &p)| p == i));
        let arranged: Vec<u32> = perm.iter().map(|&i| items[i]).collect();
        assert!(is_semisorted_by(&arranged, |&x| x));
    }
}
