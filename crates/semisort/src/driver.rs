//! The five-phase driver (Algorithm 1 end to end), with per-phase timing,
//! the Las Vegas retry loop, and the escalation policy that decides what
//! happens when the retry (or memory) budget runs out.

use parlay::random::Rng;
use rayon::prelude::*;
use rayon::trace::SchedulerStats;

use crate::blocked_scatter::blocked_scatter;
use crate::buckets::build_plan;
use crate::cancel::CancelToken;
use crate::config::{OverflowPolicy, ScatterStrategy, SemisortConfig};
use crate::error::SemisortError;
use crate::fault::FaultPlan;
use crate::inplace_scatter::{inplace_bytes, inplace_scatter, sort_light_regions};
use crate::local_sort::local_sort_light_buckets;
use crate::obs::{log_event, log_event_kv, ObsSink, PhaseSpan, RetryCause, ScratchCounters};
use crate::pack_phase::pack_output_into;
use crate::pool::ScratchPool;
use crate::sample::strided_sample_by_into;
use crate::scatter::{arena_bytes, scatter, Slot, EMPTY};
use crate::stats::SemisortStats;

/// Semisort pre-hashed records. See [`try_semisort_core`] for details.
#[deprecated(
    since = "0.9.0",
    note = "panicking one-shot wrappers are superseded by the `try_*` twins; \
            use `try_semisort_core` (or a pooled `Semisorter`)"
)]
pub fn semisort_core<V: Copy + Send + Sync>(
    records: &[(u64, V)],
    cfg: &SemisortConfig,
) -> Vec<(u64, V)> {
    try_semisort_core(records, cfg).unwrap_or_else(|e| panic!("semisort: {e}"))
}

/// Fallible [`semisort_core`]: returns the output alone, surfacing terminal
/// failures per the configured policy (see [`try_semisort_with_stats`]).
pub fn try_semisort_core<V: Copy + Send + Sync>(
    records: &[(u64, V)],
    cfg: &SemisortConfig,
) -> Result<Vec<(u64, V)>, SemisortError> {
    try_semisort_with_stats(records, cfg).map(|(out, _)| out)
}

/// Semisort pre-hashed `(key, value)` records, returning the output and the
/// per-phase telemetry of [`SemisortStats`].
///
/// Panicking wrapper around [`try_semisort_with_stats`]: with the default
/// [`OverflowPolicy::Fallback`] it never fails on valid input (terminal
/// overflow degrades to the comparison sort); it panics only when the
/// config is invalid, or when the config selects
/// [`OverflowPolicy::Error`] or [`OverflowPolicy::Panic`] and the
/// escalation ladder bottoms out.
#[deprecated(
    since = "0.9.0",
    note = "panicking one-shot wrappers are superseded by the `try_*` twins; \
            use `try_semisort_with_stats` (or a pooled `Semisorter`)"
)]
pub fn semisort_with_stats<V: Copy + Send + Sync>(
    records: &[(u64, V)],
    cfg: &SemisortConfig,
) -> (Vec<(u64, V)>, SemisortStats) {
    try_semisort_with_stats(records, cfg).unwrap_or_else(|e| panic!("semisort: {e}"))
}

/// Semisort pre-hashed `(u64, value)` records, returning the output and the
/// per-phase telemetry of [`SemisortStats`] — or a [`SemisortError`] when
/// the run cannot complete and the config says so.
///
/// One-shot form: allocates a transient [`ScratchPool`] for this call and
/// drops it on return. Callers that semisort repeatedly should hold a
/// [`Semisorter`](crate::engine::Semisorter), which keeps the pool warm
/// across calls.
///
/// Records with equal keys are contiguous in the output; distinct keys are
/// in no particular order. The input must be *hashed* keys (uniformly
/// distributed bits) — the light-bucket partition divides the hash range
/// evenly and relies on uniformity for its `O(log² n)` bucket-size bound
/// (§3). For raw keys use [`crate::api::semisort_by_key`], which hashes
/// for you.
///
/// Inputs at or below `cfg.seq_threshold`, and inputs containing the
/// reserved [`EMPTY`] key (probability `≈ n/2^64` for hashed keys), take a
/// sort-based fallback path — still a correct semisort, just without the
/// linear-work machinery.
///
/// # Errors
///
/// An invalid configuration returns
/// [`SemisortError::InvalidConfig`] under every policy. Beyond that, three
/// terminal runtime conditions exist: the Las Vegas retry budget runs out,
/// an attempt's arena would exceed [`SemisortConfig::max_arena_bytes`], or
/// the arena allocation itself fails. Under the default
/// [`OverflowPolicy::Fallback`] all three degrade to the comparison sort
/// (`Ok` with [`SemisortStats::degraded`] set); under
/// [`OverflowPolicy::Error`] they return `Err`; under
/// [`OverflowPolicy::Panic`] they panic. So on valid input this function
/// can only return `Err` (and can only panic) when the caller opted in.
#[must_use = "the Err carries the failure that the config asked to surface"]
pub fn try_semisort_with_stats<V: Copy + Send + Sync>(
    records: &[(u64, V)],
    cfg: &SemisortConfig,
) -> Result<(Vec<(u64, V)>, SemisortStats), SemisortError> {
    try_semisort_with_stats_cancellable(records, cfg, &CancelToken::new())
}

/// [`try_semisort_with_stats`] with a caller-supplied [`CancelToken`].
///
/// The token is polled at **phase boundaries** (never inside a phase's hot
/// loop), so cancellation latency is bounded by the longest single phase.
/// A run that observes the token returns
/// [`SemisortError::Cancelled`] / [`SemisortError::DeadlineExceeded`]
/// with the output empty or untouched: the result is all-or-nothing,
/// never a partially-written semisort. A tripped token also suppresses the
/// [`OverflowPolicy::Fallback`] degradation path — a caller whose deadline
/// has passed does not want an even slower comparison sort.
///
/// [`ScatterStrategy::InPlace`] permutes *inside* the output buffer, so
/// once its scatter begins the run commits: no further polls happen and
/// cancellation latency extends to the end of the run. Exits that leave
/// the loop after an in-place scatter started (fault-injected retries)
/// clear the output first, preserving the all-or-nothing contract.
#[must_use = "the Err carries the failure that the config asked to surface"]
pub fn try_semisort_with_stats_cancellable<V: Copy + Send + Sync>(
    records: &[(u64, V)],
    cfg: &SemisortConfig,
    cancel: &CancelToken,
) -> Result<(Vec<(u64, V)>, SemisortStats), SemisortError> {
    let mut pool = ScratchPool::new();
    let mut out = Vec::new();
    let stats = try_semisort_into_pooled(records, cfg, &mut pool, &mut out, cancel)?;
    Ok((out, stats))
}

/// The pooled core every entry point funnels through: semisort `records`
/// into `out` (cleared first) using — and growing — `pool`'s scratch.
///
/// On *every* exit (success, degradation, error) the pool's retained bytes
/// are re-bounded by `cfg.max_scratch_bytes`; on success the stats carry
/// the pool counters ([`SemisortStats::scratch_reuse_hits`] /
/// [`SemisortStats::scratch_grows`] / [`SemisortStats::scratch_bytes_held`]).
pub(crate) fn try_semisort_into_pooled<V: Copy + Send + Sync>(
    records: &[(u64, V)],
    cfg: &SemisortConfig,
    pool: &mut ScratchPool,
    out: &mut Vec<(u64, V)>,
    cancel: &CancelToken,
) -> Result<SemisortStats, SemisortError> {
    cfg.try_validate()?;
    let mut counters = ScratchCounters::default();
    let result = run_pooled(records, cfg, pool, out, &mut counters, cancel);
    pool.enforce_budget(cfg.max_scratch_bytes);
    let mut stats = result?;
    stats.scratch_reuse_hits = counters.reuse_hits;
    stats.scratch_grows = counters.grows;
    stats.scratch_bytes_held = pool.bytes_held();
    if counters.grows > 0 {
        log_event(
            "scratch",
            &[
                ("grows", counters.grows as u64),
                ("reuse_hits", counters.reuse_hits as u64),
                ("bytes_held", stats.scratch_bytes_held as u64),
            ],
        );
    }
    Ok(stats)
}

/// The five-phase loop proper, writing into `out` and leasing all scratch
/// from `pool`. Assumes `cfg` is already validated.
fn run_pooled<V: Copy + Send + Sync>(
    records: &[(u64, V)],
    cfg: &SemisortConfig,
    pool: &mut ScratchPool,
    out: &mut Vec<(u64, V)>,
    counters: &mut ScratchCounters,
    cancel: &CancelToken,
) -> Result<SemisortStats, SemisortError> {
    cancel.check()?;
    let n = records.len();
    let mut stats = SemisortStats {
        n,
        config: *cfg,
        ..Default::default()
    };
    // Split the pool into independently-borrowed parts once: the sample
    // buffer, the slot arena, and the blocked-scatter worker state are used
    // in different phases of the same iteration.
    let ScratchPool {
        arena,
        sample,
        blocked,
        inplace,
        ..
    } = pool;
    let in_place = cfg.scatter.strategy == ScatterStrategy::InPlace;

    if n <= cfg.seq_threshold {
        stats.light_records = n;
        fallback_sort_into(records, out);
        return Ok(stats);
    }
    // Baseline scheduler snapshot: the final stats carry the delta across
    // the whole run (sentinel screen included — its par_iter is part of the
    // run's scheduler footprint). Skipped when the run executes inline
    // (effective pool of 1, or Miri): there is no scheduler to observe, and
    // asking would force the global registry into existence for nothing.
    let sched_before = if cfg.capture_scheduler && rayon::current_num_threads() > 1 {
        rayon::scheduler_stats()
    } else {
        None
    };
    // The scatter reserves EMPTY (= 0) as its slot-vacancy sentinel and the
    // heavy-key table reserves u64::MAX. A hashed key colliding with either
    // is a ~n/2^63 event; handle it by falling back rather than by silently
    // merging keys.
    if records
        .par_iter()
        .any(|r| r.0 == EMPTY || r.0 == parlay::hash_table::EMPTY)
    {
        stats.light_records = n;
        fallback_sort_into(records, out);
        return Ok(stats);
    }

    let mut attempt = 0u32;
    let mut retry_causes: Vec<RetryCause> = Vec::new();
    let mut faults_injected = 0u32;
    loop {
        // Retry boundary: a deadline that expired while the previous attempt
        // was scattering fires here, before any of this attempt's work.
        // (In-place retries cleared `out` on the way here, so this early
        // return still honors the all-or-nothing output contract.)
        cancel.check()?;
        // Each retry re-randomizes every random choice and doubles the
        // slack α (Corollary 3.4 failures are overwhelmingly due to an
        // unlucky sample underestimating a bucket). The per-attempt seed is
        // mixed through a splitmix64 finalizer so consecutive attempts are
        // decorrelated — `seed + attempt` would hand attempt k the same
        // random stream attempt k-1 ran with seed+1, re-rolling correlated
        // dice against a correlated failure.
        let run_cfg = SemisortConfig {
            alpha: cfg.alpha * 2f64.powi(attempt as i32),
            seed: mix_seed(cfg.seed, attempt),
            ..*cfg
        };
        let rng = Rng::new(run_cfg.seed);
        // Fresh sink per attempt: the final stats describe the successful
        // pass; failed attempts leave their trace as `retry_causes`.
        let sink = ObsSink::new(run_cfg.telemetry);

        // Arm this attempt's faults (all no-ops in production: the default
        // plan is inert and every check is a branch on a Copy struct).
        let forced_overflow = cfg.fault.forced_overflow(attempt);
        let fail_alloc = cfg.fault.alloc_fails(attempt);
        let corrupt_sample = cfg.fault.sample_corrupted(attempt);
        let forced_panic = cfg.fault.panics(attempt);
        for (armed, kind) in [
            (forced_overflow.is_some(), "force-overflow"),
            (fail_alloc, "fail-alloc"),
            (corrupt_sample, "corrupt-sample"),
            (forced_panic, "panic"),
        ] {
            if armed {
                faults_injected += 1;
                log_event_kv("fault", &[("kind", kind)], &[("attempt", attempt as u64)]);
            }
        }

        // Phase 1: sampling and sorting.
        let span = PhaseSpan::start("sample_sort");
        strided_sample_by_into(
            n,
            run_cfg.sample_shift,
            rng.fork(1),
            |i| records[i].0,
            sample,
        );
        if corrupt_sample {
            FaultPlan::corrupt_sample(sample);
        }
        parlay::radix_sort::radix_sort_u64(sample);
        stats.t_sample_sort = span.finish_into(&mut stats.spans);
        stats.sample_size = sample.len();
        cancel.check()?;

        // Phase 2: bucket construction (classification, table, allocation).
        let span = PhaseSpan::start("construct_buckets");
        let plan = build_plan(sample, n, &run_cfg);
        // Memory budget: α doubles every retry, so the arena grows
        // geometrically — check the plan *before* allocating and escalate
        // early instead of letting a doomed retry sequence eat the heap.
        // The in-place path holds no arena; its (much smaller) scratch
        // estimate goes through the same gate so the budget policy and its
        // fault tests behave uniformly across strategies.
        let required = if in_place {
            inplace_bytes::<V>(
                &plan,
                rayon::current_num_threads().max(1),
                run_cfg.scatter.swap_buffer,
            )
        } else {
            arena_bytes::<V>(&plan)
        };
        if required > cfg.max_arena_bytes {
            let err = SemisortError::ArenaBudgetExceeded {
                required_bytes: required,
                budget_bytes: cfg.max_arena_bytes,
                attempt,
            };
            finish_stats(
                &mut stats,
                &sink,
                &mut retry_causes,
                faults_injected,
                sched_before.as_ref(),
            );
            escalate(records, cfg, err, &mut stats, out, cancel)?;
            return Ok(stats);
        }
        // The in-place path leases no slots; an injected alloc failure
        // escalates with its scratch estimate so the chaos ladder still
        // exercises the same error path.
        let slot_lease = if in_place {
            if fail_alloc {
                Err(required)
            } else {
                Ok(&[][..])
            }
        } else {
            arena.lease_slots::<V>(plan.total_slots, fail_alloc, counters)
        };
        let slots: &[Slot<V>] = match slot_lease {
            Ok(slots) => slots,
            Err(bytes) => {
                let err = SemisortError::ArenaAllocFailed { bytes, attempt };
                finish_stats(
                    &mut stats,
                    &sink,
                    &mut retry_causes,
                    faults_injected,
                    sched_before.as_ref(),
                );
                escalate(records, cfg, err, &mut stats, out, cancel)?;
                return Ok(stats);
            }
        };
        stats.t_construct_buckets = span.finish_into(&mut stats.spans);
        stats.heavy_keys = plan.num_heavy;
        stats.light_buckets = plan.num_light;
        stats.total_slots = plan.total_slots;
        cancel.check()?;

        // Phase 3: scatter (the paper's CAS loop or the block-buffered
        // variant; both fill the same arena under the same contract).
        let span = PhaseSpan::start("scatter");
        if forced_panic {
            // Chaos injection: a real unwind from the middle of the hot
            // phase, for the service layer's `catch_unwind` containment to
            // absorb. All scratch is leased from `pool` via borrows, so the
            // unwind cannot leave a lease dangling (tests/poison_recovery.rs).
            panic!(
                "semisort: injected panic (fault plan `{}`)",
                cfg.fault.spec()
            );
        }
        let (heavy_records, overflowed, overflow) = match run_cfg.scatter.strategy {
            ScatterStrategy::RandomCas => {
                let o = scatter(
                    records,
                    &plan,
                    slots,
                    run_cfg.probe_strategy,
                    run_cfg.scatter.prefetch_distance,
                    rng.fork(2),
                    &sink,
                    forced_overflow,
                );
                (o.heavy_records, o.overflowed, o.overflow)
            }
            ScatterStrategy::Blocked => {
                let o = blocked_scatter(
                    records,
                    &plan,
                    slots,
                    run_cfg.scatter.block,
                    run_cfg.scatter.tail_log2,
                    run_cfg.scatter.prefetch_distance,
                    &sink,
                    forced_overflow,
                    blocked,
                );
                stats.blocks_flushed = o.blocks_flushed;
                stats.slab_overflows = o.slab_overflows;
                stats.fallback_records = o.fallback_records;
                (o.heavy_records, o.overflowed, o.overflow)
            }
            ScatterStrategy::InPlace => {
                let o = inplace_scatter(
                    records,
                    &plan,
                    out,
                    run_cfg.scatter.swap_buffer,
                    &sink,
                    forced_overflow,
                    inplace,
                );
                stats.inplace_cycles = o.cycles;
                stats.swap_buffer_flushes = o.flushes;
                // The in-place path never touches the arena, so fold its
                // scratch fate into the pool counters here.
                if o.grew {
                    counters.grows += 1;
                } else {
                    counters.reuse_hits += 1;
                }
                (o.heavy_records, o.overflowed, o.overflow)
            }
        };
        stats.t_scatter = span.finish_into(&mut stats.spans);
        if overflowed {
            // The in-place scatter wrote (a copy) into `out` before the
            // injected overflow bailed; clear it so every later exit path
            // (cancellation, escalation) keeps the all-or-nothing output
            // contract.
            if in_place {
                out.clear();
            }
            attempt += 1;
            stats.retries = attempt;
            // Record *why* (cold path — every telemetry level keeps this:
            // a run that retried is exactly the run worth diagnosing).
            if let Some((bucket, allocated, observed)) = overflow {
                retry_causes.push(RetryCause {
                    attempt,
                    bucket,
                    heavy: (bucket as usize) < plan.num_heavy,
                    allocated,
                    observed,
                });
                log_event(
                    "retry",
                    &[
                        ("attempt", attempt as u64),
                        ("bucket", bucket as u64),
                        ("allocated", allocated as u64),
                        ("observed", observed as u64),
                    ],
                );
            }
            if attempt > cfg.max_retries {
                let err = SemisortError::RetriesExhausted {
                    attempts: attempt,
                    alpha: run_cfg.alpha,
                    n,
                };
                finish_stats(
                    &mut stats,
                    &sink,
                    &mut retry_causes,
                    faults_injected,
                    sched_before.as_ref(),
                );
                escalate(records, cfg, err, &mut stats, out, cancel)?;
                return Ok(stats);
            }
            continue;
        }
        stats.heavy_records = heavy_records;
        stats.light_records = n - heavy_records;

        if in_place {
            // The records already sit in their exact bucket regions inside
            // `out`; sorting the light regions is all that remains (heavy
            // regions hold one key each) and there is no pack. No
            // cancellation polls past this point: the run has committed to
            // the output buffer (see `try_semisort_with_stats_cancellable`).
            let span = PhaseSpan::start("local_sort");
            sort_light_regions(out, &plan, &inplace.starts, run_cfg.local_sort_algo);
            stats.t_local_sort = span.finish_into(&mut stats.spans);
            debug_assert_eq!(out.len(), n, "in-place permute preserves length");
            finish_stats(
                &mut stats,
                &sink,
                &mut retry_causes,
                faults_injected,
                sched_before.as_ref(),
            );
            return Ok(stats);
        }
        cancel.check()?;

        // Phase 4: local sort of the light buckets.
        let span = PhaseSpan::start("local_sort");
        let light_counts = local_sort_light_buckets(&plan, slots, run_cfg.local_sort_algo, &sink);
        stats.t_local_sort = span.finish_into(&mut stats.spans);
        // Last cancellation point: past here the run commits to writing
        // `out`, and finishing is cheaper than throwing the work away.
        cancel.check()?;

        // Phase 5: pack.
        let span = PhaseSpan::start("pack");
        pack_output_into(&plan, slots, &light_counts, out);
        stats.t_pack = span.finish_into(&mut stats.spans);
        debug_assert_eq!(out.len(), n, "pack must emit every record");

        finish_stats(
            &mut stats,
            &sink,
            &mut retry_causes,
            faults_injected,
            sched_before.as_ref(),
        );
        return Ok(stats);
    }
}

/// Mix `(seed, attempt)` into a per-attempt seed with the splitmix64
/// finalizer, so retry streams are statistically independent of the failed
/// attempt's. Attempt 0 is mixed too — the entry seed is a label, not a
/// stream prefix.
fn mix_seed(seed: u64, attempt: u32) -> u64 {
    let mut z = seed.wrapping_add((attempt as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fold the attempt's telemetry and the run-level failure bookkeeping into
/// the stats (shared by the success return and every escalation site).
/// When a baseline scheduler snapshot was taken, the closing snapshot is
/// taken here — after the run's parallel phases joined, so the pool is
/// quiescent with respect to this run's jobs — and the delta attached.
fn finish_stats(
    stats: &mut SemisortStats,
    sink: &ObsSink,
    retry_causes: &mut Vec<RetryCause>,
    faults_injected: u32,
    sched_before: Option<&SchedulerStats>,
) {
    stats.telemetry = sink.snapshot();
    stats.telemetry.retry_causes = std::mem::take(retry_causes);
    stats.faults_injected = faults_injected;
    if let Some(before) = sched_before {
        stats.scheduler = rayon::scheduler_stats().map(|after| after.delta(before));
    }
}

/// Apply the configured [`OverflowPolicy`] to a terminal failure: degrade
/// to the comparison sort written into `out` (marking the stats), surface
/// the error, or panic. Errors with no
/// [`DegradeReason`](crate::error::DegradeReason) (invalid config) are
/// surfaced under every policy — there is nothing to fall back *to*.
///
/// A tripped [`CancelToken`] overrides the policy: a caller whose deadline
/// has already passed must not be handed to the comparison-sort fallback,
/// which is the *slowest* path in the crate.
fn escalate<V: Copy + Send + Sync>(
    records: &[(u64, V)],
    cfg: &SemisortConfig,
    err: SemisortError,
    stats: &mut SemisortStats,
    out: &mut Vec<(u64, V)>,
    cancel: &CancelToken,
) -> Result<(), SemisortError> {
    cancel.check()?;
    match cfg.overflow_policy {
        OverflowPolicy::Fallback => {
            let Some(reason) = err.degrade_reason() else {
                return Err(err);
            };
            log_event_kv(
                "degraded",
                &[
                    ("policy", cfg.overflow_policy.as_str()),
                    ("reason", reason.as_str()),
                ],
                &[("n", records.len() as u64)],
            );
            stats.degraded = true;
            stats.degrade_reason = Some(reason);
            stats.heavy_records = 0;
            stats.light_records = records.len();
            fallback_sort_into(records, out);
            Ok(())
        }
        OverflowPolicy::Error => {
            log_event_kv(
                "error",
                &[
                    ("policy", cfg.overflow_policy.as_str()),
                    ("kind", err.kind()),
                ],
                &[("n", records.len() as u64)],
            );
            Err(err)
        }
        OverflowPolicy::Panic => panic!("semisort: {err}"),
    }
}

/// Sort-based fallback: a full sort by key is trivially a semisort. Writes
/// into `out` (cleared first) so pooled callers keep its capacity.
fn fallback_sort_into<V: Copy + Send + Sync>(records: &[(u64, V)], out: &mut Vec<(u64, V)>) {
    out.clear();
    out.extend_from_slice(records);
    if out.len() > 1 {
        parlay::radix_sort::radix_sort_by_key(out, 64, |r| r.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScatterConfig;
    use crate::verify::{is_permutation_of, is_semisorted_by};
    use parlay::hash64;

    fn with_strategy(strategy: ScatterStrategy) -> SemisortConfig {
        SemisortConfig {
            scatter: ScatterConfig {
                strategy,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn check(records: &[(u64, u64)], cfg: &SemisortConfig) -> SemisortStats {
        let (out, stats) = try_semisort_with_stats(records, cfg).unwrap();
        assert!(is_semisorted_by(&out, |r| r.0), "not semisorted");
        assert!(is_permutation_of(&out, records), "not a permutation");
        stats
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let cfg = SemisortConfig::default();
        check(&[], &cfg);
        check(&[(hash64(1), 0)], &cfg);
        let tiny: Vec<(u64, u64)> = (0..100u64).map(|i| (hash64(i % 5), i)).collect();
        check(&tiny, &cfg);
    }

    #[test]
    fn uniform_all_light() {
        let cfg = SemisortConfig::default();
        let recs: Vec<(u64, u64)> = (0..100_000u64).map(|i| (hash64(i), i)).collect();
        let stats = check(&recs, &cfg);
        assert_eq!(stats.heavy_records, 0, "all-distinct keys are never heavy");
        assert_eq!(stats.retries, 0);
        assert!(!stats.degraded);
        assert_eq!(stats.faults_injected, 0);
    }

    #[test]
    fn few_keys_all_heavy() {
        let cfg = SemisortConfig::default();
        let recs: Vec<(u64, u64)> = (0..100_000u64).map(|i| (hash64(i % 4), i)).collect();
        let stats = check(&recs, &cfg);
        assert_eq!(stats.heavy_keys, 4);
        assert!(stats.heavy_fraction_pct() > 99.9);
    }

    #[test]
    fn mixed_heavy_light() {
        let cfg = SemisortConfig::default();
        let recs: Vec<(u64, u64)> = (0..150_000u64)
            .map(|i| {
                let k = if i % 2 == 0 { i % 10 } else { 1_000_000 + i };
                (hash64(k), i)
            })
            .collect();
        let stats = check(&recs, &cfg);
        // Even i with key i % 10 gives 5 hot keys: {0, 2, 4, 6, 8}.
        assert_eq!(stats.heavy_keys, 5, "the 5 hot keys should be heavy");
        let pct = stats.heavy_fraction_pct();
        assert!((45.0..55.0).contains(&pct), "≈50% heavy, got {pct:.1}%");
    }

    #[test]
    fn space_is_linear() {
        let cfg = SemisortConfig::default();
        let recs: Vec<(u64, u64)> = (0..200_000u64).map(|i| (hash64(i), i)).collect();
        let stats = check(&recs, &cfg);
        assert!(
            stats.space_blowup() < 8.0,
            "Lemma 3.5 promises O(n) slots; blowup={:.2}",
            stats.space_blowup()
        );
    }

    #[test]
    fn valid_at_any_thread_count() {
        // CAS races make the exact permutation scheduling-dependent (as in
        // the paper's C++ code); what must hold at every thread count is
        // semisortedness + permutation.
        let cfg = SemisortConfig::default();
        let recs: Vec<(u64, u64)> = (0..60_000u64).map(|i| (hash64(i % 1000), i)).collect();
        for threads in [1usize, 2, 4] {
            let out = parlay::with_threads(threads, || try_semisort_core(&recs, &cfg).unwrap());
            assert!(is_semisorted_by(&out, |r| r.0), "threads={threads}");
            assert!(is_permutation_of(&out, &recs), "threads={threads}");
        }
    }

    #[test]
    fn single_thread_runs_are_reproducible() {
        // With one thread there are no CAS races, so seed ⇒ output exactly.
        let cfg = SemisortConfig::default();
        let recs: Vec<(u64, u64)> = (0..60_000u64).map(|i| (hash64(i % 1000), i)).collect();
        let a = parlay::with_threads(1, || try_semisort_core(&recs, &cfg).unwrap());
        let b = parlay::with_threads(1, || try_semisort_core(&recs, &cfg).unwrap());
        assert_eq!(a, b, "same seed + one thread must reproduce exactly");
    }

    #[test]
    fn different_seeds_differ_but_both_valid() {
        let recs: Vec<(u64, u64)> = (0..60_000u64).map(|i| (hash64(i % 50), i)).collect();
        let a = try_semisort_core(&recs, &SemisortConfig::default().with_seed(1)).unwrap();
        let b = try_semisort_core(&recs, &SemisortConfig::default().with_seed(2)).unwrap();
        assert!(is_semisorted_by(&a, |r| r.0));
        assert!(is_semisorted_by(&b, |r| r.0));
        assert_ne!(a, b, "different seeds should shuffle differently");
    }

    #[test]
    fn empty_sentinel_key_takes_fallback() {
        let mut recs: Vec<(u64, u64)> = (0..50_000u64).map(|i| (hash64(i % 100), i)).collect();
        recs[12_345].0 = EMPTY;
        recs[23_456].0 = EMPTY;
        let (out, _) = try_semisort_with_stats(&recs, &SemisortConfig::default()).unwrap();
        assert!(is_semisorted_by(&out, |r| r.0));
        assert!(is_permutation_of(&out, &recs));
    }

    #[test]
    fn tight_alpha_retries_instead_of_failing() {
        // α barely above 1 forces near-full buckets; the Las Vegas loop must
        // still converge (by doubling α) and produce a valid semisort.
        let cfg = SemisortConfig {
            alpha: 1.01,
            ..Default::default()
        };
        let recs: Vec<(u64, u64)> = (0..100_000u64).map(|i| (hash64(i), i)).collect();
        check(&recs, &cfg);
    }

    #[test]
    fn non_u64_payloads_work() {
        #[derive(Clone, Copy, PartialEq, Debug, PartialOrd)]
        struct Payload {
            a: f32,
            b: u32,
        }
        let recs: Vec<(u64, Payload)> = (0..50_000u32)
            .map(|i| (hash64((i % 321) as u64), Payload { a: i as f32, b: i }))
            .collect();
        let out = try_semisort_core(&recs, &SemisortConfig::default()).unwrap();
        assert_eq!(out.len(), recs.len());
        assert!(is_semisorted_by(&out, |r| r.0));
        let mut got: Vec<u32> = out.iter().map(|r| r.1.b).collect();
        got.sort_unstable();
        assert!(got.iter().enumerate().all(|(i, &b)| b == i as u32));
    }

    #[test]
    fn blocked_strategy_end_to_end() {
        let cfg = with_strategy(ScatterStrategy::Blocked);
        let recs: Vec<(u64, u64)> = (0..150_000u64)
            .map(|i| {
                let k = if i % 2 == 0 { i % 10 } else { 1_000_000 + i };
                (hash64(k), i)
            })
            .collect();
        let stats = check(&recs, &cfg);
        assert_eq!(stats.heavy_records + stats.light_records, recs.len());
        assert!(stats.blocks_flushed > 0, "150k records must flush blocks");
    }

    #[test]
    fn blocked_valid_at_any_thread_count() {
        let cfg = with_strategy(ScatterStrategy::Blocked);
        let recs: Vec<(u64, u64)> = (0..60_000u64).map(|i| (hash64(i % 1000), i)).collect();
        for threads in [1usize, 2, 4] {
            let out = parlay::with_threads(threads, || try_semisort_core(&recs, &cfg).unwrap());
            assert!(is_semisorted_by(&out, |r| r.0), "threads={threads}");
            assert!(is_permutation_of(&out, &recs), "threads={threads}");
        }
    }

    #[test]
    fn blocked_tight_alpha_retries_instead_of_failing() {
        let cfg = SemisortConfig {
            alpha: 1.01,
            ..with_strategy(ScatterStrategy::Blocked)
        };
        let recs: Vec<(u64, u64)> = (0..100_000u64).map(|i| (hash64(i), i)).collect();
        check(&recs, &cfg);
    }

    #[test]
    fn inplace_strategy_end_to_end() {
        let cfg = with_strategy(ScatterStrategy::InPlace);
        let recs: Vec<(u64, u64)> = (0..150_000u64)
            .map(|i| {
                let k = if i % 2 == 0 { i % 10 } else { 1_000_000 + i };
                (hash64(k), i)
            })
            .collect();
        let stats = check(&recs, &cfg);
        assert_eq!(stats.heavy_records + stats.light_records, recs.len());
        assert!(stats.inplace_cycles > 0, "permutation must claim positions");
        assert_eq!(stats.blocks_flushed, 0, "no slab machinery runs in-place");
        assert_eq!(stats.retries, 0, "exact counting cannot overflow");
    }

    #[test]
    fn inplace_valid_at_any_thread_count() {
        let cfg = with_strategy(ScatterStrategy::InPlace);
        let recs: Vec<(u64, u64)> = (0..60_000u64).map(|i| (hash64(i % 1000), i)).collect();
        for threads in [1usize, 2, 4] {
            let out = parlay::with_threads(threads, || try_semisort_core(&recs, &cfg).unwrap());
            assert!(is_semisorted_by(&out, |r| r.0), "threads={threads}");
            assert!(is_permutation_of(&out, &recs), "threads={threads}");
        }
    }

    #[test]
    fn inplace_tiny_swap_buffer_still_correct() {
        // A 1-record swap buffer degenerates to pure cycle-following with a
        // flush per displacement — maximum strand/reconcile pressure.
        let cfg = SemisortConfig {
            scatter: ScatterConfig {
                strategy: ScatterStrategy::InPlace,
                swap_buffer: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let recs: Vec<(u64, u64)> = (0..80_000u64).map(|i| (hash64(i % 700), i)).collect();
        let stats = check(&recs, &cfg);
        assert!(stats.swap_buffer_flushes > 0);
    }

    #[test]
    fn inplace_all_equal_keys_is_a_fixed_point() {
        // One heavy key ⇒ every record is already in its (only) bucket; the
        // fixed-point skip should leave the permutation with zero work.
        let cfg = with_strategy(ScatterStrategy::InPlace);
        let recs: Vec<(u64, u64)> = (0..80_000u64).map(|i| (hash64(7), i)).collect();
        let stats = check(&recs, &cfg);
        assert_eq!(stats.heavy_records, recs.len());
    }

    #[test]
    fn light_records_complement_heavy() {
        let cfg = SemisortConfig::default();
        let recs: Vec<(u64, u64)> = (0..150_000u64)
            .map(|i| {
                let k = if i % 2 == 0 { i % 10 } else { 1_000_000 + i };
                (hash64(k), i)
            })
            .collect();
        let stats = check(&recs, &cfg);
        assert!(stats.heavy_records > 0 && stats.light_records > 0);
        assert_eq!(stats.heavy_records + stats.light_records, recs.len());
        // Fallback paths count everything as light.
        let (_, small_stats) = try_semisort_with_stats(&recs[..100], &cfg).unwrap();
        assert_eq!(small_stats.light_records, 100);
    }

    #[test]
    fn all_equal_keys() {
        let recs: Vec<(u64, u64)> = (0..80_000u64).map(|i| (hash64(7), i)).collect();
        let stats = check(&recs, &SemisortConfig::default());
        assert_eq!(stats.heavy_keys, 1);
        assert_eq!(stats.heavy_records, recs.len());
    }

    #[test]
    fn mixed_seeds_are_decorrelated() {
        // Consecutive attempts must not share a seed with any nearby
        // (seed, attempt) pair — the old `seed + attempt` scheme made
        // (s, k+1) collide with (s+1, k).
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64u64 {
            for attempt in 0..8u32 {
                assert!(
                    seen.insert(mix_seed(seed, attempt)),
                    "collision at seed={seed} attempt={attempt}"
                );
            }
        }
        // And mixing is deterministic.
        assert_eq!(mix_seed(42, 3), mix_seed(42, 3));
    }
}
