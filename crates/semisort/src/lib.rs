//! A top-down parallel semisort.
//!
//! Rust reproduction of Gu, Shun, Sun and Blelloch, *A Top-Down Parallel
//! Semisort*, SPAA 2015. **Semisorting** reorders an array of records so
//! that records with equal keys are contiguous, without ordering distinct
//! keys — the core of the MapReduce shuffle, database `GROUP BY`, and many
//! parallel divide-and-conquer algorithms.
//!
//! The algorithm does `O(n)` expected work in `O(log n)` depth (w.h.p.):
//! hash the keys, sort a ~`1/16` sample, classify keys as **heavy** (many
//! duplicates) or **light**, allocate one bucket per heavy key and one per
//! slice of the hash range for light keys (sizes from the high-probability
//! estimator [`estimate::f_estimate`]), scatter every record into a random
//! slot of its bucket with CAS + linear probing, locally sort the light
//! buckets, and pack.
//!
//! # Quick start
//!
//! The primary surface is the [`Semisorter`] engine: build it once from a
//! validated [`SemisortConfig`], then call it repeatedly — its
//! [`pool::ScratchPool`] keeps every internal buffer warm between calls,
//! so steady-state calls allocate nothing for scratch.
//!
//! ```
//! use semisort::prelude::*;
//!
//! let mut engine = Semisorter::new(
//!     SemisortConfig::builder().seed(42).build().unwrap(),
//! ).unwrap();
//!
//! // (hashed key, payload) records; equal keys need not be adjacent.
//! let records: Vec<(u64, u64)> = (0..1000u64)
//!     .map(|i| (parlay::hash64(i % 10), i))
//!     .collect();
//! let out = engine.sort_pairs(&records).unwrap();
//!
//! // Every key now occupies one contiguous run.
//! assert!(semisort::verify::is_semisorted_by(&out, |r| r.0));
//! assert_eq!(out.len(), records.len());
//!
//! // Arbitrary hashable keys, grouping, folding — same engine, same pool.
//! let words = ["a", "b", "a", "c", "b", "a"];
//! let groups = engine.group_by(&words, |w| *w).unwrap();
//! assert_eq!(groups.len(), 3);
//! ```
//!
//! The free functions ([`try_semisort_pairs`], [`api::try_semisort_by_key`],
//! [`api::try_group_by`], [`api::try_reduce_by_key`], …) remain as one-shot
//! wrappers that build a transient engine per call — identical semantics,
//! minus the scratch reuse.
//!
//! # Failure handling
//!
//! The scatter phase is Las Vegas: a bucket can overflow its allocated
//! slots, in which case the run retries with doubled slack α. What happens
//! when the retry budget (or the optional [`SemisortConfig::max_arena_bytes`]
//! memory budget) is exhausted is governed by [`OverflowPolicy`]: degrade to
//! the deterministic comparison-sort fallback (default), return a
//! [`SemisortError`] from the `try_*` entry points, or panic. The
//! [`fault`] module injects deterministic failures into each phase so the
//! whole escalation ladder is testable.
//!
//! # Deprecation policy
//!
//! The v1 surface is the [`prelude`]: the [`Semisorter`] engine, the
//! `try_*` free functions, and the config/error/stats vocabulary — a
//! Result-first surface everywhere. The panicking twins
//! (`semisort_pairs`, `semisort_by_key`, `semisort_with_stats`, …) that
//! the `try_*` forms superseded are now **hard-deprecated**: each remains
//! as a thin `#[deprecated]` shim delegating to its `try_*` twin (so
//! existing callers keep compiling, with a warning) for one release, after
//! which the shims are removed. The same applies to the flat
//! `scatter_strategy` / `scatter_block` / `blocked_tail_log2` builder
//! setters, replaced by the [`config::ScatterConfig`] sub-struct. Error
//! enums ([`SemisortError`]), [`OverflowPolicy`] and [`TelemetryLevel`]
//! are `#[non_exhaustive]`; downstream matches need a wildcard arm.

#![warn(missing_docs)]
// The unsafe-code discipline (DESIGN.md §11): interior unsafe operations
// need their own block even inside `unsafe fn`, and every unsafe block
// carries a `// SAFETY:` comment. `cargo xtask lint` enforces the textual
// half workspace-wide; these make the compiler enforce it here.
#![deny(unsafe_op_in_unsafe_fn)]
#![deny(clippy::undocumented_unsafe_blocks)]

pub mod analysis;
pub mod api;
pub mod blocked_scatter;
pub mod bounded;
pub mod buckets;
pub mod cancel;
pub mod config;
pub mod driver;
pub mod engine;
pub mod error;
pub mod estimate;
pub mod fault;
pub mod inplace_scatter;
pub mod json;
pub mod local_sort;
pub mod obs;
pub mod pack_phase;
pub mod pool;
pub mod sample;
pub mod scatter;
pub mod stats;
pub mod trace;
pub mod verify;

#[allow(deprecated)]
pub use api::{
    count_by_key, group_by, reduce_by_key, semisort_by_key, semisort_in_place, semisort_pairs,
    semisort_permutation, semisort_stable_by_key,
};
pub use api::{
    try_count_by_key, try_group_by, try_reduce_by_key, try_semisort_by_key, try_semisort_in_place,
    try_semisort_pairs, try_semisort_permutation, try_semisort_stable_by_key,
};
#[allow(deprecated)]
pub use bounded::semisort_auto;
pub use bounded::{semisort_bounded, try_semisort_auto};
pub use cancel::CancelToken;
pub use config::{
    LocalSortAlgo, OverflowPolicy, ProbeStrategy, ScatterConfig, ScatterStrategy, SemisortConfig,
    SemisortConfigBuilder,
};
#[allow(deprecated)]
pub use driver::{semisort_core, semisort_with_stats};
pub use driver::{try_semisort_core, try_semisort_with_stats, try_semisort_with_stats_cancellable};
pub use engine::Semisorter;
pub use error::{DegradeReason, SemisortError};
pub use fault::{FaultClass, FaultPlan};
pub use json::Json;
pub use obs::{
    Hist, PhaseSpan, RetryCause, ScratchCounters, ServiceCounters, ServiceSnapshot, SpanRecord,
    Telemetry, TelemetryLevel,
};
pub use pool::ScratchPool;
pub use stats::SemisortStats;
pub use trace::{chrome_trace, TRACE_SCHEMA};

/// The v1 public surface in one import.
///
/// `use semisort::prelude::*` brings in the [`Semisorter`] engine, the
/// builder-based configuration, the `try_*` one-shot functions, and the
/// error/stats vocabulary — everything a new caller needs, none of the
/// soft-deprecated panicking twins.
pub mod prelude {
    pub use crate::api::{
        hash_key, try_count_by_key, try_group_by, try_reduce_by_key, try_semisort_by_key,
        try_semisort_in_place, try_semisort_pairs, try_semisort_permutation,
        try_semisort_stable_by_key, Groups,
    };
    pub use crate::cancel::CancelToken;
    pub use crate::config::{
        LocalSortAlgo, OverflowPolicy, ProbeStrategy, ScatterConfig, ScatterStrategy,
        SemisortConfig, SemisortConfigBuilder,
    };
    pub use crate::driver::{
        try_semisort_core, try_semisort_with_stats, try_semisort_with_stats_cancellable,
    };
    pub use crate::engine::Semisorter;
    pub use crate::error::{DegradeReason, SemisortError};
    pub use crate::obs::{ScratchCounters, TelemetryLevel};
    pub use crate::pool::ScratchPool;
    pub use crate::stats::SemisortStats;
}
