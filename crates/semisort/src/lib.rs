//! A top-down parallel semisort.
//!
//! Rust reproduction of Gu, Shun, Sun and Blelloch, *A Top-Down Parallel
//! Semisort*, SPAA 2015. **Semisorting** reorders an array of records so
//! that records with equal keys are contiguous, without ordering distinct
//! keys — the core of the MapReduce shuffle, database `GROUP BY`, and many
//! parallel divide-and-conquer algorithms.
//!
//! The algorithm does `O(n)` expected work in `O(log n)` depth (w.h.p.):
//! hash the keys, sort a ~`1/16` sample, classify keys as **heavy** (many
//! duplicates) or **light**, allocate one bucket per heavy key and one per
//! slice of the hash range for light keys (sizes from the high-probability
//! estimator [`estimate::f_estimate`]), scatter every record into a random
//! slot of its bucket with CAS + linear probing, locally sort the light
//! buckets, and pack.
//!
//! # Quick start
//!
//! ```
//! use semisort::{semisort_pairs, SemisortConfig};
//!
//! // (hashed key, payload) records; equal keys need not be adjacent.
//! let records: Vec<(u64, u64)> = (0..1000u64)
//!     .map(|i| (parlay::hash64(i % 10), i))
//!     .collect();
//! let out = semisort_pairs(&records, &SemisortConfig::default());
//!
//! // Every key now occupies one contiguous run.
//! assert!(semisort::verify::is_semisorted_by(&out, |r| r.0));
//! assert_eq!(out.len(), records.len());
//! ```
//!
//! Higher-level entry points: [`api::semisort_by_key`] semisorts arbitrary
//! hashable keys, [`api::group_by`] returns the groups as ranges, and
//! [`api::reduce_by_key`] / [`api::count_by_key`] fold each group.
//!
//! # Failure handling
//!
//! The scatter phase is Las Vegas: a bucket can overflow its allocated
//! slots, in which case the run retries with doubled slack α. What happens
//! when the retry budget (or the optional [`SemisortConfig::max_arena_bytes`]
//! memory budget) is exhausted is governed by [`OverflowPolicy`]: degrade to
//! the deterministic comparison-sort fallback (default), return a
//! [`SemisortError`] from the `try_*` entry points, or panic. The
//! [`fault`] module injects deterministic failures into each phase so the
//! whole escalation ladder is testable.

#![warn(missing_docs)]

pub mod analysis;
pub mod api;
pub mod blocked_scatter;
pub mod bounded;
pub mod buckets;
pub mod config;
pub mod driver;
pub mod error;
pub mod estimate;
pub mod fault;
pub mod json;
pub mod local_sort;
pub mod obs;
pub mod pack_phase;
pub mod sample;
pub mod scatter;
pub mod stats;
pub mod verify;

pub use api::{
    count_by_key, group_by, reduce_by_key, semisort_by_key, semisort_in_place, semisort_pairs,
    semisort_permutation, semisort_stable_by_key, try_count_by_key, try_group_by,
    try_reduce_by_key, try_semisort_by_key, try_semisort_in_place, try_semisort_pairs,
    try_semisort_permutation, try_semisort_stable_by_key,
};
pub use bounded::{semisort_auto, semisort_bounded, try_semisort_auto};
pub use config::{LocalSortAlgo, OverflowPolicy, ProbeStrategy, ScatterStrategy, SemisortConfig};
pub use driver::{semisort_core, semisort_with_stats, try_semisort_core, try_semisort_with_stats};
pub use error::{DegradeReason, SemisortError};
pub use fault::{FaultClass, FaultPlan};
pub use json::Json;
pub use obs::{Hist, PhaseSpan, RetryCause, Telemetry, TelemetryLevel};
pub use stats::SemisortStats;
