//! High-level entry points: semisort anything hashable, group, reduce.
//!
//! The driver works on pre-hashed `(u64, V)` records (the paper's setting).
//! This module adds the layer a downstream user actually wants:
//! [`semisort_by_key`] for arbitrary `Hash + Eq` keys (with explicit
//! collision repair, making the result exact rather than
//! with-high-probability), [`group_by`] returning the groups as slices, and
//! [`reduce_by_key`] / [`count_by_key`] — the groupBy/shuffle operations the
//! paper's introduction motivates.
//!
//! The v1 surface is Result-first: every entry point is a `try_*`
//! function returning `Result<_, `[`SemisortError`]`>`. Since the
//! [`Semisorter`] engine became the primary surface, every `try_*`
//! function here is a thin one-shot wrapper: it builds a transient engine
//! for the call and drops it (and its scratch) on return, so one-shot and
//! engine calls are behaviorally identical.
//!
//! The panicking twins (the plain names) are **hard-deprecated**: each is
//! a `#[deprecated]` shim that delegates to its `try_*` twin and panics on
//! `Err` — which, under the default
//! [`OverflowPolicy::Fallback`](crate::config::OverflowPolicy::Fallback),
//! cannot happen on valid input (overflow degrades to the comparison
//! sort). The shims last one release; see the deprecation policy in the
//! [crate docs](crate).

use std::hash::{DefaultHasher, Hash, Hasher};

use crate::config::SemisortConfig;
use crate::engine::Semisorter;
use crate::error::SemisortError;

/// Unwrap a `try_*` result for the panicking entry points.
fn expect_ok<T>(r: Result<T, SemisortError>) -> T {
    r.unwrap_or_else(|e| panic!("semisort: {e}"))
}

/// Semisort pre-hashed `(key, payload)` pairs — the exact record shape of
/// the paper's evaluation. Panicking [`try_semisort_pairs`].
#[deprecated(
    since = "0.9.0",
    note = "panicking one-shot wrappers are superseded by the `try_*` twins; \
            use `try_semisort_pairs` (or a pooled `Semisorter`)"
)]
pub fn semisort_pairs(records: &[(u64, u64)], cfg: &SemisortConfig) -> Vec<(u64, u64)> {
    expect_ok(try_semisort_pairs(records, cfg))
}

/// Fallible [`semisort_pairs`].
pub fn try_semisort_pairs(
    records: &[(u64, u64)],
    cfg: &SemisortConfig,
) -> Result<Vec<(u64, u64)>, SemisortError> {
    Semisorter::new(*cfg)?.sort_pairs(records)
}

/// Hash an arbitrary key to the scatter's 64-bit key space.
///
/// SipHash (std's default hasher with fixed keys, so deterministic) mixed
/// once more by [`parlay::hash64`] for full avalanche.
#[inline]
pub fn hash_key<K: Hash>(key: &K) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    parlay::hash64(h.finish())
}

/// Panicking [`try_semisort_by_key`].
#[deprecated(
    since = "0.9.0",
    note = "panicking one-shot wrappers are superseded by the `try_*` twins; \
            use `try_semisort_by_key` (or a pooled `Semisorter`)"
)]
pub fn semisort_by_key<T, K, F>(items: &[T], key: F, cfg: &SemisortConfig) -> Vec<T>
where
    T: Clone + Send + Sync,
    K: Hash + Eq,
    F: Fn(&T) -> K + Send + Sync,
{
    expect_ok(try_semisort_by_key(items, key, cfg))
}

/// Semisort `items` by an arbitrary `Hash + Eq` key.
///
/// Returns the reordered items: equal keys contiguous, distinct keys in no
/// particular order. Unlike the raw hashed-record path, the result is
/// *exactly* correct even under 64-bit hash collisions: colliding groups
/// are detected and repaired locally (an `O(run)` fix hit with probability
/// `≈ n²/2^64`).
///
/// ```
/// use semisort::{try_semisort_by_key, SemisortConfig};
/// let logs = vec![("db", 1), ("web", 2), ("db", 3), ("web", 4)];
/// let out = try_semisort_by_key(&logs, |l| l.0, &SemisortConfig::default()).unwrap();
/// assert!(semisort::verify::is_semisorted_by(&out, |l| l.0));
/// ```
pub fn try_semisort_by_key<T, K, F>(
    items: &[T],
    key: F,
    cfg: &SemisortConfig,
) -> Result<Vec<T>, SemisortError>
where
    T: Clone + Send + Sync,
    K: Hash + Eq,
    F: Fn(&T) -> K + Send + Sync,
{
    Semisorter::new(*cfg)?.sort_by_key(items, key)
}

/// Within each run of equal *hashes*, verify all *keys* are equal; if a
/// 64-bit collision interleaved two keys, regroup that run stably.
pub(crate) fn repair_hash_collisions<T, K, F>(out: &mut [T], placed: &[(u64, u64)], key: &F)
where
    T: Clone,
    K: Hash + Eq,
    F: Fn(&T) -> K,
{
    let n = out.len();
    let mut start = 0;
    while start < n {
        let h = placed[start].0;
        let mut end = start + 1;
        while end < n && placed[end].0 == h {
            end += 1;
        }
        if end - start > 1 {
            let first_key = key(&out[start]);
            if out[start + 1..end].iter().any(|t| key(t) != first_key) {
                // Collision: stable-regroup the run by first occurrence.
                let run = out[start..end].to_vec();
                let mut groups: Vec<(K, Vec<T>)> = Vec::new();
                for t in run {
                    let k = key(&t);
                    match groups.iter_mut().find(|(gk, _)| *gk == k) {
                        Some((_, v)) => v.push(t),
                        None => groups.push((k, vec![t])),
                    }
                }
                let mut w = start;
                for (_, v) in groups {
                    for t in v {
                        out[w] = t;
                        w += 1;
                    }
                }
            }
        }
        start = end;
    }
}

/// Panicking [`try_semisort_stable_by_key`].
#[deprecated(
    since = "0.9.0",
    note = "panicking one-shot wrappers are superseded by the `try_*` twins; \
            use `try_semisort_stable_by_key` (or a pooled `Semisorter`)"
)]
pub fn semisort_stable_by_key<T, K, F>(items: &[T], key: F, cfg: &SemisortConfig) -> Vec<T>
where
    T: Clone + Send + Sync,
    K: Hash + Eq,
    F: Fn(&T) -> K + Send + Sync,
{
    expect_ok(try_semisort_stable_by_key(items, key, cfg))
}

/// Stable semisort: like [`try_semisort_by_key`], but records within each
/// group keep their input order.
///
/// The core algorithm is unstable (the scatter randomizes positions within
/// a bucket), so stability is restored afterwards by sorting each group by
/// original index — `O(Σ gᵢ log gᵢ)` extra work, groups in parallel. Use
/// the unstable variant when input order is irrelevant.
///
/// ```
/// use semisort::{try_semisort_stable_by_key, SemisortConfig};
/// let v = vec![(2, 'a'), (1, 'b'), (2, 'c'), (1, 'd')];
/// let out = try_semisort_stable_by_key(&v, |p| p.0, &SemisortConfig::default()).unwrap();
/// // Within each group, input order survives: 'a' before 'c', 'b' before 'd'.
/// let pos = |ch: char| out.iter().position(|p| p.1 == ch).unwrap();
/// assert!(pos('a') < pos('c'));
/// assert!(pos('b') < pos('d'));
/// assert!(semisort::verify::is_semisorted_by(&out, |p| p.0));
/// ```
pub fn try_semisort_stable_by_key<T, K, F>(
    items: &[T],
    key: F,
    cfg: &SemisortConfig,
) -> Result<Vec<T>, SemisortError>
where
    T: Clone + Send + Sync,
    K: Hash + Eq,
    F: Fn(&T) -> K + Send + Sync,
{
    Semisorter::new(*cfg)?.stable_by_key(items, key)
}

/// Panicking [`try_semisort_permutation`].
#[deprecated(
    since = "0.9.0",
    note = "panicking one-shot wrappers are superseded by the `try_*` twins; \
            use `try_semisort_permutation` (or a pooled `Semisorter`)"
)]
pub fn semisort_permutation<T, K, F>(items: &[T], key: F, cfg: &SemisortConfig) -> Vec<usize>
where
    T: Sync,
    K: Hash + Eq,
    F: Fn(&T) -> K + Send + Sync,
{
    expect_ok(try_semisort_permutation(items, key, cfg))
}

/// The permutation a semisort would apply: `perm[j] = i` means output
/// position `j` takes input item `i`.
///
/// Useful when items are large or not `Clone`: compute the permutation from
/// the (cheaply copied) keys, then move the items yourself — or let
/// [`try_semisort_in_place`] do it.
pub fn try_semisort_permutation<T, K, F>(
    items: &[T],
    key: F,
    cfg: &SemisortConfig,
) -> Result<Vec<usize>, SemisortError>
where
    T: Sync,
    K: Hash + Eq,
    F: Fn(&T) -> K + Send + Sync,
{
    Semisorter::new(*cfg)?.permutation(items, key)
}

/// Collision repair working on indices (see `repair_hash_collisions`).
pub(crate) fn repair_collisions_on_perm<T, K, F>(
    perm: &mut [usize],
    placed: &[(u64, u64)],
    items: &[T],
    key: &F,
) where
    K: Hash + Eq,
    F: Fn(&T) -> K,
{
    let n = perm.len();
    let mut start = 0;
    while start < n {
        let h = placed[start].0;
        let mut end = start + 1;
        while end < n && placed[end].0 == h {
            end += 1;
        }
        if end - start > 1 {
            let first_key = key(&items[perm[start]]);
            if perm[start + 1..end]
                .iter()
                .any(|&i| key(&items[i]) != first_key)
            {
                let run: Vec<usize> = perm[start..end].to_vec();
                let mut groups: Vec<(K, Vec<usize>)> = Vec::new();
                for i in run {
                    let k = key(&items[i]);
                    match groups.iter_mut().find(|(gk, _)| *gk == k) {
                        Some((_, v)) => v.push(i),
                        None => groups.push((k, vec![i])),
                    }
                }
                let mut w = start;
                for (_, v) in groups {
                    for i in v {
                        perm[w] = i;
                        w += 1;
                    }
                }
            }
        }
        start = end;
    }
}

/// Panicking [`try_semisort_in_place`].
#[deprecated(
    since = "0.9.0",
    note = "panicking one-shot wrappers are superseded by the `try_*` twins; \
            use `try_semisort_in_place` (or a pooled `Semisorter`)"
)]
pub fn semisort_in_place<T, K, F>(items: &mut [T], key: F, cfg: &SemisortConfig)
where
    T: Sync,
    K: Hash + Eq,
    F: Fn(&T) -> K + Send + Sync,
{
    expect_ok(try_semisort_in_place(items, key, cfg))
}

/// Semisort `items` in place, without cloning: computes the permutation,
/// then applies it by cycle rotation (`O(n)` moves, one bit per item of
/// scratch). On `Err` the items are untouched (the failure happens before
/// any permutation is applied). Routes through the engine's permutation
/// path, so the cycle-following scratch is a pooled bitset rather than a
/// per-call `Vec<bool>`.
///
/// ```
/// use semisort::{try_semisort_in_place, SemisortConfig};
/// let mut v = vec![3u8, 1, 3, 2, 1];
/// try_semisort_in_place(&mut v, |&x| x, &SemisortConfig::default()).unwrap();
/// assert!(semisort::verify::is_semisorted_by(&v, |&x| x));
/// ```
pub fn try_semisort_in_place<T, K, F>(
    items: &mut [T],
    key: F,
    cfg: &SemisortConfig,
) -> Result<(), SemisortError>
where
    T: Sync,
    K: Hash + Eq,
    F: Fn(&T) -> K + Send + Sync,
{
    Semisorter::new(*cfg)?.in_place(items, key)
}

/// Rearrange `items` so that `items_new[j] = items_old[perm[j]]`, moving
/// each element exactly once (cycle-following).
pub fn apply_permutation_in_place<T>(items: &mut [T], perm: &[usize]) {
    let mut visited = Vec::new();
    apply_permutation_with_scratch(items, perm, &mut visited);
}

/// [`apply_permutation_in_place`] with a caller-owned visited bitset
/// (cleared and resized to `⌈n/64⌉` words first), so pooled callers pay
/// one bit — not one byte — per item and zero allocations at steady state.
pub fn apply_permutation_with_scratch<T>(items: &mut [T], perm: &[usize], visited: &mut Vec<u64>) {
    assert_eq!(items.len(), perm.len());
    let n = items.len();
    visited.clear();
    visited.resize(n.div_ceil(64), 0);
    for start in 0..n {
        if (visited[start >> 6] >> (start & 63)) & 1 == 1 || perm[start] == start {
            continue;
        }
        // Rotate the cycle containing `start`: position j receives the item
        // currently at perm[j]; walking the cycle with swaps realizes this
        // with one move per element.
        let mut j = start;
        loop {
            let src = perm[j];
            visited[j >> 6] |= 1 << (j & 63);
            if src == start {
                break;
            }
            items.swap(j, src);
            j = src;
        }
    }
}

/// The groups of a semisorted sequence: the reordered items plus the start
/// offset of every group (with an `n` sentinel at the end).
#[derive(Clone, Debug)]
pub struct Groups<T> {
    /// The semisorted items.
    pub items: Vec<T>,
    /// `starts[g]..starts[g+1]` is group `g`; `starts.len() == num_groups + 1`.
    pub starts: Vec<usize>,
}

impl<T> Groups<T> {
    /// Number of groups (distinct keys).
    pub fn len(&self) -> usize {
        self.starts.len().saturating_sub(1)
    }

    /// True if there are no groups.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The items of group `g`.
    pub fn group(&self, g: usize) -> &[T] {
        &self.items[self.starts[g]..self.starts[g + 1]]
    }

    /// Iterate over the groups as slices.
    pub fn iter(&self) -> impl Iterator<Item = &[T]> {
        (0..self.len()).map(move |g| self.group(g))
    }

    /// Map every group to a value, groups processed in parallel.
    ///
    /// The light buckets' cache-friendliness carries over: groups are
    /// contiguous slices, so per-group work stays local.
    pub fn par_map<R, F>(&self, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&[T]) -> R + Send + Sync,
    {
        use rayon::prelude::*;
        (0..self.len())
            .into_par_iter()
            .map(|g| f(self.group(g)))
            .collect()
    }

    /// The size of every group (a histogram in group order).
    pub fn sizes(&self) -> Vec<usize> {
        self.starts.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// The largest group's size (0 if there are no groups).
    pub fn max_group_size(&self) -> usize {
        self.sizes().into_iter().max().unwrap_or(0)
    }
}

/// Panicking [`try_group_by`].
#[deprecated(
    since = "0.9.0",
    note = "panicking one-shot wrappers are superseded by the `try_*` twins; \
            use `try_group_by` (or a pooled `Semisorter`)"
)]
pub fn group_by<T, K, F>(items: &[T], key: F, cfg: &SemisortConfig) -> Groups<T>
where
    T: Clone + Send + Sync,
    K: Hash + Eq,
    F: Fn(&T) -> K + Send + Sync,
{
    expect_ok(try_group_by(items, key, cfg))
}

/// Group `items` by key: semisort, then cut at every key change.
///
/// This is the `groupBy` / MapReduce-shuffle operation of the paper's
/// introduction, built directly on the semisort.
///
/// ```
/// use semisort::{try_group_by, SemisortConfig};
/// let words = ["a", "b", "a", "c", "b", "a"];
/// let groups = try_group_by(&words, |w| *w, &SemisortConfig::default()).unwrap();
/// assert_eq!(groups.len(), 3);
/// let mut sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();
/// sizes.sort_unstable();
/// assert_eq!(sizes, vec![1, 2, 3]);
/// ```
pub fn try_group_by<T, K, F>(
    items: &[T],
    key: F,
    cfg: &SemisortConfig,
) -> Result<Groups<T>, SemisortError>
where
    T: Clone + Send + Sync,
    K: Hash + Eq,
    F: Fn(&T) -> K + Send + Sync,
{
    Semisorter::new(*cfg)?.group_by(items, key)
}

/// Panicking [`try_reduce_by_key`].
#[deprecated(
    since = "0.9.0",
    note = "panicking one-shot wrappers are superseded by the `try_*` twins; \
            use `try_reduce_by_key` (or a pooled `Semisorter`)"
)]
pub fn reduce_by_key<T, K, A, F, G>(
    items: &[T],
    key: F,
    init: A,
    fold: G,
    cfg: &SemisortConfig,
) -> Vec<(K, A)>
where
    T: Clone + Send + Sync,
    K: Hash + Eq + Send + Sync,
    A: Clone + Send + Sync,
    F: Fn(&T) -> K + Send + Sync,
    G: Fn(A, &T) -> A + Send + Sync,
{
    expect_ok(try_reduce_by_key(items, key, init, fold, cfg))
}

/// Fold every group: returns one `(key, accumulator)` per distinct key,
/// with `fold` applied left-to-right over the group's items starting from
/// `init`. Groups are processed in parallel.
pub fn try_reduce_by_key<T, K, A, F, G>(
    items: &[T],
    key: F,
    init: A,
    fold: G,
    cfg: &SemisortConfig,
) -> Result<Vec<(K, A)>, SemisortError>
where
    T: Clone + Send + Sync,
    K: Hash + Eq + Send + Sync,
    A: Clone + Send + Sync,
    F: Fn(&T) -> K + Send + Sync,
    G: Fn(A, &T) -> A + Send + Sync,
{
    Semisorter::new(*cfg)?.reduce_by_key(items, key, init, fold)
}

/// Panicking [`try_count_by_key`].
#[deprecated(
    since = "0.9.0",
    note = "panicking one-shot wrappers are superseded by the `try_*` twins; \
            use `try_count_by_key` (or a pooled `Semisorter`)"
)]
pub fn count_by_key<T, K, F>(items: &[T], key: F, cfg: &SemisortConfig) -> Vec<(K, usize)>
where
    T: Clone + Send + Sync,
    K: Hash + Eq + Send + Sync,
    F: Fn(&T) -> K + Send + Sync,
{
    expect_ok(try_count_by_key(items, key, cfg))
}

/// Histogram: the number of items per distinct key.
///
/// ```
/// use semisort::{try_count_by_key, SemisortConfig};
/// let mut counts =
///     try_count_by_key(&[1, 2, 1, 1], |&x| x, &SemisortConfig::default()).unwrap();
/// counts.sort_unstable();
/// assert_eq!(counts, vec![(1, 3), (2, 1)]);
/// ```
pub fn try_count_by_key<T, K, F>(
    items: &[T],
    key: F,
    cfg: &SemisortConfig,
) -> Result<Vec<(K, usize)>, SemisortError>
where
    T: Clone + Send + Sync,
    K: Hash + Eq + Send + Sync,
    F: Fn(&T) -> K + Send + Sync,
{
    try_reduce_by_key(items, key, 0usize, |a, _| a + 1, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{is_permutation_of, is_semisorted_by};

    fn cfg() -> SemisortConfig {
        // Small threshold so tests exercise the parallel path.
        SemisortConfig {
            seq_threshold: 64,
            ..Default::default()
        }
    }

    #[test]
    fn semisort_by_string_key() {
        let items: Vec<String> = (0..20_000).map(|i| format!("key-{}", i % 123)).collect();
        let out = try_semisort_by_key(&items, |s| s.clone(), &cfg()).unwrap();
        assert!(is_semisorted_by(&out, |s| s.clone()));
        assert!(is_permutation_of(&out, &items));
    }

    #[test]
    fn semisort_by_struct_field() {
        #[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
        struct Order {
            customer: u32,
            amount: u64,
        }
        let items: Vec<Order> = (0..30_000u64)
            .map(|i| Order {
                customer: (i % 500) as u32,
                amount: i,
            })
            .collect();
        let out = try_semisort_by_key(&items, |o| o.customer, &cfg()).unwrap();
        assert!(is_semisorted_by(&out, |o| o.customer));
        assert!(is_permutation_of(&out, &items));
    }

    #[test]
    fn group_by_covers_input_exactly() {
        let items: Vec<u32> = (0..25_000).map(|i| i % 321).collect();
        let g = try_group_by(&items, |&x| x, &cfg()).unwrap();
        assert_eq!(g.len(), 321);
        assert_eq!(g.starts[0], 0);
        assert_eq!(*g.starts.last().unwrap(), items.len());
        let mut total = 0;
        for grp in g.iter() {
            assert!(!grp.is_empty());
            assert!(grp.iter().all(|&x| x == grp[0]), "mixed group");
            total += grp.len();
        }
        assert_eq!(total, items.len());
    }

    #[test]
    fn group_sizes_are_exact() {
        // 25_000 items over 321 keys: sizes 78 or 79.
        let items: Vec<u32> = (0..25_000).map(|i| i % 321).collect();
        let g = try_group_by(&items, |&x| x, &cfg()).unwrap();
        for grp in g.iter() {
            let k = grp[0];
            let expect = (0..25_000).filter(|i| i % 321 == k).count();
            assert_eq!(grp.len(), expect);
        }
    }

    #[test]
    fn reduce_by_key_sums() {
        let items: Vec<(u32, u64)> = (0..10_000u64).map(|i| ((i % 10) as u32, i)).collect();
        let mut sums = try_reduce_by_key(&items, |t| t.0, 0u64, |a, t| a + t.1, &cfg()).unwrap();
        sums.sort_unstable_by_key(|s| s.0);
        assert_eq!(sums.len(), 10);
        for (k, s) in sums {
            let want: u64 = (0..10_000u64).filter(|i| i % 10 == k as u64).sum();
            assert_eq!(s, want, "sum for key {k}");
        }
    }

    #[test]
    fn count_by_key_is_a_histogram() {
        let items: Vec<u8> = (0..9_999).map(|i| (i % 7) as u8).collect();
        let mut counts = try_count_by_key(&items, |&x| x, &cfg()).unwrap();
        counts.sort_unstable_by_key(|c| c.0);
        let total: usize = counts.iter().map(|c| c.1).sum();
        assert_eq!(total, 9_999);
        assert_eq!(counts.len(), 7);
        assert!(counts
            .iter()
            .all(|&(k, c)| { c == (0..9_999).filter(|i| i % 7 == k as usize).count() }));
    }

    #[test]
    fn collision_repair_regroups_exactly() {
        // Force "collisions" by grouping under a key whose *hash* we can't
        // control — instead test repair_hash_collisions directly with a
        // fabricated colliding placement.
        let mut out = vec!["a", "b", "a", "b"];
        let placed: Vec<(u64, u64)> = vec![(7, 0), (7, 1), (7, 2), (7, 3)];
        repair_hash_collisions(&mut out, &placed, &|s: &&str| *s);
        assert_eq!(out, vec!["a", "a", "b", "b"]);
    }

    #[test]
    fn collision_repair_keeps_clean_runs_untouched() {
        let mut out = vec![1u32, 1, 2, 2, 2];
        let placed: Vec<(u64, u64)> = vec![(10, 0), (10, 1), (20, 2), (20, 3), (20, 4)];
        let before = out.clone();
        repair_hash_collisions(&mut out, &placed, &|x: &u32| *x);
        assert_eq!(out, before);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = vec![];
        let g = try_group_by(&items, |&x| x, &cfg()).unwrap();
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
        assert_eq!(g.max_group_size(), 0);
        let out = try_semisort_by_key(&items, |&x| x, &cfg()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn stable_semisort_preserves_group_order() {
        let items: Vec<(u32, u32)> = (0..25_000).map(|i| (i % 97, i)).collect();
        let out = try_semisort_stable_by_key(&items, |p| p.0, &cfg()).unwrap();
        assert!(is_semisorted_by(&out, |p| p.0));
        assert!(is_permutation_of(&out, &items));
        // Payloads strictly increase within every group.
        for w in out.windows(2) {
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated: {:?} {:?}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn stable_semisort_empty_and_single_group() {
        let empty: Vec<u32> = vec![];
        assert!(try_semisort_stable_by_key(&empty, |&x| x, &cfg())
            .unwrap()
            .is_empty());
        let same: Vec<(u8, u32)> = (0..10_000).map(|i| (7u8, i)).collect();
        let out = try_semisort_stable_by_key(&same, |p| p.0, &cfg()).unwrap();
        assert_eq!(out, same, "single group must come back in input order");
    }

    #[test]
    fn permutation_matches_semisort() {
        let items: Vec<u32> = (0..20_000).map(|i| (i * 37) % 450).collect();
        let perm = try_semisort_permutation(&items, |&x| x, &cfg()).unwrap();
        // perm is a permutation of 0..n.
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert!(sorted.iter().enumerate().all(|(i, &p)| p == i));
        // Applying it yields a semisorted arrangement.
        let arranged: Vec<u32> = perm.iter().map(|&i| items[i]).collect();
        assert!(is_semisorted_by(&arranged, |&x| x));
    }

    #[test]
    fn in_place_semisort_non_clone_items() {
        // A type without Clone: the in-place path must still work.
        #[derive(Debug, PartialEq)]
        struct Token(u32);
        let mut items: Vec<Token> = (0..15_000).map(|i| Token(i % 123)).collect();
        try_semisort_in_place(&mut items, |t| t.0, &cfg()).unwrap();
        assert!(is_semisorted_by(&items, |t| t.0));
        let mut ids: Vec<u32> = items.iter().map(|t| t.0).collect();
        ids.sort_unstable();
        let mut want: Vec<u32> = (0..15_000).map(|i| i % 123).collect();
        want.sort_unstable();
        assert_eq!(ids, want);
    }

    #[test]
    fn apply_permutation_identity_and_cycles() {
        let mut v = vec![10, 20, 30, 40];
        apply_permutation_in_place(&mut v, &[0, 1, 2, 3]);
        assert_eq!(v, vec![10, 20, 30, 40]);
        // perm[j] = source index: out = [v[2], v[0], v[3], v[1]]
        let mut v = vec![10, 20, 30, 40];
        apply_permutation_in_place(&mut v, &[2, 0, 3, 1]);
        assert_eq!(v, vec![30, 10, 40, 20]);
        // Reversal.
        let mut v = vec![1, 2, 3, 4, 5];
        apply_permutation_in_place(&mut v, &[4, 3, 2, 1, 0]);
        assert_eq!(v, vec![5, 4, 3, 2, 1]);
    }

    #[test]
    fn par_map_and_sizes() {
        let items: Vec<u32> = (0..12_000).map(|i| i % 40).collect();
        let g = try_group_by(&items, |&x| x, &cfg()).unwrap();
        let sums = g.par_map(|grp| grp.iter().map(|&x| x as u64).sum::<u64>());
        assert_eq!(sums.len(), 40);
        for (i, &s) in sums.iter().enumerate() {
            let k = g.group(i)[0] as u64;
            assert_eq!(s, k * g.group(i).len() as u64);
        }
        assert_eq!(g.sizes().iter().sum::<usize>(), items.len());
        assert_eq!(g.max_group_size(), 300);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_panicking_shims_delegate() {
        // The one-release `#[deprecated]` shims must keep behaving exactly
        // like their `try_*` twins until removal.
        let items: Vec<u32> = (0..5_000).map(|i| i % 37).collect();
        let out = semisort_by_key(&items, |&x| x, &cfg());
        assert!(is_semisorted_by(&out, |&x| x));
        assert_eq!(group_by(&items, |&x| x, &cfg()).len(), 37);
        let counts = count_by_key(&items, |&x| x, &cfg());
        assert_eq!(counts.iter().map(|c| c.1).sum::<usize>(), items.len());
        let pairs: Vec<(u64, u64)> = (0..5_000u64).map(|i| (parlay::hash64(i % 7), i)).collect();
        let out = semisort_pairs(&pairs, &cfg());
        assert!(is_semisorted_by(&out, |r| r.0));
        assert!(is_permutation_of(&out, &pairs));
    }
}
