//! Phase 3 alternative: a block-buffered scatter.
//!
//! The paper's scatter ([`crate::scatter::scatter`]) issues one CAS per
//! record into a random slot of the record's bucket. That is exactly the
//! §4 Phase 3 algorithm, but every placement is an uncontended-at-best
//! atomic RMW to a random cache line. In-place sample-sort implementations
//! (IPS⁴o / IPS²Ra) instead buffer records in small per-bucket software
//! write buffers and move whole blocks at a time, amortizing the shared
//! cache-line traffic over a block. This module ports that idiom to the
//! semisort's bucket arena:
//!
//! 1. Each worker walks its chunk of the input and appends every record to
//!    a per-bucket buffer of [`ScatterConfig::block`] records
//!    (buffers are opened lazily, so sparse workers touch few buckets).
//!    The buffers live in a pooled [`BlockScratch`] — fixed-size slabs
//!    bump-allocated from one per-worker store that is retained across
//!    chunks, attempts, and (for the engine) whole runs.
//! 2. When a buffer fills, the worker reserves a contiguous slab range in
//!    the bucket with **one** `fetch_add` on the bucket's cursor and copies
//!    the block in with plain (uncontended) stores — `block` records per
//!    atomic RMW instead of one.
//! 3. At end of chunk, partial buffers flush the same way with an exact
//!    reservation.
//!
//! The cursor hands out slots only in the bucket's *slab* — the first
//! `size − size/2^blocked_tail_log2` slots. Reservations that run past the
//! slab fall back to per-record CAS placement ([`crate::scatter`]'s linear
//! probe) confined to the remaining *tail* region, so slab stores and CAS
//! placements never touch the same slot. If even the tail fills, the pass
//! reports `overflowed` and the driver's Las Vegas loop retries with more
//! slack, exactly as for the CAS scatter.
//!
//! The output contract matches the CAS scatter: every record occupies one
//! slot inside its bucket's range, vacant slots keep the [`EMPTY`] key, and
//! occupancy may be arbitrarily fragmented (Phases 4–5 scan for occupied
//! slots and never assume density).
//!
//! [`ScatterConfig::block`]: crate::config::ScatterConfig::block

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rayon::prelude::*;

use crate::buckets::BucketPlan;
use crate::fault::FaultClass;
use crate::obs::{ObsSink, OverflowCapture, WorkerCell};
use crate::pool::{BlockScratch, WorkerScratch};
use crate::scatter::{place_linear, Slot, EMPTY};

/// Minimum records per worker chunk; below this, chunking overhead and the
/// per-chunk buffer table dominate.
const MIN_CHUNK: usize = 8192;

/// Outcome and telemetry of one blocked-scatter pass.
pub struct BlockedOutcome {
    /// Records that routed to heavy buckets (drives the heavy-% stat).
    pub heavy_records: usize,
    /// A bucket (slab *and* tail) filled before all its records were
    /// placed; the driver must retry with fresh slack.
    pub overflowed: bool,
    /// Buffer flushes that reserved slab space with a single `fetch_add`
    /// (full blocks and end-of-chunk partials alike).
    pub blocks_flushed: usize,
    /// Flushes whose reservation ran (partly or wholly) past the slab.
    pub slab_overflows: usize,
    /// Records placed by the per-record CAS fallback in the tail region.
    pub fallback_records: usize,
    /// The first overflowing bucket as `(bucket, allocated, observed)`.
    /// `observed` is the slab-cursor demand at the failing flush
    /// (`reservation start + flush size`, at least `allocated + 1`) — a
    /// lower bound on the bucket's true record count, usually tighter than
    /// the CAS scatter's `allocated + 1`.
    pub overflow: Option<(u32, usize, usize)>,
}

/// Slab length (cursor-allocated prefix) for a bucket of `size` slots.
/// `size` is a power of two, so the tail `(size >> tail_log2).max(1)` is
/// too, and the tail mask in the CAS fallback is just `tail_len - 1`.
#[inline]
fn slab_len(size: usize, tail_log2: u32) -> usize {
    size - (size >> tail_log2).max(1)
}

/// Scatter all records into `slots` (see [`crate::scatter::scatter`] for
/// the slot-slice contract) via per-worker block buffers.
///
/// The per-worker buffers and the per-bucket cursors live in `scratch`, a
/// [`BlockScratch`] lease from the engine's
/// [`ScratchPool`](crate::pool::ScratchPool): buffers grow to the run's
/// high-water mark once and are reused by every later chunk and call. A
/// transient `BlockScratch::new()` per call reproduces the unpooled
/// behavior (that is what the one-shot entry points do).
///
/// Same contract as [`crate::scatter::scatter`]: on `overflowed == true`
/// the slot contents are garbage and the caller must retry. The block
/// counters (`blocks_flushed`, `slab_overflows`, `fallback_records`) are
/// always collected — they ride the per-chunk `Local` merge and cost
/// nothing per record; `sink` additionally receives the CAS/probe
/// telemetry of the tail fallback when its level asks for it.
///
/// `forced_overflow` is the fault-injection hook (see
/// [`crate::scatter::scatter`]): the first record routed to a bucket of the
/// given class reports an overflow through the real capture path. Pass
/// `None` in production.
///
/// `prefetch_distance` routes records that many positions ahead and hints
/// the worker's bucket-map entry for each — the first dependent load of
/// the upcoming buffer push, and (for wide bucket maps) the likeliest
/// miss on this path. 0 disables the lookahead; routing still happens
/// exactly once per record (the ring recycles its answers).
#[allow(clippy::too_many_arguments)] // phase boundary: every arg is a distinct concern
pub fn blocked_scatter<V: Copy + Send + Sync>(
    records: &[(u64, V)],
    plan: &BucketPlan,
    slots: &[Slot<V>],
    block: usize,
    tail_log2: u32,
    prefetch_distance: usize,
    sink: &ObsSink,
    forced_overflow: Option<FaultClass>,
    scratch: &mut BlockScratch,
) -> BlockedOutcome {
    debug_assert!(block.is_power_of_two());
    let num_buckets = plan.num_buckets();
    let workers = rayon::current_num_threads().max(1);
    // 2 chunks per worker (not 1): tasks are cheap deque entries under the
    // work-stealing pool, and the slack lets a thief rebalance when one
    // chunk's bucket mix flushes slower than the others'.
    let chunk = records.len().div_ceil(workers * 2).max(MIN_CHUNK);
    let num_chunks = records.len().div_ceil(chunk);
    scratch.prepare(num_buckets, num_chunks);
    let cursors: &[AtomicUsize] = &scratch.cursors[..num_buckets];
    // Hand each chunk its dedicated worker scratch. Chunk indices are
    // unique, so every mutex is locked exactly once; the lock only
    // launders the `&mut` through the parallel closure.
    let cells: Vec<Mutex<&mut WorkerScratch>> = scratch.workers[..num_chunks]
        .iter_mut()
        .map(Mutex::new)
        .collect();
    let overflow = OverflowCapture::new();
    let heavy_records = AtomicUsize::new(0);
    let blocks_flushed = AtomicUsize::new(0);
    let slab_overflows = AtomicUsize::new(0);
    let fallback_records = AtomicUsize::new(0);

    // Per-chunk counters, merged into the atomics once per chunk.
    #[derive(Default)]
    struct Local {
        heavy: usize,
        blocks: usize,
        slab_overflows: usize,
        fallback: usize,
        cell: WorkerCell,
    }

    let counters = sink.level().counters();
    let deep = sink.level().deep();

    // Drain one buffered block into bucket `b`: one fetch_add reserves a
    // slab range; whatever doesn't fit goes through the CAS tail. Returns
    // false only if the tail is full (Corollary 3.4 failure).
    let flush = |b: usize, buf: &[(u64, V)], local: &mut Local| -> bool {
        let k = buf.len();
        if k == 0 {
            return true;
        }
        let base = plan.bucket_offset[b];
        let size = plan.bucket_size[b];
        let slab = slab_len(size, tail_log2);
        // ORDERING: Relaxed slab reservation — exclusivity of
        // [res, res+fit) is the fetch_add's atomicity; the slot writes in
        // the range are published by the phase join.
        // publishes-via: fork-join barrier
        let res = cursors[b].fetch_add(k, Ordering::Relaxed);
        let fit = slab.saturating_sub(res).min(k);
        for (j, &(key, value)) in buf[..fit].iter().enumerate() {
            // The cursor reservation makes [res, res + fit) exclusively
            // ours, so plain stores suffice (Slot::set's single-owner
            // contract); the tail CAS region starts at `slab` and never
            // reaches down here.
            slots[base + res + j].set(key, value);
        }
        if fit > 0 {
            local.blocks += 1;
        }
        if counters {
            local.cell.records_placed += fit as u64;
        }
        if fit < k {
            local.slab_overflows += 1;
            let tail_mask = size - slab - 1; // tail length is a power of two
            let tail = &slots[base + slab..base + size];
            for &(key, value) in &buf[fit..] {
                local.fallback += 1;
                let placed = place_linear(tail, res & tail_mask, tail_mask, key, value);
                if counters {
                    local.cell.cas_attempts += placed.cas as u64;
                    local.cell.cas_failures += placed.cas_lost as u64;
                    if placed.ok {
                        local.cell.records_placed += 1;
                        if deep {
                            local.cell.probe_hist.record(placed.probes as u64);
                        }
                    }
                }
                if !placed.ok {
                    // `res + k` is the cursor demand this flush drove the
                    // bucket to — a lower bound on its record count. Another
                    // worker's later reservation may have filled the tail,
                    // so clamp to `size + 1`, which any overflow implies.
                    overflow.report(b as u32, size, (res + k).max(size + 1));
                    return false;
                }
            }
        }
        true
    };

    records
        .par_chunks(chunk)
        .enumerate()
        .for_each(|(ci, chunk_recs)| {
            let mut guard = cells[ci].lock().unwrap();
            let ws: &mut WorkerScratch = &mut guard;
            ws.begin(num_buckets);
            let mut local = Local::default();
            let mut failed = false;
            let route = |j: usize| plan.bucket_of_tagged(chunk_recs[j].0);
            let d = prefetch_distance.min(chunk_recs.len());
            let mut ring: Vec<(u32, bool)> = (0..d)
                .map(|j| {
                    let r = route(j);
                    ws.prefetch_bucket(r.0 as usize);
                    r
                })
                .collect();
            for (j, &(key, value)) in chunk_recs.iter().enumerate() {
                if overflow.is_set() {
                    failed = true;
                    break; // another chunk failed; stop doing useless work
                }
                debug_assert_ne!(key, EMPTY, "driver screens the EMPTY sentinel");
                let (bucket, is_heavy) = if d > 0 {
                    let r = ring[j % d];
                    if j + d < chunk_recs.len() {
                        let next = route(j + d);
                        ws.prefetch_bucket(next.0 as usize);
                        ring[j % d] = next;
                    }
                    r
                } else {
                    route(j)
                };
                if let Some(class) = forced_overflow {
                    if class.matches(is_heavy) {
                        // Injected Corollary 3.4 failure (see `scatter`).
                        let bucket_idx = bucket as usize;
                        let size = plan.bucket_size[bucket_idx];
                        overflow.report(bucket, size, size + 1);
                        failed = true;
                        break;
                    }
                }
                local.heavy += is_heavy as usize;
                let b = bucket as usize;
                if let Some(full) = ws.push(b, (key, value), block) {
                    if !flush(b, full, &mut local) {
                        failed = true;
                        break;
                    }
                }
            }
            if !failed {
                for s in 0..ws.touched_len() {
                    let (b, part) = ws.partial::<V>(s, block);
                    if !flush(b, part, &mut local) {
                        break;
                    }
                }
            }
            // Restore the scratch invariant on every exit path — success,
            // overflow, and injected fault alike — so the next chunk (or the
            // next run reusing this pool) starts clean.
            ws.reset();
            // ORDERING: Relaxed telemetry counters, read via `into_inner`
            // after the parallel loop completes.
            // publishes-via: fork-join barrier
            heavy_records.fetch_add(local.heavy, Ordering::Relaxed);
            // ORDERING: as above. publishes-via: fork-join barrier
            blocks_flushed.fetch_add(local.blocks, Ordering::Relaxed);
            // ORDERING: as above. publishes-via: fork-join barrier
            slab_overflows.fetch_add(local.slab_overflows, Ordering::Relaxed);
            // ORDERING: as above. publishes-via: fork-join barrier
            fallback_records.fetch_add(local.fallback, Ordering::Relaxed);
            sink.merge_cell(&local.cell);
        });

    BlockedOutcome {
        heavy_records: heavy_records.into_inner(),
        overflowed: overflow.is_set(),
        blocks_flushed: blocks_flushed.into_inner(),
        slab_overflows: slab_overflows.into_inner(),
        fallback_records: fallback_records.into_inner(),
        overflow: overflow.take(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buckets::build_plan;
    use crate::config::{ScatterConfig, SemisortConfig};
    use crate::scatter::{allocate_arena, ScatterArena};
    use parlay::hash64;
    use parlay::random::Rng;

    fn scatter_all(
        records: &[(u64, u64)],
        cfg: &SemisortConfig,
    ) -> (BucketPlan, ScatterArena<u64>, BlockedOutcome) {
        let keys: Vec<u64> = records.iter().map(|r| r.0).collect();
        let mut sample = crate::sample::strided_sample(&keys, cfg.sample_shift, Rng::new(cfg.seed));
        sample.sort_unstable();
        let plan = build_plan(&sample, records.len(), cfg);
        let arena = allocate_arena::<u64>(&plan);
        let out = blocked_scatter(
            records,
            &plan,
            &arena.slots,
            cfg.scatter.block,
            cfg.scatter.tail_log2,
            cfg.scatter.prefetch_distance,
            &ObsSink::disabled(),
            None,
            &mut BlockScratch::new(),
        );
        (plan, arena, out)
    }

    fn collect_placed(arena: &ScatterArena<u64>) -> Vec<(u64, u64)> {
        arena
            .slots
            .iter()
            .filter(|s| s.occupied())
            // SAFETY: the scatter under test has returned; occupied slots
            // hold initialized values and nothing writes concurrently.
            .map(|s| (s.key(), unsafe { s.value() }))
            .collect()
    }

    #[test]
    fn every_record_is_placed_exactly_once() {
        let records: Vec<(u64, u64)> = (0..50_000u64).map(|i| (hash64(i % 777), i)).collect();
        let cfg = SemisortConfig::default();
        let (_, arena, out) = scatter_all(&records, &cfg);
        assert!(!out.overflowed);
        let mut placed = collect_placed(&arena);
        assert_eq!(placed.len(), records.len());
        placed.sort_unstable_by_key(|r| r.1);
        let mut want = records.clone();
        want.sort_unstable_by_key(|r| r.1);
        assert_eq!(placed, want);
        assert!(out.blocks_flushed > 0, "50k records must flush some blocks");
    }

    #[test]
    fn records_land_in_their_bucket_range() {
        let records: Vec<(u64, u64)> = (0..30_000u64).map(|i| (hash64(i % 100), i)).collect();
        let cfg = SemisortConfig::default();
        let (plan, arena, out) = scatter_all(&records, &cfg);
        assert!(!out.overflowed);
        for (i, slot) in arena.slots.iter().enumerate() {
            if slot.occupied() {
                let b = plan.bucket_of(slot.key()) as usize;
                let lo = plan.bucket_offset[b];
                let hi = lo + plan.bucket_size[b];
                assert!(
                    (lo..hi).contains(&i),
                    "slot {i} outside bucket {b} range {lo}..{hi}"
                );
            }
        }
    }

    #[test]
    fn heavy_count_matches_cas_scatter() {
        let records: Vec<(u64, u64)> = (0..40_000u64)
            .map(|i| {
                let k = if i % 5 != 0 { 7u64 } else { 1_000 + i };
                (hash64(k), i)
            })
            .collect();
        let cfg = SemisortConfig::default();
        let (plan, _, out) = scatter_all(&records, &cfg);
        let expected_heavy = records
            .iter()
            .filter(|r| plan.heavy_table.contains(r.0))
            .count();
        assert_eq!(out.heavy_records, expected_heavy);
    }

    #[test]
    fn big_tail_forces_slab_overflow_yet_places_everything() {
        // tail = size/2 leaves a slab smaller than the record count of a
        // tightly sized bucket, so flushes must spill into the CAS tail.
        let records: Vec<(u64, u64)> = (0..60_000u64).map(|i| (hash64(i % 3), i)).collect();
        let cfg = SemisortConfig {
            scatter: ScatterConfig {
                tail_log2: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let (_, arena, out) = scatter_all(&records, &cfg);
        assert!(!out.overflowed);
        assert!(out.slab_overflows > 0, "size/2 slab must overflow");
        assert!(out.fallback_records > 0);
        assert_eq!(collect_placed(&arena).len(), records.len());
    }

    #[test]
    fn overflow_is_detected_not_hung() {
        // A plan built from an empty sample (tiny bucket estimates)
        // receiving far more records than slots must report overflow.
        let cfg = SemisortConfig::default();
        let plan = build_plan(&[], 64, &cfg);
        let arena = allocate_arena::<u64>(&plan);
        let n_over = plan.total_slots + 1_000;
        let records: Vec<(u64, u64)> = (0..n_over as u64).map(|i| (hash64(i), i)).collect();
        let out = blocked_scatter(
            &records,
            &plan,
            &arena.slots,
            16,
            3,
            8,
            &ObsSink::disabled(),
            None,
            &mut BlockScratch::new(),
        );
        assert!(out.overflowed, "must report overflow instead of spinning");
        let (bucket, allocated, observed) = out.overflow.expect("overflow details captured");
        let bucket = bucket as usize;
        assert_eq!(allocated, plan.bucket_size[bucket]);
        assert!(
            observed > allocated,
            "observed demand {observed} must exceed allocation {allocated}"
        );
    }

    #[test]
    fn forced_overflow_fires_per_class() {
        let records: Vec<(u64, u64)> = (0..40_000u64)
            .map(|i| {
                let k = if i % 5 != 0 { 7u64 } else { 1_000 + i };
                (hash64(k), i)
            })
            .collect();
        let cfg = SemisortConfig::default();
        let keys: Vec<u64> = records.iter().map(|r| r.0).collect();
        let mut sample = crate::sample::strided_sample(&keys, cfg.sample_shift, Rng::new(cfg.seed));
        sample.sort_unstable();
        let plan = build_plan(&sample, records.len(), &cfg);
        assert!(plan.num_heavy > 0 && plan.num_light > 0);
        for (class, want_heavy) in [(FaultClass::Heavy, true), (FaultClass::Light, false)] {
            let arena = allocate_arena::<u64>(&plan);
            let out = blocked_scatter(
                &records,
                &plan,
                &arena.slots,
                16,
                3,
                8,
                &ObsSink::disabled(),
                Some(class),
                &mut BlockScratch::new(),
            );
            assert!(out.overflowed, "{class:?} fault must report overflow");
            let (bucket, allocated, observed) = out.overflow.expect("capture");
            assert_eq!((bucket as usize) < plan.num_heavy, want_heavy);
            assert_eq!(observed, allocated + 1);
        }
    }

    #[test]
    fn block_size_one_degenerates_correctly() {
        let records: Vec<(u64, u64)> = (0..20_000u64).map(|i| (hash64(i % 50), i)).collect();
        let cfg = SemisortConfig {
            scatter: ScatterConfig {
                block: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let (_, arena, out) = scatter_all(&records, &cfg);
        assert!(!out.overflowed);
        assert_eq!(collect_placed(&arena).len(), records.len());
    }

    #[test]
    fn pooled_scratch_reuse_places_everything_again() {
        // The same BlockScratch must serve back-to-back passes (including
        // after an overflowed pass, which exercises the failed-path reset)
        // without stale per-bucket state leaking between runs.
        let records: Vec<(u64, u64)> = (0..50_000u64).map(|i| (hash64(i % 777), i)).collect();
        let cfg = SemisortConfig::default();
        let keys: Vec<u64> = records.iter().map(|r| r.0).collect();
        let mut sample = crate::sample::strided_sample(&keys, cfg.sample_shift, Rng::new(cfg.seed));
        sample.sort_unstable();
        let plan = build_plan(&sample, records.len(), &cfg);
        let mut scratch = BlockScratch::new();

        // Pass 1: forced overflow leaves the scratch mid-flight.
        let arena = allocate_arena::<u64>(&plan);
        let out = blocked_scatter(
            &records,
            &plan,
            &arena.slots,
            cfg.scatter.block,
            cfg.scatter.tail_log2,
            cfg.scatter.prefetch_distance,
            &ObsSink::disabled(),
            Some(FaultClass::Any),
            &mut scratch,
        );
        assert!(out.overflowed);
        let held = scratch.bytes();

        // Passes 2–3: clean runs reusing the same scratch must place every
        // record, and the scratch footprint must have stabilized.
        for pass in 0..2 {
            let arena = allocate_arena::<u64>(&plan);
            let out = blocked_scatter(
                &records,
                &plan,
                &arena.slots,
                cfg.scatter.block,
                cfg.scatter.tail_log2,
                cfg.scatter.prefetch_distance,
                &ObsSink::disabled(),
                None,
                &mut scratch,
            );
            assert!(!out.overflowed, "pass {pass}");
            assert_eq!(collect_placed(&arena).len(), records.len(), "pass {pass}");
        }
        assert!(
            scratch.bytes() >= held,
            "scratch grows monotonically, never thrashes"
        );
    }

    #[test]
    fn slab_split_is_sane() {
        assert_eq!(slab_len(1024, 3), 1024 - 128);
        assert_eq!(slab_len(8, 3), 7);
        assert_eq!(slab_len(2, 3), 1, "tail never empty");
        assert_eq!(slab_len(1, 3), 0, "one-slot bucket is all tail");
    }
}
