//! Exact cost accounting for Theorem 3.1.
//!
//! The paper proves the algorithm does `O(n)` expected work and `O(log n)`
//! depth w.h.p. (Theorem 3.1). Wall-clock time on any one machine cannot
//! verify an asymptotic claim; this module can: it replays Algorithm 1 with
//! *operation counters* instead of timers —
//!
//! - **work** — every probe of the scatter, every slot visited by the pack,
//!   every comparison-equivalent of the sample sort and local sorts;
//! - **depth proxies** — the longest probe sequence any single record needs
//!   (the scatter runs rounds of one probe per record, so `max_probe_run`
//!   bounds its round count, §3 Step 6b), and the largest light bucket
//!   (local sorts run in parallel across buckets, so the largest one is the
//!   critical path of Phase 4).
//!
//! The `theorem31` harness binary sweeps n and prints `work/n` (should be
//! flat), `max_probe_run / log₂n` and `max_light_bucket / log₂²n` (should
//! be bounded) — the empirical signature of Theorem 3.1.

use parlay::random::Rng;

use crate::buckets::{build_plan, BucketPlan};
use crate::config::SemisortConfig;
use crate::sample::strided_sample_by;

/// Operation counts from one instrumented replay of Algorithm 1.
#[derive(Clone, Debug, Default)]
pub struct CostModel {
    /// Input size.
    pub n: usize,
    /// Sample size |S|.
    pub sample_size: usize,
    /// Work of Phase 1: one visit per record (sampling scan) plus the radix
    /// sort's per-pass visits of the sample.
    pub sample_work: usize,
    /// Work of Phase 2: distinct-key scan + per-prefix accounting.
    pub bucket_work: usize,
    /// Total CAS probes across all records (Phase 3 work).
    pub scatter_probes: usize,
    /// The longest probe sequence any single record needed — one probe per
    /// scatter round, so this bounds the scatter's depth in rounds.
    pub max_probe_run: usize,
    /// Slots visited by compaction (Phases 4–5 work).
    pub pack_work: usize,
    /// Σ over light buckets of `c·log₂c` — comparison-sort work of Phase 4.
    pub local_sort_work: usize,
    /// Records in the fullest light bucket (Phase 4's critical path).
    pub max_light_bucket: usize,
    /// Number of records in the fullest bucket of any kind.
    pub max_bucket: usize,
    /// Slots allocated (Lemma 3.5 space).
    pub total_slots: usize,
}

impl CostModel {
    /// Total counted work.
    pub fn total_work(&self) -> usize {
        self.sample_work
            + self.bucket_work
            + self.scatter_probes
            + self.pack_work
            + self.local_sort_work
    }

    /// Work per input record — Theorem 3.1 says this is O(1) in expectation.
    pub fn work_per_record(&self) -> f64 {
        self.total_work() as f64 / self.n.max(1) as f64
    }

    /// `max_probe_run / log₂ n` — Theorem 3.1's depth term says this stays
    /// bounded by a constant w.h.p.
    pub fn probe_depth_ratio(&self) -> f64 {
        self.max_probe_run as f64 / (self.n.max(2) as f64).log2()
    }

    /// `max_light_bucket / log₂²n` — §3 Step 7 says light buckets hold
    /// `O(log²n)` records w.h.p. (scaled by the implementation's `1/p`).
    pub fn bucket_depth_ratio(&self) -> f64 {
        let l = (self.n.max(2) as f64).log2();
        self.max_light_bucket as f64 / (l * l)
    }
}

/// Replay Algorithm 1 on `records` with operation counting (sequential and
/// deterministic; no timing, no concurrency).
pub fn analyze(records: &[(u64, u64)], cfg: &SemisortConfig) -> CostModel {
    let n = records.len();
    let mut cost = CostModel {
        n,
        ..Default::default()
    };
    if n == 0 {
        return cost;
    }
    let rng = Rng::new(cfg.seed);

    // Phase 1: sample (one visit per record) + radix sort of the sample
    // (8 passes of 2 visits each over |S| for 64-bit keys).
    let mut sample = strided_sample_by(n, cfg.sample_shift, rng.fork(1), |i| records[i].0);
    sample.sort_unstable();
    cost.sample_size = sample.len();
    cost.sample_work = n + 16 * sample.len();

    // Phase 2: distinct scan over the sample + prefix accounting.
    let plan: BucketPlan = build_plan(&sample, n, cfg);
    cost.bucket_work = sample.len() + (1usize << (64 - plan.prefix_shift));
    cost.total_slots = plan.total_slots;

    // Phase 3: simulate the scatter probe-for-probe.
    let mut occupied = vec![false; plan.total_slots];
    let mut bucket_records = vec![0usize; plan.num_buckets()];
    let scatter_rng = rng.fork(2);
    for (i, &(key, _)) in records.iter().enumerate() {
        let b = plan.bucket_of(key) as usize;
        bucket_records[b] += 1;
        let base = plan.bucket_offset[b];
        let size = plan.bucket_size[b];
        let mask = size - 1;
        let mut s = (scatter_rng.at(i as u64) as usize) & mask;
        let mut probes = 1usize;
        while occupied[base + s] {
            s = (s + 1) & mask;
            probes += 1;
            assert!(probes <= size, "bucket overflow in analysis replay");
        }
        occupied[base + s] = true;
        cost.scatter_probes += probes;
        cost.max_probe_run = cost.max_probe_run.max(probes);
    }

    // Phases 4–5: compaction visits every slot once; local sorts cost
    // c·log₂c per light bucket.
    cost.pack_work = plan.total_slots;
    for (b, &c) in bucket_records.iter().enumerate().take(plan.num_buckets()) {
        cost.max_bucket = cost.max_bucket.max(c);
        if b >= plan.num_heavy {
            cost.max_light_bucket = cost.max_light_bucket.max(c);
            if c > 1 {
                cost.local_sort_work += c * (c as f64).log2().ceil() as usize;
            }
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlay::hash64;

    fn uniform(n: usize) -> Vec<(u64, u64)> {
        (0..n as u64).map(|i| (hash64(i), i)).collect()
    }

    fn zipf_like(n: usize) -> Vec<(u64, u64)> {
        (0..n as u64)
            .map(|i| {
                (
                    hash64(((hash64(i) % (n as u64 * n as u64)) as f64).sqrt() as u64),
                    i,
                )
            })
            .collect()
    }

    #[test]
    fn empty_input() {
        let c = analyze(&[], &SemisortConfig::default());
        assert_eq!(c.total_work(), 0);
    }

    #[test]
    fn work_is_linear_uniform() {
        let cfg = SemisortConfig::default();
        let small = analyze(&uniform(50_000), &cfg);
        let large = analyze(&uniform(400_000), &cfg);
        // O(n) work: per-record work must not grow with n (allow noise).
        assert!(
            large.work_per_record() < small.work_per_record() * 1.5,
            "work/record grew: {:.2} → {:.2}",
            small.work_per_record(),
            large.work_per_record()
        );
        assert!(
            large.work_per_record() < 40.0,
            "absolute work/record too high"
        );
    }

    #[test]
    fn probe_runs_are_logarithmic() {
        let cfg = SemisortConfig::default();
        for n in [50_000usize, 200_000, 800_000] {
            let c = analyze(&uniform(n), &cfg);
            assert!(
                c.probe_depth_ratio() < 4.0,
                "n={n}: max probe run {} vs log₂n {:.1}",
                c.max_probe_run,
                (n as f64).log2()
            );
        }
    }

    #[test]
    fn light_buckets_are_polylog() {
        let cfg = SemisortConfig::default();
        for n in [50_000usize, 400_000] {
            let c = analyze(&uniform(n), &cfg);
            assert!(
                c.bucket_depth_ratio() < 30.0,
                "n={n}: max light bucket {} vs log²n",
                c.max_light_bucket
            );
        }
    }

    #[test]
    fn expected_probes_near_one() {
        // With α·f(s) slack, the load factor stays low enough that the
        // average probe count is close to 1 (§4: expected O(1) insertion).
        let c = analyze(&uniform(300_000), &SemisortConfig::default());
        let avg = c.scatter_probes as f64 / c.n as f64;
        assert!(avg < 2.0, "average probes {avg:.3} should be ≈1");
    }

    #[test]
    fn skewed_inputs_keep_linear_work() {
        let cfg = SemisortConfig::default();
        let c = analyze(&zipf_like(300_000), &cfg);
        assert!(c.work_per_record() < 40.0);
        assert!(c.probe_depth_ratio() < 6.0);
    }

    #[test]
    fn space_matches_driver_lemma_3_5() {
        let cfg = SemisortConfig::default();
        let c = analyze(&uniform(200_000), &cfg);
        assert!(c.total_slots < 10 * c.n);
    }
}
