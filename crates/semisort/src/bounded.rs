//! Semisort for bounded integer keys.
//!
//! "Other authors have considered semisorting applied to a bounded set of
//! integer keys in the range `[1..n]` [2, 18]" (§1). When keys are already
//! small dense integers, the whole sampling/hashing machinery is
//! unnecessary: one stable parallel counting sort groups them in `O(n + m)`
//! work. This module provides that variant and a dispatcher that picks
//! between it and the general algorithm — the practical reading of the
//! paper's remark that the definitions are interchangeable.

use crate::config::SemisortConfig;
use crate::driver::try_semisort_core;
use crate::error::SemisortError;
use parlay::counting_sort::counting_sort_into;
use rayon::prelude::*;

/// Semisort records whose keys are integers in `[0, m)` with one stable
/// counting sort. `O(n + m)` work — preferable to the general algorithm
/// whenever `m = O(n / log n)`.
///
/// The output is *sorted* by key (a stronger order than semisorted) and
/// stable.
///
/// # Panics
///
/// Panics if a key is `>= m`.
pub fn semisort_bounded<V: Copy + Send + Sync>(records: &[(u64, V)], m: usize) -> Vec<(u64, V)> {
    let mut out = records.to_vec();
    if records.is_empty() {
        return out;
    }
    counting_sort_into(records, &mut out, m, |r| r.0 as usize);
    out
}

/// Panicking [`try_semisort_auto`].
#[deprecated(
    since = "0.9.0",
    note = "panicking one-shot wrappers are superseded by the `try_*` twins; \
            use `try_semisort_auto`"
)]
pub fn semisort_auto<V: Copy + Send + Sync>(
    records: &[(u64, V)],
    cfg: &SemisortConfig,
) -> Vec<(u64, V)> {
    try_semisort_auto(records, cfg).unwrap_or_else(|e| panic!("semisort: {e}"))
}

/// Dispatching semisort: uses the counting-sort path when the observed key
/// range is small (`max_key < n / log₂n`), the general top-down algorithm
/// otherwise.
///
/// The range scan costs one parallel pass — noise next to either sort.
/// The counting-sort path is deterministic and
/// cannot fail; errors can only come from the general algorithm under
/// [`OverflowPolicy::Error`](crate::config::OverflowPolicy::Error).
pub fn try_semisort_auto<V: Copy + Send + Sync>(
    records: &[(u64, V)],
    cfg: &SemisortConfig,
) -> Result<Vec<(u64, V)>, SemisortError> {
    let n = records.len();
    if n <= 1 {
        return Ok(records.to_vec());
    }
    let max_key = records
        .par_iter()
        .with_min_len(4096)
        .map(|r| r.0)
        .max()
        .unwrap_or(0);
    let log2n = (usize::BITS - n.leading_zeros()) as u64;
    let threshold = (n as u64 / log2n.max(1)).max(1024);
    if max_key < threshold {
        Ok(semisort_bounded(records, max_key as usize + 1))
    } else {
        try_semisort_core(records, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{is_permutation_of, is_semisorted_by};

    #[test]
    fn bounded_sorts_and_is_stable() {
        let recs: Vec<(u64, u64)> = (0..60_000u64).map(|i| (i % 100, i)).collect();
        let out = semisort_bounded(&recs, 100);
        assert!(out.windows(2).all(|w| w[0].0 <= w[1].0), "sorted by key");
        for w in out.windows(2) {
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stable within groups");
            }
        }
        assert!(is_permutation_of(&out, &recs));
    }

    #[test]
    fn bounded_empty_and_single_key() {
        assert!(semisort_bounded::<u64>(&[], 5).is_empty());
        let recs: Vec<(u64, u64)> = (0..1000u64).map(|i| (0, i)).collect();
        assert_eq!(semisort_bounded(&recs, 1), recs);
    }

    #[test]
    fn auto_picks_counting_for_dense_keys() {
        // Dense keys: result must be fully sorted (the counting path).
        let recs: Vec<(u64, u64)> = (0..100_000u64).map(|i| ((i * 31) % 500, i)).collect();
        let out = try_semisort_auto(&recs, &SemisortConfig::default()).unwrap();
        assert!(out.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(is_permutation_of(&out, &recs));
    }

    #[test]
    fn auto_picks_general_for_wide_keys() {
        let recs: Vec<(u64, u64)> = (0..100_000u64)
            .map(|i| (parlay::hash64(i % 500), i))
            .collect();
        let out = try_semisort_auto(&recs, &SemisortConfig::default()).unwrap();
        assert!(is_semisorted_by(&out, |r| r.0));
        assert!(is_permutation_of(&out, &recs));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bounded_rejects_out_of_range() {
        semisort_bounded(&[(7u64, 0u64)], 5);
    }
}
