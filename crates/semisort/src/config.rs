//! Tuning parameters.
//!
//! Defaults follow §4 of the paper exactly: "We set the sampling probability
//! p to be 1/16, and δ to be 16 … The number of light key buckets is set to
//! be 2^16", with the estimator constant `c = 1.25` and the slack factor
//! `1.1` from Phase 2 ("each bucket with s samples allocates an array of
//! size 1.1·f(s) with c = 1.25, and rounded up to the nearest power of 2").

pub use crate::fault::FaultPlan;
pub use crate::obs::TelemetryLevel;

/// What the driver does once the Las Vegas machinery gives up — the retry
/// budget is exhausted, the arena memory budget is exceeded, or the arena
/// allocation fails. Retries always happen first; the policy governs only
/// the terminal step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Retry, then degrade to the guaranteed comparison-sort fallback —
    /// still a correct semisort, `O(n log n)` instead of `O(n)`, never a
    /// crash. The default: valid input can never abort the process.
    #[default]
    Fallback,
    /// Retry, then return a [`crate::SemisortError`] from the `try_*`
    /// entry points (the panicking wrappers turn it into a panic).
    Error,
    /// Retry, then panic — the pre-policy behavior, for callers that
    /// prefer to die loudly over degrading silently.
    Panic,
}

impl OverflowPolicy {
    /// Parse a CLI spelling (`fallback`, `error`, `panic`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fallback" => Some(OverflowPolicy::Fallback),
            "error" => Some(OverflowPolicy::Error),
            "panic" => Some(OverflowPolicy::Panic),
            _ => None,
        }
    }

    /// The CLI spelling of this policy.
    pub fn as_str(self) -> &'static str {
        match self {
            OverflowPolicy::Fallback => "fallback",
            OverflowPolicy::Error => "error",
            OverflowPolicy::Panic => "panic",
        }
    }
}

/// How the scatter phase resolves an occupied slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeStrategy {
    /// Try the next slot ("linear probing. This gives better cache
    /// performance" — §4 Phase 3). The default.
    Linear,
    /// Pick a fresh random slot each time, as in the theoretical
    /// description of the placement problem (§3). Kept for the ablation
    /// benchmark that quantifies how much linear probing buys.
    Random,
}

/// How Phase 3 moves records into their buckets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScatterStrategy {
    /// The paper's Phase 3: every record CASes into a random slot of its
    /// bucket, probing on collision (see [`ProbeStrategy`]). The default.
    RandomCas,
    /// Block-buffered scatter: each worker classifies its chunk of records
    /// into per-bucket software write buffers and flushes full buffers with
    /// one `fetch_add` slab reservation instead of per-record CAS traffic.
    /// Buckets whose reserved slab fills fall back to CAS placement in a
    /// tail region. See `blocked_scatter`.
    Blocked,
}

/// Which algorithm sorts each light bucket in Phase 4.
///
/// The paper "tried several versions including a bucket sort, some
/// comparison-based hybrid sort algorithms, and the sort in the C++
/// Standard Library" and found them similar; these variants let the
/// ablation bench repeat that comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LocalSortAlgo {
    /// Rust's `slice::sort_unstable` (pdqsort) — the `std::sort` analogue
    /// the paper shipped with. The default.
    StdUnstable,
    /// Two passes of stable counting sort on fresh labels, as in the
    /// theoretical Step 7c.
    Counting,
    /// Rust's stable `slice::sort` (timsort-like).
    StdStable,
}

/// Configuration for the semisort. `Default::default()` reproduces the
/// paper's shipped constants.
#[derive(Clone, Copy, Debug)]
pub struct SemisortConfig {
    /// Sampling probability is `1/2^sample_shift`; default 4 (p = 1/16).
    pub sample_shift: u32,
    /// δ: a key is heavy if it appears at least this many times in the
    /// sample; default 16.
    pub heavy_threshold: usize,
    /// Upper bound on the light-bucket prefix bits; default 16 (the
    /// paper's 2^16 buckets at n = 10⁸). The effective count follows the
    /// theoretical Θ(n/log²n) rule, capped here — see
    /// `buckets::effective_prefix_bits`.
    pub light_bucket_log2: u32,
    /// Slack multiplier α on the size estimate; default 1.1.
    pub alpha: f64,
    /// Estimator constant c in `f(s)`; default 1.25.
    pub c: f64,
    /// Merge adjacent light buckets until each holds at least δ samples
    /// ("reduces the overall running time by at most 10%" — §4 Phase 2).
    /// Default true.
    pub merge_light_buckets: bool,
    /// Collision handling in the scatter; default linear probing.
    pub probe_strategy: ProbeStrategy,
    /// Which Phase 3 implementation to run; default the paper's
    /// [`ScatterStrategy::RandomCas`].
    pub scatter_strategy: ScatterStrategy,
    /// Records per per-worker write-buffer block in the blocked scatter;
    /// default 16 (256 bytes of `(u64, u64)` records — a few cache lines).
    /// Must be a power of two.
    pub scatter_block: usize,
    /// In the blocked scatter, each bucket reserves its last
    /// `size / 2^blocked_tail_log2` slots as the CAS-fallback tail (the
    /// slab cursor allocates only below it); default 3 (tail = size/8).
    pub blocked_tail_log2: u32,
    /// Light-bucket sorting algorithm; default `StdUnstable`.
    pub local_sort_algo: LocalSortAlgo,
    /// Seed for sampling jitter and scatter randomness. Runs with equal
    /// seeds produce identical outputs at any thread count.
    pub seed: u64,
    /// Inputs at or below this size skip the machinery and sort directly
    /// (a semisorted order trivially); default 2^13.
    pub seq_threshold: usize,
    /// Maximum Las Vegas restarts on bucket overflow (Corollary 3.4 failure)
    /// before growing α; default 3, must be < 32 (α growth is `2^attempt`).
    /// Each retry re-randomizes scatter positions and doubles the
    /// overflowing run's slack. What happens when the budget runs out is
    /// governed by `overflow_policy`.
    pub max_retries: u32,
    /// What to do when retries are exhausted, the arena budget is
    /// exceeded, or the arena allocation fails; default
    /// [`OverflowPolicy::Fallback`] (degrade, never crash).
    pub overflow_policy: OverflowPolicy,
    /// Upper bound in bytes on the scatter arena (slot array). α-doubling
    /// across retries grows the arena; a plan whose arena would exceed this
    /// budget triggers early degradation per `overflow_policy` instead of
    /// an oversized allocation. Default `usize::MAX` (unlimited).
    pub max_arena_bytes: usize,
    /// Deterministic fault-injection schedule (dev/chaos-testing only);
    /// default inert. See [`crate::fault`].
    pub fault: FaultPlan,
    /// How much telemetry the run collects (see [`TelemetryLevel`]);
    /// default `Off`, which keeps the hot loops at their pre-telemetry
    /// cost. Retry causes are recorded at every level (cold path).
    pub telemetry: TelemetryLevel,
}

impl Default for SemisortConfig {
    fn default() -> Self {
        SemisortConfig {
            sample_shift: 4,
            heavy_threshold: 16,
            light_bucket_log2: 16,
            alpha: 1.1,
            c: 1.25,
            merge_light_buckets: true,
            probe_strategy: ProbeStrategy::Linear,
            scatter_strategy: ScatterStrategy::RandomCas,
            scatter_block: 16,
            blocked_tail_log2: 3,
            local_sort_algo: LocalSortAlgo::StdUnstable,
            seed: 0x5eed_0f5e_u64,
            seq_threshold: 1 << 13,
            max_retries: 3,
            overflow_policy: OverflowPolicy::Fallback,
            max_arena_bytes: usize::MAX,
            fault: FaultPlan::NONE,
            telemetry: TelemetryLevel::Off,
        }
    }
}

impl SemisortConfig {
    /// The sampling probability `p = 1/2^sample_shift`.
    #[inline]
    pub fn sample_probability(&self) -> f64 {
        1.0 / (1u64 << self.sample_shift) as f64
    }

    /// The sampling stride `1/p` (records per sample).
    #[inline]
    pub fn sample_stride(&self) -> usize {
        1 << self.sample_shift
    }

    /// Maximum number of light-bucket hash-prefix classes
    /// (`2^light_bucket_log2`); the effective count additionally scales
    /// with n (see `buckets::effective_prefix_bits`).
    #[inline]
    pub fn num_prefixes(&self) -> usize {
        1 << self.light_bucket_log2
    }

    /// Builder-style setter for the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style setter for the telemetry level.
    pub fn with_telemetry(mut self, level: TelemetryLevel) -> Self {
        self.telemetry = level;
        self
    }

    /// Builder-style setter for the overflow policy.
    pub fn with_overflow_policy(mut self, policy: OverflowPolicy) -> Self {
        self.overflow_policy = policy;
        self
    }

    /// Builder-style setter for the arena memory budget.
    pub fn with_max_arena_bytes(mut self, bytes: usize) -> Self {
        self.max_arena_bytes = bytes;
        self
    }

    /// Builder-style setter for the fault-injection plan.
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Validate parameter sanity; called once per run by the driver.
    pub fn validate(&self) {
        assert!(self.sample_shift >= 1 && self.sample_shift <= 16);
        assert!(self.heavy_threshold >= 2, "δ must be at least 2");
        assert!(self.light_bucket_log2 >= 1 && self.light_bucket_log2 <= 24);
        assert!(self.alpha > 1.0, "α must exceed 1 for scatter termination");
        assert!(self.c > 0.0);
        assert!(
            self.scatter_block >= 1 && self.scatter_block.is_power_of_two(),
            "scatter_block must be a power of two"
        );
        assert!(
            self.blocked_tail_log2 >= 1 && self.blocked_tail_log2 <= 16,
            "blocked_tail_log2 must be in 1..=16"
        );
        // α grows as 2^attempt across retries; 32 doublings already
        // overflows any conceivable arena budget, and an unbounded retry
        // count turns a hash-flooded input into unbounded memory growth.
        assert!(
            self.max_retries < 32,
            "max_retries must be < 32 (each retry doubles α)"
        );
        assert!(
            self.max_arena_bytes > 0,
            "max_arena_bytes must be nonzero (usize::MAX = unlimited)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SemisortConfig::default();
        assert_eq!(c.sample_stride(), 16);
        assert_eq!(c.sample_probability(), 1.0 / 16.0);
        assert_eq!(c.heavy_threshold, 16);
        assert_eq!(c.num_prefixes(), 65536);
        assert!((c.alpha - 1.1).abs() < 1e-12);
        assert!((c.c - 1.25).abs() < 1e-12);
        assert!(c.merge_light_buckets);
        assert_eq!(c.probe_strategy, ProbeStrategy::Linear);
        assert_eq!(c.scatter_strategy, ScatterStrategy::RandomCas);
        assert_eq!(c.scatter_block, 16);
        assert_eq!(c.blocked_tail_log2, 3);
        assert_eq!(c.telemetry, TelemetryLevel::Off);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "scatter_block must be a power of two")]
    fn non_power_of_two_block_rejected() {
        let cfg = SemisortConfig {
            scatter_block: 12,
            ..Default::default()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "α must exceed 1")]
    fn alpha_one_rejected() {
        let cfg = SemisortConfig {
            alpha: 1.0,
            ..Default::default()
        };
        cfg.validate();
    }

    #[test]
    fn failure_handling_defaults_are_safe() {
        let c = SemisortConfig::default();
        assert_eq!(c.overflow_policy, OverflowPolicy::Fallback);
        assert_eq!(c.max_arena_bytes, usize::MAX);
        assert!(c.fault.is_inert());
    }

    #[test]
    fn overflow_policy_parses_both_ways() {
        for p in [
            OverflowPolicy::Fallback,
            OverflowPolicy::Error,
            OverflowPolicy::Panic,
        ] {
            assert_eq!(OverflowPolicy::parse(p.as_str()), Some(p));
        }
        assert_eq!(OverflowPolicy::parse("abort"), None);
    }

    #[test]
    #[should_panic(expected = "max_retries must be < 32")]
    fn huge_retry_budget_rejected() {
        let cfg = SemisortConfig {
            max_retries: 32,
            ..Default::default()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "max_arena_bytes must be nonzero")]
    fn zero_arena_budget_rejected() {
        let cfg = SemisortConfig {
            max_arena_bytes: 0,
            ..Default::default()
        };
        cfg.validate();
    }

    #[test]
    fn with_seed_changes_only_seed() {
        let a = SemisortConfig::default();
        let b = SemisortConfig::default().with_seed(99);
        assert_eq!(b.seed, 99);
        assert_eq!(a.heavy_threshold, b.heavy_threshold);
    }
}
