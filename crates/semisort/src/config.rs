//! Tuning parameters.
//!
//! Defaults follow §4 of the paper exactly: "We set the sampling probability
//! p to be 1/16, and δ to be 16 … The number of light key buckets is set to
//! be 2^16", with the estimator constant `c = 1.25` and the slack factor
//! `1.1` from Phase 2 ("each bucket with s samples allocates an array of
//! size 1.1·f(s) with c = 1.25, and rounded up to the nearest power of 2").

pub use crate::fault::FaultPlan;
pub use crate::obs::TelemetryLevel;

use crate::error::SemisortError;

/// What the driver does once the Las Vegas machinery gives up — the retry
/// budget is exhausted, the arena memory budget is exceeded, or the arena
/// allocation fails. Retries always happen first; the policy governs only
/// the terminal step.
///
/// `#[non_exhaustive]`: future versions may add policies; match with a
/// wildcard arm.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum OverflowPolicy {
    /// Retry, then degrade to the guaranteed comparison-sort fallback —
    /// still a correct semisort, `O(n log n)` instead of `O(n)`, never a
    /// crash. The default: valid input can never abort the process.
    #[default]
    Fallback,
    /// Retry, then return a [`crate::SemisortError`] from the `try_*`
    /// entry points (the panicking wrappers turn it into a panic).
    Error,
    /// Retry, then panic — the pre-policy behavior, for callers that
    /// prefer to die loudly over degrading silently.
    Panic,
}

impl OverflowPolicy {
    /// Parse a CLI spelling (`fallback`, `error`, `panic`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fallback" => Some(OverflowPolicy::Fallback),
            "error" => Some(OverflowPolicy::Error),
            "panic" => Some(OverflowPolicy::Panic),
            _ => None,
        }
    }

    /// The CLI spelling of this policy.
    pub fn as_str(self) -> &'static str {
        match self {
            OverflowPolicy::Fallback => "fallback",
            OverflowPolicy::Error => "error",
            OverflowPolicy::Panic => "panic",
        }
    }
}

/// How the scatter phase resolves an occupied slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeStrategy {
    /// Try the next slot ("linear probing. This gives better cache
    /// performance" — §4 Phase 3). The default.
    Linear,
    /// Pick a fresh random slot each time, as in the theoretical
    /// description of the placement problem (§3). Kept for the ablation
    /// benchmark that quantifies how much linear probing buys.
    Random,
}

/// How Phase 3 moves records into their buckets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScatterStrategy {
    /// The paper's Phase 3: every record CASes into a random slot of its
    /// bucket, probing on collision (see [`ProbeStrategy`]). The default.
    RandomCas,
    /// Block-buffered scatter: each worker classifies its chunk of records
    /// into per-bucket software write buffers and flushes full buffers with
    /// one `fetch_add` slab reservation instead of per-record CAS traffic.
    /// Buckets whose reserved slab fills fall back to CAS placement in a
    /// tail region. See `blocked_scatter`.
    Blocked,
    /// Arena-free permutation: a counting pass computes exact bucket
    /// boundaries inside the output buffer, then workers claim hole ranges
    /// from per-bucket region cursors (`fetch_add`) and move records
    /// through small per-bucket swap buffers until every region holds only
    /// its own records. No slot array, no probing, no Las Vegas overflow —
    /// scratch is O(buckets + workers·swap_buffer) instead of O(n·α).
    /// See `inplace_scatter`.
    InPlace,
}

/// Phase 3 backend selection plus every scatter-side tuning knob, grouped
/// so a strategy and the knobs it reads travel together (and so adding a
/// knob is not a breaking change to [`SemisortConfig`] construction via
/// `..Default::default()`).
///
/// Which knobs each backend reads:
///
/// | field               | `RandomCas` | `Blocked` | `InPlace` |
/// |---------------------|-------------|-----------|-----------|
/// | `block`             |      –      |     ✓     |     –     |
/// | `tail_log2`         |      –      |     ✓     |     –     |
/// | `prefetch_distance` |      ✓      |     ✓     |     –     |
/// | `swap_buffer`       |      –      |     –     |     ✓     |
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScatterConfig {
    /// Which Phase 3 implementation to run; default the paper's
    /// [`ScatterStrategy::RandomCas`].
    pub strategy: ScatterStrategy,
    /// Records per per-worker write-buffer block in the blocked scatter;
    /// default 32 (512 bytes of `(u64, u64)` records — eight cache lines,
    /// so a flush is a whole-line burst). Must be a power of two.
    pub block: usize,
    /// In the blocked scatter, each bucket reserves its last
    /// `size / 2^tail_log2` slots as the CAS-fallback tail (the slab
    /// cursor allocates only below it); default 3 (tail = size/8).
    pub tail_log2: u32,
    /// How many records ahead of the store the CAS/slab scatters compute
    /// the hash→slot mapping and issue a software prefetch for the target
    /// cache line; default 8, `0` disables prefetching. Capped at 64 —
    /// beyond that the lines fall out of the fill buffers before use.
    pub prefetch_distance: usize,
    /// Records per per-bucket swap buffer in the in-place scatter: a
    /// worker batches this many displaced records per destination bucket
    /// before claiming a hole range to flush them into; default 32. Must
    /// be a power of two in `1..=4096`.
    pub swap_buffer: usize,
}

impl Default for ScatterConfig {
    fn default() -> Self {
        ScatterConfig {
            strategy: ScatterStrategy::RandomCas,
            block: 32,
            tail_log2: 3,
            prefetch_distance: 8,
            swap_buffer: 32,
        }
    }
}

/// Which algorithm sorts each light bucket in Phase 4.
///
/// The paper "tried several versions including a bucket sort, some
/// comparison-based hybrid sort algorithms, and the sort in the C++
/// Standard Library" and found them similar; these variants let the
/// ablation bench repeat that comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LocalSortAlgo {
    /// Rust's `slice::sort_unstable` (pdqsort) — the `std::sort` analogue
    /// the paper shipped with. The default.
    StdUnstable,
    /// Two passes of stable counting sort on fresh labels, as in the
    /// theoretical Step 7c.
    Counting,
    /// Rust's stable `slice::sort` (timsort-like).
    StdStable,
}

/// Configuration for the semisort. `Default::default()` reproduces the
/// paper's shipped constants.
#[derive(Clone, Copy, Debug)]
pub struct SemisortConfig {
    /// Sampling probability is `1/2^sample_shift`; default 4 (p = 1/16).
    pub sample_shift: u32,
    /// δ: a key is heavy if it appears at least this many times in the
    /// sample; default 16.
    pub heavy_threshold: usize,
    /// Upper bound on the light-bucket prefix bits; default 16 (the
    /// paper's 2^16 buckets at n = 10⁸). The effective count follows the
    /// theoretical Θ(n/log²n) rule, capped here — see
    /// `buckets::effective_prefix_bits`.
    pub light_bucket_log2: u32,
    /// Slack multiplier α on the size estimate; default 1.1.
    pub alpha: f64,
    /// Estimator constant c in `f(s)`; default 1.25.
    pub c: f64,
    /// Merge adjacent light buckets until each holds at least δ samples
    /// ("reduces the overall running time by at most 10%" — §4 Phase 2).
    /// Default true.
    pub merge_light_buckets: bool,
    /// Collision handling in the scatter; default linear probing.
    pub probe_strategy: ProbeStrategy,
    /// Phase 3 backend and its tuning knobs — strategy, block width,
    /// CAS-tail exponent, prefetch distance, in-place swap-buffer size —
    /// grouped in one validated sub-struct (see [`ScatterConfig`]).
    ///
    /// This replaces the former flat `scatter_strategy` / `scatter_block` /
    /// `blocked_tail_log2` fields; the builder keeps `#[deprecated]`
    /// setters under the old names for one release.
    pub scatter: ScatterConfig,
    /// Light-bucket sorting algorithm; default `StdUnstable`.
    pub local_sort_algo: LocalSortAlgo,
    /// Seed for sampling jitter and scatter randomness. Runs with equal
    /// seeds produce identical outputs at any thread count.
    pub seed: u64,
    /// Inputs at or below this size skip the machinery and sort directly
    /// (a semisorted order trivially); default 2^13.
    pub seq_threshold: usize,
    /// Maximum Las Vegas restarts on bucket overflow (Corollary 3.4 failure)
    /// before growing α; default 3, must be < 32 (α growth is `2^attempt`).
    /// Each retry re-randomizes scatter positions and doubles the
    /// overflowing run's slack. What happens when the budget runs out is
    /// governed by `overflow_policy`.
    pub max_retries: u32,
    /// What to do when retries are exhausted, the arena budget is
    /// exceeded, or the arena allocation fails; default
    /// [`OverflowPolicy::Fallback`] (degrade, never crash).
    pub overflow_policy: OverflowPolicy,
    /// Upper bound in bytes on the scatter arena (slot array). α-doubling
    /// across retries grows the arena; a plan whose arena would exceed this
    /// budget triggers early degradation per `overflow_policy` instead of
    /// an oversized allocation. Default `usize::MAX` (unlimited).
    pub max_arena_bytes: usize,
    /// Upper bound in bytes on the scratch memory a
    /// [`Semisorter`](crate::engine::Semisorter) *retains between calls*
    /// (see [`ScratchPool::bytes_held`](crate::pool::ScratchPool::bytes_held)).
    /// Unlike `max_arena_bytes` — which caps what a single run may
    /// allocate — this caps what the pool keeps warm afterwards: a call
    /// that leaves the pool over budget trims it back to empty on the way
    /// out. Default `usize::MAX` (retain everything).
    pub max_scratch_bytes: usize,
    /// Deterministic fault-injection schedule (dev/chaos-testing only);
    /// default inert. See [`crate::fault`].
    pub fault: FaultPlan,
    /// How much telemetry the run collects (see [`TelemetryLevel`]);
    /// default `Off`, which keeps the hot loops at their pre-telemetry
    /// cost. Retry causes are recorded at every level (cold path).
    pub telemetry: TelemetryLevel,
    /// Whether the driver snapshots the work-stealing pool's
    /// [`SchedulerStats`](rayon::trace::SchedulerStats) around the run and
    /// attaches the delta to
    /// [`SemisortStats::scheduler`](crate::stats::SemisortStats::scheduler).
    /// Default true: two counter snapshots per run, far off the hot path.
    /// Turn off for byte-stable stats JSON across runs, or to skip forcing
    /// the global registry into existence on otherwise sequential paths.
    pub capture_scheduler: bool,
}

impl Default for SemisortConfig {
    fn default() -> Self {
        SemisortConfig {
            sample_shift: 4,
            heavy_threshold: 16,
            light_bucket_log2: 16,
            alpha: 1.1,
            c: 1.25,
            merge_light_buckets: true,
            probe_strategy: ProbeStrategy::Linear,
            scatter: ScatterConfig::default(),
            local_sort_algo: LocalSortAlgo::StdUnstable,
            seed: 0x5eed_0f5e_u64,
            seq_threshold: 1 << 13,
            max_retries: 3,
            overflow_policy: OverflowPolicy::Fallback,
            max_arena_bytes: usize::MAX,
            max_scratch_bytes: usize::MAX,
            fault: FaultPlan::NONE,
            telemetry: TelemetryLevel::Off,
            capture_scheduler: true,
        }
    }
}

impl SemisortConfig {
    /// Start a validating builder (see [`SemisortConfigBuilder`]); `build()`
    /// returns `Err(SemisortError::InvalidConfig)` instead of panicking on
    /// bad parameters.
    #[must_use]
    pub fn builder() -> SemisortConfigBuilder {
        SemisortConfigBuilder {
            cfg: SemisortConfig::default(),
        }
    }

    /// The sampling probability `p = 1/2^sample_shift`.
    #[inline]
    pub fn sample_probability(&self) -> f64 {
        1.0 / (1u64 << self.sample_shift) as f64
    }

    /// The sampling stride `1/p` (records per sample).
    #[inline]
    pub fn sample_stride(&self) -> usize {
        1 << self.sample_shift
    }

    /// Maximum number of light-bucket hash-prefix classes
    /// (`2^light_bucket_log2`); the effective count additionally scales
    /// with n (see `buckets::effective_prefix_bits`).
    #[inline]
    pub fn num_prefixes(&self) -> usize {
        1 << self.light_bucket_log2
    }

    /// Wrap this config in a builder to override more fields (the inverse
    /// of [`SemisortConfigBuilder::build`], minus the validation).
    #[must_use]
    pub fn to_builder(self) -> SemisortConfigBuilder {
        SemisortConfigBuilder { cfg: self }
    }

    /// Builder-style setter for the seed (delegates to
    /// [`SemisortConfigBuilder::seed`]; no validation).
    pub fn with_seed(self, seed: u64) -> Self {
        self.to_builder().seed(seed).cfg
    }

    /// Builder-style setter for the telemetry level.
    pub fn with_telemetry(self, level: TelemetryLevel) -> Self {
        self.to_builder().telemetry(level).cfg
    }

    /// Builder-style setter for the overflow policy.
    pub fn with_overflow_policy(self, policy: OverflowPolicy) -> Self {
        self.to_builder().overflow_policy(policy).cfg
    }

    /// Builder-style setter for the arena memory budget.
    pub fn with_max_arena_bytes(self, bytes: usize) -> Self {
        self.to_builder().max_arena_bytes(bytes).cfg
    }

    /// Builder-style setter for the retained-scratch budget.
    pub fn with_max_scratch_bytes(self, bytes: usize) -> Self {
        self.to_builder().max_scratch_bytes(bytes).cfg
    }

    /// Builder-style setter for the fault-injection plan.
    pub fn with_fault(self, fault: FaultPlan) -> Self {
        self.to_builder().fault(fault).cfg
    }

    /// Validate parameter sanity without panicking; the error's `reason`
    /// names the offending parameter. Called once per run by the driver and
    /// by [`SemisortConfigBuilder::build`].
    #[must_use = "the Err carries the validation failure"]
    pub fn try_validate(&self) -> Result<(), SemisortError> {
        fn check(ok: bool, reason: &'static str) -> Result<(), SemisortError> {
            if ok {
                Ok(())
            } else {
                Err(SemisortError::InvalidConfig { reason })
            }
        }
        check(
            self.sample_shift >= 1 && self.sample_shift <= 16,
            "sample_shift must be in 1..=16",
        )?;
        check(self.heavy_threshold >= 2, "δ must be at least 2")?;
        check(
            self.light_bucket_log2 >= 1 && self.light_bucket_log2 <= 24,
            "light_bucket_log2 must be in 1..=24",
        )?;
        check(self.alpha > 1.0, "α must exceed 1 for scatter termination")?;
        check(self.c > 0.0, "estimator constant c must be positive")?;
        check(
            self.scatter.block >= 1 && self.scatter.block.is_power_of_two(),
            "scatter.block must be a power of two",
        )?;
        check(
            self.scatter.tail_log2 >= 1 && self.scatter.tail_log2 <= 16,
            "scatter.tail_log2 must be in 1..=16",
        )?;
        check(
            self.scatter.prefetch_distance <= 64,
            "scatter.prefetch_distance must be <= 64 (0 disables)",
        )?;
        check(
            self.scatter.swap_buffer >= 1
                && self.scatter.swap_buffer <= 4096
                && self.scatter.swap_buffer.is_power_of_two(),
            "scatter.swap_buffer must be a power of two in 1..=4096",
        )?;
        // α grows as 2^attempt across retries; 32 doublings already
        // overflows any conceivable arena budget, and an unbounded retry
        // count turns a hash-flooded input into unbounded memory growth.
        check(
            self.max_retries < 32,
            "max_retries must be < 32 (each retry doubles α)",
        )?;
        check(
            self.max_arena_bytes > 0,
            "max_arena_bytes must be nonzero (usize::MAX = unlimited)",
        )?;
        check(
            self.max_scratch_bytes > 0,
            "max_scratch_bytes must be nonzero (usize::MAX = unlimited)",
        )
    }

    /// Validate parameter sanity, panicking on the first violation (the
    /// pre-builder behavior; [`Self::try_validate`] is the non-panicking
    /// form).
    pub fn validate(&self) {
        if let Err(SemisortError::InvalidConfig { reason }) = self.try_validate() {
            panic!("{reason}");
        }
    }
}

/// Validating builder for [`SemisortConfig`].
///
/// Starts from `SemisortConfig::default()` (the paper's constants); each
/// setter overrides one field; [`build`](Self::build) runs
/// [`SemisortConfig::try_validate`] and returns
/// `Err(SemisortError::InvalidConfig)` — rather than panicking — on bad
/// parameters.
///
/// ```
/// use semisort::SemisortConfig;
/// let cfg = SemisortConfig::builder()
///     .seed(42)
///     .max_arena_bytes(1 << 30)
///     .build()
///     .expect("valid config");
/// assert_eq!(cfg.seed, 42);
/// assert!(SemisortConfig::builder().max_retries(32).build().is_err());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct SemisortConfigBuilder {
    cfg: SemisortConfig,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $name:ident: $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            #[must_use]
            pub fn $name(mut self, $name: $ty) -> Self {
                self.cfg.$name = $name;
                self
            }
        )*
    };
}

impl SemisortConfigBuilder {
    builder_setters! {
        /// Set the sampling shift (`p = 1/2^sample_shift`).
        sample_shift: u32,
        /// Set δ, the heavy-key sample-count threshold.
        heavy_threshold: usize,
        /// Set the light-bucket prefix-bit cap.
        light_bucket_log2: u32,
        /// Set the slack multiplier α.
        alpha: f64,
        /// Set the estimator constant c.
        c: f64,
        /// Set whether adjacent light buckets are merged.
        merge_light_buckets: bool,
        /// Set the scatter collision-probe strategy.
        probe_strategy: ProbeStrategy,
        /// Set the whole Phase 3 scatter sub-config (strategy + knobs) in
        /// one call; see [`ScatterConfig`].
        scatter: ScatterConfig,
        /// Set the light-bucket sorting algorithm.
        local_sort_algo: LocalSortAlgo,
        /// Set the seed for sampling jitter and scatter randomness.
        seed: u64,
        /// Set the sequential-cutoff input size.
        seq_threshold: usize,
        /// Set the Las Vegas retry budget (must be < 32).
        max_retries: u32,
        /// Set the terminal overflow policy.
        overflow_policy: OverflowPolicy,
        /// Set the per-run arena memory budget in bytes.
        max_arena_bytes: usize,
        /// Set the retained-scratch budget in bytes (see
        /// [`SemisortConfig::max_scratch_bytes`]).
        max_scratch_bytes: usize,
        /// Set the fault-injection plan (dev/chaos-testing only).
        fault: FaultPlan,
        /// Set the telemetry level.
        telemetry: TelemetryLevel,
        /// Set whether scheduler stats are snapshot around each run.
        capture_scheduler: bool,
    }

    /// Set the Phase 3 scatter implementation.
    #[deprecated(
        since = "0.9.0",
        note = "scatter knobs moved into the `ScatterConfig` sub-struct; \
                use `.scatter(ScatterConfig { strategy, ..Default::default() })`"
    )]
    #[must_use]
    pub fn scatter_strategy(mut self, strategy: ScatterStrategy) -> Self {
        self.cfg.scatter.strategy = strategy;
        self
    }

    /// Set the blocked-scatter write-buffer block size (power of two).
    #[deprecated(
        since = "0.9.0",
        note = "scatter knobs moved into the `ScatterConfig` sub-struct; \
                use `.scatter(ScatterConfig { block, ..Default::default() })`"
    )]
    #[must_use]
    pub fn scatter_block(mut self, block: usize) -> Self {
        self.cfg.scatter.block = block;
        self
    }

    /// Set the blocked-scatter CAS-fallback tail exponent.
    #[deprecated(
        since = "0.9.0",
        note = "scatter knobs moved into the `ScatterConfig` sub-struct; \
                use `.scatter(ScatterConfig { tail_log2, ..Default::default() })`"
    )]
    #[must_use]
    pub fn blocked_tail_log2(mut self, tail_log2: u32) -> Self {
        self.cfg.scatter.tail_log2 = tail_log2;
        self
    }

    /// Validate and return the finished configuration.
    #[must_use = "the Err carries the validation failure"]
    pub fn build(self) -> Result<SemisortConfig, SemisortError> {
        self.cfg.try_validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SemisortConfig::default();
        assert_eq!(c.sample_stride(), 16);
        assert_eq!(c.sample_probability(), 1.0 / 16.0);
        assert_eq!(c.heavy_threshold, 16);
        assert_eq!(c.num_prefixes(), 65536);
        assert!((c.alpha - 1.1).abs() < 1e-12);
        assert!((c.c - 1.25).abs() < 1e-12);
        assert!(c.merge_light_buckets);
        assert_eq!(c.probe_strategy, ProbeStrategy::Linear);
        assert_eq!(c.scatter.strategy, ScatterStrategy::RandomCas);
        assert_eq!(c.scatter.block, 32);
        assert_eq!(c.scatter.tail_log2, 3);
        assert_eq!(c.scatter.prefetch_distance, 8);
        assert_eq!(c.scatter.swap_buffer, 32);
        assert_eq!(c.telemetry, TelemetryLevel::Off);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "scatter.block must be a power of two")]
    fn non_power_of_two_block_rejected() {
        let cfg = SemisortConfig {
            scatter: ScatterConfig {
                block: 12,
                ..Default::default()
            },
            ..Default::default()
        };
        cfg.validate();
    }

    #[test]
    fn scatter_knobs_validated() {
        let from = |scatter: ScatterConfig| SemisortConfig {
            scatter,
            ..Default::default()
        };
        assert!(from(ScatterConfig {
            prefetch_distance: 65,
            ..Default::default()
        })
        .try_validate()
        .is_err());
        assert!(from(ScatterConfig {
            prefetch_distance: 0,
            ..Default::default()
        })
        .try_validate()
        .is_ok());
        assert!(from(ScatterConfig {
            swap_buffer: 0,
            ..Default::default()
        })
        .try_validate()
        .is_err());
        assert!(from(ScatterConfig {
            swap_buffer: 3,
            ..Default::default()
        })
        .try_validate()
        .is_err());
        assert!(from(ScatterConfig {
            swap_buffer: 8192,
            ..Default::default()
        })
        .try_validate()
        .is_err());
        assert!(from(ScatterConfig {
            swap_buffer: 1,
            ..Default::default()
        })
        .try_validate()
        .is_ok());
        assert!(from(ScatterConfig {
            tail_log2: 0,
            ..Default::default()
        })
        .try_validate()
        .is_err());
    }

    #[test]
    #[should_panic(expected = "α must exceed 1")]
    fn alpha_one_rejected() {
        let cfg = SemisortConfig {
            alpha: 1.0,
            ..Default::default()
        };
        cfg.validate();
    }

    #[test]
    fn failure_handling_defaults_are_safe() {
        let c = SemisortConfig::default();
        assert_eq!(c.overflow_policy, OverflowPolicy::Fallback);
        assert_eq!(c.max_arena_bytes, usize::MAX);
        assert!(c.fault.is_inert());
    }

    #[test]
    fn overflow_policy_parses_both_ways() {
        for p in [
            OverflowPolicy::Fallback,
            OverflowPolicy::Error,
            OverflowPolicy::Panic,
        ] {
            assert_eq!(OverflowPolicy::parse(p.as_str()), Some(p));
        }
        assert_eq!(OverflowPolicy::parse("abort"), None);
    }

    #[test]
    #[should_panic(expected = "max_retries must be < 32")]
    fn huge_retry_budget_rejected() {
        let cfg = SemisortConfig {
            max_retries: 32,
            ..Default::default()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "max_arena_bytes must be nonzero")]
    fn zero_arena_budget_rejected() {
        let cfg = SemisortConfig {
            max_arena_bytes: 0,
            ..Default::default()
        };
        cfg.validate();
    }

    #[test]
    fn with_seed_changes_only_seed() {
        let a = SemisortConfig::default();
        let b = SemisortConfig::default().with_seed(99);
        assert_eq!(b.seed, 99);
        assert_eq!(a.heavy_threshold, b.heavy_threshold);
    }

    #[test]
    fn builder_accepts_defaults_and_overrides() {
        let cfg = SemisortConfig::builder()
            .seed(7)
            .alpha(1.5)
            .scatter(ScatterConfig {
                strategy: ScatterStrategy::Blocked,
                ..Default::default()
            })
            .max_scratch_bytes(1 << 20)
            .build()
            .unwrap();
        assert_eq!(cfg.seed, 7);
        assert!((cfg.alpha - 1.5).abs() < 1e-12);
        assert_eq!(cfg.scatter.strategy, ScatterStrategy::Blocked);
        assert_eq!(cfg.max_scratch_bytes, 1 << 20);
    }

    #[test]
    fn builder_rejects_invalid_without_panicking() {
        let err = SemisortConfig::builder()
            .max_retries(32)
            .build()
            .unwrap_err();
        match err {
            crate::SemisortError::InvalidConfig { reason } => {
                assert!(reason.contains("max_retries must be < 32"), "{reason}");
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(SemisortConfig::builder().alpha(1.0).build().is_err());
        assert!(SemisortConfig::builder()
            .scatter(ScatterConfig {
                block: 12,
                ..Default::default()
            })
            .build()
            .is_err());
        assert!(SemisortConfig::builder()
            .max_scratch_bytes(0)
            .build()
            .is_err());
    }

    /// The deprecated flat builder setters must keep delegating into the
    /// `scatter` sub-struct for one release.
    #[test]
    #[allow(deprecated)]
    fn deprecated_flat_setters_delegate() {
        let cfg = SemisortConfig::builder()
            .scatter_strategy(ScatterStrategy::InPlace)
            .scatter_block(64)
            .blocked_tail_log2(4)
            .build()
            .unwrap();
        assert_eq!(cfg.scatter.strategy, ScatterStrategy::InPlace);
        assert_eq!(cfg.scatter.block, 64);
        assert_eq!(cfg.scatter.tail_log2, 4);
        assert!(SemisortConfig::builder().scatter_block(12).build().is_err());
    }

    #[test]
    fn try_validate_agrees_with_validate() {
        assert!(SemisortConfig::default().try_validate().is_ok());
        let bad = SemisortConfig {
            max_arena_bytes: 0,
            ..Default::default()
        };
        assert!(bad.try_validate().is_err());
    }
}
