//! Tuning parameters.
//!
//! Defaults follow §4 of the paper exactly: "We set the sampling probability
//! p to be 1/16, and δ to be 16 … The number of light key buckets is set to
//! be 2^16", with the estimator constant `c = 1.25` and the slack factor
//! `1.1` from Phase 2 ("each bucket with s samples allocates an array of
//! size 1.1·f(s) with c = 1.25, and rounded up to the nearest power of 2").

pub use crate::obs::TelemetryLevel;

/// How the scatter phase resolves an occupied slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeStrategy {
    /// Try the next slot ("linear probing. This gives better cache
    /// performance" — §4 Phase 3). The default.
    Linear,
    /// Pick a fresh random slot each time, as in the theoretical
    /// description of the placement problem (§3). Kept for the ablation
    /// benchmark that quantifies how much linear probing buys.
    Random,
}

/// How Phase 3 moves records into their buckets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScatterStrategy {
    /// The paper's Phase 3: every record CASes into a random slot of its
    /// bucket, probing on collision (see [`ProbeStrategy`]). The default.
    RandomCas,
    /// Block-buffered scatter: each worker classifies its chunk of records
    /// into per-bucket software write buffers and flushes full buffers with
    /// one `fetch_add` slab reservation instead of per-record CAS traffic.
    /// Buckets whose reserved slab fills fall back to CAS placement in a
    /// tail region. See `blocked_scatter`.
    Blocked,
}

/// Which algorithm sorts each light bucket in Phase 4.
///
/// The paper "tried several versions including a bucket sort, some
/// comparison-based hybrid sort algorithms, and the sort in the C++
/// Standard Library" and found them similar; these variants let the
/// ablation bench repeat that comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LocalSortAlgo {
    /// Rust's `slice::sort_unstable` (pdqsort) — the `std::sort` analogue
    /// the paper shipped with. The default.
    StdUnstable,
    /// Two passes of stable counting sort on fresh labels, as in the
    /// theoretical Step 7c.
    Counting,
    /// Rust's stable `slice::sort` (timsort-like).
    StdStable,
}

/// Configuration for the semisort. `Default::default()` reproduces the
/// paper's shipped constants.
#[derive(Clone, Copy, Debug)]
pub struct SemisortConfig {
    /// Sampling probability is `1/2^sample_shift`; default 4 (p = 1/16).
    pub sample_shift: u32,
    /// δ: a key is heavy if it appears at least this many times in the
    /// sample; default 16.
    pub heavy_threshold: usize,
    /// Upper bound on the light-bucket prefix bits; default 16 (the
    /// paper's 2^16 buckets at n = 10⁸). The effective count follows the
    /// theoretical Θ(n/log²n) rule, capped here — see
    /// `buckets::effective_prefix_bits`.
    pub light_bucket_log2: u32,
    /// Slack multiplier α on the size estimate; default 1.1.
    pub alpha: f64,
    /// Estimator constant c in `f(s)`; default 1.25.
    pub c: f64,
    /// Merge adjacent light buckets until each holds at least δ samples
    /// ("reduces the overall running time by at most 10%" — §4 Phase 2).
    /// Default true.
    pub merge_light_buckets: bool,
    /// Collision handling in the scatter; default linear probing.
    pub probe_strategy: ProbeStrategy,
    /// Which Phase 3 implementation to run; default the paper's
    /// [`ScatterStrategy::RandomCas`].
    pub scatter_strategy: ScatterStrategy,
    /// Records per per-worker write-buffer block in the blocked scatter;
    /// default 16 (256 bytes of `(u64, u64)` records — a few cache lines).
    /// Must be a power of two.
    pub scatter_block: usize,
    /// In the blocked scatter, each bucket reserves its last
    /// `size / 2^blocked_tail_log2` slots as the CAS-fallback tail (the
    /// slab cursor allocates only below it); default 3 (tail = size/8).
    pub blocked_tail_log2: u32,
    /// Light-bucket sorting algorithm; default `StdUnstable`.
    pub local_sort_algo: LocalSortAlgo,
    /// Seed for sampling jitter and scatter randomness. Runs with equal
    /// seeds produce identical outputs at any thread count.
    pub seed: u64,
    /// Inputs at or below this size skip the machinery and sort directly
    /// (a semisorted order trivially); default 2^13.
    pub seq_threshold: usize,
    /// Maximum Las Vegas restarts on bucket overflow (Corollary 3.4 failure)
    /// before growing α; default 3. Each retry re-randomizes scatter
    /// positions and doubles the overflowing run's slack.
    pub max_retries: u32,
    /// How much telemetry the run collects (see [`TelemetryLevel`]);
    /// default `Off`, which keeps the hot loops at their pre-telemetry
    /// cost. Retry causes are recorded at every level (cold path).
    pub telemetry: TelemetryLevel,
}

impl Default for SemisortConfig {
    fn default() -> Self {
        SemisortConfig {
            sample_shift: 4,
            heavy_threshold: 16,
            light_bucket_log2: 16,
            alpha: 1.1,
            c: 1.25,
            merge_light_buckets: true,
            probe_strategy: ProbeStrategy::Linear,
            scatter_strategy: ScatterStrategy::RandomCas,
            scatter_block: 16,
            blocked_tail_log2: 3,
            local_sort_algo: LocalSortAlgo::StdUnstable,
            seed: 0x5eed_0f5e_u64,
            seq_threshold: 1 << 13,
            max_retries: 3,
            telemetry: TelemetryLevel::Off,
        }
    }
}

impl SemisortConfig {
    /// The sampling probability `p = 1/2^sample_shift`.
    #[inline]
    pub fn sample_probability(&self) -> f64 {
        1.0 / (1u64 << self.sample_shift) as f64
    }

    /// The sampling stride `1/p` (records per sample).
    #[inline]
    pub fn sample_stride(&self) -> usize {
        1 << self.sample_shift
    }

    /// Maximum number of light-bucket hash-prefix classes
    /// (`2^light_bucket_log2`); the effective count additionally scales
    /// with n (see `buckets::effective_prefix_bits`).
    #[inline]
    pub fn num_prefixes(&self) -> usize {
        1 << self.light_bucket_log2
    }

    /// Builder-style setter for the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style setter for the telemetry level.
    pub fn with_telemetry(mut self, level: TelemetryLevel) -> Self {
        self.telemetry = level;
        self
    }

    /// Validate parameter sanity; called once per run by the driver.
    pub fn validate(&self) {
        assert!(self.sample_shift >= 1 && self.sample_shift <= 16);
        assert!(self.heavy_threshold >= 2, "δ must be at least 2");
        assert!(self.light_bucket_log2 >= 1 && self.light_bucket_log2 <= 24);
        assert!(self.alpha > 1.0, "α must exceed 1 for scatter termination");
        assert!(self.c > 0.0);
        assert!(
            self.scatter_block >= 1 && self.scatter_block.is_power_of_two(),
            "scatter_block must be a power of two"
        );
        assert!(
            self.blocked_tail_log2 >= 1 && self.blocked_tail_log2 <= 16,
            "blocked_tail_log2 must be in 1..=16"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SemisortConfig::default();
        assert_eq!(c.sample_stride(), 16);
        assert_eq!(c.sample_probability(), 1.0 / 16.0);
        assert_eq!(c.heavy_threshold, 16);
        assert_eq!(c.num_prefixes(), 65536);
        assert!((c.alpha - 1.1).abs() < 1e-12);
        assert!((c.c - 1.25).abs() < 1e-12);
        assert!(c.merge_light_buckets);
        assert_eq!(c.probe_strategy, ProbeStrategy::Linear);
        assert_eq!(c.scatter_strategy, ScatterStrategy::RandomCas);
        assert_eq!(c.scatter_block, 16);
        assert_eq!(c.blocked_tail_log2, 3);
        assert_eq!(c.telemetry, TelemetryLevel::Off);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "scatter_block must be a power of two")]
    fn non_power_of_two_block_rejected() {
        let cfg = SemisortConfig {
            scatter_block: 12,
            ..Default::default()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "α must exceed 1")]
    fn alpha_one_rejected() {
        let cfg = SemisortConfig {
            alpha: 1.0,
            ..Default::default()
        };
        cfg.validate();
    }

    #[test]
    fn with_seed_changes_only_seed() {
        let a = SemisortConfig::default();
        let b = SemisortConfig::default().with_seed(99);
        assert_eq!(b.seed, 99);
        assert_eq!(a.heavy_threshold, b.heavy_threshold);
    }
}
