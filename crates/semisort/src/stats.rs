//! Per-phase instrumentation.
//!
//! The paper's Tables 2–3 and Figure 3 break the running time into five
//! phases: "sample and sort", "construct buckets", "scatter", "local sort"
//! and "pack". [`SemisortStats`] carries exactly that breakdown, plus the
//! structural counters (sample size, heavy keys, slot usage, retries) that
//! the consistency experiments in §5.2 report on, plus the merged
//! [`Telemetry`] of the run (CAS attempts, probe-length histogram, retry
//! causes — see [`crate::obs`]).
//!
//! # JSON schema (`semisort-stats-v2`)
//!
//! [`SemisortStats::to_json`] serializes one run as a single JSON object.
//! v2 is a strict superset of v1: it adds the `"spans"` array (epoch-based
//! phase span endpoints, see [`SpanRecord`]) and the `"scheduler"` section
//! (the work-stealing pool's activity during the run, diffed from
//! before/after [`rayon::trace::SchedulerStats`] snapshots — `null` when
//! no real pool ran, e.g. single-thread or Miri). Consumers that accepted
//! v1 keep working; `semisort-cli validate-json` accepts both spellings.
//! Runs that went through the `semisortd` service layer additionally fill
//! the `"service"` section (admission/shed/poison/drain counters, see
//! [`crate::obs::ServiceSnapshot`]); library runs leave it `null`.
//!
//! ```json
//! {
//!   "schema": "semisort-stats-v2",
//!   "n": 1000000,
//!   "config": {
//!     "sample_shift": 4, "heavy_threshold": 16, "light_bucket_log2": 16,
//!     "alpha": 1.1, "c": 1.25, "merge_light_buckets": true,
//!     "probe_strategy": "linear", "scatter_strategy": "random-cas",
//!     "scatter_block": 16, "blocked_tail_log2": 3,
//!     "prefetch_distance": 8, "swap_buffer": 32,
//!     "local_sort_algo": "std-unstable", "seed": 42,
//!     "seq_threshold": 8192, "max_retries": 3, "telemetry": "deep",
//!     "overflow_policy": "fallback", "max_arena_bytes": null,
//!     "max_scratch_bytes": null, "fault": "none",
//!     "capture_scheduler": true
//!   },
//!   "phases": {
//!     "sample_sort_s": 0.01, "construct_buckets_s": 0.001,
//!     "scatter_s": 0.05, "local_sort_s": 0.02, "pack_s": 0.01,
//!     "total_s": 0.091
//!   },
//!   "counters": {
//!     "sample_size": 62500, "heavy_keys": 5, "light_buckets": 4096,
//!     "heavy_records": 500000, "light_records": 500000,
//!     "total_slots": 1300000, "retries": 0, "blocks_flushed": 0,
//!     "slab_overflows": 0, "fallback_records": 0,
//!     "inplace_cycles": 0, "swap_buffer_flushes": 0,
//!     "scratch_bytes_held": 20800000, "scratch_reuse_hits": 1,
//!     "scratch_grows": 0
//!   },
//!   "outcome": {
//!     "policy": "fallback", "degraded": false, "reason": null,
//!     "faults_injected": 0
//!   },
//!   "telemetry": {
//!     "level": "deep", "cas_attempts": 1010000, "cas_failures": 10000,
//!     "records_placed": 1000000,
//!     "probe_hist": [990000, 8000, ...],       // 32 power-of-two buckets
//!     "light_occupancy_hist": [0, 12, ...],    // 32 power-of-two buckets
//!     "retry_causes": [
//!       {"attempt": 1, "bucket": 17, "heavy": false,
//!        "allocated": 64, "observed": 65}
//!     ]
//!   },
//!   "spans": [
//!     {"name": "sample_sort", "start_us": 120, "end_us": 10120,
//!      "worker": null}
//!   ],
//!   "scheduler": {
//!     "num_threads": 4, "injector_submissions": 1,
//!     "totals": {
//!       "pushes": 5000, "pops": 4200, "steals": 800,
//!       "steal_attempts": 9000, "parks": 40, "park_time_us": 20000,
//!       "inline_degrades": 0
//!     },
//!     "workers": [
//!       {"pushes": 1250, "pops": 1050, "inline_degrades": 0,
//!        "steal_attempts": 2250, "steal_retries": 3,
//!        "steals_from": [0, 120, 40, 40], "parks": 10,
//!        "park_time_us": 5000, "injector_pops": 1,
//!        "jobs_executed": 220, "events_total": 210}
//!     ]
//!   },
//!   "service": {
//!     "admitted": 1000, "completed": 990, "shed_overload": 8,
//!     "deadline_exceeded": 2, "cancelled": 0, "panics_contained": 1,
//!     "shards_rebuilt": 1, "drains": 1
//!   }
//! }
//! ```
//!
//! The `"scheduler"` section carries counters only; the individual ring
//! events stay in memory (on [`SemisortStats::scheduler`]) for the
//! Chrome-trace exporter ([`crate::trace`]) — serializing up to 1024
//! events per worker into every bench record would bloat the trajectory
//! file for no analytical gain (`events_total` is there for accounting).
//!
//! Histograms are arrays of [`crate::obs::HIST_BUCKETS`] counts; bucket 0
//! holds value 0, bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`. The
//! `config` member echoes the configuration the run *started* with (Las
//! Vegas retries grow `alpha` internally; `retries`/`retry_causes` record
//! that). The bench harness wraps this object in a run record that adds
//! `git`, `ts_unix`, `bin`, `threads` and wall time — see
//! `bench::trajectory`.

use std::time::Duration;

use rayon::trace::SchedulerStats;

use crate::config::{LocalSortAlgo, ProbeStrategy, ScatterStrategy, SemisortConfig};
use crate::error::DegradeReason;
use crate::json::Json;
use crate::obs::{ServiceSnapshot, SpanRecord, Telemetry};

/// Timing and structural telemetry for one semisort run.
#[derive(Clone, Debug, Default)]
pub struct SemisortStats {
    /// Input size n.
    pub n: usize,
    /// Phase 1: sampling and sorting the sample.
    pub t_sample_sort: Duration,
    /// Phase 2: heavy/light classification and bucket allocation.
    pub t_construct_buckets: Duration,
    /// Phase 3: the CAS scatter.
    pub t_scatter: Duration,
    /// Phase 4: local sort of light buckets.
    pub t_local_sort: Duration,
    /// Phase 5: packing into the output.
    pub t_pack: Duration,
    /// Size of the sample |S|.
    pub sample_size: usize,
    /// Number of heavy keys (buckets).
    pub heavy_keys: usize,
    /// Number of light buckets after merging.
    pub light_buckets: usize,
    /// Records routed to heavy buckets.
    pub heavy_records: usize,
    /// Records not routed to heavy buckets (light buckets, or the sort
    /// fallback's output). `heavy_records + light_records == n` always.
    pub light_records: usize,
    /// Total slots allocated (Lemma 3.5 says the expected total is Θ(n)).
    pub total_slots: usize,
    /// Las Vegas restarts that were needed (almost always 0).
    pub retries: u32,
    /// Blocked scatter only: buffer flushes that reserved slab space with a
    /// single `fetch_add` (0 under `ScatterStrategy::RandomCas`).
    pub blocks_flushed: usize,
    /// Blocked scatter only: flushes whose slab reservation overflowed into
    /// the CAS tail.
    pub slab_overflows: usize,
    /// Blocked scatter only: records placed by the per-record CAS fallback.
    pub fallback_records: usize,
    /// In-place scatter only: positions claimed from bucket cursors during
    /// the cycle-following permutation (each claim opens or extends one
    /// displacement chain; 0 under the arena-backed strategies).
    pub inplace_cycles: usize,
    /// In-place scatter only: times a worker's per-bucket swap buffer
    /// filled and was written back through the claim/displace protocol.
    pub swap_buffer_flushes: usize,
    /// Bytes of scratch the [`ScratchPool`](crate::pool::ScratchPool)
    /// retains after this call (post `max_scratch_bytes` enforcement).
    /// One-shot entry points drop the pool on return, so this reports what
    /// *was* held; engine calls report what stays warm for the next call.
    pub scratch_bytes_held: usize,
    /// Arena leases this call satisfied from already-held pool memory (see
    /// [`ScratchCounters`](crate::obs::ScratchCounters)). Steady-state
    /// engine reuse shows `scratch_grows == 0` with this nonzero.
    pub scratch_reuse_hits: u32,
    /// Arena leases this call satisfied by (re)allocating pool memory.
    /// First call on an engine: ≥ 1; steady state at the high-water mark: 0.
    pub scratch_grows: u32,
    /// Whether the run degraded to the comparison-sort fallback because the
    /// Las Vegas machinery gave up (retries exhausted, arena budget
    /// exceeded, or allocation failed) under
    /// [`OverflowPolicy::Fallback`](crate::config::OverflowPolicy::Fallback).
    /// The by-construction fallbacks
    /// (`seq_threshold`-sized inputs, reserved-key screening) do **not**
    /// set this: they are routing, not failure.
    pub degraded: bool,
    /// Why the run degraded (`None` unless `degraded`).
    pub degrade_reason: Option<DegradeReason>,
    /// Faults the run's [`crate::fault::FaultPlan`] armed across all
    /// attempts (0 in production).
    pub faults_injected: u32,
    /// The configuration the run started with (echoed into the JSON export
    /// so a stats file is self-describing).
    pub config: SemisortConfig,
    /// Merged fine-grained telemetry (empty when the run's
    /// [`crate::obs::TelemetryLevel`] was `Off`, except `retry_causes`).
    pub telemetry: Telemetry,
    /// Finished phase spans with epoch-relative endpoints, in completion
    /// order across all attempts (a Las Vegas retry appends a second
    /// `sample_sort`…`scatter` group). Same data as the `t_*` durations,
    /// plus *when* — what the Chrome-trace exporter lays on the timeline.
    pub spans: Vec<SpanRecord>,
    /// What the work-stealing pool did during this run: the delta between
    /// scheduler snapshots taken around the driver's attempt loop. `None`
    /// when no real pool ran (single-thread path, Miri, or
    /// [`SemisortConfig::capture_scheduler`] off).
    pub scheduler: Option<SchedulerStats>,
    /// Service-layer counters (`semisortd`): admission/shed/poison/drain
    /// tallies snapshot at report time. `None` (`null` in the JSON) for
    /// library runs that never went through a server.
    pub service: Option<ServiceSnapshot>,
}

impl SemisortStats {
    /// Total wall time across the five phases.
    pub fn total(&self) -> Duration {
        self.t_sample_sort
            + self.t_construct_buckets
            + self.t_scatter
            + self.t_local_sort
            + self.t_pack
    }

    /// Percentage of input records routed to heavy buckets — the
    /// "% Heavy key records" row of Table 1 / Figure 1.
    pub fn heavy_fraction_pct(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            100.0 * self.heavy_records as f64 / self.n as f64
        }
    }

    /// Slot-array blowup factor (allocated slots / n); Lemma 3.5 bounds its
    /// expectation by a constant.
    pub fn space_blowup(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.total_slots as f64 / self.n as f64
        }
    }

    /// The five phase durations with their paper-table labels, in table order.
    pub fn phases(&self) -> [(&'static str, Duration); 5] {
        [
            ("sample and sort", self.t_sample_sort),
            ("construct buckets", self.t_construct_buckets),
            ("scatter", self.t_scatter),
            ("local sort", self.t_local_sort),
            ("pack", self.t_pack),
        ]
    }

    /// Serialize this run as a [`Json`] object following the
    /// `semisort-stats-v2` schema documented at the top of this module.
    pub fn to_json(&self) -> Json {
        let cfg = &self.config;
        let config = Json::Obj(vec![
            ("sample_shift".into(), Json::num(cfg.sample_shift as u64)),
            (
                "heavy_threshold".into(),
                Json::num(cfg.heavy_threshold as u64),
            ),
            (
                "light_bucket_log2".into(),
                Json::num(cfg.light_bucket_log2 as u64),
            ),
            ("alpha".into(), Json::Num(cfg.alpha)),
            ("c".into(), Json::Num(cfg.c)),
            (
                "merge_light_buckets".into(),
                Json::Bool(cfg.merge_light_buckets),
            ),
            (
                "probe_strategy".into(),
                Json::str(match cfg.probe_strategy {
                    ProbeStrategy::Linear => "linear",
                    ProbeStrategy::Random => "random",
                }),
            ),
            (
                "scatter_strategy".into(),
                Json::str(match cfg.scatter.strategy {
                    ScatterStrategy::RandomCas => "random-cas",
                    ScatterStrategy::Blocked => "blocked",
                    ScatterStrategy::InPlace => "inplace",
                }),
            ),
            ("scatter_block".into(), Json::num(cfg.scatter.block as u64)),
            (
                "blocked_tail_log2".into(),
                Json::num(cfg.scatter.tail_log2 as u64),
            ),
            (
                "prefetch_distance".into(),
                Json::num(cfg.scatter.prefetch_distance as u64),
            ),
            (
                "swap_buffer".into(),
                Json::num(cfg.scatter.swap_buffer as u64),
            ),
            (
                "local_sort_algo".into(),
                Json::str(match cfg.local_sort_algo {
                    LocalSortAlgo::StdUnstable => "std-unstable",
                    LocalSortAlgo::Counting => "counting",
                    LocalSortAlgo::StdStable => "std-stable",
                }),
            ),
            ("seed".into(), Json::num(cfg.seed)),
            ("seq_threshold".into(), Json::num(cfg.seq_threshold as u64)),
            ("max_retries".into(), Json::num(cfg.max_retries as u64)),
            ("telemetry".into(), Json::str(cfg.telemetry.as_str())),
            (
                "overflow_policy".into(),
                Json::str(cfg.overflow_policy.as_str()),
            ),
            (
                "max_arena_bytes".into(),
                if cfg.max_arena_bytes == usize::MAX {
                    Json::Null
                } else {
                    Json::num(cfg.max_arena_bytes as u64)
                },
            ),
            (
                "max_scratch_bytes".into(),
                if cfg.max_scratch_bytes == usize::MAX {
                    Json::Null
                } else {
                    Json::num(cfg.max_scratch_bytes as u64)
                },
            ),
            ("fault".into(), Json::Str(cfg.fault.spec())),
            (
                "capture_scheduler".into(),
                Json::Bool(cfg.capture_scheduler),
            ),
        ]);
        let phases = Json::Obj(vec![
            (
                "sample_sort_s".into(),
                Json::Num(self.t_sample_sort.as_secs_f64()),
            ),
            (
                "construct_buckets_s".into(),
                Json::Num(self.t_construct_buckets.as_secs_f64()),
            ),
            ("scatter_s".into(), Json::Num(self.t_scatter.as_secs_f64())),
            (
                "local_sort_s".into(),
                Json::Num(self.t_local_sort.as_secs_f64()),
            ),
            ("pack_s".into(), Json::Num(self.t_pack.as_secs_f64())),
            ("total_s".into(), Json::Num(self.total().as_secs_f64())),
        ]);
        let counters = Json::Obj(vec![
            ("sample_size".into(), Json::num(self.sample_size as u64)),
            ("heavy_keys".into(), Json::num(self.heavy_keys as u64)),
            ("light_buckets".into(), Json::num(self.light_buckets as u64)),
            ("heavy_records".into(), Json::num(self.heavy_records as u64)),
            ("light_records".into(), Json::num(self.light_records as u64)),
            ("total_slots".into(), Json::num(self.total_slots as u64)),
            ("retries".into(), Json::num(self.retries as u64)),
            (
                "blocks_flushed".into(),
                Json::num(self.blocks_flushed as u64),
            ),
            (
                "slab_overflows".into(),
                Json::num(self.slab_overflows as u64),
            ),
            (
                "fallback_records".into(),
                Json::num(self.fallback_records as u64),
            ),
            (
                "inplace_cycles".into(),
                Json::num(self.inplace_cycles as u64),
            ),
            (
                "swap_buffer_flushes".into(),
                Json::num(self.swap_buffer_flushes as u64),
            ),
            (
                "scratch_bytes_held".into(),
                Json::num(self.scratch_bytes_held as u64),
            ),
            (
                "scratch_reuse_hits".into(),
                Json::num(self.scratch_reuse_hits as u64),
            ),
            ("scratch_grows".into(), Json::num(self.scratch_grows as u64)),
        ]);
        let hist_json =
            |h: &crate::obs::Hist| Json::Arr(h.buckets.iter().map(|&b| Json::num(b)).collect());
        let t = &self.telemetry;
        let telemetry = Json::Obj(vec![
            ("level".into(), Json::str(t.level.as_str())),
            ("cas_attempts".into(), Json::num(t.cas_attempts)),
            ("cas_failures".into(), Json::num(t.cas_failures)),
            ("records_placed".into(), Json::num(t.records_placed)),
            ("probe_hist".into(), hist_json(&t.probe_hist)),
            (
                "light_occupancy_hist".into(),
                hist_json(&t.light_occupancy_hist),
            ),
            (
                "retry_causes".into(),
                Json::Arr(
                    t.retry_causes
                        .iter()
                        .map(|r| {
                            Json::Obj(vec![
                                ("attempt".into(), Json::num(r.attempt as u64)),
                                ("bucket".into(), Json::num(r.bucket as u64)),
                                ("heavy".into(), Json::Bool(r.heavy)),
                                ("allocated".into(), Json::num(r.allocated as u64)),
                                ("observed".into(), Json::num(r.observed as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        let outcome = Json::Obj(vec![
            (
                "policy".into(),
                Json::str(self.config.overflow_policy.as_str()),
            ),
            ("degraded".into(), Json::Bool(self.degraded)),
            (
                "reason".into(),
                match self.degrade_reason {
                    Some(r) => Json::str(r.as_str()),
                    None => Json::Null,
                },
            ),
            (
                "faults_injected".into(),
                Json::num(self.faults_injected as u64),
            ),
        ]);
        let spans = Json::Arr(
            self.spans
                .iter()
                .map(|s| {
                    Json::Obj(vec![
                        ("name".into(), Json::str(s.name)),
                        ("start_us".into(), Json::num(s.start_us)),
                        ("end_us".into(), Json::num(s.end_us)),
                        (
                            "worker".into(),
                            match s.worker {
                                Some(w) => Json::num(w as u64),
                                None => Json::Null,
                            },
                        ),
                    ])
                })
                .collect(),
        );
        let scheduler = match &self.scheduler {
            Some(s) => scheduler_json(s),
            None => Json::Null,
        };
        let service = match &self.service {
            Some(s) => service_json(s),
            None => Json::Null,
        };
        Json::Obj(vec![
            ("schema".into(), Json::str("semisort-stats-v2")),
            ("n".into(), Json::num(self.n as u64)),
            ("config".into(), config),
            ("phases".into(), phases),
            ("counters".into(), counters),
            ("outcome".into(), outcome),
            ("telemetry".into(), telemetry),
            ("spans".into(), spans),
            ("scheduler".into(), scheduler),
            ("service".into(), service),
        ])
    }
}

/// The `"service"` section: the `semisortd` degradation-ladder tallies
/// (`null` for library runs; see [`ServiceSnapshot`]).
fn service_json(s: &ServiceSnapshot) -> Json {
    Json::Obj(vec![
        ("admitted".into(), Json::num(s.admitted)),
        ("completed".into(), Json::num(s.completed)),
        ("shed_overload".into(), Json::num(s.shed_overload)),
        ("deadline_exceeded".into(), Json::num(s.deadline_exceeded)),
        ("cancelled".into(), Json::num(s.cancelled)),
        ("panics_contained".into(), Json::num(s.panics_contained)),
        ("shards_rebuilt".into(), Json::num(s.shards_rebuilt)),
        ("drains".into(), Json::num(s.drains)),
    ])
}

/// The `"scheduler"` section: counters only (ring events stay in memory
/// for the trace exporter; see the module docs).
fn scheduler_json(s: &SchedulerStats) -> Json {
    let totals = Json::Obj(vec![
        ("pushes".into(), Json::num(s.total_pushes())),
        ("pops".into(), Json::num(s.total_pops())),
        ("steals".into(), Json::num(s.total_steals())),
        ("steal_attempts".into(), Json::num(s.total_steal_attempts())),
        ("parks".into(), Json::num(s.total_parks())),
        ("park_time_us".into(), Json::num(s.total_park_time_us())),
        (
            "inline_degrades".into(),
            Json::num(s.total_inline_degrades()),
        ),
    ]);
    let workers = Json::Arr(
        s.workers
            .iter()
            .map(|w| {
                Json::Obj(vec![
                    ("pushes".into(), Json::num(w.pushes)),
                    ("pops".into(), Json::num(w.pops)),
                    ("inline_degrades".into(), Json::num(w.inline_degrades)),
                    ("steal_attempts".into(), Json::num(w.steal_attempts)),
                    ("steal_retries".into(), Json::num(w.steal_retries)),
                    (
                        "steals_from".into(),
                        Json::Arr(w.steals_from.iter().map(|&v| Json::num(v)).collect()),
                    ),
                    ("parks".into(), Json::num(w.parks)),
                    ("park_time_us".into(), Json::num(w.park_time_us)),
                    ("injector_pops".into(), Json::num(w.injector_pops)),
                    ("jobs_executed".into(), Json::num(w.jobs_executed)),
                    ("events_total".into(), Json::num(w.events_total)),
                ])
            })
            .collect(),
    );
    Json::Obj(vec![
        ("num_threads".into(), Json::num(s.num_threads as u64)),
        (
            "injector_submissions".into(),
            Json::num(s.injector_submissions),
        ),
        ("totals".into(), totals),
        ("workers".into(), workers),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_phases() {
        let s = SemisortStats {
            t_sample_sort: Duration::from_millis(1),
            t_construct_buckets: Duration::from_millis(2),
            t_scatter: Duration::from_millis(3),
            t_local_sort: Duration::from_millis(4),
            t_pack: Duration::from_millis(5),
            ..Default::default()
        };
        assert_eq!(s.total(), Duration::from_millis(15));
    }

    #[test]
    fn default_counters_are_zero() {
        let s = SemisortStats::default();
        assert_eq!(s.light_records, 0);
        assert_eq!(s.blocks_flushed, 0);
        assert_eq!(s.slab_overflows, 0);
        assert_eq!(s.fallback_records, 0);
        assert_eq!(s.inplace_cycles, 0);
        assert_eq!(s.swap_buffer_flushes, 0);
    }

    #[test]
    fn heavy_fraction_edge_cases() {
        let mut s = SemisortStats::default();
        assert_eq!(s.heavy_fraction_pct(), 0.0);
        s.n = 200;
        s.heavy_records = 50;
        assert!((s.heavy_fraction_pct() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn to_json_has_all_schema_sections() {
        let s = SemisortStats {
            n: 10,
            t_scatter: Duration::from_millis(3),
            heavy_records: 4,
            light_records: 6,
            ..Default::default()
        };
        let j = s.to_json();
        let text = j.to_string();
        let back = Json::parse(&text).expect("self-parse");
        assert_eq!(
            back.get("schema").and_then(Json::as_str),
            Some("semisort-stats-v2")
        );
        for section in [
            "config",
            "phases",
            "counters",
            "outcome",
            "telemetry",
            "spans",
            "scheduler",
            "service",
        ] {
            assert!(back.get(section).is_some(), "missing {section}");
        }
        // No pool ran for this synthetic stats object, and it never went
        // through a server.
        assert_eq!(back.get("scheduler"), Some(&Json::Null));
        assert_eq!(back.get("service"), Some(&Json::Null));
        let phases = back.get("phases").unwrap();
        for key in [
            "sample_sort_s",
            "construct_buckets_s",
            "scatter_s",
            "local_sort_s",
            "pack_s",
        ] {
            assert!(phases.get(key).is_some(), "missing phase {key}");
        }
        assert_eq!(phases.get("scatter_s").and_then(Json::as_f64), Some(0.003));
    }

    #[test]
    fn outcome_section_reflects_degradation() {
        let clean = SemisortStats::default().to_json().to_string();
        let clean = Json::parse(&clean).unwrap();
        let outcome = clean.get("outcome").expect("outcome section");
        assert_eq!(outcome.get("degraded"), Some(&Json::Bool(false)));
        assert_eq!(outcome.get("reason"), Some(&Json::Null));
        assert_eq!(
            outcome.get("policy").and_then(Json::as_str),
            Some("fallback")
        );

        let degraded = SemisortStats {
            degraded: true,
            degrade_reason: Some(DegradeReason::RetriesExhausted),
            faults_injected: 2,
            ..Default::default()
        }
        .to_json()
        .to_string();
        let degraded = Json::parse(&degraded).unwrap();
        let outcome = degraded.get("outcome").unwrap();
        assert_eq!(outcome.get("degraded"), Some(&Json::Bool(true)));
        assert_eq!(
            outcome.get("reason").and_then(Json::as_str),
            Some("retries-exhausted")
        );
        assert_eq!(
            outcome.get("faults_injected").and_then(Json::as_f64),
            Some(2.0)
        );
        let cfg = degraded.get("config").unwrap();
        assert_eq!(cfg.get("max_arena_bytes"), Some(&Json::Null));
        assert_eq!(cfg.get("fault").and_then(Json::as_str), Some("none"));
    }

    #[test]
    fn scheduler_and_spans_serialize_when_present() {
        use rayon::trace::WorkerStats;
        let mut w0 = WorkerStats {
            pushes: 10,
            pops: 7,
            steal_attempts: 5,
            steals_from: vec![0, 0],
            parks: 2,
            park_time_us: 900,
            ..Default::default()
        };
        w0.steals_from = vec![0, 3];
        let s = SemisortStats {
            n: 10,
            spans: vec![SpanRecord {
                name: "scatter",
                start_us: 100,
                end_us: 350,
                worker: Some(1),
            }],
            scheduler: Some(SchedulerStats {
                num_threads: 2,
                injector_submissions: 1,
                workers: vec![w0, WorkerStats::default()],
            }),
            ..Default::default()
        };
        let back = Json::parse(&s.to_json().to_string()).expect("self-parse");
        let spans = back.get("spans").and_then(Json::as_arr).unwrap();
        let span = &spans[0];
        assert_eq!(span.get("name").and_then(Json::as_str), Some("scatter"));
        assert_eq!(span.get("start_us").and_then(Json::as_u64), Some(100));
        assert_eq!(span.get("worker").and_then(Json::as_u64), Some(1));
        let sched = back.get("scheduler").unwrap();
        assert_eq!(sched.get("num_threads").and_then(Json::as_u64), Some(2));
        let totals = sched.get("totals").unwrap();
        assert_eq!(totals.get("steals").and_then(Json::as_u64), Some(3));
        assert_eq!(totals.get("pushes").and_then(Json::as_u64), Some(10));
        assert_eq!(totals.get("park_time_us").and_then(Json::as_u64), Some(900));
        let workers = sched.get("workers").and_then(Json::as_arr).unwrap();
        let w = &workers[0];
        assert_eq!(w.get("pops").and_then(Json::as_u64), Some(7));
        let steals_from = w.get("steals_from").and_then(Json::as_arr).unwrap();
        assert_eq!(steals_from[1].as_u64(), Some(3));
    }

    #[test]
    fn service_section_serializes_when_present() {
        let s = SemisortStats {
            service: Some(ServiceSnapshot {
                admitted: 100,
                completed: 93,
                shed_overload: 4,
                deadline_exceeded: 2,
                cancelled: 1,
                panics_contained: 3,
                shards_rebuilt: 3,
                drains: 1,
            }),
            ..Default::default()
        };
        let back = Json::parse(&s.to_json().to_string()).expect("self-parse");
        let svc = back.get("service").expect("service section");
        assert_eq!(svc.get("admitted").and_then(Json::as_u64), Some(100));
        assert_eq!(svc.get("completed").and_then(Json::as_u64), Some(93));
        assert_eq!(svc.get("shed_overload").and_then(Json::as_u64), Some(4));
        assert_eq!(svc.get("deadline_exceeded").and_then(Json::as_u64), Some(2));
        assert_eq!(svc.get("cancelled").and_then(Json::as_u64), Some(1));
        assert_eq!(svc.get("panics_contained").and_then(Json::as_u64), Some(3));
        assert_eq!(svc.get("shards_rebuilt").and_then(Json::as_u64), Some(3));
        assert_eq!(svc.get("drains").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn phases_are_in_paper_order() {
        let s = SemisortStats::default();
        let names: Vec<&str> = s.phases().iter().map(|p| p.0).collect();
        assert_eq!(
            names,
            vec![
                "sample and sort",
                "construct buckets",
                "scatter",
                "local sort",
                "pack"
            ]
        );
    }
}
