//! Per-phase instrumentation.
//!
//! The paper's Tables 2–3 and Figure 3 break the running time into five
//! phases: "sample and sort", "construct buckets", "scatter", "local sort"
//! and "pack". [`SemisortStats`] carries exactly that breakdown, plus the
//! structural counters (sample size, heavy keys, slot usage, retries) that
//! the consistency experiments in §5.2 report on, plus the merged
//! [`Telemetry`] of the run (CAS attempts, probe-length histogram, retry
//! causes — see [`crate::obs`]).
//!
//! # JSON schema (`semisort-stats-v1`)
//!
//! [`SemisortStats::to_json`] serializes one run as a single JSON object:
//!
//! ```json
//! {
//!   "schema": "semisort-stats-v1",
//!   "n": 1000000,
//!   "config": {
//!     "sample_shift": 4, "heavy_threshold": 16, "light_bucket_log2": 16,
//!     "alpha": 1.1, "c": 1.25, "merge_light_buckets": true,
//!     "probe_strategy": "linear", "scatter_strategy": "random-cas",
//!     "scatter_block": 16, "blocked_tail_log2": 3,
//!     "local_sort_algo": "std-unstable", "seed": 42,
//!     "seq_threshold": 8192, "max_retries": 3, "telemetry": "deep",
//!     "overflow_policy": "fallback", "max_arena_bytes": null,
//!     "max_scratch_bytes": null, "fault": "none"
//!   },
//!   "phases": {
//!     "sample_sort_s": 0.01, "construct_buckets_s": 0.001,
//!     "scatter_s": 0.05, "local_sort_s": 0.02, "pack_s": 0.01,
//!     "total_s": 0.091
//!   },
//!   "counters": {
//!     "sample_size": 62500, "heavy_keys": 5, "light_buckets": 4096,
//!     "heavy_records": 500000, "light_records": 500000,
//!     "total_slots": 1300000, "retries": 0, "blocks_flushed": 0,
//!     "slab_overflows": 0, "fallback_records": 0,
//!     "scratch_bytes_held": 20800000, "scratch_reuse_hits": 1,
//!     "scratch_grows": 0
//!   },
//!   "outcome": {
//!     "policy": "fallback", "degraded": false, "reason": null,
//!     "faults_injected": 0
//!   },
//!   "telemetry": {
//!     "level": "deep", "cas_attempts": 1010000, "cas_failures": 10000,
//!     "records_placed": 1000000,
//!     "probe_hist": [990000, 8000, ...],       // 32 power-of-two buckets
//!     "light_occupancy_hist": [0, 12, ...],    // 32 power-of-two buckets
//!     "retry_causes": [
//!       {"attempt": 1, "bucket": 17, "heavy": false,
//!        "allocated": 64, "observed": 65}
//!     ]
//!   }
//! }
//! ```
//!
//! Histograms are arrays of [`crate::obs::HIST_BUCKETS`] counts; bucket 0
//! holds value 0, bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`. The
//! `config` member echoes the configuration the run *started* with (Las
//! Vegas retries grow `alpha` internally; `retries`/`retry_causes` record
//! that). The bench harness wraps this object in a run record that adds
//! `git`, `ts_unix`, `bin`, `threads` and wall time — see
//! `bench::trajectory`.

use std::time::Duration;

use crate::config::{LocalSortAlgo, ProbeStrategy, ScatterStrategy, SemisortConfig};
use crate::error::DegradeReason;
use crate::json::Json;
use crate::obs::Telemetry;

/// Timing and structural telemetry for one semisort run.
#[derive(Clone, Debug, Default)]
pub struct SemisortStats {
    /// Input size n.
    pub n: usize,
    /// Phase 1: sampling and sorting the sample.
    pub t_sample_sort: Duration,
    /// Phase 2: heavy/light classification and bucket allocation.
    pub t_construct_buckets: Duration,
    /// Phase 3: the CAS scatter.
    pub t_scatter: Duration,
    /// Phase 4: local sort of light buckets.
    pub t_local_sort: Duration,
    /// Phase 5: packing into the output.
    pub t_pack: Duration,
    /// Size of the sample |S|.
    pub sample_size: usize,
    /// Number of heavy keys (buckets).
    pub heavy_keys: usize,
    /// Number of light buckets after merging.
    pub light_buckets: usize,
    /// Records routed to heavy buckets.
    pub heavy_records: usize,
    /// Records not routed to heavy buckets (light buckets, or the sort
    /// fallback's output). `heavy_records + light_records == n` always.
    pub light_records: usize,
    /// Total slots allocated (Lemma 3.5 says the expected total is Θ(n)).
    pub total_slots: usize,
    /// Las Vegas restarts that were needed (almost always 0).
    pub retries: u32,
    /// Blocked scatter only: buffer flushes that reserved slab space with a
    /// single `fetch_add` (0 under `ScatterStrategy::RandomCas`).
    pub blocks_flushed: usize,
    /// Blocked scatter only: flushes whose slab reservation overflowed into
    /// the CAS tail.
    pub slab_overflows: usize,
    /// Blocked scatter only: records placed by the per-record CAS fallback.
    pub fallback_records: usize,
    /// Bytes of scratch the [`ScratchPool`](crate::pool::ScratchPool)
    /// retains after this call (post `max_scratch_bytes` enforcement).
    /// One-shot entry points drop the pool on return, so this reports what
    /// *was* held; engine calls report what stays warm for the next call.
    pub scratch_bytes_held: usize,
    /// Arena leases this call satisfied from already-held pool memory (see
    /// [`ScratchCounters`](crate::obs::ScratchCounters)). Steady-state
    /// engine reuse shows `scratch_grows == 0` with this nonzero.
    pub scratch_reuse_hits: u32,
    /// Arena leases this call satisfied by (re)allocating pool memory.
    /// First call on an engine: ≥ 1; steady state at the high-water mark: 0.
    pub scratch_grows: u32,
    /// Whether the run degraded to the comparison-sort fallback because the
    /// Las Vegas machinery gave up (retries exhausted, arena budget
    /// exceeded, or allocation failed) under
    /// [`OverflowPolicy::Fallback`](crate::config::OverflowPolicy::Fallback).
    /// The by-construction fallbacks
    /// (`seq_threshold`-sized inputs, reserved-key screening) do **not**
    /// set this: they are routing, not failure.
    pub degraded: bool,
    /// Why the run degraded (`None` unless `degraded`).
    pub degrade_reason: Option<DegradeReason>,
    /// Faults the run's [`crate::fault::FaultPlan`] armed across all
    /// attempts (0 in production).
    pub faults_injected: u32,
    /// The configuration the run started with (echoed into the JSON export
    /// so a stats file is self-describing).
    pub config: SemisortConfig,
    /// Merged fine-grained telemetry (empty when the run's
    /// [`crate::obs::TelemetryLevel`] was `Off`, except `retry_causes`).
    pub telemetry: Telemetry,
}

impl SemisortStats {
    /// Total wall time across the five phases.
    pub fn total(&self) -> Duration {
        self.t_sample_sort
            + self.t_construct_buckets
            + self.t_scatter
            + self.t_local_sort
            + self.t_pack
    }

    /// Percentage of input records routed to heavy buckets — the
    /// "% Heavy key records" row of Table 1 / Figure 1.
    pub fn heavy_fraction_pct(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            100.0 * self.heavy_records as f64 / self.n as f64
        }
    }

    /// Slot-array blowup factor (allocated slots / n); Lemma 3.5 bounds its
    /// expectation by a constant.
    pub fn space_blowup(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.total_slots as f64 / self.n as f64
        }
    }

    /// The five phase durations with their paper-table labels, in table order.
    pub fn phases(&self) -> [(&'static str, Duration); 5] {
        [
            ("sample and sort", self.t_sample_sort),
            ("construct buckets", self.t_construct_buckets),
            ("scatter", self.t_scatter),
            ("local sort", self.t_local_sort),
            ("pack", self.t_pack),
        ]
    }

    /// Serialize this run as a [`Json`] object following the
    /// `semisort-stats-v1` schema documented at the top of this module.
    pub fn to_json(&self) -> Json {
        let cfg = &self.config;
        let config = Json::Obj(vec![
            ("sample_shift".into(), Json::num(cfg.sample_shift as u64)),
            (
                "heavy_threshold".into(),
                Json::num(cfg.heavy_threshold as u64),
            ),
            (
                "light_bucket_log2".into(),
                Json::num(cfg.light_bucket_log2 as u64),
            ),
            ("alpha".into(), Json::Num(cfg.alpha)),
            ("c".into(), Json::Num(cfg.c)),
            (
                "merge_light_buckets".into(),
                Json::Bool(cfg.merge_light_buckets),
            ),
            (
                "probe_strategy".into(),
                Json::str(match cfg.probe_strategy {
                    ProbeStrategy::Linear => "linear",
                    ProbeStrategy::Random => "random",
                }),
            ),
            (
                "scatter_strategy".into(),
                Json::str(match cfg.scatter_strategy {
                    ScatterStrategy::RandomCas => "random-cas",
                    ScatterStrategy::Blocked => "blocked",
                }),
            ),
            ("scatter_block".into(), Json::num(cfg.scatter_block as u64)),
            (
                "blocked_tail_log2".into(),
                Json::num(cfg.blocked_tail_log2 as u64),
            ),
            (
                "local_sort_algo".into(),
                Json::str(match cfg.local_sort_algo {
                    LocalSortAlgo::StdUnstable => "std-unstable",
                    LocalSortAlgo::Counting => "counting",
                    LocalSortAlgo::StdStable => "std-stable",
                }),
            ),
            ("seed".into(), Json::num(cfg.seed)),
            ("seq_threshold".into(), Json::num(cfg.seq_threshold as u64)),
            ("max_retries".into(), Json::num(cfg.max_retries as u64)),
            ("telemetry".into(), Json::str(cfg.telemetry.as_str())),
            (
                "overflow_policy".into(),
                Json::str(cfg.overflow_policy.as_str()),
            ),
            (
                "max_arena_bytes".into(),
                if cfg.max_arena_bytes == usize::MAX {
                    Json::Null
                } else {
                    Json::num(cfg.max_arena_bytes as u64)
                },
            ),
            (
                "max_scratch_bytes".into(),
                if cfg.max_scratch_bytes == usize::MAX {
                    Json::Null
                } else {
                    Json::num(cfg.max_scratch_bytes as u64)
                },
            ),
            ("fault".into(), Json::Str(cfg.fault.spec())),
        ]);
        let phases = Json::Obj(vec![
            (
                "sample_sort_s".into(),
                Json::Num(self.t_sample_sort.as_secs_f64()),
            ),
            (
                "construct_buckets_s".into(),
                Json::Num(self.t_construct_buckets.as_secs_f64()),
            ),
            ("scatter_s".into(), Json::Num(self.t_scatter.as_secs_f64())),
            (
                "local_sort_s".into(),
                Json::Num(self.t_local_sort.as_secs_f64()),
            ),
            ("pack_s".into(), Json::Num(self.t_pack.as_secs_f64())),
            ("total_s".into(), Json::Num(self.total().as_secs_f64())),
        ]);
        let counters = Json::Obj(vec![
            ("sample_size".into(), Json::num(self.sample_size as u64)),
            ("heavy_keys".into(), Json::num(self.heavy_keys as u64)),
            ("light_buckets".into(), Json::num(self.light_buckets as u64)),
            ("heavy_records".into(), Json::num(self.heavy_records as u64)),
            ("light_records".into(), Json::num(self.light_records as u64)),
            ("total_slots".into(), Json::num(self.total_slots as u64)),
            ("retries".into(), Json::num(self.retries as u64)),
            (
                "blocks_flushed".into(),
                Json::num(self.blocks_flushed as u64),
            ),
            (
                "slab_overflows".into(),
                Json::num(self.slab_overflows as u64),
            ),
            (
                "fallback_records".into(),
                Json::num(self.fallback_records as u64),
            ),
            (
                "scratch_bytes_held".into(),
                Json::num(self.scratch_bytes_held as u64),
            ),
            (
                "scratch_reuse_hits".into(),
                Json::num(self.scratch_reuse_hits as u64),
            ),
            ("scratch_grows".into(), Json::num(self.scratch_grows as u64)),
        ]);
        let hist_json =
            |h: &crate::obs::Hist| Json::Arr(h.buckets.iter().map(|&b| Json::num(b)).collect());
        let t = &self.telemetry;
        let telemetry = Json::Obj(vec![
            ("level".into(), Json::str(t.level.as_str())),
            ("cas_attempts".into(), Json::num(t.cas_attempts)),
            ("cas_failures".into(), Json::num(t.cas_failures)),
            ("records_placed".into(), Json::num(t.records_placed)),
            ("probe_hist".into(), hist_json(&t.probe_hist)),
            (
                "light_occupancy_hist".into(),
                hist_json(&t.light_occupancy_hist),
            ),
            (
                "retry_causes".into(),
                Json::Arr(
                    t.retry_causes
                        .iter()
                        .map(|r| {
                            Json::Obj(vec![
                                ("attempt".into(), Json::num(r.attempt as u64)),
                                ("bucket".into(), Json::num(r.bucket as u64)),
                                ("heavy".into(), Json::Bool(r.heavy)),
                                ("allocated".into(), Json::num(r.allocated as u64)),
                                ("observed".into(), Json::num(r.observed as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        let outcome = Json::Obj(vec![
            (
                "policy".into(),
                Json::str(self.config.overflow_policy.as_str()),
            ),
            ("degraded".into(), Json::Bool(self.degraded)),
            (
                "reason".into(),
                match self.degrade_reason {
                    Some(r) => Json::str(r.as_str()),
                    None => Json::Null,
                },
            ),
            (
                "faults_injected".into(),
                Json::num(self.faults_injected as u64),
            ),
        ]);
        Json::Obj(vec![
            ("schema".into(), Json::str("semisort-stats-v1")),
            ("n".into(), Json::num(self.n as u64)),
            ("config".into(), config),
            ("phases".into(), phases),
            ("counters".into(), counters),
            ("outcome".into(), outcome),
            ("telemetry".into(), telemetry),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_phases() {
        let s = SemisortStats {
            t_sample_sort: Duration::from_millis(1),
            t_construct_buckets: Duration::from_millis(2),
            t_scatter: Duration::from_millis(3),
            t_local_sort: Duration::from_millis(4),
            t_pack: Duration::from_millis(5),
            ..Default::default()
        };
        assert_eq!(s.total(), Duration::from_millis(15));
    }

    #[test]
    fn default_counters_are_zero() {
        let s = SemisortStats::default();
        assert_eq!(s.light_records, 0);
        assert_eq!(s.blocks_flushed, 0);
        assert_eq!(s.slab_overflows, 0);
        assert_eq!(s.fallback_records, 0);
    }

    #[test]
    fn heavy_fraction_edge_cases() {
        let mut s = SemisortStats::default();
        assert_eq!(s.heavy_fraction_pct(), 0.0);
        s.n = 200;
        s.heavy_records = 50;
        assert!((s.heavy_fraction_pct() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn to_json_has_all_schema_sections() {
        let s = SemisortStats {
            n: 10,
            t_scatter: Duration::from_millis(3),
            heavy_records: 4,
            light_records: 6,
            ..Default::default()
        };
        let j = s.to_json();
        let text = j.to_string();
        let back = Json::parse(&text).expect("self-parse");
        assert_eq!(
            back.get("schema").and_then(Json::as_str),
            Some("semisort-stats-v1")
        );
        for section in ["config", "phases", "counters", "outcome", "telemetry"] {
            assert!(back.get(section).is_some(), "missing {section}");
        }
        let phases = back.get("phases").unwrap();
        for key in [
            "sample_sort_s",
            "construct_buckets_s",
            "scatter_s",
            "local_sort_s",
            "pack_s",
        ] {
            assert!(phases.get(key).is_some(), "missing phase {key}");
        }
        assert_eq!(phases.get("scatter_s").and_then(Json::as_f64), Some(0.003));
    }

    #[test]
    fn outcome_section_reflects_degradation() {
        let clean = SemisortStats::default().to_json().to_string();
        let clean = Json::parse(&clean).unwrap();
        let outcome = clean.get("outcome").expect("outcome section");
        assert_eq!(outcome.get("degraded"), Some(&Json::Bool(false)));
        assert_eq!(outcome.get("reason"), Some(&Json::Null));
        assert_eq!(
            outcome.get("policy").and_then(Json::as_str),
            Some("fallback")
        );

        let degraded = SemisortStats {
            degraded: true,
            degrade_reason: Some(DegradeReason::RetriesExhausted),
            faults_injected: 2,
            ..Default::default()
        }
        .to_json()
        .to_string();
        let degraded = Json::parse(&degraded).unwrap();
        let outcome = degraded.get("outcome").unwrap();
        assert_eq!(outcome.get("degraded"), Some(&Json::Bool(true)));
        assert_eq!(
            outcome.get("reason").and_then(Json::as_str),
            Some("retries-exhausted")
        );
        assert_eq!(
            outcome.get("faults_injected").and_then(Json::as_f64),
            Some(2.0)
        );
        let cfg = degraded.get("config").unwrap();
        assert_eq!(cfg.get("max_arena_bytes"), Some(&Json::Null));
        assert_eq!(cfg.get("fault").and_then(Json::as_str), Some("none"));
    }

    #[test]
    fn phases_are_in_paper_order() {
        let s = SemisortStats::default();
        let names: Vec<&str> = s.phases().iter().map(|p| p.0).collect();
        assert_eq!(
            names,
            vec![
                "sample and sort",
                "construct buckets",
                "scatter",
                "local sort",
                "pack"
            ]
        );
    }
}
