//! Per-phase instrumentation.
//!
//! The paper's Tables 2–3 and Figure 3 break the running time into five
//! phases: "sample and sort", "construct buckets", "scatter", "local sort"
//! and "pack". [`SemisortStats`] carries exactly that breakdown, plus the
//! structural counters (sample size, heavy keys, slot usage, retries) that
//! the consistency experiments in §5.2 report on.

use std::time::Duration;

/// Timing and structural telemetry for one semisort run.
#[derive(Clone, Debug, Default)]
pub struct SemisortStats {
    /// Input size n.
    pub n: usize,
    /// Phase 1: sampling and sorting the sample.
    pub t_sample_sort: Duration,
    /// Phase 2: heavy/light classification and bucket allocation.
    pub t_construct_buckets: Duration,
    /// Phase 3: the CAS scatter.
    pub t_scatter: Duration,
    /// Phase 4: local sort of light buckets.
    pub t_local_sort: Duration,
    /// Phase 5: packing into the output.
    pub t_pack: Duration,
    /// Size of the sample |S|.
    pub sample_size: usize,
    /// Number of heavy keys (buckets).
    pub heavy_keys: usize,
    /// Number of light buckets after merging.
    pub light_buckets: usize,
    /// Records routed to heavy buckets.
    pub heavy_records: usize,
    /// Records not routed to heavy buckets (light buckets, or the sort
    /// fallback's output). `heavy_records + light_records == n` always.
    pub light_records: usize,
    /// Total slots allocated (Lemma 3.5 says the expected total is Θ(n)).
    pub total_slots: usize,
    /// Las Vegas restarts that were needed (almost always 0).
    pub retries: u32,
    /// Blocked scatter only: buffer flushes that reserved slab space with a
    /// single `fetch_add` (0 under `ScatterStrategy::RandomCas`).
    pub blocks_flushed: usize,
    /// Blocked scatter only: flushes whose slab reservation overflowed into
    /// the CAS tail.
    pub slab_overflows: usize,
    /// Blocked scatter only: records placed by the per-record CAS fallback.
    pub fallback_records: usize,
}

impl SemisortStats {
    /// Total wall time across the five phases.
    pub fn total(&self) -> Duration {
        self.t_sample_sort
            + self.t_construct_buckets
            + self.t_scatter
            + self.t_local_sort
            + self.t_pack
    }

    /// Percentage of input records routed to heavy buckets — the
    /// "% Heavy key records" row of Table 1 / Figure 1.
    pub fn heavy_fraction_pct(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            100.0 * self.heavy_records as f64 / self.n as f64
        }
    }

    /// Slot-array blowup factor (allocated slots / n); Lemma 3.5 bounds its
    /// expectation by a constant.
    pub fn space_blowup(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.total_slots as f64 / self.n as f64
        }
    }

    /// The five phase durations with their paper-table labels, in table order.
    pub fn phases(&self) -> [(&'static str, Duration); 5] {
        [
            ("sample and sort", self.t_sample_sort),
            ("construct buckets", self.t_construct_buckets),
            ("scatter", self.t_scatter),
            ("local sort", self.t_local_sort),
            ("pack", self.t_pack),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_phases() {
        let s = SemisortStats {
            t_sample_sort: Duration::from_millis(1),
            t_construct_buckets: Duration::from_millis(2),
            t_scatter: Duration::from_millis(3),
            t_local_sort: Duration::from_millis(4),
            t_pack: Duration::from_millis(5),
            ..Default::default()
        };
        assert_eq!(s.total(), Duration::from_millis(15));
    }

    #[test]
    fn default_counters_are_zero() {
        let s = SemisortStats::default();
        assert_eq!(s.light_records, 0);
        assert_eq!(s.blocks_flushed, 0);
        assert_eq!(s.slab_overflows, 0);
        assert_eq!(s.fallback_records, 0);
    }

    #[test]
    fn heavy_fraction_edge_cases() {
        let mut s = SemisortStats::default();
        assert_eq!(s.heavy_fraction_pct(), 0.0);
        s.n = 200;
        s.heavy_records = 50;
        assert!((s.heavy_fraction_pct() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn phases_are_in_paper_order() {
        let s = SemisortStats::default();
        let names: Vec<&str> = s.phases().iter().map(|p| p.0).collect();
        assert_eq!(
            names,
            vec![
                "sample and sort",
                "construct buckets",
                "scatter",
                "local sort",
                "pack"
            ]
        );
    }
}
