//! Phase 3 (in-place variant): permute records into their bucket regions
//! without the scatter arena.
//!
//! The CAS and blocked scatters trade memory for simplicity: both write
//! through a slot array of `α · n` slots (~70 MB at n = 10⁶ for
//! `(u64, u64)` records), which the pack phase then compacts. This module
//! instead computes **exact** bucket boundaries with a counting pass and
//! permutes the records *within the output buffer itself*, in the style of
//! in-place parallel shuffling / IPS⁴o-like block permutation (see
//! PAPERS.md, arXiv 2302.03317): scratch drops to
//! O(buckets + workers · swap_buffer).
//!
//! # The cursor-claim protocol
//!
//! After the counting pass, bucket `b` owns the region
//! `[starts[b], starts[b+1])` of the output buffer and an atomic claim
//! cursor `heads[b]` (initialized to `starts[b]`). The only shared-memory
//! operation in the whole permutation is
//! `heads[b].fetch_add(k)` (clamped to the region end): it hands the
//! calling worker *exclusive* ownership of `k` fresh positions. Claimed
//! positions are read once (displacing the records that sat there),
//! written once (with records that belong to `b`), and never touched
//! again. Because `fetch_add` ranges are disjoint and no data flows
//! through the cursors themselves, `Relaxed` ordering suffices — the
//! fork/join edges of the parallel loop publish everything else
//! (`tests/race_model.rs` holds the loom model of exactly this argument).
//!
//! Each worker runs a prime/flush/strand loop:
//!
//! - **prime**: claim up to `swap_buffer` positions from some unexhausted
//!   bucket `b`. Displaced records that already belong to `b` are left in
//!   place (fixed points are free — an all-equal-keys input permutes with
//!   zero writes); the rest are read in-hand and their positions become
//!   the worker's **private holes** in `b`, tracked as per-bucket linked
//!   lists of ranges.
//! - **classify**: in-hand records are pushed into per-destination-bucket
//!   swap buffers (the same sparse-slab `WorkerScratch` structure the
//!   blocked scatter uses, so memory scales with *touched* buckets).
//! - **flush**: a full buffer for bucket `d` first repays the worker's
//!   private `d`-holes (write-only), then claims fresh `d` positions
//!   (swap: read the displaced record in-hand, write the buffered one).
//!   In-hand count never grows during a flush, so the loop cannot run
//!   away.
//! - **strand**: if `d`'s region is exhausted and no private holes
//!   remain, the leftover buffered records are stranded — their holes
//!   belong to *other* workers.
//!
//! When every cursor is exhausted the workers drain their partial buffers
//! (repay-or-strand) and join. A short sequential **reconciliation** then
//! fills the surviving holes from the stranded records: per bucket,
//! `unfilled holes == stranded records` by conservation (every position is
//! claimed exactly once, read exactly once, written exactly once; every
//! record is read exactly once and written exactly once).
//!
//! Unlike the arena scatters this phase cannot overflow — the counting
//! pass is exact — so the Las Vegas retry machinery only ever triggers
//! here under fault injection.

use std::sync::atomic::{AtomicUsize, Ordering};

use rayon::prelude::*;

use crate::buckets::BucketPlan;
use crate::config::LocalSortAlgo;
use crate::fault::FaultClass;
use crate::local_sort::sort_records;
use crate::obs::{ObsSink, OverflowCapture, WorkerCell};
use crate::pool::{HoleRange, InPlaceScratch, InPlaceWorker, HOLES_EMPTY, HOLES_NONE};

/// Below this many records the counting pass runs as a single chunk.
const MIN_CHUNK: usize = 8192;

/// One counting-pass work item: a private matrix row plus the record chunk
/// that fills it.
type CountRow<'a, V> = (&'a mut [usize], &'a [(u64, V)]);

/// What one worker hands back: its stranded records, cycle count and swap
/// buffer flush count.
type WorkerYield<V> = (Vec<(u64, V)>, usize, usize);

/// What [`inplace_scatter`] reports back to the driver.
#[derive(Debug, Default)]
pub struct InPlaceOutcome {
    /// Records that landed in heavy buckets (bucket id < `num_heavy`).
    pub heavy_records: usize,
    /// True only under fault injection: the counting pass is exact, so a
    /// genuine overflow is impossible.
    pub overflowed: bool,
    /// `(bucket, allocated, observed)` for the injected overflow.
    pub overflow: Option<(u32, usize, usize)>,
    /// Prime claims issued — each starts one displacement chain (the
    /// in-place analogue of following a permutation cycle).
    pub cycles: usize,
    /// Swap-buffer flushes (full slabs plus end-of-run partial drains).
    pub flushes: usize,
    /// True when `InPlaceScratch::prepare` had to allocate (cold pool or
    /// a larger run); false when the pooled buffers were big enough — the
    /// driver folds this into the scratch reuse/grow counters.
    pub grew: bool,
}

/// A raw view of the output buffer that workers write through.
///
/// Plain `Copy` wrapper so the parallel closures can capture it by value;
/// all dereferences go through the unsafe [`SharedOut::read`] /
/// [`SharedOut::write`], whose safety rests on the cursor-claim protocol
/// (each index is owned by exactly one worker at a time).
struct SharedOut<V> {
    ptr: *mut (u64, V),
    #[cfg(debug_assertions)]
    len: usize,
}

impl<V> Clone for SharedOut<V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<V> Copy for SharedOut<V> {}
// SAFETY: the wrapper itself is just a pointer; cross-thread use is
// governed by the claim protocol documented on the methods.
unsafe impl<V: Send> Send for SharedOut<V> {}
// SAFETY: as above — &SharedOut only exposes the unsafe accessors.
unsafe impl<V: Send> Sync for SharedOut<V> {}

impl<V: Copy> SharedOut<V> {
    /// Read the record at `i`.
    ///
    /// # Safety
    ///
    /// `i` is in bounds and currently claimed by the calling worker (no
    /// other thread may access index `i` concurrently).
    #[inline]
    unsafe fn read(self, i: usize) -> (u64, V) {
        #[cfg(debug_assertions)]
        debug_assert!(i < self.len);
        // SAFETY: caller contract — exclusive claim over index i.
        unsafe { *self.ptr.add(i) }
    }

    /// Write the record at `i`.
    ///
    /// # Safety
    ///
    /// As [`SharedOut::read`]: `i` is in bounds and exclusively claimed.
    #[inline]
    unsafe fn write(self, i: usize, r: (u64, V)) {
        #[cfg(debug_assertions)]
        debug_assert!(i < self.len);
        // SAFETY: caller contract — exclusive claim over index i.
        unsafe { self.ptr.add(i).write(r) };
    }
}

/// Claim up to `want` fresh positions of the region ending at `end` from
/// `head`. Returns the claimed range `(pos, k)` or `None` when the region
/// is exhausted (a lost race counts as exhausted — the winner owns the
/// tail).
///
/// The `fetch_add` may overshoot `end`; overshoot positions are outside
/// every returned range, so they are never read or written by anyone, and
/// the preceding load bounds how far the cursor can run past the end.
#[inline]
fn claim(head: &AtomicUsize, end: usize, want: usize) -> Option<(usize, usize)> {
    // ORDERING: Relaxed exhaustion pre-check; a stale value only costs a
    // wasted fetch_add, which re-checks against `end` itself.
    // publishes-via: fork-join barrier (claimed slots are read next phase)
    if head.load(Ordering::Relaxed) >= end {
        return None;
    }
    // ORDERING: Relaxed cursor bump — uniqueness of the claimed range
    // comes from fetch_add atomicity alone; the records written into the
    // range are published to the next phase by the join, not this RMW.
    // publishes-via: fork-join barrier
    let pos = head.fetch_add(want, Ordering::Relaxed);
    if pos >= end {
        return None;
    }
    Some((pos, want.min(end - pos)))
}

/// Scratch-free estimate of the bytes the in-place scatter will hold for
/// this plan — the budget analogue of
/// [`arena_bytes`](crate::scatter::arena_bytes) for the arena strategies.
/// Counting matrix + bounds + cursors + per-worker bucket maps; the swap
/// slabs themselves scale with touched buckets and are excluded (they are
/// bounded by this term anyway).
pub fn inplace_bytes<V>(plan: &BucketPlan, workers: usize, swap_buffer: usize) -> usize {
    let b = plan.num_buckets();
    let usize_b = std::mem::size_of::<usize>();
    // counts (≤ 2·workers rows) + starts + heads + per-worker maps + one
    // slab per worker as a floor.
    b * usize_b * (2 * workers + 2)
        + workers * b * std::mem::size_of::<u32>() * 2
        + workers * swap_buffer * std::mem::size_of::<(u64, V)>()
}

/// Permute `records` into `out` so every record sits inside its bucket's
/// region (exact boundaries from the counting pass; region order is bucket
/// order, heavy then light). Record order *within* a region is
/// scheduling-dependent; [`sort_light_regions`] restores a deterministic
/// key sequence afterwards.
///
/// `swap_buffer` is [`ScatterConfig::swap_buffer`](crate::config::ScatterConfig::swap_buffer);
/// `forced_overflow` injects the Las Vegas failure that this strategy
/// cannot produce organically, keeping the chaos-test ladder uniform
/// across strategies.
pub fn inplace_scatter<V: Copy + Send + Sync>(
    records: &[(u64, V)],
    plan: &BucketPlan,
    out: &mut Vec<(u64, V)>,
    swap_buffer: usize,
    sink: &ObsSink,
    forced_overflow: Option<FaultClass>,
    scratch: &mut InPlaceScratch,
) -> InPlaceOutcome {
    let n = records.len();
    let num_buckets = plan.num_buckets();
    out.clear();
    out.extend_from_slice(records);
    if n == 0 || num_buckets == 0 {
        return InPlaceOutcome::default();
    }

    let workers = rayon::current_num_threads().max(1);
    let chunk = n.div_ceil(workers * 2).max(MIN_CHUNK);
    let num_chunks = n.div_ceil(chunk);
    let grew = scratch.prepare(num_buckets, num_chunks, workers);

    // Counting pass: one private row of the matrix per chunk, no sharing.
    {
        let mut rows: Vec<CountRow<'_, V>> = scratch
            .counts
            .chunks_mut(num_buckets)
            .zip(records.chunks(chunk))
            .collect();
        rows.par_iter_mut().for_each(|(row, chunk_recs)| {
            for &(key, _) in chunk_recs.iter() {
                row[plan.bucket_of(key) as usize] += 1;
            }
        });
    }

    // Exclusive prefix sum → exact region bounds. Never overflows: the
    // regions partition [0, n) exactly.
    let mut heavy_records = 0usize;
    let mut acc = 0usize;
    scratch.starts.push(0);
    for b in 0..num_buckets {
        let mut total = 0usize;
        for ci in 0..num_chunks {
            total += scratch.counts[ci * num_buckets + b];
        }
        if b < plan.num_heavy {
            heavy_records += total;
        } else {
            sink.record_occupancy(total as u64);
        }
        acc += total;
        scratch.starts.push(acc);
    }
    debug_assert_eq!(acc, n, "regions must partition the input");

    // Fault injection: the first nonempty bucket of the matching class
    // "overflows", exercising the driver's retry machinery exactly as the
    // arena strategies do.
    if let Some(class) = forced_overflow {
        let capture = OverflowCapture::new();
        for b in 0..num_buckets {
            let size = scratch.starts[b + 1] - scratch.starts[b];
            if size == 0 || !class.matches(b < plan.num_heavy) {
                continue;
            }
            capture.report(b as u32, size, size + 1);
            return InPlaceOutcome {
                heavy_records,
                overflowed: true,
                overflow: capture.take(),
                grew,
                ..Default::default()
            };
        }
    }

    for b in 0..num_buckets {
        // ORDERING: Relaxed reset before the parallel phase spawns the
        // workers that contend on these heads.
        // publishes-via: fork-join barrier (scope spawn)
        scratch.heads[b].store(scratch.starts[b], Ordering::Relaxed);
    }

    let shared = SharedOut {
        ptr: out.as_mut_ptr(),
        #[cfg(debug_assertions)]
        len: n,
    };
    let starts: &[usize] = &scratch.starts;
    let heads: &[AtomicUsize] = &scratch.heads[..num_buckets];

    // The parallel permutation. Each worker owns its InPlaceWorker state
    // (`par_iter_mut` hands out disjoint &mut); `shared`, `starts` and
    // `heads` are the only cross-worker state, and only `heads` is ever
    // written concurrently.
    let results: Vec<WorkerYield<V>> = scratch.workers[..workers]
        .par_iter_mut()
        .enumerate()
        .map(|(w, worker)| {
            worker_loop(w, workers, worker, shared, starts, heads, plan, swap_buffer)
        })
        .collect();

    // Sequential reconciliation: fill each worker's surviving holes from
    // the stranded records. Conservation (see module docs) guarantees the
    // per-bucket counts match exactly.
    let mut cycles = 0usize;
    let mut flushes = 0usize;
    let mut leftovers: Vec<(u64, V)> = Vec::new();
    for (stranded, c, f) in results {
        cycles += c;
        flushes += f;
        leftovers.extend_from_slice(&stranded);
    }
    let mut holes: Vec<(u32, usize, usize)> = Vec::new();
    for worker in scratch.workers[..workers].iter_mut() {
        for &b in &worker.touched_holes {
            let mut h = worker.hole_of[b as usize];
            // Both sentinels (HOLES_EMPTY entry, HOLES_NONE terminator)
            // sit above every valid arena index, so one bound ends the walk.
            while h < HOLES_EMPTY {
                let hr = worker.holes[h as usize];
                if hr.len > 0 {
                    holes.push((b, hr.start, hr.len));
                }
                h = hr.next;
            }
        }
        worker.reset_holes();
    }
    if !leftovers.is_empty() || !holes.is_empty() {
        holes.sort_unstable_by_key(|&(b, start, _)| (b, start));
        leftovers.sort_unstable_by_key(|r| plan.bucket_of(r.0));
        let mut li = 0usize;
        for &(b, start, len) in &holes {
            for j in 0..len {
                debug_assert_eq!(
                    plan.bucket_of(leftovers[li].0),
                    b,
                    "conservation: stranded records must match holes per bucket"
                );
                out[start + j] = leftovers[li];
                li += 1;
            }
        }
        debug_assert_eq!(li, leftovers.len(), "every stranded record placed");
    }

    // Every record was placed exactly once (fixed points, hole repayments,
    // claim-swaps, and the reconciliation zip-fill partition the input), so
    // the strategy-uniform placement counter is simply n.
    if sink.level().counters() {
        sink.merge_cell(&WorkerCell {
            records_placed: n as u64,
            ..WorkerCell::default()
        });
    }

    InPlaceOutcome {
        heavy_records,
        overflowed: false,
        overflow: None,
        cycles,
        flushes,
        grew,
    }
}

/// One worker's prime/flush/strand loop (see module docs). Returns the
/// stranded records plus the worker's `(cycles, flushes)` counters; the
/// worker's unfilled holes stay behind in `worker` for reconciliation.
#[allow(clippy::too_many_arguments)]
fn worker_loop<V: Copy + Send + Sync>(
    w: usize,
    workers: usize,
    worker: &mut InPlaceWorker,
    out: SharedOut<V>,
    starts: &[usize],
    heads: &[AtomicUsize],
    plan: &BucketPlan,
    swap_buffer: usize,
) -> (Vec<(u64, V)>, usize, usize) {
    let num_buckets = starts.len() - 1;
    worker.begin(num_buckets);
    let mut pending: Vec<(u64, V)> = Vec::new();
    let mut flush_buf: Vec<(u64, V)> = Vec::with_capacity(swap_buffer);
    let mut stranded: Vec<(u64, V)> = Vec::new();
    let mut cycles = 0usize;
    let mut flushes = 0usize;
    // Workers start their bucket scan spread across the ring so early
    // claims don't all contend on bucket 0's cursor.
    let mut scan = w * num_buckets / workers;

    loop {
        // Classify in-hand records; flush buffers as they fill.
        while let Some((key, val)) = pending.pop() {
            let d = plan.bucket_of(key) as usize;
            if let Some(full) = worker.buf.push(d, (key, val), swap_buffer) {
                flush_buf.clear();
                flush_buf.extend_from_slice(full);
                flushes += 1;
                flush_records(
                    worker,
                    d,
                    &flush_buf,
                    out,
                    starts,
                    heads,
                    &mut pending,
                    &mut stranded,
                );
            }
        }

        // Prime: claim a batch of fresh positions from the next
        // unexhausted bucket on the ring.
        let mut primed = false;
        for _ in 0..num_buckets {
            let b = scan;
            let end = starts[b + 1];
            if let Some((pos, k)) = claim(&heads[b], end, swap_buffer) {
                cycles += 1;
                // Read the displaced records; fixed points (records
                // already in bucket b) stay put and never become holes.
                let mut run_start = pos;
                for i in pos..pos + k {
                    // SAFETY: [pos, pos+k) was claimed above — this worker
                    // exclusively owns these indices, which lie inside
                    // bucket b's region (claim clamps to `end` ≤ n).
                    let r = unsafe { out.read(i) };
                    if plan.bucket_of(r.0) as usize == b {
                        if i > run_start {
                            push_hole(worker, b, run_start, i - run_start);
                        }
                        run_start = i + 1;
                    } else {
                        pending.push(r);
                    }
                }
                if pos + k > run_start {
                    push_hole(worker, b, run_start, pos + k - run_start);
                }
                primed = true;
                break;
            }
            scan = if b + 1 == num_buckets { 0 } else { b + 1 };
        }
        if primed {
            continue;
        }

        // Every cursor is exhausted: drain the partial buffers. Claims can
        // no longer succeed (cursors are monotone), so this only repays
        // private holes or strands — `pending` stays empty.
        for s in 0..worker.buf.touched_len() {
            let (d, part) = worker.buf.partial::<V>(s, swap_buffer);
            if part.is_empty() {
                continue;
            }
            flush_buf.clear();
            flush_buf.extend_from_slice(part);
            flushes += 1;
            flush_records(
                worker,
                d,
                &flush_buf,
                out,
                starts,
                heads,
                &mut pending,
                &mut stranded,
            );
        }
        debug_assert!(pending.is_empty(), "exhausted cursors cannot displace");
        worker.buf.reset();
        return (stranded, cycles, flushes);
    }
}

/// Place `records` (all destined for bucket `d`) into the output: private
/// holes first (write-only), then freshly claimed positions (swap —
/// displaced records go to `pending`), stranding whatever is left once
/// `d`'s region is exhausted.
#[allow(clippy::too_many_arguments)]
fn flush_records<V: Copy + Send + Sync>(
    worker: &mut InPlaceWorker,
    d: usize,
    records: &[(u64, V)],
    out: SharedOut<V>,
    starts: &[usize],
    heads: &[AtomicUsize],
    pending: &mut Vec<(u64, V)>,
    stranded: &mut Vec<(u64, V)>,
) {
    let mut i = 0usize;
    // Repay private holes: positions this worker claimed from d earlier
    // and still owes records to.
    while i < records.len() {
        let h = worker.hole_of[d];
        if h >= HOLES_EMPTY {
            break;
        }
        let hr = &mut worker.holes[h as usize];
        let take = hr.len.min(records.len() - i);
        for j in 0..take {
            // SAFETY: the hole range was claimed by this worker at prime
            // time and has not been written since (len tracks the unfilled
            // remainder), so these indices are exclusively owned.
            unsafe { out.write(hr.start + j, records[i + j]) };
        }
        hr.start += take;
        hr.len -= take;
        i += take;
        if worker.holes[h as usize].len == 0 {
            // A fully repaid list parks at HOLES_EMPTY (not HOLES_NONE):
            // the bucket stays registered in `touched_holes` exactly once.
            let next = worker.holes[h as usize].next;
            worker.hole_of[d] = if next == HOLES_NONE {
                HOLES_EMPTY
            } else {
                next
            };
        }
    }
    // Claim fresh positions: read the displaced record, write ours.
    while i < records.len() {
        let Some((pos, k)) = claim(&heads[d], starts[d + 1], records.len() - i) else {
            break;
        };
        for j in 0..k {
            // SAFETY: [pos, pos+k) was claimed above — exclusively owned,
            // inside bucket d's region.
            pending.push(unsafe { out.read(pos + j) });
            // SAFETY: as above.
            unsafe { out.write(pos + j, records[i + j]) };
        }
        i += k;
    }
    if i < records.len() {
        stranded.extend_from_slice(&records[i..]);
    }
}

/// Record positions `[start, start + len)` as private holes of `worker` in
/// bucket `b` (prepended to `b`'s range list).
///
/// `b` enters `touched_holes` only on the transition away from
/// [`HOLES_NONE`] — a drained list parks at [`HOLES_EMPTY`], so re-priming
/// the same bucket later cannot register it twice (a duplicate would make
/// reconciliation refill the bucket's surviving holes twice).
fn push_hole(worker: &mut InPlaceWorker, b: usize, start: usize, len: usize) {
    let prev = worker.hole_of[b];
    if prev == HOLES_NONE {
        worker.touched_holes.push(b as u32);
    }
    let idx = worker.holes.len() as u32;
    worker.holes.push(HoleRange {
        start,
        len,
        next: if prev >= HOLES_EMPTY {
            HOLES_NONE
        } else {
            prev
        },
    });
    worker.hole_of[b] = idx;
}

/// Sort every light-bucket region of `out` by key (heavy regions hold a
/// single key and need no sort). This is the in-place path's Phase 4; with
/// it, the output's *key sequence* is deterministic for a given seed and
/// input at any thread count — the same sequence the arena strategies
/// produce with [`LocalSortAlgo::StdUnstable`] / `StdStable`.
pub fn sort_light_regions<V: Copy + Send + Sync>(
    out: &mut [(u64, V)],
    plan: &BucketPlan,
    starts: &[usize],
    algo: LocalSortAlgo,
) {
    let num_buckets = plan.num_buckets();
    debug_assert_eq!(starts.len(), num_buckets + 1);
    let light_base = starts[plan.num_heavy];
    let (_, mut rest) = out.split_at_mut(light_base);
    let mut offset = light_base;
    let mut regions: Vec<&mut [(u64, V)]> = Vec::with_capacity(num_buckets - plan.num_heavy);
    for b in plan.num_heavy..num_buckets {
        let len = starts[b + 1] - starts[b];
        let (region, tail) = rest.split_at_mut(len);
        regions.push(region);
        rest = tail;
        offset += len;
    }
    debug_assert_eq!(offset, starts[num_buckets]);
    regions
        .into_par_iter()
        .for_each(|region| sort_records(region, algo));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buckets::build_plan;
    use crate::config::SemisortConfig;
    use crate::sample::strided_sample;
    use crate::verify::{is_permutation_of, is_semisorted_by};
    use parlay::hash64;
    use parlay::random::Rng;

    fn run(
        records: &[(u64, u64)],
        swap_buffer: usize,
        forced: Option<FaultClass>,
    ) -> (BucketPlan, Vec<(u64, u64)>, InPlaceOutcome, InPlaceScratch) {
        let cfg = SemisortConfig::default();
        let keys: Vec<u64> = records.iter().map(|r| r.0).collect();
        let mut sample = strided_sample(&keys, cfg.sample_shift, Rng::new(1));
        sample.sort_unstable();
        let plan = build_plan(&sample, records.len(), &cfg);
        let sink = ObsSink::disabled();
        let mut scratch = InPlaceScratch::new();
        let mut out = Vec::new();
        let outcome = inplace_scatter(
            records,
            &plan,
            &mut out,
            swap_buffer,
            &sink,
            forced,
            &mut scratch,
        );
        (plan, out, outcome, scratch)
    }

    fn assert_regioned(plan: &BucketPlan, starts: &[usize], out: &[(u64, u64)]) {
        for b in 0..plan.num_buckets() {
            for &(key, _) in &out[starts[b]..starts[b + 1]] {
                assert_eq!(
                    plan.bucket_of(key) as usize,
                    b,
                    "record in wrong region (bucket {b})"
                );
            }
        }
    }

    #[test]
    fn permutes_into_exact_regions() {
        let records: Vec<(u64, u64)> = (0..40_000u64).map(|i| (hash64(i % 3000), i)).collect();
        let (plan, out, outcome, scratch) = run(&records, 32, None);
        assert!(!outcome.overflowed);
        assert!(is_permutation_of(&out, &records));
        assert_regioned(&plan, &scratch.starts, &out);
        assert!(outcome.cycles > 0, "40k records must prime at least once");
    }

    #[test]
    fn all_equal_keys_need_no_movement() {
        let records: Vec<(u64, u64)> = (0..20_000u64).map(|i| (hash64(7), i)).collect();
        let (plan, out, outcome, _) = run(&records, 32, None);
        assert_eq!(outcome.heavy_records, records.len());
        assert_eq!(plan.num_heavy, 1);
        assert_eq!(out, records, "fixed points stay in place untouched");
        assert_eq!(outcome.flushes, 0, "nothing to buffer when nothing moves");
    }

    #[test]
    fn tiny_swap_buffer_still_correct() {
        let records: Vec<(u64, u64)> = (0..30_000u64).map(|i| (hash64(i % 777), i)).collect();
        for s in [1usize, 2, 4] {
            let (plan, out, outcome, scratch) = run(&records, s, None);
            assert!(!outcome.overflowed, "swap_buffer={s}");
            assert!(is_permutation_of(&out, &records), "swap_buffer={s}");
            assert_regioned(&plan, &scratch.starts, &out);
        }
    }

    #[test]
    fn sorted_regions_semisort() {
        let records: Vec<(u64, u64)> = (0..50_000u64)
            .map(|i| {
                let k = if i % 2 == 0 { i % 10 } else { 1_000_000 + i };
                (hash64(k), i)
            })
            .collect();
        let (plan, mut out, outcome, scratch) = run(&records, 32, None);
        assert!(outcome.heavy_records > 0);
        sort_light_regions(&mut out, &plan, &scratch.starts, LocalSortAlgo::StdUnstable);
        assert!(is_semisorted_by(&out, |r| r.0));
        assert!(is_permutation_of(&out, &records));
    }

    #[test]
    fn forced_overflow_reports_and_bails() {
        let records: Vec<(u64, u64)> = (0..20_000u64).map(|i| (hash64(i), i)).collect();
        let (_, _, outcome, _) = run(&records, 32, Some(FaultClass::Any));
        assert!(outcome.overflowed);
        let (b, allocated, observed) = outcome.overflow.expect("capture set");
        assert!(observed > allocated, "bucket {b} must over-report");
    }

    #[test]
    fn forced_heavy_overflow_inert_without_heavy_keys() {
        // All-distinct keys produce no heavy buckets; a Heavy-class fault
        // must be inert, exactly like the arena strategies.
        let records: Vec<(u64, u64)> = (0..20_000u64).map(|i| (hash64(i), i)).collect();
        let (_, out, outcome, _) = run(&records, 32, Some(FaultClass::Heavy));
        assert!(!outcome.overflowed);
        assert!(is_permutation_of(&out, &records));
    }

    #[test]
    fn scratch_is_reused_across_runs() {
        let records: Vec<(u64, u64)> = (0..30_000u64).map(|i| (hash64(i % 500), i)).collect();
        let cfg = SemisortConfig::default();
        let keys: Vec<u64> = records.iter().map(|r| r.0).collect();
        let mut sample = strided_sample(&keys, cfg.sample_shift, Rng::new(1));
        sample.sort_unstable();
        let plan = build_plan(&sample, records.len(), &cfg);
        let sink = ObsSink::disabled();
        let mut scratch = InPlaceScratch::new();
        let mut out = Vec::new();
        inplace_scatter(&records, &plan, &mut out, 32, &sink, None, &mut scratch);
        let held = scratch.bytes();
        assert!(held > 0);
        let out1 = out.clone();
        inplace_scatter(&records, &plan, &mut out, 32, &sink, None, &mut scratch);
        assert_eq!(scratch.bytes(), held, "steady state: no regrowth");
        assert!(is_permutation_of(&out, &out1));
    }

    #[test]
    fn inplace_bytes_is_far_below_arena() {
        let records: Vec<(u64, u64)> = (0..200_000u64).map(|i| (hash64(i), i)).collect();
        let cfg = SemisortConfig::default();
        let keys: Vec<u64> = records.iter().map(|r| r.0).collect();
        let mut sample = strided_sample(&keys, cfg.sample_shift, Rng::new(1));
        sample.sort_unstable();
        let plan = build_plan(&sample, records.len(), &cfg);
        let arena = crate::scatter::arena_bytes::<u64>(&plan);
        let inplace = inplace_bytes::<u64>(&plan, 8, 32);
        assert!(
            inplace * 4 <= arena,
            "in-place estimate {inplace} not ≥4× below arena {arena}"
        );
    }

    #[test]
    fn empty_input_is_a_no_op() {
        let cfg = SemisortConfig::default();
        let plan = build_plan(&[], 0, &cfg);
        let sink = ObsSink::disabled();
        let mut scratch = InPlaceScratch::new();
        let mut out: Vec<(u64, u64)> = vec![(1, 1)];
        let outcome = inplace_scatter(&[], &plan, &mut out, 32, &sink, None, &mut scratch);
        assert!(out.is_empty());
        assert!(!outcome.overflowed);
    }
}
