//! Phase 3: scatter every record into a random slot of its bucket.
//!
//! "Every record is scattered to a random location in the array of its
//! bucket … we perform the insertions using a compare-and-swap … On a
//! failure, instead of picking another random location, a record tries the
//! next location (linear probing). This gives better cache performance."
//! (§4 Phase 3.) Expected `O(1)` probes per record; the largest probe
//! cluster is `O(log n)` w.h.p., giving the `O(log n)` depth bound.
//!
//! A slot is one `AtomicU64` key plus an uninitialized value cell — 16
//! bytes for the paper's `u64` payload, exactly the layout the C++ code
//! CASes. A thread that wins the key CAS (EMPTY → key) owns the value
//! cell; values are read only after the phase's fork-join barrier, so the
//! plain value write never races.
//!
//! Keys may not equal the [`EMPTY`] sentinel; the driver screens for that
//! (one parallel pass) and falls back to a sort-based semisort in the
//! astronomically unlikely hit case, keeping the algorithm Las Vegas
//! rather than silently wrong.

use std::alloc::{alloc_zeroed, handle_alloc_error, Layout};
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parlay::random::Rng;
use rayon::prelude::*;

use crate::buckets::BucketPlan;
use crate::config::ProbeStrategy;
use crate::fault::FaultClass;
use crate::obs::{ObsSink, OverflowCapture, WorkerCell};

/// Minimum records per worker chunk (the pre-telemetry `with_min_len`
/// granularity): below this, per-chunk telemetry-cell merges and chunk
/// bookkeeping would dominate.
const MIN_CHUNK: usize = 4096;

/// Best-effort hint to pull the cache line holding `p` toward the core.
///
/// The scatter's write targets are random cache lines (that is the point
/// of the random-slot placement), so every CAS starts with a demand miss.
/// Routing records [`ScatterConfig::prefetch_distance`] ahead of the write
/// cursor and hinting their destination lines overlaps those misses with
/// useful work. A prefetch is a hint, not an access — it cannot fault and
/// has no architectural effect — so there is nothing unsafe to get wrong
/// beyond passing a pointer, which stays in-bounds here anyway.
///
/// Compiles to `prefetcht0` on x86-64 and to nothing elsewhere.
///
/// [`ScatterConfig::prefetch_distance`]: crate::config::ScatterConfig::prefetch_distance
#[inline(always)]
pub(crate) fn prefetch<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is a pure cache hint with no memory access
    // semantics; it is defined for any address value.
    unsafe {
        core::arch::x86_64::_mm_prefetch(p as *const i8, core::arch::x86_64::_MM_HINT_T0)
    };
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Slot vacancy sentinel. Zero, so that a freshly `alloc_zeroed` arena is
/// all-vacant with no initialization pass: the kernel hands back lazily
/// zeroed pages and the first touch happens during the scatter itself —
/// the same accounting as the paper's calloc'd C++ arrays, where "construct
/// buckets" is ~1% and the scatter dominates. The driver screens inputs for
/// this value (a `≈ n/2^64` event for hashed keys) and falls back to a
/// sort-based semisort rather than silently merging keys.
pub const EMPTY: u64 = 0;

/// One scatter slot: CAS-arbitrated key + value owned by the CAS winner.
pub struct Slot<V> {
    /// The hashed key, or [`EMPTY`].
    pub key: AtomicU64,
    val: UnsafeCell<MaybeUninit<V>>,
}

// SAFETY: the value cell is written only by the unique CAS winner of the
// slot and read only after the scatter barrier (see module docs).
unsafe impl<V: Send> Send for Slot<V> {}
// SAFETY: as above — the CAS claim plus the phase barrier make all
// cross-thread access to the value cell data-race free.
unsafe impl<V: Send + Sync> Sync for Slot<V> {}

impl<V> Slot<V> {
    /// Whether this slot received a record.
    #[inline(always)]
    pub fn occupied(&self) -> bool {
        // ORDERING: Relaxed vacancy/occupancy probe; any decision based on
        // it is re-validated by the claiming CAS, and post-scatter readers
        // are ordered by the fork-join barrier.
        // publishes-via: fork-join barrier (readers) / winning CAS (writers)
        self.key.load(Ordering::Relaxed) != EMPTY
    }

    /// The key, assuming occupancy was checked.
    #[inline(always)]
    pub fn key(&self) -> u64 {
        // ORDERING: Relaxed read; callers run after all scatter writers
        // joined, so the key value is already published.
        // publishes-via: fork-join barrier
        self.key.load(Ordering::Relaxed)
    }

    /// Read the value of an occupied slot.
    ///
    /// # Safety
    ///
    /// The slot must be occupied and all scatter writers must have joined.
    #[inline(always)]
    pub unsafe fn value(&self) -> V
    where
        V: Copy,
    {
        // SAFETY: per this method's contract the slot is occupied (its
        // value was initialized by the claiming writer) and all scatter
        // writers have joined, so the read cannot race.
        unsafe { (*self.val.get()).assume_init() }
    }

    /// Overwrite this slot single-threadedly (used by the in-bucket
    /// compaction passes of Phases 4–5, where one task owns a slot range).
    #[inline(always)]
    pub fn set(&self, key: u64, value: V) {
        // ORDERING: Relaxed store under exclusive ownership — one
        // compaction task owns this slot range; the next phase observes it
        // only after the tasks join.
        // publishes-via: fork-join barrier
        self.key.store(key, Ordering::Relaxed);
        // SAFETY: single owner during compaction (caller contract).
        unsafe { (*self.val.get()).write(value) };
    }

    /// Mark the slot empty (compaction tail cleanup).
    #[inline(always)]
    pub fn clear(&self) {
        // ORDERING: Relaxed store under exclusive ownership (compaction
        // tail cleanup), same regime as `set`.
        // publishes-via: fork-join barrier
        self.key.store(EMPTY, Ordering::Relaxed);
    }
}

/// The slot array for one run, plus scatter telemetry.
pub struct ScatterArena<V> {
    /// All buckets' slots, heavy region first (see `BucketPlan`).
    pub slots: Vec<Slot<V>>,
}

/// Outcome of a scatter pass.
pub struct ScatterOutcome {
    /// Records that routed to heavy buckets (drives the heavy-% stat).
    pub heavy_records: usize,
    /// A bucket filled up before all its records were placed — the
    /// Corollary 3.4 failure; the driver must retry with fresh randomness
    /// and more slack.
    pub overflowed: bool,
    /// The first overflowing bucket as `(bucket, allocated, observed)`,
    /// recorded so the driver's retry telemetry can say *which* bucket's
    /// estimate was unlucky. `observed` is `allocated + 1` here — the
    /// failing record found the bucket full, so true demand is at least
    /// one more than the allocation.
    pub overflow: Option<(u32, usize, usize)>,
}

/// Result of one record placement attempt, with the counts the telemetry
/// cells accumulate. Counting into these fields happens in registers; it is
/// not gated on the telemetry level because the adds are free next to the
/// CAS loop they annotate.
pub(crate) struct Placed {
    /// Whether the record landed (false ⇒ the bucket is full).
    pub ok: bool,
    /// Slots examined beyond the first (0 = landed at its start slot).
    pub probes: u32,
    /// CAS instructions issued.
    pub cas: u32,
    /// CAS instructions that lost their race.
    pub cas_lost: u32,
}

/// The arena byte footprint of `plan` for payload type `V` (what
/// [`try_allocate_arena`] will request and what the driver charges against
/// [`SemisortConfig::max_arena_bytes`](crate::config::SemisortConfig::max_arena_bytes)).
pub fn arena_bytes<V>(plan: &BucketPlan) -> usize {
    plan.total_slots
        .saturating_mul(std::mem::size_of::<Slot<V>>())
}

/// Allocate the slot array (all vacant) for `plan`.
///
/// Uses `alloc_zeroed`: a zeroed `Slot<V>` is a valid vacant slot
/// (`AtomicU64(0) == EMPTY`; the value cell is `MaybeUninit`), so the OS's
/// lazily zeroed pages make allocation O(1) page-table work instead of an
/// O(total_slots) initialization sweep.
///
/// Aborts the process on allocator refusal (`handle_alloc_error`); the
/// driver uses [`try_allocate_arena`], which reports refusal instead so the
/// escalation policy can degrade gracefully.
pub fn allocate_arena<V: Send + Sync>(plan: &BucketPlan) -> ScatterArena<V> {
    match try_allocate_arena(plan, false) {
        Ok(arena) => arena,
        Err(_) => {
            let layout = Layout::array::<Slot<V>>(plan.total_slots).expect("arena layout overflow");
            handle_alloc_error(layout)
        }
    }
}

/// Fallible [`allocate_arena`]: returns `Err(bytes_requested)` when the
/// global allocator refuses (instead of aborting the process), or when
/// `fail_injected` simulates that refusal
/// ([`FaultPlan::fail_alloc_attempts`](crate::fault::FaultPlan::fail_alloc_attempts)).
pub fn try_allocate_arena<V: Send + Sync>(
    plan: &BucketPlan,
    fail_injected: bool,
) -> Result<ScatterArena<V>, usize> {
    let len = plan.total_slots;
    if fail_injected {
        return Err(arena_bytes::<V>(plan));
    }
    if len == 0 {
        return Ok(ScatterArena { slots: Vec::new() });
    }
    let layout = Layout::array::<Slot<V>>(len).map_err(|_| usize::MAX)?;
    // SAFETY: all-zero bytes are a valid Slot<V> (see above); the pointer
    // comes from the global allocator with exactly the layout Vec expects.
    let slots = unsafe {
        let ptr = alloc_zeroed(layout) as *mut Slot<V>;
        if ptr.is_null() {
            return Err(layout.size());
        }
        Vec::from_raw_parts(ptr, len, len)
    };
    Ok(ScatterArena { slots })
}

/// Scatter all records into `slots` — `plan.total_slots` vacant slots,
/// either a fresh [`ScatterArena`]'s `slots` or a zeroed
/// [`ScratchPool`](crate::pool::ScratchPool) lease. Returns telemetry; on
/// `overflowed == true` the slot contents are garbage and the caller must
/// retry (the Las Vegas loop in the driver).
///
/// Workers walk fixed chunks of the input with a private [`WorkerCell`]
/// and merge it into `sink` once per chunk, so telemetry adds no shared
/// traffic to the per-record CAS loop. With the sink at `Off` the
/// per-record telemetry code is one never-taken branch.
///
/// `forced_overflow` is the fault-injection hook
/// ([`FaultPlan::forced_overflow`](crate::fault::FaultPlan::forced_overflow)):
/// when set, the first record routed to a bucket of the given class reports
/// a Corollary 3.4 overflow through the real [`OverflowCapture`] path, so
/// the driver's retry/escalation machinery is exercised exactly as by a
/// genuine overflow. Pass `None` in production.
///
/// `prefetch_distance` routes records that many positions ahead of the
/// write cursor and `prefetch`es their destination slot lines (0
/// disables the lookahead entirely). Routing happens once per record
/// either way — the lookahead ring recycles its answers into the
/// placement loop.
#[allow(clippy::too_many_arguments)] // phase boundary: every arg is a distinct concern
pub fn scatter<V: Copy + Send + Sync>(
    records: &[(u64, V)],
    plan: &BucketPlan,
    slots: &[Slot<V>],
    strategy: ProbeStrategy,
    prefetch_distance: usize,
    rng: Rng,
    sink: &ObsSink,
    forced_overflow: Option<FaultClass>,
) -> ScatterOutcome {
    let overflow = OverflowCapture::new();
    let heavy_records = AtomicUsize::new(0);
    let workers = rayon::current_num_threads().max(1);
    let chunk = records.len().div_ceil(workers * 4).max(MIN_CHUNK);
    records
        .par_chunks(chunk)
        .enumerate()
        .for_each(|(ci, chunk_recs)| {
            let counters = sink.level().counters();
            let deep = sink.level().deep();
            let mut cell = WorkerCell::default();
            let mut heavy = 0usize;
            // Route record `j` of this chunk: bucket id, heavy tag, and its
            // random start slot (global index for rng reproducibility).
            let route = |j: usize| {
                let (bucket, is_heavy) = plan.bucket_of_tagged(chunk_recs[j].0);
                let b = bucket as usize;
                let mask = plan.bucket_size[b] - 1; // sizes are powers of two
                let start = (rng.at((ci * chunk + j) as u64) as usize) & mask;
                (bucket, is_heavy, start)
            };
            let d = prefetch_distance.min(chunk_recs.len());
            let mut ring: Vec<(u32, bool, usize)> = (0..d)
                .map(|j| {
                    let r = route(j);
                    let b = r.0 as usize;
                    prefetch(&slots[plan.bucket_offset[b] + r.2]);
                    r
                })
                .collect();
            for (j, &(key, value)) in chunk_recs.iter().enumerate() {
                if overflow.is_set() {
                    break; // another task failed; stop doing useless work
                }
                let i = ci * chunk + j;
                let (bucket, is_heavy, start) = if d > 0 {
                    let r = ring[j % d];
                    if j + d < chunk_recs.len() {
                        let next = route(j + d);
                        let b = next.0 as usize;
                        prefetch(&slots[plan.bucket_offset[b] + next.2]);
                        ring[j % d] = next;
                    }
                    r
                } else {
                    route(j)
                };
                let b = bucket as usize;
                let base = plan.bucket_offset[b];
                let size = plan.bucket_size[b];
                if let Some(class) = forced_overflow {
                    if class.matches(is_heavy) {
                        // Injected Corollary 3.4 failure: report this bucket
                        // as overflowed without touching the arena.
                        overflow.report(bucket, size, size + 1);
                        break;
                    }
                }
                let mask = size - 1;
                let placed = match strategy {
                    ProbeStrategy::Linear => {
                        place_linear(&slots[base..base + size], start, mask, key, value)
                    }
                    ProbeStrategy::Random => place_random(
                        &slots[base..base + size],
                        mask,
                        key,
                        value,
                        rng.fork(1),
                        i as u64,
                    ),
                };
                if counters {
                    cell.cas_attempts += placed.cas as u64;
                    cell.cas_failures += placed.cas_lost as u64;
                    if placed.ok {
                        cell.records_placed += 1;
                        // Zero-probe placements (the common case) are
                        // reconstructed below from records_placed, keeping
                        // the hist update off the happy path.
                        if deep && placed.probes != 0 {
                            cell.probe_hist.record(placed.probes as u64);
                        }
                    }
                }
                if !placed.ok {
                    overflow.report(bucket, size, size + 1);
                    break;
                }
                heavy += is_heavy as usize;
            }
            if deep {
                // Every placed record either recorded a nonzero probe
                // length above or landed at its start slot.
                cell.probe_hist.buckets[0] += cell.records_placed - cell.probe_hist.count();
            }
            // ORDERING: Relaxed telemetry counter; the total is read via
            // `into_inner` after the parallel loop completes.
            // publishes-via: fork-join barrier
            heavy_records.fetch_add(heavy, Ordering::Relaxed);
            sink.merge_cell(&cell);
        });
    ScatterOutcome {
        heavy_records: heavy_records.into_inner(),
        overflowed: overflow.is_set(),
        overflow: overflow.take(),
    }
}

/// CAS at `start`, then linear probing with wraparound. Fails only if the
/// bucket is completely full. Shared with the blocked scatter, which uses
/// it for its CAS-fallback tail region.
#[inline]
pub(crate) fn place_linear<V: Copy>(
    bucket: &[Slot<V>],
    start: usize,
    mask: usize,
    key: u64,
    value: V,
) -> Placed {
    let mut i = start;
    let mut cas = 0u32;
    let mut cas_lost = 0u32;
    for probes in 0..bucket.len() {
        let slot = &bucket[i];
        // ORDERING: Relaxed vacancy pre-check to skip the CAS on occupied
        // slots; a stale EMPTY read only costs a failed CAS.
        // publishes-via: winning CAS below
        if slot.key.load(Ordering::Relaxed) == EMPTY {
            cas += 1;
            // ORDERING: AcqRel on success — the claim both acquires the
            // slot's prior (empty) state and releases the key for probe
            // readers; Relaxed on failure, which only retries the probe.
            // publishes-via: this CAS's own AcqRel success edge
            if slot
                .key
                .compare_exchange(EMPTY, key, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                // SAFETY: we won the CAS; we are the unique writer of this
                // cell.
                unsafe { (*slot.val.get()).write(value) };
                return Placed {
                    ok: true,
                    probes: probes as u32,
                    cas,
                    cas_lost,
                };
            }
            cas_lost += 1;
        }
        i = (i + 1) & mask;
    }
    Placed {
        ok: false,
        probes: bucket.len() as u32,
        cas,
        cas_lost,
    }
}

/// The theoretical §3 strategy: a fresh random slot per attempt, giving a
/// geometric success probability of ≥ 1 − 1/α per round. Bounded attempts,
/// then a linear sweep as a completeness backstop.
#[inline]
fn place_random<V: Copy>(
    bucket: &[Slot<V>],
    mask: usize,
    key: u64,
    value: V,
    rng: Rng,
    record_id: u64,
) -> Placed {
    let attempts = 8 * (usize::BITS - bucket.len().leading_zeros()) as usize + 16;
    let mut cas = 0u32;
    let mut cas_lost = 0u32;
    for t in 0..attempts {
        let i = (rng.at(record_id.wrapping_mul(1 << 20).wrapping_add(t as u64)) as usize) & mask;
        let slot = &bucket[i];
        // ORDERING: Relaxed vacancy pre-check, same regime as
        // `place_linear`; a stale EMPTY read only costs a failed CAS.
        // publishes-via: winning CAS below
        if slot.key.load(Ordering::Relaxed) == EMPTY {
            cas += 1;
            // ORDERING: AcqRel success claims the slot and publishes the
            // key; Relaxed failure only retries with a fresh random slot.
            // publishes-via: this CAS's own AcqRel success edge
            if slot
                .key
                .compare_exchange(EMPTY, key, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                // SAFETY: unique CAS winner.
                unsafe { (*slot.val.get()).write(value) };
                return Placed {
                    ok: true,
                    probes: t as u32,
                    cas,
                    cas_lost,
                };
            }
            cas_lost += 1;
        }
    }
    // Random probing ran out of luck; fall back to one deterministic sweep
    // so "full bucket" is the only way to fail.
    let mut fallback = place_linear(bucket, 0, mask, key, value);
    fallback.probes += attempts as u32;
    fallback.cas += cas;
    fallback.cas_lost += cas_lost;
    fallback
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buckets::build_plan;
    use crate::config::SemisortConfig;
    use parlay::hash64;

    fn scatter_all(
        records: &[(u64, u64)],
        cfg: &SemisortConfig,
        strategy: ProbeStrategy,
    ) -> (BucketPlan, ScatterArena<u64>, ScatterOutcome) {
        let keys: Vec<u64> = records.iter().map(|r| r.0).collect();
        let mut sample = crate::sample::strided_sample(&keys, cfg.sample_shift, Rng::new(cfg.seed));
        sample.sort_unstable();
        let plan = build_plan(&sample, records.len(), cfg);
        let arena = allocate_arena::<u64>(&plan);
        let out = scatter(
            records,
            &plan,
            &arena.slots,
            strategy,
            cfg.scatter.prefetch_distance,
            Rng::new(cfg.seed).fork(99),
            &ObsSink::disabled(),
            None,
        );
        (plan, arena, out)
    }

    fn collect_placed(arena: &ScatterArena<u64>) -> Vec<(u64, u64)> {
        arena
            .slots
            .iter()
            .filter(|s| s.occupied())
            // SAFETY: the scatter under test has returned; occupied slots
            // hold initialized values and nothing writes concurrently.
            .map(|s| (s.key(), unsafe { s.value() }))
            .collect()
    }

    #[test]
    fn every_record_is_placed_exactly_once() {
        let records: Vec<(u64, u64)> = (0..50_000u64).map(|i| (hash64(i % 777), i)).collect();
        let cfg = SemisortConfig::default();
        let (_, arena, out) = scatter_all(&records, &cfg, ProbeStrategy::Linear);
        assert!(!out.overflowed);
        let mut placed = collect_placed(&arena);
        assert_eq!(placed.len(), records.len());
        placed.sort_unstable_by_key(|r| r.1);
        let mut want = records.clone();
        want.sort_unstable_by_key(|r| r.1);
        assert_eq!(placed, want);
    }

    #[test]
    fn records_land_in_their_bucket_range() {
        let records: Vec<(u64, u64)> = (0..30_000u64).map(|i| (hash64(i % 100), i)).collect();
        let cfg = SemisortConfig::default();
        let (plan, arena, out) = scatter_all(&records, &cfg, ProbeStrategy::Linear);
        assert!(!out.overflowed);
        for (i, slot) in arena.slots.iter().enumerate() {
            if slot.occupied() {
                let b = plan.bucket_of(slot.key()) as usize;
                let lo = plan.bucket_offset[b];
                let hi = lo + plan.bucket_size[b];
                assert!(
                    (lo..hi).contains(&i),
                    "slot {i} outside bucket {b} range {lo}..{hi}"
                );
            }
        }
    }

    #[test]
    fn heavy_count_matches_reality() {
        // 80% of records share one key → that key is certainly heavy.
        let records: Vec<(u64, u64)> = (0..40_000u64)
            .map(|i| {
                let k = if i % 5 != 0 { 7u64 } else { 1_000 + i };
                (hash64(k), i)
            })
            .collect();
        let cfg = SemisortConfig::default();
        let (plan, _, out) = scatter_all(&records, &cfg, ProbeStrategy::Linear);
        assert!(plan.num_heavy >= 1);
        let expected_heavy = records
            .iter()
            .filter(|r| plan.heavy_table.contains(r.0))
            .count();
        assert_eq!(out.heavy_records, expected_heavy);
        assert!(out.heavy_records >= records.len() * 7 / 10);
    }

    #[test]
    fn random_probe_strategy_also_places_everything() {
        let records: Vec<(u64, u64)> = (0..30_000u64).map(|i| (hash64(i % 555), i)).collect();
        let cfg = SemisortConfig {
            probe_strategy: ProbeStrategy::Random,
            ..Default::default()
        };
        let (_, arena, out) = scatter_all(&records, &cfg, ProbeStrategy::Random);
        assert!(!out.overflowed);
        assert_eq!(collect_placed(&arena).len(), records.len());
    }

    #[test]
    fn overflow_is_detected_not_hung() {
        // Force overflow: a plan built from an empty sample (tiny bucket
        // estimates) receiving far more records than slots.
        let cfg = SemisortConfig::default();
        let plan = build_plan(&[], 64, &cfg);
        let arena = allocate_arena::<u64>(&plan);
        let n_over = plan.total_slots + 1_000;
        let records: Vec<(u64, u64)> = (0..n_over as u64).map(|i| (hash64(i), i)).collect();
        let out = scatter(
            &records,
            &plan,
            &arena.slots,
            ProbeStrategy::Linear,
            8,
            Rng::new(1),
            &ObsSink::disabled(),
            None,
        );
        assert!(out.overflowed, "must report overflow instead of spinning");
        let (_bucket, allocated, observed) = out.overflow.expect("overflow details captured");
        assert_eq!(observed, allocated + 1);
    }

    #[test]
    fn forced_overflow_fires_per_class() {
        // 80% of records share one key, so the plan has heavy and light
        // buckets; the injected overflow must report a bucket of exactly
        // the requested class.
        let records: Vec<(u64, u64)> = (0..40_000u64)
            .map(|i| {
                let k = if i % 5 != 0 { 7u64 } else { 1_000 + i };
                (hash64(k), i)
            })
            .collect();
        let cfg = SemisortConfig::default();
        let keys: Vec<u64> = records.iter().map(|r| r.0).collect();
        let mut sample = crate::sample::strided_sample(&keys, cfg.sample_shift, Rng::new(cfg.seed));
        sample.sort_unstable();
        let plan = build_plan(&sample, records.len(), &cfg);
        assert!(plan.num_heavy > 0 && plan.num_light > 0);
        for (class, want_heavy) in [(FaultClass::Heavy, true), (FaultClass::Light, false)] {
            let arena = allocate_arena::<u64>(&plan);
            let out = scatter(
                &records,
                &plan,
                &arena.slots,
                ProbeStrategy::Linear,
                8,
                Rng::new(1),
                &ObsSink::disabled(),
                Some(class),
            );
            assert!(out.overflowed, "{class:?} fault must report overflow");
            let (bucket, allocated, observed) = out.overflow.expect("capture");
            assert_eq!(
                (bucket as usize) < plan.num_heavy,
                want_heavy,
                "{class:?} overflowed bucket {bucket}"
            );
            assert_eq!(observed, allocated + 1);
        }
    }

    #[test]
    fn try_allocate_reports_injected_failure() {
        let plan = build_plan(&[], 64, &SemisortConfig::default());
        let bytes = arena_bytes::<u64>(&plan);
        assert!(bytes > 0);
        assert_eq!(try_allocate_arena::<u64>(&plan, true).err(), Some(bytes));
        let arena = try_allocate_arena::<u64>(&plan, false).expect("real alloc succeeds");
        assert_eq!(arena.slots.len(), plan.total_slots);
    }

    #[test]
    fn full_bucket_single_slot_edge() {
        let v: Vec<Slot<u64>> = (0..2)
            .map(|_| Slot {
                key: AtomicU64::new(EMPTY),
                val: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        assert!(place_linear(&v, 1, 1, 10, 100).ok);
        assert!(place_linear(&v, 1, 1, 11, 101).ok);
        assert!(!place_linear(&v, 0, 1, 12, 102).ok, "full bucket must fail");
        let got: Vec<u64> = v.iter().map(|s| s.key()).collect();
        assert!(got.contains(&10) && got.contains(&11));
    }
}
