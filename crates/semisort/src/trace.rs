//! Chrome-trace export: lay a run's phase spans and scheduler events on
//! one timeline loadable in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`.
//!
//! [`chrome_trace`] turns a [`SemisortStats`] — its [`spans`]
//! (epoch-based phase endpoints) and its [`scheduler`] section (per-worker
//! ring events: parks with durations, steal successes, inline degrades) —
//! into a Chrome Trace Event Format object:
//!
//! ```json
//! {
//!   "schema": "semisort-trace-v1",
//!   "displayTimeUnit": "ms",
//!   "traceEvents": [
//!     {"ph": "M", "pid": 1, "tid": 0, "name": "thread_name",
//!      "args": {"name": "driver"}},
//!     {"ph": "X", "pid": 1, "tid": 0, "name": "scatter",
//!      "ts": 1200, "dur": 54000},
//!     {"ph": "X", "pid": 1, "tid": 2, "name": "park",
//!      "ts": 60000, "dur": 480},
//!     {"ph": "i", "pid": 1, "tid": 2, "name": "steal",
//!      "s": "t", "ts": 61000, "args": {"victim": 0}}
//!   ]
//! }
//! ```
//!
//! Everything shares the process-wide epoch ([`crate::obs::epoch_micros`]),
//! so span and scheduler timestamps interleave correctly. Rows (`tid`s):
//! row 0 is the driver thread for spans that ran outside the pool; worker
//! `w` maps to row `w + 1`. The `"schema"` member is ours, not Chrome's —
//! trace viewers ignore unknown top-level keys, and it lets
//! `semisort-cli validate-json` check trace files like any other artifact.
//!
//! Capture is two-switch: spans are always recorded, but scheduler *ring
//! events* only flow while `rayon::trace::set_events_enabled(true)` (or
//! `RAYON_TRACE=1`) — the `semisort-cli trace` subcommand flips it for
//! you. A stats object captured without ring events still exports; the
//! timeline just has no park/steal rows.
//!
//! [`spans`]: SemisortStats::spans
//! [`scheduler`]: SemisortStats::scheduler

use rayon::trace::{TraceEvent, TraceEventKind};

use crate::json::Json;
use crate::stats::SemisortStats;

/// Schema tag embedded in exported trace files.
pub const TRACE_SCHEMA: &str = "semisort-trace-v1";

/// The `pid` every event carries (one process; viewers want it present).
const PID: u64 = 1;

fn meta_thread(tid: u64, name: &str) -> Json {
    Json::Obj(vec![
        ("ph".into(), Json::str("M")),
        ("pid".into(), Json::num(PID)),
        ("tid".into(), Json::num(tid)),
        ("name".into(), Json::str("thread_name")),
        (
            "args".into(),
            Json::Obj(vec![("name".into(), Json::str(name))]),
        ),
    ])
}

fn duration_event(tid: u64, name: &str, ts_us: u64, dur_us: u64, args: Option<Json>) -> Json {
    let mut members = vec![
        ("ph".into(), Json::str("X")),
        ("pid".into(), Json::num(PID)),
        ("tid".into(), Json::num(tid)),
        ("name".into(), Json::str(name)),
        ("ts".into(), Json::num(ts_us)),
        ("dur".into(), Json::num(dur_us)),
    ];
    if let Some(args) = args {
        members.push(("args".into(), args));
    }
    Json::Obj(members)
}

fn instant_event(tid: u64, name: &str, ts_us: u64, args: Option<Json>) -> Json {
    let mut members = vec![
        ("ph".into(), Json::str("i")),
        ("pid".into(), Json::num(PID)),
        ("tid".into(), Json::num(tid)),
        ("name".into(), Json::str(name)),
        // Instant scope: thread-local tick mark.
        ("s".into(), Json::str("t")),
        ("ts".into(), Json::num(ts_us)),
    ];
    if let Some(args) = args {
        members.push(("args".into(), args));
    }
    Json::Obj(members)
}

/// Worker index → timeline row (row 0 is the external driver thread).
fn worker_tid(worker: usize) -> u64 {
    worker as u64 + 1
}

fn scheduler_event_json(ev: &TraceEvent) -> Json {
    let tid = worker_tid(ev.worker);
    match ev.kind {
        TraceEventKind::Park => duration_event(tid, "park", ev.start_us, ev.dur_us, None),
        TraceEventKind::StealSuccess => instant_event(
            tid,
            "steal",
            ev.start_us,
            Some(Json::Obj(vec![("victim".into(), Json::num(ev.arg))])),
        ),
        TraceEventKind::InlineDegrade => instant_event(tid, "inline-degrade", ev.start_us, None),
    }
}

/// Export one run's stats as a Chrome Trace Event Format document (see the
/// module docs for the layout). Pure function of `stats`; serialize with
/// `to_string()` and the file loads in Perfetto as-is.
pub fn chrome_trace(stats: &SemisortStats) -> Json {
    let mut events: Vec<Json> = Vec::new();
    // Thread-name metadata first: the driver row, then one row per worker
    // the snapshot knows about.
    events.push(meta_thread(0, "driver"));
    if let Some(sched) = &stats.scheduler {
        for w in 0..sched.num_threads {
            events.push(meta_thread(worker_tid(w), &format!("worker-{w}")));
        }
    }
    // Phase spans, on the row of the thread that ran them.
    for span in &stats.spans {
        let tid = span.worker.map_or(0, worker_tid);
        events.push(duration_event(
            tid,
            span.name,
            span.start_us,
            span.end_us - span.start_us,
            None,
        ));
    }
    // Scheduler ring events (parks as slices, steals/degrades as ticks).
    if let Some(sched) = &stats.scheduler {
        for ev in sched.events() {
            events.push(scheduler_event_json(ev));
        }
    }
    let other = Json::Obj(vec![
        ("n".into(), Json::num(stats.n as u64)),
        ("spans".into(), Json::num(stats.spans.len() as u64)),
        (
            "scheduler_events".into(),
            Json::num(
                stats
                    .scheduler
                    .as_ref()
                    .map_or(0, |s| s.events().count() as u64),
            ),
        ),
    ]);
    Json::Obj(vec![
        ("schema".into(), Json::str(TRACE_SCHEMA)),
        ("displayTimeUnit".into(), Json::str("ms")),
        ("traceEvents".into(), Json::Arr(events)),
        ("otherData".into(), other),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::SpanRecord;
    use rayon::trace::{SchedulerStats, WorkerStats};

    fn sample_stats() -> SemisortStats {
        SemisortStats {
            n: 100,
            spans: vec![
                SpanRecord {
                    name: "sample_sort",
                    start_us: 10,
                    end_us: 40,
                    worker: None,
                },
                SpanRecord {
                    name: "scatter",
                    start_us: 50,
                    end_us: 220,
                    worker: Some(1),
                },
            ],
            scheduler: Some(SchedulerStats {
                num_threads: 2,
                injector_submissions: 1,
                workers: vec![
                    WorkerStats {
                        events: vec![
                            TraceEvent {
                                kind: TraceEventKind::Park,
                                worker: 0,
                                start_us: 60,
                                dur_us: 500,
                                arg: 0,
                            },
                            TraceEvent {
                                kind: TraceEventKind::StealSuccess,
                                worker: 0,
                                start_us: 700,
                                dur_us: 0,
                                arg: 1,
                            },
                        ],
                        events_total: 2,
                        ..Default::default()
                    },
                    WorkerStats::default(),
                ],
            }),
            ..Default::default()
        }
    }

    #[test]
    fn trace_has_schema_and_round_trips_through_parse() {
        let doc = chrome_trace(&sample_stats());
        let text = doc.to_string();
        let back = Json::parse(&text).expect("trace self-parse");
        assert_eq!(
            back.get("schema").and_then(Json::as_str),
            Some(TRACE_SCHEMA)
        );
        assert_eq!(
            back.get("displayTimeUnit").and_then(Json::as_str),
            Some("ms")
        );
        assert!(back.get("traceEvents").and_then(Json::as_arr).is_some());
        assert_eq!(back, doc, "Display → parse must be lossless");
    }

    #[test]
    fn events_cover_spans_and_scheduler_rows() {
        let doc = chrome_trace(&sample_stats());
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        // 3 thread_name metas (driver + 2 workers) + 2 spans + 2 ring events.
        assert_eq!(events.len(), 7);
        let phase = |e: &Json| e.get("ph").and_then(Json::as_str).map(str::to_owned);
        assert_eq!(
            events
                .iter()
                .filter(|e| phase(e).as_deref() == Some("M"))
                .count(),
            3
        );
        // The external span sits on tid 0, the worker span on tid 2.
        let span0 = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("sample_sort"))
            .unwrap();
        assert_eq!(span0.get("tid").and_then(Json::as_u64), Some(0));
        let span1 = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("scatter"))
            .unwrap();
        assert_eq!(span1.get("tid").and_then(Json::as_u64), Some(2));
        assert_eq!(span1.get("dur").and_then(Json::as_u64), Some(170));
        // The park is a duration slice on worker 0's row (tid 1); the steal
        // is an instant with its victim in args.
        let park = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("park"))
            .unwrap();
        assert_eq!(park.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(park.get("tid").and_then(Json::as_u64), Some(1));
        assert_eq!(park.get("dur").and_then(Json::as_u64), Some(500));
        let steal = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("steal"))
            .unwrap();
        assert_eq!(steal.get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(
            steal
                .get("args")
                .and_then(|a| a.get("victim"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn stats_without_scheduler_still_export() {
        let stats = SemisortStats {
            n: 5,
            spans: vec![SpanRecord {
                name: "pack",
                start_us: 0,
                end_us: 9,
                worker: None,
            }],
            ..Default::default()
        };
        let doc = chrome_trace(&stats);
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        // Driver meta + the one span.
        assert_eq!(events.len(), 2);
        let other = doc.get("otherData").unwrap();
        assert_eq!(
            other.get("scheduler_events").and_then(Json::as_u64),
            Some(0)
        );
    }
}
