//! Cooperative cancellation and per-request deadlines.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between a caller
//! (a service shard, a CLI timeout, a test) and a running semisort. The
//! driver polls it at **phase boundaries** — never inside a phase's hot
//! loop — so cancellation latency is bounded by one phase, and a run that
//! observes the token either returns the input untouched or has already
//! committed the full output (DESIGN.md §14): there is no partial state.
//!
//! Two conditions trip the token:
//!
//! - **Explicit cancellation** via [`CancelToken::cancel`], mapped to
//!   [`SemisortError::Cancelled`].
//! - **A deadline** set with [`CancelToken::set_deadline_in`] or
//!   [`CancelToken::set_deadline_at`], expressed on the same monotonic
//!   microsecond clock as spans and trace events
//!   ([`crate::obs::epoch_micros`]), mapped to
//!   [`SemisortError::DeadlineExceeded`].
//!
//! The default token is **inert**: never cancelled, no deadline, and
//! [`CancelToken::check`] compiles to two relaxed atomic loads. Every
//! pre-existing entry point threads an inert token through the driver, so
//! callers that never heard of cancellation pay only those loads.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::error::SemisortError;
use crate::obs::epoch_micros;

/// Sentinel for "no deadline" in [`Inner::deadline_us`].
const NO_DEADLINE: u64 = u64::MAX;

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    /// Deadline in monotonic microseconds ([`epoch_micros`] clock);
    /// [`NO_DEADLINE`] means none is set.
    deadline_us: AtomicU64,
}

/// A cloneable cancellation/deadline handle polled at phase boundaries.
///
/// All clones share one state: cancelling any clone cancels them all.
/// `Default` yields an inert token (never fires), which is what the
/// non-cancellable entry points use internally.
///
/// ```
/// use semisort::cancel::CancelToken;
///
/// let token = CancelToken::new();
/// assert!(token.check().is_ok());
/// token.cancel();
/// assert!(token.check().is_err());
/// ```
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A fresh, inert token: not cancelled, no deadline.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline_us: AtomicU64::new(NO_DEADLINE),
            }),
        }
    }

    /// Trips the token; every subsequent [`check`](Self::check) on any
    /// clone returns [`SemisortError::Cancelled`]. Idempotent.
    pub fn cancel(&self) {
        // ORDERING: Release pairs with the Acquire in `is_cancelled` so a
        // worker that observes the flag also observes everything the
        // canceller did before tripping it.
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether [`cancel`](Self::cancel) has been called on any clone.
    /// Does not consult the deadline; use [`check`](Self::check) for the
    /// combined verdict.
    pub fn is_cancelled(&self) -> bool {
        // ORDERING: Acquire pairs with the Release in `cancel`/`reset`.
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Sets the deadline to `budget` from now on the shared monotonic
    /// clock. Overwrites any previous deadline.
    pub fn set_deadline_in(&self, budget: Duration) {
        let now = epoch_micros();
        let deadline = now.saturating_add(budget.as_micros().min(u128::from(u64::MAX)) as u64);
        self.set_deadline_at(deadline);
    }

    /// Sets an absolute deadline in [`epoch_micros`] microseconds.
    /// `u64::MAX` is reserved to mean "no deadline" (same as
    /// [`clear_deadline`](Self::clear_deadline)).
    pub fn set_deadline_at(&self, deadline_us: u64) {
        // ORDERING: Release pairs with the Acquire deadline loads in
        // `check`/`deadline_us`; the deadline must be visible before any
        // work it is meant to bound.
        self.inner.deadline_us.store(deadline_us, Ordering::Release);
    }

    /// Removes any deadline. Does not un-cancel an explicit
    /// [`cancel`](Self::cancel).
    pub fn clear_deadline(&self) {
        // ORDERING: Release, same pairing as `set_deadline_at`.
        self.inner.deadline_us.store(NO_DEADLINE, Ordering::Release);
    }

    /// Resets the token to the inert state: not cancelled, no deadline.
    ///
    /// Service shards reuse one token across requests; `reset` between
    /// requests is what makes that sound.
    pub fn reset(&self) {
        // ORDERING: Release so a shard that re-arms the token between
        // requests publishes the un-cancelled state before reuse.
        self.inner.cancelled.store(false, Ordering::Release);
        self.clear_deadline();
    }

    /// The deadline in monotonic microseconds, if one is set.
    pub fn deadline_us(&self) -> Option<u64> {
        // ORDERING: Acquire pairs with the Release deadline stores.
        match self.inner.deadline_us.load(Ordering::Acquire) {
            NO_DEADLINE => None,
            d => Some(d),
        }
    }

    /// The phase-boundary poll: `Ok(())` while the run may continue,
    /// otherwise the terminal error to surface.
    ///
    /// Explicit cancellation wins over a simultaneously-expired deadline
    /// (the caller asked first).
    pub fn check(&self) -> Result<(), SemisortError> {
        if self.is_cancelled() {
            return Err(SemisortError::Cancelled);
        }
        // ORDERING: Acquire pairs with the Release deadline stores.
        let deadline_us = self.inner.deadline_us.load(Ordering::Acquire);
        if deadline_us != NO_DEADLINE {
            let now_us = epoch_micros();
            if now_us >= deadline_us {
                return Err(SemisortError::DeadlineExceeded {
                    deadline_us,
                    now_us,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_inert() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.deadline_us(), None);
        assert!(t.check().is_ok());
    }

    #[test]
    fn cancel_is_shared_across_clones_and_idempotent() {
        let t = CancelToken::new();
        let clone = t.clone();
        clone.cancel();
        clone.cancel();
        assert!(t.is_cancelled());
        assert_eq!(t.check(), Err(SemisortError::Cancelled));
    }

    #[test]
    fn past_deadline_reports_both_clock_readings() {
        let t = CancelToken::new();
        t.set_deadline_at(1); // long past on the monotonic clock
        match t.check() {
            Err(SemisortError::DeadlineExceeded {
                deadline_us,
                now_us,
            }) => {
                assert_eq!(deadline_us, 1);
                assert!(now_us >= deadline_us);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn future_deadline_does_not_fire() {
        let t = CancelToken::new();
        t.set_deadline_in(Duration::from_secs(3600));
        assert!(t.check().is_ok());
        t.clear_deadline();
        assert_eq!(t.deadline_us(), None);
    }

    #[test]
    fn cancellation_wins_over_expired_deadline() {
        let t = CancelToken::new();
        t.set_deadline_at(1);
        t.cancel();
        assert_eq!(t.check(), Err(SemisortError::Cancelled));
    }

    #[test]
    fn reset_restores_inert_state() {
        let t = CancelToken::new();
        t.cancel();
        t.set_deadline_at(1);
        t.reset();
        assert!(t.check().is_ok());
        assert_eq!(t.deadline_us(), None);
    }
}
