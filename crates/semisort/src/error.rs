//! Failure handling: the error type of the `try_*` entry points and the
//! degradation vocabulary shared by the driver, stats, and CLI.
//!
//! The algorithm is Las Vegas: Corollary 3.4 bounds the probability that a
//! bucket overflows to `O(1/n^c)`, but *bounded* is not *zero*, and an
//! adversarial (hash-flooded) input can push the tail probability up.
//! The library therefore never treats overflow as fatal. Every terminal
//! failure — retry budget exhausted, arena memory budget exceeded, arena
//! allocation failed — is routed through the configured
//! [`OverflowPolicy`](crate::config::OverflowPolicy):
//!
//! - **Fallback** (default): degrade to the guaranteed `fallback_sort`
//!   comparison path. Still a correct semisort — `O(n log n)` work instead
//!   of `O(n)`, never a crash.
//! - **Error**: return a [`SemisortError`] from the `try_*` entry points.
//! - **Panic**: the pre-policy behavior, for callers that prefer to die
//!   loudly.
//!
//! [`DegradeReason`] records *why* a run degraded; it rides on
//! [`SemisortStats`](crate::stats::SemisortStats) and the stats JSON so a
//! production fleet can alert on degradations.

use std::fmt;

/// Why a semisort run could not complete on the linear-work path.
///
/// Returned by the `try_*` entry points when
/// [`OverflowPolicy::Error`](crate::config::OverflowPolicy::Error) is
/// selected; stringified into the panic message under
/// [`OverflowPolicy::Panic`](crate::config::OverflowPolicy::Panic).
///
/// `#[non_exhaustive]`: future versions may add failure kinds (as this one
/// added [`SemisortError::InvalidConfig`]); match with a wildcard arm.
#[derive(Clone, Copy, Debug, PartialEq)]
#[non_exhaustive]
pub enum SemisortError {
    /// The configuration failed validation (see
    /// [`SemisortConfig::try_validate`](crate::config::SemisortConfig::try_validate)
    /// and the builder's
    /// [`build`](crate::config::SemisortConfigBuilder::build)). Never a
    /// degradation: no policy can run a semisort on an invalid config.
    InvalidConfig {
        /// What was wrong (a static validation message).
        reason: &'static str,
    },
    /// Bucket overflow persisted through `max_retries` Las Vegas restarts.
    RetriesExhausted {
        /// Attempts made (initial run + retries).
        attempts: u32,
        /// The slack factor α the final attempt ran with.
        alpha: f64,
        /// Input size.
        n: usize,
    },
    /// The bucket plan of the next attempt would need an arena larger than
    /// [`SemisortConfig::max_arena_bytes`](crate::config::SemisortConfig::max_arena_bytes).
    ArenaBudgetExceeded {
        /// Bytes the attempt's slot array would have needed.
        required_bytes: usize,
        /// The configured budget.
        budget_bytes: usize,
        /// The attempt (0-based) whose plan burst the budget.
        attempt: u32,
    },
    /// The global allocator refused the arena allocation (or a
    /// [`FaultPlan`](crate::fault::FaultPlan) simulated that refusal).
    ArenaAllocFailed {
        /// Bytes requested.
        bytes: usize,
        /// The attempt (0-based) whose allocation failed.
        attempt: u32,
    },
    /// A service refused the request because accepting it would exceed a
    /// resource budget (admission control: shard queues full, request too
    /// large, or the estimated arena over
    /// [`SemisortConfig::max_arena_bytes`](crate::config::SemisortConfig::max_arena_bytes)).
    /// Shedding load with this error — instead of queueing unboundedly —
    /// is what keeps an overloaded `semisortd` answering.
    Overloaded {
        /// What was over budget (a static admission-check label, e.g.
        /// `"queue-full"`, `"arena-estimate"`, `"request-records"`,
        /// `"draining"`).
        reason: &'static str,
        /// The demand that was measured against the limit (units depend on
        /// `reason`: bytes, records, or queued requests).
        required: u64,
        /// The configured limit the demand exceeded.
        limit: u64,
    },
    /// The run's [`CancelToken`](crate::cancel::CancelToken) deadline
    /// passed before the run completed. Checked at phase boundaries, so
    /// the caller's buffers are either untouched or fully semisorted —
    /// never partially permuted. Surfaced under **every**
    /// [`OverflowPolicy`](crate::config::OverflowPolicy): falling back to
    /// a comparison sort would burn *more* time, which is exactly what a
    /// deadline forbids.
    DeadlineExceeded {
        /// The deadline, µs since the process epoch
        /// (see [`crate::obs::epoch_micros`]).
        deadline_us: u64,
        /// When the overrun was observed, µs since the same epoch.
        now_us: u64,
    },
    /// The run's [`CancelToken`](crate::cancel::CancelToken) was cancelled
    /// explicitly (client disconnect, shutdown drain). Same
    /// phase-boundary / policy-independent semantics as
    /// [`SemisortError::DeadlineExceeded`].
    Cancelled,
    /// The engine shard serving this request was poisoned by a panic and
    /// has been (or is being) rebuilt. The request did not complete; a
    /// retry against the rebuilt shard is safe.
    EnginePoisoned {
        /// Which shard panicked (service-assigned index).
        shard: u32,
    },
}

impl SemisortError {
    /// Stable machine-readable kind string (used in structured log/error
    /// lines and the CLI's error output).
    pub fn kind(&self) -> &'static str {
        match self {
            SemisortError::InvalidConfig { .. } => "invalid-config",
            SemisortError::RetriesExhausted { .. } => "retries-exhausted",
            SemisortError::ArenaBudgetExceeded { .. } => "arena-budget-exceeded",
            SemisortError::ArenaAllocFailed { .. } => "arena-alloc-failed",
            SemisortError::Overloaded { .. } => "overloaded",
            SemisortError::DeadlineExceeded { .. } => "deadline-exceeded",
            SemisortError::Cancelled => "cancelled",
            SemisortError::EnginePoisoned { .. } => "engine-poisoned",
        }
    }

    /// Process exit code for this error in the CLI/service binaries, so a
    /// supervisor (or the chaos soak) can distinguish failure classes
    /// without parsing stderr. The structured `{"event":"error"}` line
    /// carries the same value as `"exit_code"`.
    ///
    /// `1` — terminal algorithmic failure (retries / arena budget / alloc);
    /// `2` — invalid configuration or usage;
    /// `3` — overloaded (load was shed; retry later);
    /// `4` — deadline exceeded;
    /// `5` — cancelled;
    /// `6` — engine shard poisoned (rebuilt; retry is safe).
    pub fn exit_code(&self) -> i32 {
        match self {
            SemisortError::RetriesExhausted { .. }
            | SemisortError::ArenaBudgetExceeded { .. }
            | SemisortError::ArenaAllocFailed { .. } => 1,
            SemisortError::InvalidConfig { .. } => 2,
            SemisortError::Overloaded { .. } => 3,
            SemisortError::DeadlineExceeded { .. } => 4,
            SemisortError::Cancelled => 5,
            SemisortError::EnginePoisoned { .. } => 6,
        }
    }

    /// The [`DegradeReason`] this error maps to under
    /// [`OverflowPolicy::Fallback`](crate::config::OverflowPolicy::Fallback),
    /// or `None` when the error is not a degradable runtime failure
    /// ([`SemisortError::InvalidConfig`] cannot be recovered by falling back
    /// to a comparison sort — the configuration itself is wrong).
    #[must_use]
    pub fn degrade_reason(&self) -> Option<DegradeReason> {
        match self {
            SemisortError::RetriesExhausted { .. } => Some(DegradeReason::RetriesExhausted),
            SemisortError::ArenaBudgetExceeded { .. } => Some(DegradeReason::BudgetExceeded),
            SemisortError::ArenaAllocFailed { .. } => Some(DegradeReason::AllocFailed),
            // Cancellation-family and service errors are never degradable:
            // the comparison-sort fallback costs *more* time (deadline /
            // cancel) or re-runs work the service already refused
            // (overloaded / poisoned).
            _ => None,
        }
    }
}

impl fmt::Display for SemisortError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemisortError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
            SemisortError::RetriesExhausted { attempts, alpha, n } => write!(
                f,
                "bucket overflow persisted after {attempts} attempts \
                 (α grown to {alpha:.2}); input size {n}"
            ),
            SemisortError::ArenaBudgetExceeded {
                required_bytes,
                budget_bytes,
                attempt,
            } => write!(
                f,
                "attempt {attempt} needs a {required_bytes}-byte arena, \
                 over the {budget_bytes}-byte budget"
            ),
            SemisortError::ArenaAllocFailed { bytes, attempt } => {
                write!(
                    f,
                    "arena allocation of {bytes} bytes failed on attempt {attempt}"
                )
            }
            SemisortError::Overloaded {
                reason,
                required,
                limit,
            } => write!(
                f,
                "overloaded ({reason}): demand {required} exceeds limit {limit}; \
                 request shed, retry with backoff"
            ),
            SemisortError::DeadlineExceeded {
                deadline_us,
                now_us,
            } => write!(
                f,
                "deadline exceeded: {}µs past the {deadline_us}µs deadline",
                now_us.saturating_sub(*deadline_us)
            ),
            SemisortError::Cancelled => write!(f, "run cancelled before completion"),
            SemisortError::EnginePoisoned { shard } => write!(
                f,
                "engine shard {shard} was poisoned by a panic and rebuilt; retry is safe"
            ),
        }
    }
}

impl std::error::Error for SemisortError {}

/// Why a run degraded to the comparison-sort fallback (only set when it
/// did; `None` on the linear-work path and on the pre-existing
/// `seq_threshold` / reserved-key fallbacks, which are by-construction
/// routing decisions rather than failures).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegradeReason {
    /// The Las Vegas retry budget ran out.
    RetriesExhausted,
    /// The next attempt's arena would exceed `max_arena_bytes`.
    BudgetExceeded,
    /// The arena allocation itself failed.
    AllocFailed,
}

impl DegradeReason {
    /// Stable spelling used in the stats JSON and log events.
    pub fn as_str(self) -> &'static str {
        match self {
            DegradeReason::RetriesExhausted => "retries-exhausted",
            DegradeReason::BudgetExceeded => "budget-exceeded",
            DegradeReason::AllocFailed => "alloc-failed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_reasons_align() {
        let e = SemisortError::RetriesExhausted {
            attempts: 4,
            alpha: 8.8,
            n: 100,
        };
        assert_eq!(e.kind(), "retries-exhausted");
        assert_eq!(e.degrade_reason(), Some(DegradeReason::RetriesExhausted));
        assert_eq!(e.degrade_reason().unwrap().as_str(), e.kind());

        let e = SemisortError::ArenaBudgetExceeded {
            required_bytes: 1 << 20,
            budget_bytes: 1 << 10,
            attempt: 1,
        };
        assert_eq!(e.kind(), "arena-budget-exceeded");
        assert_eq!(e.degrade_reason().unwrap().as_str(), "budget-exceeded");

        let e = SemisortError::ArenaAllocFailed {
            bytes: 16,
            attempt: 0,
        };
        assert_eq!(e.kind(), "arena-alloc-failed");
        assert_eq!(e.degrade_reason().unwrap().as_str(), "alloc-failed");
    }

    #[test]
    fn service_variants_are_terminal_not_degradable() {
        let overloaded = SemisortError::Overloaded {
            reason: "queue-full",
            required: 9,
            limit: 8,
        };
        assert_eq!(overloaded.kind(), "overloaded");
        assert_eq!(overloaded.degrade_reason(), None);
        assert_eq!(overloaded.exit_code(), 3);
        assert!(overloaded.to_string().contains("queue-full"));

        let deadline = SemisortError::DeadlineExceeded {
            deadline_us: 1000,
            now_us: 1500,
        };
        assert_eq!(deadline.kind(), "deadline-exceeded");
        assert_eq!(deadline.degrade_reason(), None);
        assert_eq!(deadline.exit_code(), 4);
        assert!(deadline.to_string().contains("500µs"), "{deadline}");

        assert_eq!(SemisortError::Cancelled.kind(), "cancelled");
        assert_eq!(SemisortError::Cancelled.exit_code(), 5);
        assert_eq!(SemisortError::Cancelled.degrade_reason(), None);

        let poisoned = SemisortError::EnginePoisoned { shard: 3 };
        assert_eq!(poisoned.kind(), "engine-poisoned");
        assert_eq!(poisoned.degrade_reason(), None);
        assert_eq!(poisoned.exit_code(), 6);
        assert!(poisoned.to_string().contains("shard 3"));
    }

    #[test]
    fn exit_codes_partition_the_error_space() {
        // Degradable runtime failures share exit code 1; every other kind
        // gets a distinct code a supervisor can branch on.
        let runtime = SemisortError::RetriesExhausted {
            attempts: 4,
            alpha: 8.8,
            n: 10,
        };
        assert_eq!(runtime.exit_code(), 1);
        assert_eq!(SemisortError::InvalidConfig { reason: "x" }.exit_code(), 2);
        let mut codes = vec![
            runtime.exit_code(),
            SemisortError::InvalidConfig { reason: "x" }.exit_code(),
            SemisortError::Overloaded {
                reason: "r",
                required: 1,
                limit: 0,
            }
            .exit_code(),
            SemisortError::DeadlineExceeded {
                deadline_us: 0,
                now_us: 1,
            }
            .exit_code(),
            SemisortError::Cancelled.exit_code(),
            SemisortError::EnginePoisoned { shard: 0 }.exit_code(),
        ];
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 6, "codes must be pairwise distinct");
    }

    #[test]
    fn invalid_config_is_not_degradable() {
        let e = SemisortError::InvalidConfig {
            reason: "α must exceed 1",
        };
        assert_eq!(e.kind(), "invalid-config");
        assert_eq!(e.degrade_reason(), None);
        assert!(e.to_string().contains("α must exceed 1"));
    }

    #[test]
    fn display_is_informative() {
        let msg = SemisortError::RetriesExhausted {
            attempts: 3,
            alpha: 4.4,
            n: 1000,
        }
        .to_string();
        assert!(msg.contains("3 attempts") && msg.contains("1000"), "{msg}");
        let msg = SemisortError::ArenaBudgetExceeded {
            required_bytes: 2048,
            budget_bytes: 1024,
            attempt: 2,
        }
        .to_string();
        assert!(msg.contains("2048") && msg.contains("1024"), "{msg}");
    }
}
