//! Failure handling: the error type of the `try_*` entry points and the
//! degradation vocabulary shared by the driver, stats, and CLI.
//!
//! The algorithm is Las Vegas: Corollary 3.4 bounds the probability that a
//! bucket overflows to `O(1/n^c)`, but *bounded* is not *zero*, and an
//! adversarial (hash-flooded) input can push the tail probability up.
//! The library therefore never treats overflow as fatal. Every terminal
//! failure — retry budget exhausted, arena memory budget exceeded, arena
//! allocation failed — is routed through the configured
//! [`OverflowPolicy`](crate::config::OverflowPolicy):
//!
//! - **Fallback** (default): degrade to the guaranteed `fallback_sort`
//!   comparison path. Still a correct semisort — `O(n log n)` work instead
//!   of `O(n)`, never a crash.
//! - **Error**: return a [`SemisortError`] from the `try_*` entry points.
//! - **Panic**: the pre-policy behavior, for callers that prefer to die
//!   loudly.
//!
//! [`DegradeReason`] records *why* a run degraded; it rides on
//! [`SemisortStats`](crate::stats::SemisortStats) and the stats JSON so a
//! production fleet can alert on degradations.

use std::fmt;

/// Why a semisort run could not complete on the linear-work path.
///
/// Returned by the `try_*` entry points when
/// [`OverflowPolicy::Error`](crate::config::OverflowPolicy::Error) is
/// selected; stringified into the panic message under
/// [`OverflowPolicy::Panic`](crate::config::OverflowPolicy::Panic).
///
/// `#[non_exhaustive]`: future versions may add failure kinds (as this one
/// added [`SemisortError::InvalidConfig`]); match with a wildcard arm.
#[derive(Clone, Copy, Debug, PartialEq)]
#[non_exhaustive]
pub enum SemisortError {
    /// The configuration failed validation (see
    /// [`SemisortConfig::try_validate`](crate::config::SemisortConfig::try_validate)
    /// and the builder's
    /// [`build`](crate::config::SemisortConfigBuilder::build)). Never a
    /// degradation: no policy can run a semisort on an invalid config.
    InvalidConfig {
        /// What was wrong (a static validation message).
        reason: &'static str,
    },
    /// Bucket overflow persisted through `max_retries` Las Vegas restarts.
    RetriesExhausted {
        /// Attempts made (initial run + retries).
        attempts: u32,
        /// The slack factor α the final attempt ran with.
        alpha: f64,
        /// Input size.
        n: usize,
    },
    /// The bucket plan of the next attempt would need an arena larger than
    /// [`SemisortConfig::max_arena_bytes`](crate::config::SemisortConfig::max_arena_bytes).
    ArenaBudgetExceeded {
        /// Bytes the attempt's slot array would have needed.
        required_bytes: usize,
        /// The configured budget.
        budget_bytes: usize,
        /// The attempt (0-based) whose plan burst the budget.
        attempt: u32,
    },
    /// The global allocator refused the arena allocation (or a
    /// [`FaultPlan`](crate::fault::FaultPlan) simulated that refusal).
    ArenaAllocFailed {
        /// Bytes requested.
        bytes: usize,
        /// The attempt (0-based) whose allocation failed.
        attempt: u32,
    },
}

impl SemisortError {
    /// Stable machine-readable kind string (used in structured log/error
    /// lines and the CLI's error output).
    pub fn kind(&self) -> &'static str {
        match self {
            SemisortError::InvalidConfig { .. } => "invalid-config",
            SemisortError::RetriesExhausted { .. } => "retries-exhausted",
            SemisortError::ArenaBudgetExceeded { .. } => "arena-budget-exceeded",
            SemisortError::ArenaAllocFailed { .. } => "arena-alloc-failed",
        }
    }

    /// The [`DegradeReason`] this error maps to under
    /// [`OverflowPolicy::Fallback`](crate::config::OverflowPolicy::Fallback),
    /// or `None` when the error is not a degradable runtime failure
    /// ([`SemisortError::InvalidConfig`] cannot be recovered by falling back
    /// to a comparison sort — the configuration itself is wrong).
    #[must_use]
    pub fn degrade_reason(&self) -> Option<DegradeReason> {
        match self {
            SemisortError::InvalidConfig { .. } => None,
            SemisortError::RetriesExhausted { .. } => Some(DegradeReason::RetriesExhausted),
            SemisortError::ArenaBudgetExceeded { .. } => Some(DegradeReason::BudgetExceeded),
            SemisortError::ArenaAllocFailed { .. } => Some(DegradeReason::AllocFailed),
        }
    }
}

impl fmt::Display for SemisortError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemisortError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
            SemisortError::RetriesExhausted { attempts, alpha, n } => write!(
                f,
                "bucket overflow persisted after {attempts} attempts \
                 (α grown to {alpha:.2}); input size {n}"
            ),
            SemisortError::ArenaBudgetExceeded {
                required_bytes,
                budget_bytes,
                attempt,
            } => write!(
                f,
                "attempt {attempt} needs a {required_bytes}-byte arena, \
                 over the {budget_bytes}-byte budget"
            ),
            SemisortError::ArenaAllocFailed { bytes, attempt } => {
                write!(
                    f,
                    "arena allocation of {bytes} bytes failed on attempt {attempt}"
                )
            }
        }
    }
}

impl std::error::Error for SemisortError {}

/// Why a run degraded to the comparison-sort fallback (only set when it
/// did; `None` on the linear-work path and on the pre-existing
/// `seq_threshold` / reserved-key fallbacks, which are by-construction
/// routing decisions rather than failures).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegradeReason {
    /// The Las Vegas retry budget ran out.
    RetriesExhausted,
    /// The next attempt's arena would exceed `max_arena_bytes`.
    BudgetExceeded,
    /// The arena allocation itself failed.
    AllocFailed,
}

impl DegradeReason {
    /// Stable spelling used in the stats JSON and log events.
    pub fn as_str(self) -> &'static str {
        match self {
            DegradeReason::RetriesExhausted => "retries-exhausted",
            DegradeReason::BudgetExceeded => "budget-exceeded",
            DegradeReason::AllocFailed => "alloc-failed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_reasons_align() {
        let e = SemisortError::RetriesExhausted {
            attempts: 4,
            alpha: 8.8,
            n: 100,
        };
        assert_eq!(e.kind(), "retries-exhausted");
        assert_eq!(e.degrade_reason(), Some(DegradeReason::RetriesExhausted));
        assert_eq!(e.degrade_reason().unwrap().as_str(), e.kind());

        let e = SemisortError::ArenaBudgetExceeded {
            required_bytes: 1 << 20,
            budget_bytes: 1 << 10,
            attempt: 1,
        };
        assert_eq!(e.kind(), "arena-budget-exceeded");
        assert_eq!(e.degrade_reason().unwrap().as_str(), "budget-exceeded");

        let e = SemisortError::ArenaAllocFailed {
            bytes: 16,
            attempt: 0,
        };
        assert_eq!(e.kind(), "arena-alloc-failed");
        assert_eq!(e.degrade_reason().unwrap().as_str(), "alloc-failed");
    }

    #[test]
    fn invalid_config_is_not_degradable() {
        let e = SemisortError::InvalidConfig {
            reason: "α must exceed 1",
        };
        assert_eq!(e.kind(), "invalid-config");
        assert_eq!(e.degrade_reason(), None);
        assert!(e.to_string().contains("α must exceed 1"));
    }

    #[test]
    fn display_is_informative() {
        let msg = SemisortError::RetriesExhausted {
            attempts: 3,
            alpha: 4.4,
            n: 1000,
        }
        .to_string();
        assert!(msg.contains("3 attempts") && msg.contains("1000"), "{msg}");
        let msg = SemisortError::ArenaBudgetExceeded {
            required_bytes: 2048,
            budget_bytes: 1024,
            attempt: 2,
        }
        .to_string();
        assert!(msg.contains("2048") && msg.contains("1024"), "{msg}");
    }
}
