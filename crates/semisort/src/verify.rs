//! Semisortedness checking — used by tests, examples, and the Las Vegas
//! verification path.

use std::collections::HashMap;
use std::hash::Hash;

/// True iff equal keys are contiguous: "the only records between two equal
/// records are other equal records".
///
/// `O(n)` time and space (one hash map of first/last positions per key).
///
/// ```
/// assert!(semisort::verify::is_semisorted_by(&[2, 2, 5, 1, 1], |&x| x));
/// assert!(!semisort::verify::is_semisorted_by(&[2, 5, 2], |&x| x));
/// ```
pub fn is_semisorted_by<T, K: Eq + Hash, F: Fn(&T) -> K>(records: &[T], key: F) -> bool {
    let mut last_seen: HashMap<K, usize> = HashMap::new();
    for (i, r) in records.iter().enumerate() {
        let k = key(r);
        if let Some(&prev) = last_seen.get(&k) {
            if prev != i - 1 {
                return false; // the key's run was interrupted
            }
        }
        last_seen.insert(k, i);
    }
    true
}

/// True iff `a` and `b` contain the same multiset of elements.
pub fn is_permutation_of<T: Ord + Clone>(a: &[T], b: &[T]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut x = a.to_vec();
    let mut y = b.to_vec();
    x.sort_unstable();
    y.sort_unstable();
    x == y
}

/// The contiguous key runs of a semisorted array: `(key, start, len)` per
/// distinct key, in output order. Panics in debug builds if the input is
/// not semisorted.
pub fn runs_by<T, K: Eq + Hash + Copy, F: Fn(&T) -> K>(
    records: &[T],
    key: F,
) -> Vec<(K, usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < records.len() {
        let k = key(&records[i]);
        let start = i;
        while i < records.len() && key(&records[i]) == k {
            i += 1;
        }
        out.push((k, start, i - start));
    }
    debug_assert!(
        {
            let keys: Vec<K> = out.iter().map(|r| r.0).collect();
            let distinct: std::collections::HashSet<_> = keys.iter().collect();
            distinct.len() == keys.len()
        },
        "input was not semisorted: a key appears in two runs"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_semisorted() {
        assert!(is_semisorted_by(&[3, 3, 1, 1, 1, 2], |&x| x));
        assert!(is_semisorted_by(&[1, 2, 3], |&x| x));
        assert!(is_semisorted_by::<i32, i32, _>(&[], |&x| x));
        assert!(is_semisorted_by(&[7], |&x| x));
    }

    #[test]
    fn detects_violations() {
        assert!(!is_semisorted_by(&[1, 2, 1], |&x| x));
        assert!(!is_semisorted_by(&[3, 3, 1, 3], |&x| x));
    }

    #[test]
    fn sorted_is_semisorted() {
        let v: Vec<u32> = (0..1000).map(|i| i / 10).collect();
        assert!(is_semisorted_by(&v, |&x| x));
    }

    #[test]
    fn permutation_check() {
        assert!(is_permutation_of(&[1, 2, 2, 3], &[2, 3, 1, 2]));
        assert!(!is_permutation_of(&[1, 2], &[1, 1]));
        assert!(!is_permutation_of(&[1], &[1, 1]));
    }

    #[test]
    fn runs_extraction() {
        let r = runs_by(&[5, 5, 2, 9, 9, 9], |&x| x);
        assert_eq!(r, vec![(5, 0, 2), (2, 2, 1), (9, 3, 3)]);
    }

    #[test]
    fn runs_with_struct_key() {
        let data = vec![("a", 1), ("a", 2), ("b", 3)];
        let r = runs_by(&data, |x| x.0);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0], ("a", 0, 2));
        assert_eq!(r[1], ("b", 2, 1));
    }
}
