//! Phase 1a: strided sampling.
//!
//! "When sampling, the i'th sample is randomly picked from the
//! (⌈(i−1)/p⌉+1)'th to the ⌈i/p⌉'th record. Theoretically, for each key,
//! the average number of samples using this sampling scheme is the same as
//! the method that picks every sample independently." (§4 Phase 1.)
//!
//! With `p = 1/2^shift`, stride `w = 2^shift`: sample `i` is a uniformly
//! random record from the i-th stride `[i·w, min((i+1)·w, n))`. One sample
//! per stride gives exactly `⌈n/w⌉` samples with zero coordination.

use parlay::random::Rng;
use rayon::prelude::*;

/// Draw the strided sample of `keys`: one uniformly random key per stride
/// of `2^shift` records. Deterministic in `rng`.
pub fn strided_sample(keys: &[u64], shift: u32, rng: Rng) -> Vec<u64> {
    strided_sample_by(keys.len(), shift, rng, |i| keys[i])
}

/// Generalized strided sample over any indexed key accessor (lets the
/// driver sample record keys without materializing a separate key array).
pub fn strided_sample_by<F>(n: usize, shift: u32, rng: Rng, key_at: F) -> Vec<u64>
where
    F: Fn(usize) -> u64 + Send + Sync,
{
    let mut out = Vec::new();
    strided_sample_by_into(n, shift, rng, key_at, &mut out);
    out
}

/// [`strided_sample_by`] writing into a caller-owned buffer (cleared
/// first), so the engine's pooled sample vector keeps its capacity across
/// calls and attempts.
pub fn strided_sample_by_into<F>(n: usize, shift: u32, rng: Rng, key_at: F, out: &mut Vec<u64>)
where
    F: Fn(usize) -> u64 + Send + Sync,
{
    let stride = 1usize << shift;
    let count = n.div_ceil(stride);
    out.clear();
    out.resize(count, 0);
    out.par_iter_mut()
        .enumerate()
        .with_min_len(2048)
        .for_each(|(i, slot)| {
            let lo = i * stride;
            let hi = ((i + 1) * stride).min(n);
            let off = rng.at_bounded(i as u64, (hi - lo) as u64) as usize;
            *slot = key_at(lo + off);
        });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_count_is_ceil_n_over_stride() {
        let keys: Vec<u64> = (0..1000).collect();
        assert_eq!(strided_sample(&keys, 4, Rng::new(1)).len(), 63); // ⌈1000/16⌉
        assert_eq!(strided_sample(&keys, 3, Rng::new(1)).len(), 125);
        let keys17: Vec<u64> = (0..17).collect();
        assert_eq!(strided_sample(&keys17, 4, Rng::new(1)).len(), 2);
    }

    #[test]
    fn empty_input_empty_sample() {
        assert!(strided_sample(&[], 4, Rng::new(0)).is_empty());
    }

    #[test]
    fn each_sample_comes_from_its_stride() {
        // Keys encode their index, so provenance is checkable.
        let keys: Vec<u64> = (0..100_000).collect();
        let s = strided_sample(&keys, 4, Rng::new(7));
        for (i, &k) in s.iter().enumerate() {
            let lo = (i * 16) as u64;
            let hi = ((i + 1) * 16).min(keys.len()) as u64;
            assert!((lo..hi).contains(&k), "sample {i} = {k} outside stride");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let keys: Vec<u64> = (0..10_000).map(parlay::hash64).collect();
        assert_eq!(
            strided_sample(&keys, 4, Rng::new(3)),
            strided_sample(&keys, 4, Rng::new(3))
        );
        assert_ne!(
            strided_sample(&keys, 4, Rng::new(3)),
            strided_sample(&keys, 4, Rng::new(4))
        );
    }

    #[test]
    fn into_variant_matches_and_keeps_capacity() {
        let keys: Vec<u64> = (0..50_000).map(parlay::hash64).collect();
        let want = strided_sample(&keys, 4, Rng::new(3));
        let mut buf = Vec::new();
        strided_sample_by_into(keys.len(), 4, Rng::new(3), |i| keys[i], &mut buf);
        assert_eq!(buf, want);
        let cap = buf.capacity();
        // A smaller re-fill reuses the buffer without reallocating.
        strided_sample_by_into(1000, 4, Rng::new(3), |i| keys[i], &mut buf);
        assert_eq!(buf.len(), 63);
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn per_key_sampling_rate_is_unbiased() {
        // A key occupying x% of the input should occupy ≈x% of the sample.
        let n = 320_000;
        let keys: Vec<u64> = (0..n as u64)
            .map(|i| if i % 4 == 0 { 1 } else { 2 })
            .collect();
        let s = strided_sample(&keys, 4, Rng::new(11));
        let ones = s.iter().filter(|&&k| k == 1).count() as f64;
        let frac = ones / s.len() as f64;
        assert!((frac - 0.25).abs() < 0.02, "frac={frac}");
    }
}
