//! Deterministic fault injection for the Las Vegas machinery.
//!
//! Corollary 3.4 makes bucket overflow an `O(1/n^c)` event, which means the
//! escalation ladder in the driver — retry, degrade to the comparison
//! fallback, error, panic — is essentially unreachable by feeding the
//! library ordinary inputs. Code that only runs when the adversary shows up
//! is code that has never run at all, so this module makes every failure
//! path a first-class, deterministically testable input:
//!
//! - **Forced scatter overflow** — the scatter reports a Corollary 3.4
//!   bucket overflow for the first record routed to a bucket of the chosen
//!   [`FaultClass`], exercising the real `OverflowCapture` → retry → α
//!   growth machinery in both [`crate::scatter`] and
//!   [`crate::blocked_scatter`].
//! - **Failed arena allocation** — `try_allocate_arena` reports allocator
//!   refusal without asking the allocator, driving the alloc-failure arm of
//!   the escalation policy.
//! - **Corrupted sample** — the Phase 1 sample is decimated before bucket
//!   planning, simulating the sample badly underestimating bucket sizes;
//!   unlike the forced overflow this triggers a *natural* overflow
//!   downstream, end-to-end through estimate/buckets/scatter.
//! - **Forced panic** — the driver panics mid-scatter, exercising the
//!   `catch_unwind` poison/rebuild containment in the `semisortd` service
//!   layer (DESIGN.md §14) and the no-dangling-leases guarantee of
//!   [`crate::pool::ScratchPool`].
//!
//! Faults are armed per attempt: each knob fires on the first *k* attempts
//! of a run (attempts are 0-based internally; `k = 1` faults only the
//! initial attempt, so the first retry succeeds). A [`FaultPlan`] rides on
//! [`SemisortConfig`](crate::config::SemisortConfig) — `Copy`, inert by
//! default, and parseable from the CLI's `--fault` dev flag.

/// Which bucket class a forced scatter overflow targets.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FaultClass {
    /// The first record of any bucket triggers the overflow.
    #[default]
    Any,
    /// Only a heavy-key bucket triggers it (inert if the plan has no heavy
    /// keys — the fault then simply does not fire).
    Heavy,
    /// Only a light bucket triggers it.
    Light,
}

impl FaultClass {
    /// Whether a record routed to a bucket of the given heaviness trips
    /// this fault.
    #[inline]
    pub fn matches(self, is_heavy: bool) -> bool {
        match self {
            FaultClass::Any => true,
            FaultClass::Heavy => is_heavy,
            FaultClass::Light => !is_heavy,
        }
    }
}

/// A deterministic fault schedule, carried on the config. Each field is the
/// number of leading attempts (0 = never) on which that fault fires.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Force a scatter overflow on the first `k` attempts.
    pub force_overflow_attempts: u32,
    /// Bucket class the forced overflow targets.
    pub force_overflow_class: FaultClass,
    /// Fail the arena allocation on the first `k` attempts.
    pub fail_alloc_attempts: u32,
    /// Corrupt (decimate) the Phase 1 sample on the first `k` attempts.
    pub corrupt_sample_attempts: u32,
    /// Panic mid-scatter on the first `k` attempts (service-layer chaos:
    /// the driver raises a real unwind for `catch_unwind` containment to
    /// absorb).
    pub panic_attempts: u32,
}

/// Keep-1-in-N decimation factor used by [`FaultPlan::corrupt_sample`]: the
/// surviving sample under-counts every key by ~8×, so `α·f(s)` allocates
/// far too few slots and the scatter overflows naturally.
pub const CORRUPT_SAMPLE_KEEP: usize = 8;

impl FaultPlan {
    /// A plan that injects nothing (the default).
    pub const NONE: FaultPlan = FaultPlan {
        force_overflow_attempts: 0,
        force_overflow_class: FaultClass::Any,
        fail_alloc_attempts: 0,
        corrupt_sample_attempts: 0,
        panic_attempts: 0,
    };

    /// Whether this plan injects no faults at all.
    pub fn is_inert(&self) -> bool {
        self.force_overflow_attempts == 0
            && self.fail_alloc_attempts == 0
            && self.corrupt_sample_attempts == 0
            && self.panic_attempts == 0
    }

    /// The bucket class to force-overflow on this (0-based) attempt, if any.
    pub fn forced_overflow(&self, attempt: u32) -> Option<FaultClass> {
        (attempt < self.force_overflow_attempts).then_some(self.force_overflow_class)
    }

    /// Whether the arena allocation fails on this (0-based) attempt.
    pub fn alloc_fails(&self, attempt: u32) -> bool {
        attempt < self.fail_alloc_attempts
    }

    /// Whether the sample is corrupted on this (0-based) attempt.
    pub fn sample_corrupted(&self, attempt: u32) -> bool {
        attempt < self.corrupt_sample_attempts
    }

    /// Whether the driver panics mid-scatter on this (0-based) attempt.
    pub fn panics(&self, attempt: u32) -> bool {
        attempt < self.panic_attempts
    }

    /// Decimate `sample` in place, keeping every
    /// [`CORRUPT_SAMPLE_KEEP`]-th entry: the classic "sample massively
    /// underestimates the input" failure Corollary 3.4 insures against.
    /// Deterministic; preserves relative order (call before the sample
    /// sort or after — either way the survivors are a valid, tiny sample).
    pub fn corrupt_sample(sample: &mut Vec<u64>) {
        let mut i = 0usize;
        sample.retain(|_| {
            let keep = i.is_multiple_of(CORRUPT_SAMPLE_KEEP);
            i += 1;
            keep
        });
    }

    /// Parse the CLI `--fault` spec: comma-separated `kind:attempts`
    /// clauses, e.g. `force-overflow:2` or
    /// `corrupt-sample:1,fail-alloc:1`. Kinds: `force-overflow`,
    /// `force-overflow-heavy`, `force-overflow-light`, `fail-alloc`,
    /// `corrupt-sample`, `panic`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        if spec.is_empty() || spec == "none" {
            return Ok(plan);
        }
        for clause in spec.split(',') {
            let (kind, count) = clause
                .split_once(':')
                .ok_or_else(|| format!("fault clause `{clause}` is not `kind:attempts`"))?;
            let k: u32 = count
                .parse()
                .map_err(|_| format!("bad attempt count `{count}` in `{clause}`"))?;
            match kind {
                "force-overflow" => {
                    plan.force_overflow_attempts = k;
                    plan.force_overflow_class = FaultClass::Any;
                }
                "force-overflow-heavy" => {
                    plan.force_overflow_attempts = k;
                    plan.force_overflow_class = FaultClass::Heavy;
                }
                "force-overflow-light" => {
                    plan.force_overflow_attempts = k;
                    plan.force_overflow_class = FaultClass::Light;
                }
                "fail-alloc" => plan.fail_alloc_attempts = k,
                "corrupt-sample" => plan.corrupt_sample_attempts = k,
                "panic" => plan.panic_attempts = k,
                other => return Err(format!("unknown fault kind `{other}`")),
            }
        }
        Ok(plan)
    }

    /// The canonical spec string (round-trips through [`FaultPlan::parse`];
    /// `"none"` for an inert plan). Echoed into the stats JSON.
    pub fn spec(&self) -> String {
        if self.is_inert() {
            return "none".into();
        }
        let mut parts = Vec::new();
        if self.force_overflow_attempts > 0 {
            let kind = match self.force_overflow_class {
                FaultClass::Any => "force-overflow",
                FaultClass::Heavy => "force-overflow-heavy",
                FaultClass::Light => "force-overflow-light",
            };
            parts.push(format!("{kind}:{}", self.force_overflow_attempts));
        }
        if self.fail_alloc_attempts > 0 {
            parts.push(format!("fail-alloc:{}", self.fail_alloc_attempts));
        }
        if self.corrupt_sample_attempts > 0 {
            parts.push(format!("corrupt-sample:{}", self.corrupt_sample_attempts));
        }
        if self.panic_attempts > 0 {
            parts.push(format!("panic:{}", self.panic_attempts));
        }
        parts.join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_inert() {
        let p = FaultPlan::default();
        assert!(p.is_inert());
        assert_eq!(p, FaultPlan::NONE);
        assert_eq!(p.forced_overflow(0), None);
        assert!(!p.alloc_fails(0));
        assert!(!p.sample_corrupted(0));
        assert!(!p.panics(0));
        assert_eq!(p.spec(), "none");
    }

    #[test]
    fn attempts_window_is_leading() {
        let p = FaultPlan {
            force_overflow_attempts: 2,
            ..Default::default()
        };
        assert_eq!(p.forced_overflow(0), Some(FaultClass::Any));
        assert_eq!(p.forced_overflow(1), Some(FaultClass::Any));
        assert_eq!(p.forced_overflow(2), None);
    }

    #[test]
    fn class_matching() {
        assert!(FaultClass::Any.matches(true) && FaultClass::Any.matches(false));
        assert!(FaultClass::Heavy.matches(true) && !FaultClass::Heavy.matches(false));
        assert!(FaultClass::Light.matches(false) && !FaultClass::Light.matches(true));
    }

    #[test]
    fn parse_round_trips() {
        for spec in [
            "none",
            "force-overflow:2",
            "force-overflow-heavy:1",
            "force-overflow-light:3",
            "fail-alloc:1",
            "corrupt-sample:4",
            "panic:1",
            "force-overflow:2,fail-alloc:1,corrupt-sample:1,panic:2",
        ] {
            let plan = FaultPlan::parse(spec).expect(spec);
            assert_eq!(plan.spec(), spec, "round-trip of {spec}");
            assert_eq!(FaultPlan::parse(&plan.spec()).unwrap(), plan);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("force-overflow").is_err());
        assert!(FaultPlan::parse("force-overflow:x").is_err());
        assert!(FaultPlan::parse("explode:1").is_err());
        assert!(FaultPlan::parse("force-overflow:1,,").is_err());
    }

    #[test]
    fn corruption_decimates_deterministically() {
        let mut s: Vec<u64> = (0..80).collect();
        FaultPlan::corrupt_sample(&mut s);
        assert_eq!(s.len(), 10);
        assert!(s.iter().all(|&v| v % CORRUPT_SAMPLE_KEEP as u64 == 0));
        let mut empty: Vec<u64> = Vec::new();
        FaultPlan::corrupt_sample(&mut empty);
        assert!(empty.is_empty());
        let mut one = vec![7u64];
        FaultPlan::corrupt_sample(&mut one);
        assert_eq!(one, vec![7]);
    }
}
