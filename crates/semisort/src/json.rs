//! A minimal JSON value, serializer, and parser.
//!
//! The build environment is offline (no serde), and the observability layer
//! needs machine-readable output: [`crate::stats::SemisortStats::to_json`]
//! serializes through this module, the bench harness appends run records to
//! the `BENCH_semisort.json` trajectory with it, and the test suite and
//! `semisort-cli validate-json` parse the emitted files back to catch
//! malformed output. It supports exactly the JSON this workspace emits —
//! objects, arrays, strings, finite numbers, booleans, null — and rejects
//! everything else loudly.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null` (also what non-finite numbers serialize to).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. Values with no fractional part print as integers.
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number payload as a u64 (must be a non-negative integer).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Convenience constructor for an unsigned counter.
    pub fn num(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Convenience constructor for a string member.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if !n.is_finite() {
                    f.write_str("null")
                } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

// ---- parser ------------------------------------------------------------

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, val: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(val)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "non-utf8 number")?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = Vec::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "invalid utf8 in string".into());
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0c),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not needed by anything this
                        // workspace emits; reject rather than mis-decode.
                        let c = char::from_u32(code).ok_or("surrogate \\u escape")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) => {
                out.push(c);
                *pos += 1;
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_composite_values() {
        let v = Json::Obj(vec![
            ("name".into(), Json::str("semi\"sort\n")),
            ("n".into(), Json::num(1_000_000)),
            ("alpha".into(), Json::Num(1.1)),
            ("ok".into(), Json::Bool(true)),
            ("missing".into(), Json::Null),
            (
                "hist".into(),
                Json::Arr(vec![Json::num(0), Json::num(3), Json::num(7)]),
            ),
        ]);
        let text = v.to_string();
        let back = Json::parse(&text).expect("parse back");
        assert_eq!(back, v);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::num(42).to_string(), "42");
        assert_eq!(Json::Num(1.5).to_string(), "1.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a": 3, "b": "x", "c": [1, 2]}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(Json::as_arr).map(|a| a.len()), Some(2));
        assert_eq!(v.get("nope"), None);
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v = Json::parse(r#"["A\t", -2.5e3, 0.125]"#).unwrap();
        let a = v.as_arr().unwrap();
        assert_eq!(a[0].as_str(), Some("A\t"));
        assert_eq!(a[1].as_f64(), Some(-2500.0));
        assert_eq!(a[2].as_f64(), Some(0.125));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nulL").is_err());
    }

    #[test]
    fn parses_jsonl_style_line() {
        // The trajectory file is one object per line; each line must parse
        // standalone.
        let line = r#"{"schema":"semisort-bench-v1","wall_s":0.123}"#;
        let v = Json::parse(line).unwrap();
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("semisort-bench-v1")
        );
    }
}
