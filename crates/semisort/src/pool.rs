//! Pooled scratch memory for the [`Semisorter`](crate::engine::Semisorter)
//! engine.
//!
//! Every phase of the semisort needs transient memory — the scatter arena
//! (by far the largest allocation, `total_slots × sizeof(Slot<V>)`), the
//! Phase 1 sample, the blocked scatter's per-worker block buffers and
//! bucket cursors, and the engine-level hashed-record / permutation
//! buffers. One-shot callers allocate and free all of it per call; a
//! `GROUP BY`-style server calling semisort in a loop pays that allocator
//! and page-fault cost on every call even though consecutive calls need
//! (almost) the same memory. The state-of-the-art follow-up semisort
//! (Gu et al., arXiv:2304.10078) attributes much of its speedup to
//! avoiding exactly this transient-memory churn.
//!
//! [`ScratchPool`] owns all of it and hands out **leases**:
//!
//! - Leases grow monotonically: a buffer is only ever reallocated when a
//!   request exceeds its high-water mark (or needs stricter alignment), so
//!   after the first call at a given size every later call at the same or
//!   smaller size performs **zero** arena allocations
//!   ([`SemisortStats::scratch_grows`](crate::stats::SemisortStats::scratch_grows)
//!   stays 0, [`SemisortStats::scratch_reuse_hits`](crate::stats::SemisortStats::scratch_reuse_hits)
//!   counts the hits).
//! - A lease is returned simply by the borrow ending — the memory always
//!   belongs to the pool, so every exit path (success, Las Vegas retry,
//!   degraded fallback, error, panic) returns it without bookkeeping. On
//!   pool drop the backing memory is freed.
//! - Reused arena memory is *dirty* (it still holds the previous run's
//!   keys, which would violate the [`EMPTY`](crate::scatter::EMPTY)
//!   vacancy contract), so `RawBuf` tracks a dirty prefix and re-zeroes
//!   exactly `min(dirty, requested)` bytes — in parallel — on reuse. A
//!   freshly grown buffer comes from `alloc_zeroed` and needs no sweep.
//!
//! The pool's footprint is visible as
//! [`SemisortStats::scratch_bytes_held`](crate::stats::SemisortStats::scratch_bytes_held)
//! and bounded by
//! [`SemisortConfig::max_scratch_bytes`](crate::config::SemisortConfig::max_scratch_bytes)
//! (enforced between runs; see [`ScratchPool::enforce_budget`]).
//! [`ScratchPool::trim`] releases everything eagerly.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::sync::atomic::AtomicUsize;

use rayon::prelude::*;

use crate::obs::ScratchCounters;
use crate::scatter::Slot;

/// Zeroing chunk for the parallel dirty-prefix sweep on lease reuse.
const ZERO_CHUNK: usize = 1 << 20;

/// A growable raw allocation with a tracked dirty prefix.
///
/// The arena variant of `Vec<u8>`: grows monotonically (never shrinks
/// short of [`RawBuf::free`]), remembers how many leading bytes may be
/// nonzero, and can lease its memory as a zeroed `&[Slot<V>]` for any `V`
/// — which a typed `Vec` cannot do across calls with different payload
/// types.
///
/// `#[doc(hidden)] pub`: this type is internal (the supported surface is
/// [`ScratchPool`]), but the Miri verification suite
/// (`tests/miri_suite.rs`) drives its lease/grow/free state machine
/// directly, which an integration test can only do through a public path.
#[doc(hidden)]
#[derive(Debug)]
pub struct RawBuf {
    ptr: *mut u8,
    cap: usize,
    align: usize,
    /// Leading bytes that may be nonzero (everything past this is known
    /// zero, either never touched since `alloc_zeroed` or swept).
    dirty: usize,
}

// SAFETY: RawBuf is a plain owned allocation; the raw pointer is not
// aliased outside the lease borrows, which carry normal lifetimes.
unsafe impl Send for RawBuf {}
// SAFETY: &RawBuf exposes no interior mutability.
unsafe impl Sync for RawBuf {}

impl Default for RawBuf {
    fn default() -> Self {
        Self::new()
    }
}

impl RawBuf {
    /// An empty buffer holding no allocation.
    pub const fn new() -> Self {
        RawBuf {
            ptr: std::ptr::null_mut(),
            cap: 0,
            align: 1,
            dirty: 0,
        }
    }

    /// Bytes currently held (the high-water mark of past leases).
    pub fn bytes(&self) -> usize {
        self.cap
    }

    /// Release the backing allocation.
    pub fn free(&mut self) {
        if self.cap > 0 {
            // SAFETY: (ptr, cap, align) describe the live allocation.
            unsafe {
                dealloc(
                    self.ptr,
                    Layout::from_size_align_unchecked(self.cap, self.align),
                );
            }
        }
        // Reset field-by-field: a whole-struct `*self = RawBuf::new()`
        // would drop the overwritten value and re-enter `free` via `Drop`.
        self.ptr = std::ptr::null_mut();
        self.cap = 0;
        self.align = 1;
        self.dirty = 0;
    }

    /// Lease `len` zeroed slots for payload type `V`.
    ///
    /// Returns `Err(bytes_requested)` when the allocator refuses or when
    /// `fail_injected` simulates that refusal (the
    /// [`FaultPlan::fail_alloc_attempts`](crate::fault::FaultPlan::fail_alloc_attempts)
    /// hook — injected failures leave the pooled memory untouched so a
    /// warm pool still exercises the alloc-failure escalation path).
    /// Counts one reuse hit or one grow into `counters`.
    pub fn lease_slots<V: Send + Sync>(
        &mut self,
        len: usize,
        fail_injected: bool,
        counters: &mut ScratchCounters,
    ) -> Result<&[Slot<V>], usize> {
        let layout = Layout::array::<Slot<V>>(len).map_err(|_| usize::MAX)?;
        if fail_injected {
            return Err(layout.size());
        }
        if len == 0 {
            return Ok(&[]);
        }
        let reused = self.cap >= layout.size() && self.align >= layout.align();
        let ptr = self.lease_zeroed(layout.size(), layout.align())?;
        if reused {
            counters.reuse_hits += 1;
        } else {
            counters.grows += 1;
        }
        // SAFETY: the lease is `layout.size()` zeroed bytes at `Slot<V>`
        // alignment, and all-zero bytes are a valid vacant Slot<V>
        // (AtomicU64(0) == EMPTY; the value cell is MaybeUninit).
        Ok(unsafe { std::slice::from_raw_parts(ptr as *const Slot<V>, len) })
    }

    /// Lease `bytes` zeroed bytes at (at least) `align`. Reuses the held
    /// allocation when it is big and aligned enough — sweeping the dirty
    /// prefix back to zero in parallel — and otherwise grows to the new
    /// high-water mark with `alloc_zeroed`. `Err(bytes)` on allocator
    /// refusal.
    fn lease_zeroed(&mut self, bytes: usize, align: usize) -> Result<*mut u8, usize> {
        if self.cap >= bytes && self.align >= align {
            let sweep = self.dirty.min(bytes);
            if sweep > 0 {
                // SAFETY: [0, sweep) is inside the live allocation and no
                // lease is outstanding (&mut self).
                let prefix = unsafe { std::slice::from_raw_parts_mut(self.ptr, sweep) };
                prefix
                    .par_chunks_mut(ZERO_CHUNK)
                    .for_each(|chunk| chunk.fill(0));
            }
            // The caller may dirty anything in [0, bytes); beyond that the
            // old dirty extent (if larger) still stands.
            self.dirty = self.dirty.max(bytes);
            return Ok(self.ptr);
        }
        // Grow to the new high-water mark, never shrinking.
        let new_cap = bytes.max(self.cap);
        let new_align = align.max(self.align);
        let layout = Layout::from_size_align(new_cap, new_align).map_err(|_| usize::MAX)?;
        // SAFETY: layout has nonzero size (bytes > 0 because cap-0 bufs
        // only reach here with bytes > 0, and growing keeps cap > 0).
        let new_ptr = unsafe { alloc_zeroed(layout) };
        if new_ptr.is_null() {
            return Err(layout.size());
        }
        self.free();
        self.ptr = new_ptr;
        self.cap = new_cap;
        self.align = new_align;
        self.dirty = bytes;
        Ok(self.ptr)
    }

    /// Grow to at least `bytes` at `align`, preserving current contents
    /// (used by the blocked scatter's bump-allocated block store, which
    /// must not lose already-buffered records). Aborts on allocator
    /// refusal — this path has no graceful degradation, matching the
    /// behavior of the `Vec` buffers it replaced.
    pub fn grow_preserve(&mut self, bytes: usize, align: usize) {
        if self.cap >= bytes && self.align >= align {
            return;
        }
        // Amortize: at least double, so per-record bump cost stays O(1).
        let new_cap = bytes.max(self.cap.saturating_mul(2)).max(64);
        let new_align = align.max(self.align);
        let layout = Layout::from_size_align(new_cap, new_align).expect("scratch layout");
        // SAFETY: nonzero size by construction (max(…, 64)).
        let new_ptr = unsafe { alloc_zeroed(layout) };
        if new_ptr.is_null() {
            handle_alloc_error(layout);
        }
        if self.cap > 0 {
            // SAFETY: both regions are live and new_cap >= cap.
            unsafe { std::ptr::copy_nonoverlapping(self.ptr, new_ptr, self.cap) };
        }
        self.free();
        self.ptr = new_ptr;
        self.cap = new_cap;
        self.align = new_align;
        self.dirty = new_cap;
    }

    /// The buffer as `len` records of type `T` (unchecked beyond a debug
    /// capacity assertion; callers track their own fill).
    ///
    /// # Safety
    ///
    /// `len * size_of::<T>() <= self.bytes()`, the buffer's alignment must
    /// satisfy `T`, and the first `len` records must have been written.
    pub unsafe fn as_slice<T>(&self, offset: usize, len: usize) -> &[T] {
        // Checked: a huge offset/len must fail the assert, not wrap past it.
        debug_assert!(offset
            .checked_add(len)
            .and_then(|n| n.checked_mul(std::mem::size_of::<T>()))
            .is_some_and(|bytes| bytes <= self.cap));
        // SAFETY: caller contract.
        unsafe { std::slice::from_raw_parts((self.ptr as *const T).add(offset), len) }
    }

    /// Write one record of type `T` at record index `i`.
    ///
    /// # Safety
    ///
    /// `(i + 1) * size_of::<T>() <= self.bytes()` and the buffer's
    /// alignment must satisfy `T`.
    pub unsafe fn write_at<T>(&mut self, i: usize, value: T) {
        // Checked: a huge index must fail the assert, not wrap past it.
        debug_assert!(i
            .checked_add(1)
            .and_then(|n| n.checked_mul(std::mem::size_of::<T>()))
            .is_some_and(|bytes| bytes <= self.cap));
        // SAFETY: caller contract.
        unsafe { (self.ptr as *mut T).add(i).write(value) };
    }
}

impl Drop for RawBuf {
    fn drop(&mut self) {
        self.free();
    }
}

/// One worker's reusable state for the blocked scatter: the per-bucket
/// block buffers, stored as bump-allocated fixed-size slabs in one raw
/// buffer instead of `num_buckets` separate `Vec`s per chunk.
#[derive(Debug)]
pub(crate) struct WorkerScratch {
    /// bucket → slab index this chunk, or `u32::MAX`. Invariant between
    /// chunks (and between runs): every entry is `u32::MAX`, restored by
    /// [`WorkerScratch::reset`] on every exit path.
    slot_of: Vec<u32>,
    /// slab index → records currently buffered in that slab.
    fill: Vec<u32>,
    /// Bucket ids touched this chunk, in slab order (`slot_of[touched[i]]
    /// == i`).
    touched: Vec<u32>,
    /// The slab store: `touched.len()` slabs of `block` records each.
    store: RawBuf,
}

impl WorkerScratch {
    pub(crate) fn new() -> Self {
        WorkerScratch {
            slot_of: Vec::new(),
            fill: Vec::new(),
            touched: Vec::new(),
            store: RawBuf::new(),
        }
    }

    /// Bytes held across the buffers.
    fn bytes(&self) -> usize {
        self.store.bytes()
            + self.slot_of.capacity() * std::mem::size_of::<u32>()
            + self.fill.capacity() * std::mem::size_of::<u32>()
            + self.touched.capacity() * std::mem::size_of::<u32>()
    }

    /// Make the bucket map large enough for this run. New entries start at
    /// `u32::MAX`; existing entries already hold it (the reset invariant).
    pub(crate) fn begin(&mut self, num_buckets: usize) {
        debug_assert!(self.touched.is_empty(), "reset() must have run");
        if self.slot_of.len() < num_buckets {
            self.slot_of.resize(num_buckets, u32::MAX);
        }
    }

    /// Hint the cache line of bucket `b`'s map entry — the first dependent
    /// load of a future [`WorkerScratch::push`] for that bucket. Used by
    /// the blocked scatter's routing lookahead; purely a hint, no effect on
    /// state.
    #[inline(always)]
    pub(crate) fn prefetch_bucket(&self, b: usize) {
        if let Some(e) = self.slot_of.get(b) {
            crate::scatter::prefetch(e);
        }
    }

    /// Buffer one record for bucket `b`. Returns the full slab when this
    /// push filled it — the caller must flush that block and the slab is
    /// implicitly emptied (its fill restarts at 0).
    #[inline]
    pub(crate) fn push<V: Copy + Send + Sync>(
        &mut self,
        b: usize,
        record: (u64, V),
        block: usize,
    ) -> Option<&[(u64, V)]> {
        let mut s = self.slot_of[b];
        if s == u32::MAX {
            s = self.touched.len() as u32;
            let si = s as usize;
            let need = (si + 1) * block * std::mem::size_of::<(u64, V)>();
            self.store
                .grow_preserve(need, std::mem::align_of::<(u64, V)>());
            if self.fill.len() <= si {
                self.fill.push(0);
            } else {
                self.fill[si] = 0;
            }
            self.slot_of[b] = s;
            self.touched.push(b as u32);
        }
        let s = s as usize;
        let f = self.fill[s] as usize;
        // SAFETY: grow_preserve sized the store for slab s; index s*block+f
        // is inside slab s (f < block).
        unsafe { self.store.write_at(s * block + f, record) };
        if f + 1 == block {
            self.fill[s] = 0;
            // SAFETY: all `block` records of slab s have been written at
            // least once since the slab was (re)opened.
            Some(unsafe { self.store.as_slice(s * block, block) })
        } else {
            self.fill[s] = (f + 1) as u32;
            None
        }
    }

    /// Number of slabs opened this chunk.
    pub(crate) fn touched_len(&self) -> usize {
        self.touched.len()
    }

    /// Slab `s`'s bucket and its buffered partial block (end-of-chunk
    /// drain).
    pub(crate) fn partial<V: Copy + Send + Sync>(
        &self,
        s: usize,
        block: usize,
    ) -> (usize, &[(u64, V)]) {
        let b = self.touched[s] as usize;
        let f = self.fill[s] as usize;
        // SAFETY: the first f records of slab s were written this cycle.
        (b, unsafe { self.store.as_slice(s * block, f) })
    }

    /// Restore the all-`u32::MAX` invariant of `slot_of`. Must run at the
    /// end of every chunk, including failed/overflowed ones.
    pub(crate) fn reset(&mut self) {
        for &b in &self.touched {
            let b = b as usize;
            self.slot_of[b] = u32::MAX;
        }
        self.touched.clear();
    }
}

/// Pooled state for [`crate::blocked_scatter::blocked_scatter`]: one
/// `WorkerScratch` per concurrent chunk plus the shared bucket cursors.
#[derive(Debug, Default)]
pub struct BlockScratch {
    pub(crate) workers: Vec<WorkerScratch>,
    pub(crate) cursors: Vec<AtomicUsize>,
}

impl BlockScratch {
    /// An empty scratch holding no memory (a transient one per call
    /// reproduces the unpooled behavior).
    pub fn new() -> Self {
        BlockScratch::default()
    }

    /// Bytes held across workers and cursors.
    pub fn bytes(&self) -> usize {
        self.workers.iter().map(WorkerScratch::bytes).sum::<usize>()
            + self.cursors.capacity() * std::mem::size_of::<AtomicUsize>()
    }

    /// Size for `num_buckets` buckets and `num_chunks` concurrent chunks,
    /// zeroing the cursors that this run will use.
    pub(crate) fn prepare(&mut self, num_buckets: usize, num_chunks: usize) {
        if self.cursors.len() < num_buckets {
            self.cursors
                .resize_with(num_buckets, || AtomicUsize::new(0));
        }
        for c in &self.cursors[..num_buckets] {
            // ORDERING: Relaxed reset under &mut self, before the workers
            // that will contend on these cursors are spawned.
            // publishes-via: fork-join barrier (scope spawn)
            c.store(0, std::sync::atomic::Ordering::Relaxed);
        }
        if self.workers.len() < num_chunks {
            self.workers.resize_with(num_chunks, WorkerScratch::new);
        }
    }

    /// Release all held memory.
    pub fn free(&mut self) {
        self.workers = Vec::new();
        self.cursors = Vec::new();
    }
}

/// `hole_of` sentinel: this bucket has no hole list *and* was never given
/// one this run (it is absent from `touched_holes`). Also terminates the
/// `next` chain inside [`HoleRange`].
pub(crate) const HOLES_NONE: u32 = u32::MAX;

/// `hole_of` sentinel: this bucket's hole list existed this run but every
/// range was repaid. Distinct from [`HOLES_NONE`] so a later `push_hole`
/// on the same bucket does not enter it into `touched_holes` a second
/// time — a duplicate would make reconciliation walk (and refill) the
/// bucket's surviving holes twice.
pub(crate) const HOLES_EMPTY: u32 = u32::MAX - 1;

/// One open hole range in the in-place scatter: positions
/// `[start, start + len)` of the output buffer were claimed (their records
/// read out) by one worker and not yet refilled. Ranges for the same
/// bucket form a singly-linked list threaded through `next` (index into
/// the worker's `holes` arena; [`HOLES_NONE`] terminates).
#[derive(Debug, Clone, Copy)]
pub(crate) struct HoleRange {
    pub(crate) start: usize,
    pub(crate) len: usize,
    pub(crate) next: u32,
}

/// One worker's reusable state for the in-place scatter: the per-bucket
/// swap buffers (same sparse-slab layout as the blocked scatter's
/// [`WorkerScratch`]) plus the private-hole bookkeeping.
#[derive(Debug)]
pub(crate) struct InPlaceWorker {
    /// Per-destination-bucket swap buffers (slabs of `swap_buffer` records).
    pub(crate) buf: WorkerScratch,
    /// bucket → head index into `holes`, [`HOLES_EMPTY`] (list drained
    /// this run), or [`HOLES_NONE`] (never listed). Same all-[`HOLES_NONE`]
    /// reset invariant as [`WorkerScratch::slot_of`], restored via
    /// `touched_holes` on every exit path.
    pub(crate) hole_of: Vec<u32>,
    /// Buckets with a non-[`HOLES_NONE`] `hole_of` entry this run, each
    /// exactly once (reconciliation iterates this as a set).
    pub(crate) touched_holes: Vec<u32>,
    /// Hole-range arena, cleared per run.
    pub(crate) holes: Vec<HoleRange>,
}

impl InPlaceWorker {
    fn new() -> Self {
        InPlaceWorker {
            buf: WorkerScratch::new(),
            hole_of: Vec::new(),
            touched_holes: Vec::new(),
            holes: Vec::new(),
        }
    }

    fn bytes(&self) -> usize {
        self.buf.bytes()
            + self.hole_of.capacity() * std::mem::size_of::<u32>()
            + self.touched_holes.capacity() * std::mem::size_of::<u32>()
            + self.holes.capacity() * std::mem::size_of::<HoleRange>()
    }

    /// Size the hole map for this run. New entries start at the sentinel;
    /// existing ones already hold it (the reset invariant).
    pub(crate) fn begin(&mut self, num_buckets: usize) {
        debug_assert!(self.touched_holes.is_empty(), "reset_holes() must have run");
        debug_assert!(self.holes.is_empty(), "reset_holes() must have run");
        if self.hole_of.len() < num_buckets {
            self.hole_of.resize(num_buckets, HOLES_NONE);
        }
        self.buf.begin(num_buckets);
    }

    /// Restore the all-sentinel invariant of `hole_of` and clear the arena.
    pub(crate) fn reset_holes(&mut self) {
        for &b in &self.touched_holes {
            let b = b as usize;
            self.hole_of[b] = HOLES_NONE;
        }
        self.touched_holes.clear();
        self.holes.clear();
    }
}

/// Pooled state for [`crate::inplace_scatter::inplace_scatter`]: the
/// counting matrix, the per-bucket region bounds and claim cursors, and
/// one `InPlaceWorker` per concurrent worker. All O(buckets + workers)
/// — the point of the in-place path is that there is no O(n·α) arena.
#[derive(Debug, Default)]
pub struct InPlaceScratch {
    /// Exclusive prefix sums of the bucket counts: bucket `b`'s region is
    /// `starts[b]..starts[b + 1]` (length `num_buckets + 1` this run).
    pub(crate) starts: Vec<usize>,
    /// Per-bucket claim cursors (absolute indices into the output buffer).
    pub(crate) heads: Vec<AtomicUsize>,
    /// Counting-pass matrix: `num_chunks × num_buckets`, row-major.
    pub(crate) counts: Vec<usize>,
    /// Per-worker swap/hole state.
    pub(crate) workers: Vec<InPlaceWorker>,
}

impl InPlaceScratch {
    /// An empty scratch holding no memory.
    pub fn new() -> Self {
        InPlaceScratch::default()
    }

    /// Bytes held across all buffers.
    pub fn bytes(&self) -> usize {
        self.starts.capacity() * std::mem::size_of::<usize>()
            + self.heads.capacity() * std::mem::size_of::<AtomicUsize>()
            + self.counts.capacity() * std::mem::size_of::<usize>()
            + self.workers.iter().map(InPlaceWorker::bytes).sum::<usize>()
    }

    /// Size for `num_buckets` buckets, `num_chunks` counting chunks and
    /// `num_workers` permutation workers, zeroing the counting matrix.
    /// Returns true when any top-level buffer had to allocate (a pool
    /// "grow"); false when the pooled capacity was reused as-is.
    pub(crate) fn prepare(
        &mut self,
        num_buckets: usize,
        num_chunks: usize,
        num_workers: usize,
    ) -> bool {
        let cells = num_chunks * num_buckets;
        let grew = self.starts.capacity() < num_buckets + 1
            || self.heads.len() < num_buckets
            || self.counts.capacity() < cells
            || self.workers.len() < num_workers;
        self.starts.clear();
        self.starts.reserve(num_buckets + 1);
        if self.heads.len() < num_buckets {
            self.heads.resize_with(num_buckets, || AtomicUsize::new(0));
        }
        self.counts.clear();
        self.counts.resize(cells, 0);
        if self.workers.len() < num_workers {
            self.workers.resize_with(num_workers, InPlaceWorker::new);
        }
        grew
    }

    /// Release all held memory.
    pub fn free(&mut self) {
        self.starts = Vec::new();
        self.heads = Vec::new();
        self.counts = Vec::new();
        self.workers = Vec::new();
    }
}

/// The engine's reusable scratch memory. See the [module docs](self) for
/// the lease model; [`Semisorter`](crate::engine::Semisorter) owns one and
/// the one-shot entry points construct a transient one per call.
#[derive(Debug, Default)]
pub struct ScratchPool {
    /// The scatter arena (dominant allocation; leased per attempt).
    pub(crate) arena: RawBuf,
    /// Phase 1 sample buffer.
    pub(crate) sample: Vec<u64>,
    /// Blocked-scatter worker buffers and cursors.
    pub(crate) blocked: BlockScratch,
    /// In-place-scatter counting matrix, region cursors and swap buffers.
    pub(crate) inplace: InPlaceScratch,
    /// Engine-level `(hash, index)` records for the by-key entry points.
    pub(crate) hashed: Vec<(u64, u64)>,
    /// Engine-level semisorted `(hash, index)` output buffer.
    pub(crate) placed: Vec<(u64, u64)>,
    /// Engine-level permutation buffer (`in_place`, `stable_by_key`).
    pub(crate) perm: Vec<usize>,
    /// Cycle-visited bitmap for the in-place permutation application.
    pub(crate) visited: Vec<u64>,
}

impl ScratchPool {
    /// A pool holding no memory; buffers materialize on first use and are
    /// retained across calls.
    pub fn new() -> Self {
        ScratchPool::default()
    }

    /// Total bytes currently held across all pooled buffers.
    pub fn bytes_held(&self) -> usize {
        self.arena.bytes()
            + self.blocked.bytes()
            + self.inplace.bytes()
            + vec_bytes(&self.sample)
            + vec_bytes(&self.hashed)
            + vec_bytes(&self.placed)
            + vec_bytes(&self.perm)
            + vec_bytes(&self.visited)
    }

    /// Release all pooled memory. The pool stays usable; the next call
    /// re-grows from nothing.
    pub fn trim(&mut self) {
        self.arena.free();
        self.blocked.free();
        self.inplace.free();
        self.sample = Vec::new();
        self.hashed = Vec::new();
        self.placed = Vec::new();
        self.perm = Vec::new();
        self.visited = Vec::new();
    }

    /// Enforce the retained-memory budget between runs: when the pool
    /// holds more than `max_bytes`, everything is released (all-or-nothing
    /// — the arena dominates the footprint, so partial trimming would
    /// rarely get under a budget the arena alone exceeds). `usize::MAX`
    /// means unlimited.
    pub fn enforce_budget(&mut self, max_bytes: usize) {
        if self.bytes_held() > max_bytes {
            self.trim();
        }
    }
}

fn vec_bytes<T>(v: &Vec<T>) -> usize {
    v.capacity() * std::mem::size_of::<T>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_is_zeroed_and_reuses() {
        let mut buf = RawBuf::new();
        let mut c = ScratchCounters::default();
        {
            let slots = buf.lease_slots::<u64>(100, false, &mut c).unwrap();
            assert_eq!(slots.len(), 100);
            assert!(slots.iter().all(|s| !s.occupied()));
            slots[3].set(42, 7);
        }
        assert!(buf.bytes() >= 100 * std::mem::size_of::<Slot<u64>>());
        let held = buf.bytes();
        {
            // Smaller lease reuses and re-zeroes the dirty prefix.
            let slots = buf.lease_slots::<u64>(50, false, &mut c).unwrap();
            assert!(slots.iter().all(|s| !s.occupied()), "stale keys swept");
        }
        assert_eq!(buf.bytes(), held, "monotonic: no shrink");
    }

    #[test]
    fn lease_grows_only_past_high_water() {
        let mut buf = RawBuf::new();
        let mut c = ScratchCounters::default();
        buf.lease_slots::<u64>(64, false, &mut c).unwrap();
        let after_first = buf.bytes();
        assert_eq!((c.grows, c.reuse_hits), (1, 0));
        buf.lease_slots::<u64>(32, false, &mut c).unwrap();
        assert_eq!(buf.bytes(), after_first);
        assert_eq!((c.grows, c.reuse_hits), (1, 1));
        buf.lease_slots::<u64>(128, false, &mut c).unwrap();
        assert!(buf.bytes() > after_first);
        assert_eq!((c.grows, c.reuse_hits), (2, 1));
    }

    #[test]
    fn reuse_rezeroes_the_high_water_dirty_prefix() {
        // Regression for the dirty-prefix boundary: after a LARGE lease
        // dirties [0, B1) and a SMALL lease sweeps only [0, B2), a mid-size
        // lease B3 with B2 < B3 <= B1 must still see vacant slots across
        // [B2, B3) — `dirty` must track the high-water mark, not the size
        // of the most recent lease.
        let mut buf = RawBuf::new();
        let mut c = ScratchCounters::default();
        {
            let slots = buf.lease_slots::<u64>(256, false, &mut c).unwrap();
            for (i, s) in slots.iter().enumerate() {
                s.set(i as u64 + 1, 0); // occupy every slot (keys nonzero)
            }
        }
        {
            let slots = buf.lease_slots::<u64>(16, false, &mut c).unwrap();
            assert!(slots.iter().all(|s| !s.occupied()));
        }
        let slots = buf.lease_slots::<u64>(128, false, &mut c).unwrap();
        assert!(
            slots.iter().all(|s| !s.occupied()),
            "slots in [16, 128) held stale keys: dirty high-water mark lost"
        );
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn wrapping_view_arithmetic_is_caught() {
        // The bounds check must use checked arithmetic: an offset+len that
        // wraps past usize::MAX would sail under a naive `<= cap` compare.
        let mut buf = RawBuf::new();
        buf.grow_preserve(64, 8);
        // SAFETY: never dereferenced — the checked debug_assert fires first.
        let _ = unsafe { buf.as_slice::<u64>(usize::MAX, 2) };
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn wrapping_write_index_is_caught() {
        let mut buf = RawBuf::new();
        buf.grow_preserve(64, 8);
        // SAFETY: never dereferenced — the checked debug_assert fires first.
        unsafe { buf.write_at::<u64>(usize::MAX, 1) };
    }

    #[test]
    fn injected_failure_reports_bytes_and_keeps_memory() {
        let mut buf = RawBuf::new();
        let mut c = ScratchCounters::default();
        buf.lease_slots::<u64>(64, false, &mut c).unwrap();
        let held = buf.bytes();
        let want = 64 * std::mem::size_of::<Slot<u64>>();
        assert_eq!(buf.lease_slots::<u64>(64, true, &mut c).err(), Some(want));
        assert_eq!(buf.bytes(), held, "injected failure must not free");
    }

    #[test]
    fn zero_len_lease_is_empty() {
        let mut buf = RawBuf::new();
        let mut c = ScratchCounters::default();
        let slots = buf.lease_slots::<u64>(0, false, &mut c).unwrap();
        assert!(slots.is_empty());
    }

    #[test]
    fn grow_preserve_keeps_contents() {
        let mut buf = RawBuf::new();
        buf.grow_preserve(8 * 4, 8);
        for i in 0..4usize {
            // SAFETY: grow_preserve sized the store for 4 u64s; i < 4.
            unsafe { buf.write_at::<u64>(i, i as u64 + 10) };
        }
        buf.grow_preserve(8 * 1000, 8);
        // SAFETY: indices [0, 4) were all written above; grow preserved them.
        let got: &[u64] = unsafe { buf.as_slice(0, 4) };
        assert_eq!(got, &[10, 11, 12, 13]);
    }

    #[test]
    fn worker_scratch_push_flush_cycle() {
        let mut ws = WorkerScratch::new();
        ws.begin(10);
        let block = 4usize;
        let mut full_blocks = 0;
        for i in 0..10u64 {
            if let Some(full) = ws.push::<u64>(3, (100 + i, i), block) {
                assert_eq!(full.len(), block);
                full_blocks += 1;
            }
        }
        assert_eq!(full_blocks, 2);
        assert_eq!(ws.touched_len(), 1);
        let (b, part) = ws.partial::<u64>(0, block);
        assert_eq!(b, 3);
        assert_eq!(part, &[(108, 8), (109, 9)]);
        ws.reset();
        assert_eq!(ws.touched_len(), 0);
        // Reset restores the invariant: a new cycle starts clean.
        ws.begin(10);
        assert!(ws.push::<u64>(7, (1, 1), block).is_none());
        let (b, part) = ws.partial::<u64>(0, block);
        assert_eq!((b, part.len()), (7, 1));
        ws.reset();
    }

    #[test]
    fn pool_bytes_and_trim() {
        let mut pool = ScratchPool::new();
        assert_eq!(pool.bytes_held(), 0);
        let mut c = ScratchCounters::default();
        pool.arena.lease_slots::<u64>(1000, false, &mut c).unwrap();
        pool.sample.resize(100, 0);
        assert!(pool.bytes_held() >= 1000 * std::mem::size_of::<Slot<u64>>());
        pool.enforce_budget(usize::MAX);
        assert!(pool.bytes_held() > 0, "unlimited budget keeps memory");
        pool.enforce_budget(16);
        assert_eq!(pool.bytes_held(), 0, "over-budget pool frees everything");
        pool.trim();
        assert_eq!(pool.bytes_held(), 0);
    }
}
