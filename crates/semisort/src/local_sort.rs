//! Phase 4: compact and locally sort each light bucket.
//!
//! "After all the records are inserted into the buckets, a pack followed by
//! a local sort is executed on each bucket. … the local sort in each array
//! is sequential since sorting a single array is fast, and usually there
//! are many more arrays than processors, so this step has good parallelism."
//! (§4 Phase 4.) Light buckets have expected size `O(log² n)` and fit in
//! cache, which is why this phase shows the highest speedups in Tables 2–3.
//!
//! Heavy buckets are untouched here: all their records share one key, so
//! compaction alone (Phase 5) semisorts them.

use rayon::prelude::*;

use crate::buckets::BucketPlan;
use crate::config::LocalSortAlgo;
use crate::obs::ObsSink;
use crate::scatter::Slot;

/// Compact each light bucket's occupied slots to the bucket front, sort
/// them by key with `algo`, and return the per-light-bucket record counts.
/// `slots` is the scattered slot array (see [`crate::scatter::scatter`]).
///
/// At `Deep` telemetry, each light bucket's occupancy (its record count —
/// already computed here for free) is recorded into `sink`'s occupancy
/// histogram; heavy buckets hold a single key each, so their "occupancy"
/// is just that key's multiplicity, visible in the heavy-records stat.
pub fn local_sort_light_buckets<V: Copy + Send + Sync>(
    plan: &BucketPlan,
    slots: &[Slot<V>],
    algo: LocalSortAlgo,
    sink: &ObsSink,
) -> Vec<usize> {
    (plan.num_heavy..plan.num_buckets())
        .into_par_iter()
        .map(|b| {
            let base = plan.bucket_offset[b];
            let size = plan.bucket_size[b];
            let bucket = &slots[base..base + size];

            // Pack: gather occupied records.
            let mut records: Vec<(u64, V)> = bucket
                .iter()
                .filter(|s| s.occupied())
                // SAFETY: scatter has joined; this task is the unique
                // owner of this bucket's slots, and the filter admits
                // only occupied (initialized) ones.
                .map(|s| (s.key(), unsafe { s.value() }))
                .collect();

            sink.record_occupancy(records.len() as u64);
            sort_records(&mut records, algo);

            // Write the sorted run back to the bucket front; the tail stays
            // stale but is never read (the count fences it).
            for (i, &(k, v)) in records.iter().enumerate() {
                bucket[i].set(k, v);
            }
            records.len()
        })
        .collect()
}

/// Sort a small record run by key with the configured algorithm.
pub fn sort_records<V: Copy>(records: &mut [(u64, V)], algo: LocalSortAlgo) {
    match algo {
        LocalSortAlgo::StdUnstable => records.sort_unstable_by_key(|r| r.0),
        LocalSortAlgo::StdStable => records.sort_by_key(|r| r.0),
        LocalSortAlgo::Counting => counting_group(records),
    }
}

/// The theoretical Step 7c: solve the naming problem with a small local
/// hash table (labels in first-seen order), then one stable counting-sort
/// pass over the labels. Groups equal keys contiguously — a semisort of the
/// bucket, which is all correctness needs. Distinct keys end up in
/// first-seen order rather than hash order.
fn counting_group<V: Copy>(records: &mut [(u64, V)]) {
    let n = records.len();
    if n <= 1 {
        return;
    }
    // Naming: open-addressed local table key → dense label. Occupancy is an
    // explicit flag (not a sentinel key), so every u64 — including 0 and
    // u64::MAX — is a legal key for direct `sort_records` callers.
    let cap = (2 * n).next_power_of_two();
    let mask = cap - 1;
    let mut table_used = vec![false; cap];
    let mut table_keys = vec![0u64; cap];
    let mut table_labels = vec![0u32; cap];
    let mut labels = Vec::with_capacity(n);
    let mut next = 0u32;
    for &(k, _) in records.iter() {
        let mut i = (parlay::hash64(k) as usize) & mask;
        loop {
            if table_used[i] {
                if table_keys[i] == k {
                    labels.push(table_labels[i]);
                    break;
                }
                i = (i + 1) & mask;
            } else {
                table_used[i] = true;
                table_keys[i] = k;
                table_labels[i] = next;
                labels.push(next);
                next += 1;
                break;
            }
        }
    }
    // Stable counting sort by label.
    let m = next as usize;
    let mut counts = vec![0usize; m + 1];
    for &l in &labels {
        let l = l as usize;
        counts[l + 1] += 1;
    }
    for i in 1..=m {
        counts[i] += counts[i - 1];
    }
    let src = records.to_vec();
    for (rec, l) in src.into_iter().zip(labels) {
        let l = l as usize;
        records[counts[l]] = rec;
        counts[l] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buckets::build_plan;
    use crate::config::SemisortConfig;
    use crate::sample::strided_sample;
    use crate::scatter::{allocate_arena, scatter, ScatterArena};
    use parlay::hash64;
    use parlay::random::Rng;

    fn run_through_phase4(
        records: &[(u64, u64)],
        algo: LocalSortAlgo,
    ) -> (BucketPlan, ScatterArena<u64>, Vec<usize>) {
        let cfg = SemisortConfig::default();
        let keys: Vec<u64> = records.iter().map(|r| r.0).collect();
        let mut sample = strided_sample(&keys, cfg.sample_shift, Rng::new(1));
        sample.sort_unstable();
        let plan = build_plan(&sample, records.len(), &cfg);
        let arena = allocate_arena::<u64>(&plan);
        let sink = crate::obs::ObsSink::disabled();
        let out = scatter(
            records,
            &plan,
            &arena.slots,
            cfg.probe_strategy,
            cfg.scatter.prefetch_distance,
            Rng::new(2),
            &sink,
            None,
        );
        assert!(!out.overflowed);
        let counts = local_sort_light_buckets(&plan, &arena.slots, algo, &sink);
        (plan, arena, counts)
    }

    #[test]
    fn counts_cover_all_light_records() {
        let records: Vec<(u64, u64)> = (0..40_000u64).map(|i| (hash64(i), i)).collect();
        let (plan, _, counts) = run_through_phase4(&records, LocalSortAlgo::StdUnstable);
        assert_eq!(counts.len(), plan.num_light);
        // All-distinct keys: every record is light.
        assert_eq!(counts.iter().sum::<usize>(), records.len());
    }

    #[test]
    fn bucket_fronts_are_sorted_runs() {
        let records: Vec<(u64, u64)> = (0..30_000u64).map(|i| (hash64(i % 2000), i)).collect();
        let (plan, arena, counts) = run_through_phase4(&records, LocalSortAlgo::StdUnstable);
        for (li, &c) in counts.iter().enumerate() {
            let b = plan.num_heavy + li;
            let base = plan.bucket_offset[b];
            let keys: Vec<u64> = (0..c).map(|i| arena.slots[base + i].key()).collect();
            assert!(
                keys.windows(2).all(|w| w[0] <= w[1]),
                "bucket {li} unsorted"
            );
            assert!(keys.iter().all(|&k| k != crate::scatter::EMPTY));
        }
    }

    #[test]
    fn counting_algo_groups_equal_keys() {
        let records: Vec<(u64, u64)> = (0..30_000u64).map(|i| (hash64(i % 2000), i)).collect();
        let (plan, arena, counts) = run_through_phase4(&records, LocalSortAlgo::Counting);
        for (li, &c) in counts.iter().enumerate() {
            let b = plan.num_heavy + li;
            let base = plan.bucket_offset[b];
            let keys: Vec<u64> = (0..c).map(|i| arena.slots[base + i].key()).collect();
            // Grouped: each key appears as one contiguous run.
            let mut seen = std::collections::HashSet::new();
            let mut prev = None;
            for k in keys {
                if prev != Some(k) {
                    assert!(seen.insert(k), "key {k} split into two runs");
                    prev = Some(k);
                }
            }
        }
    }

    #[test]
    fn sort_records_all_algos_group() {
        let mut base: Vec<(u64, u64)> = (0..1000u64).map(|i| (i % 7, i)).collect();
        for algo in [
            LocalSortAlgo::StdUnstable,
            LocalSortAlgo::StdStable,
            LocalSortAlgo::Counting,
        ] {
            let mut r = base.clone();
            sort_records(&mut r, algo);
            assert_eq!(r.len(), base.len());
            // Grouped check.
            let mut seen = std::collections::HashSet::new();
            let mut prev = None;
            for &(k, _) in &r {
                if prev != Some(k) {
                    assert!(seen.insert(k), "{algo:?} split key {k}");
                    prev = Some(k);
                }
            }
        }
        base.clear();
    }

    #[test]
    fn counting_group_is_stable_within_groups() {
        let mut r: Vec<(u64, u64)> = vec![(5, 0), (3, 1), (5, 2), (3, 3), (5, 4)];
        counting_group(&mut r);
        // First-seen order of labels: 5 then 3; payloads in input order.
        assert_eq!(r, vec![(5, 0), (5, 2), (5, 4), (3, 1), (3, 3)]);
    }

    #[test]
    fn counting_group_handles_sentinel_like_keys() {
        // Regression: u64::MAX used to collide with the naming table's
        // vacancy sentinel, merging its group with label 0's key.
        let mut r: Vec<(u64, u64)> = vec![
            (u64::MAX, 0),
            (5, 1),
            (u64::MAX, 2),
            (0, 3),
            (5, 4),
            (u64::MAX, 5),
            (0, 6),
        ];
        counting_group(&mut r);
        let keys: Vec<u64> = r.iter().map(|p| p.0).collect();
        assert_eq!(keys, vec![u64::MAX, u64::MAX, u64::MAX, 5, 5, 0, 0]);
        let mut payloads: Vec<u64> = r.iter().map(|p| p.1).collect();
        payloads.sort_unstable();
        assert_eq!(payloads, (0..7).collect::<Vec<u64>>());
    }

    #[test]
    fn counting_group_empty_and_single() {
        let mut e: Vec<(u64, u64)> = vec![];
        counting_group(&mut e);
        let mut s = vec![(9u64, 1u64)];
        counting_group(&mut s);
        assert_eq!(s, vec![(9, 1)]);
    }
}
