//! Miri verification suite for the `unsafe` core.
//!
//! Run with `cargo +nightly miri test -p semisort --test miri_suite`. Under
//! Miri the in-tree `rayon` shim collapses every parallel operation to
//! deterministic sequential execution (see `rayon::spawn_budget`), so each
//! test here is a single-threaded replay of the exact pointer arithmetic,
//! initialization discipline, and alias patterns of the production paths —
//! which is what Miri checks: uninitialized reads, Stacked/Tree Borrows
//! violations, out-of-bounds accesses, and leaks that differential tests
//! cannot see.
//!
//! Coverage map (ISSUE 5 tentpole):
//! - the `RawBuf` monotonic arena: alloc / lease / grow / trim, the
//!   dirty-prefix re-zero boundary, and the Drop/free recursion regression
//!   from PR 4 (`free` resets field-by-field so `Drop` cannot re-enter it);
//! - both scatter strategies (CAS + linear/random probing, and the blocked
//!   fetch_add-slab scatter with its CAS-fallback tail);
//! - the pack phase (interval compaction + `spare_capacity_mut` writes +
//!   `set_len`);
//! - the fault-injection escalation ladder (forced overflow → retry,
//!   alloc failure → degrade/error, retries exhausted, arena budget).
//!
//! Sizes are gated on `cfg(miri)`: Miri interprets every basic block, so
//! the suite runs the same code shape at ~1/16 the record count. The
//! `seq_threshold` is pinned low and `heavy_threshold` (δ) reduced so the
//! small inputs still take the full five-phase machinery — heavy buckets,
//! light buckets, scatter, local sort, pack — instead of the sort fallback.

use semisort::pool::RawBuf;
use semisort::prelude::*;
use semisort::scatter::Slot;
use semisort::verify::{is_permutation_of, is_semisorted_by};
use semisort::{FaultClass, FaultPlan};

/// Records per test input: small enough for Miri's interpreter, large
/// enough to exercise heavy and light buckets, probe clusters, and block
/// flushes (the blocked scatter's default block is 16 records).
const N: usize = if cfg!(miri) { 2_000 } else { 32_000 };

/// A config whose sequential cutoff and heavy threshold sit far below
/// [`N`], so the suite runs the real five-phase pipeline (with both bucket
/// classes populated), not the fallback sort.
fn small_cfg() -> SemisortConfig {
    SemisortConfig::builder()
        .seq_threshold(64)
        .heavy_threshold(2)
        .seed(0x13_5eed)
        .build()
        .unwrap()
}

/// A mixed workload: every third record carries one of 8 hot keys (heavy
/// buckets under δ = 2), the rest are distinct (light buckets). Hot
/// positions step by 3, coprime to the stride-16 sampler, so the sample
/// sees the hot keys at their true 1/3 frequency.
fn mixed_records(n: usize) -> Vec<(u64, u64)> {
    (0..n as u64)
        .map(|i| {
            let k = if i % 3 == 0 { i % 24 } else { 1_000_000 + i };
            (parlay::hash64(k), i)
        })
        .collect()
}

/// Records for the tiny-tail test: sized so each of the 3 dominant
/// buckets' demand lands in the upper half of its power-of-two slot array,
/// which is what makes a half-size slab (tail = size/2) run out. Verified
/// to produce `fallback_records > 0` at both scales.
const N_SKEW: usize = if cfg!(miri) { 1_800 } else { 28_800 };

/// A skewed workload: all records land on 3 dominant keys (the
/// adversarial shape that forces slab pressure in the blocked scatter).
fn skewed_records(n: usize) -> Vec<(u64, u64)> {
    (0..n as u64)
        .map(|i| (parlay::hash64(i % 3) | 1, i))
        .collect()
}

fn check(out: &[(u64, u64)], input: &[(u64, u64)]) {
    assert!(is_semisorted_by(out, |r| r.0), "not semisorted");
    assert!(is_permutation_of(out, input), "not a permutation");
}

// ---------------------------------------------------------------------------
// RawBuf: the monotonic arena under the slot leases.
// ---------------------------------------------------------------------------

#[test]
fn rawbuf_lease_is_zeroed_then_reused_dirty() {
    let mut buf = RawBuf::new();
    let mut c = ScratchCounters::default();
    {
        let slots = buf.lease_slots::<u64>(257, false, &mut c).unwrap();
        assert!(slots.iter().all(|s| !s.occupied()));
        // Dirty every slot, including the last one: the re-zero sweep must
        // cover the full leased extent, not `len - 1` of it.
        for (i, s) in slots.iter().enumerate() {
            s.set(i as u64 + 1, i as u64);
        }
    }
    let held = buf.bytes();
    {
        // Same-size reuse: the dirty prefix must be swept back to vacant.
        let slots = buf.lease_slots::<u64>(257, false, &mut c).unwrap();
        assert!(
            slots.iter().all(|s| !s.occupied()),
            "stale keys must be swept"
        );
        slots[256].set(9, 9);
    }
    {
        // Smaller reuse after dirtying the tail: the final slot of the new
        // lease sits inside the old dirty extent and must read as vacant.
        let slots = buf.lease_slots::<u64>(100, false, &mut c).unwrap();
        assert!(slots.iter().all(|s| !s.occupied()));
    }
    assert_eq!(buf.bytes(), held, "monotonic: smaller leases never shrink");
    assert_eq!((c.grows, c.reuse_hits), (1, 2));
}

#[test]
fn rawbuf_grow_preserve_then_partial_view() {
    // The blocked scatter's slab store interleaves grow_preserve (typed
    // record writes) with length-bounded reads of only the written prefix;
    // replay that sequence on one buffer.
    let mut buf = RawBuf::new();
    buf.grow_preserve(16 * std::mem::size_of::<(u64, u64)>(), 8);
    for i in 0..16usize {
        // SAFETY: the store was just grown to hold 16 (u64, u64) records.
        unsafe { buf.write_at::<(u64, u64)>(i, (i as u64, i as u64)) };
    }
    buf.grow_preserve(1024 * std::mem::size_of::<(u64, u64)>(), 8);
    // SAFETY: records 0..16 were written above; grow_preserve copies them.
    let got: &[(u64, u64)] = unsafe { buf.as_slice(0, 16) };
    assert!(got
        .iter()
        .enumerate()
        .all(|(i, &(a, b))| a == i as u64 && b == a));
    // Partial view over only the written prefix (length-bounded).
    // SAFETY: records 4..16 lie inside the written prefix above.
    let part: &[(u64, u64)] = unsafe { buf.as_slice(4, 12) };
    assert_eq!(part.len(), 12);
    assert_eq!(part[0], (4, 4));
}

#[test]
fn rawbuf_free_lease_free_drop_no_recursion() {
    // PR 4 regression: `free` must reset fields directly; a whole-struct
    // overwrite would drop the overwritten value and re-enter free. Under
    // Miri a double free or invalid dealloc is a hard diagnostic.
    let mut buf = RawBuf::new();
    let mut c = ScratchCounters::default();
    buf.lease_slots::<u64>(64, false, &mut c).unwrap();
    buf.free();
    assert_eq!(buf.bytes(), 0);
    buf.free(); // idempotent on an empty buffer
    buf.lease_slots::<u32>(8, false, &mut c).unwrap();
    drop(buf); // Drop::drop calls free exactly once on the live allocation
}

#[test]
fn rawbuf_zero_len_and_injected_failure() {
    let mut buf = RawBuf::new();
    let mut c = ScratchCounters::default();
    let empty = buf.lease_slots::<u64>(0, false, &mut c).unwrap();
    assert!(empty.is_empty());
    assert_eq!(buf.bytes(), 0, "zero-length lease allocates nothing");
    let want = 16 * std::mem::size_of::<Slot<u64>>();
    assert_eq!(buf.lease_slots::<u64>(16, true, &mut c).err(), Some(want));
    assert_eq!(buf.bytes(), 0, "injected failure leaves the buffer alone");
}

#[test]
fn scratch_pool_trim_and_budget() {
    let mut pool = ScratchPool::new();
    assert_eq!(pool.bytes_held(), 0);
    pool.trim(); // trim of an empty pool is a no-op
    pool.enforce_budget(1);
    assert_eq!(pool.bytes_held(), 0);
}

// ---------------------------------------------------------------------------
// The five-phase pipeline: both scatter strategies, both probe strategies,
// the pack phase, and the pooled engine (dirty arena reuse across calls).
// ---------------------------------------------------------------------------

#[test]
fn cas_scatter_linear_probe_end_to_end() {
    let recs = mixed_records(N);
    let (out, stats) = semisort::try_semisort_with_stats(&recs, &small_cfg()).unwrap();
    check(&out, &recs);
    assert!(stats.heavy_records > 0, "hot keys must classify heavy");
    assert!(stats.light_records > 0, "distinct keys must stay light");
}

#[test]
fn cas_scatter_random_probe_end_to_end() {
    let recs = mixed_records(N);
    let cfg = small_cfg()
        .to_builder()
        .probe_strategy(ProbeStrategy::Random)
        .build()
        .unwrap();
    let (out, _) = semisort::try_semisort_with_stats(&recs, &cfg).unwrap();
    check(&out, &recs);
}

#[test]
fn blocked_scatter_end_to_end() {
    let recs = mixed_records(N);
    let cfg = small_cfg()
        .to_builder()
        .scatter(ScatterConfig {
            strategy: ScatterStrategy::Blocked,
            ..ScatterConfig::default()
        })
        .build()
        .unwrap();
    let (out, stats) = semisort::try_semisort_with_stats(&recs, &cfg).unwrap();
    check(&out, &recs);
    assert!(stats.blocks_flushed > 0, "blocks must flush at n = {N}");
}

#[test]
fn blocked_scatter_tiny_tail_forces_cas_fallback() {
    // tail = size/2 (blocked_tail_log2 = 1) halves every slab while the 3
    // dominant buckets are sized ≈ α·count: the slab cursor must run out
    // and spill into the per-record CAS tail — the mixed slab-store/CAS
    // aliasing pattern Miri should scrutinize.
    let recs = skewed_records(N_SKEW);
    let cfg = small_cfg()
        .to_builder()
        .scatter(ScatterConfig {
            strategy: ScatterStrategy::Blocked,
            tail_log2: 1,
            ..ScatterConfig::default()
        })
        .build()
        .unwrap();
    let (out, stats) = semisort::try_semisort_with_stats(&recs, &cfg).unwrap();
    check(&out, &recs);
    assert!(stats.fallback_records > 0, "size/2 tail must see fallbacks");
}

#[test]
fn inplace_scatter_end_to_end() {
    // The cursor-claim permutation: counting pass, prime/flush/strand
    // loops through SharedOut's raw pointers, and the reconciliation
    // zip-fill — the exact unsafe surface ISSUE 9 added.
    let recs = mixed_records(N);
    let cfg = small_cfg()
        .to_builder()
        .scatter(ScatterConfig {
            strategy: ScatterStrategy::InPlace,
            ..ScatterConfig::default()
        })
        .build()
        .unwrap();
    let (out, stats) = semisort::try_semisort_with_stats(&recs, &cfg).unwrap();
    check(&out, &recs);
    assert!(stats.inplace_cycles > 0, "mixed input must prime");
    assert_eq!(stats.blocks_flushed, 0, "no arena slabs on this path");
}

#[test]
fn inplace_scatter_tiny_swap_buffer() {
    // swap_buffer = 1 maximizes flush/strand traffic per record: every
    // classify flushes, every flush claims one position — the densest
    // read/write interleave over the claimed indices.
    let recs = mixed_records(N);
    let cfg = small_cfg()
        .to_builder()
        .scatter(ScatterConfig {
            strategy: ScatterStrategy::InPlace,
            swap_buffer: 1,
            ..ScatterConfig::default()
        })
        .build()
        .unwrap();
    let (out, stats) = semisort::try_semisort_with_stats(&recs, &cfg).unwrap();
    check(&out, &recs);
    assert!(stats.swap_buffer_flushes > 0, "unit buffers must flush");
}

#[test]
fn engine_reuses_dirty_arena_across_calls() {
    // Call 2 leases the arena call 1 dirtied: the dirty-prefix re-zero is
    // on the exact path where an off-by-one would hand the scatter a stale
    // (non-EMPTY) slot. A shrinking third call leases a strict prefix.
    let mut engine = Semisorter::new(small_cfg()).unwrap();
    for n in [N, N, N / 2] {
        let recs = mixed_records(n);
        let out = engine.sort_pairs(&recs).unwrap();
        check(&out, &recs);
    }
    assert!(engine.scratch_bytes_held() > 0);
    engine.trim();
    assert_eq!(engine.scratch_bytes_held(), 0);
    // And the pool must still serve leases after an explicit trim.
    let recs = mixed_records(N / 2);
    let out = engine.sort_pairs(&recs).unwrap();
    check(&out, &recs);
}

#[test]
fn empty_sentinel_key_takes_fallback_path() {
    let mut recs = mixed_records(N);
    recs[N / 3].0 = 0; // the scatter's EMPTY slot-vacancy sentinel
    let (out, _) = semisort::try_semisort_with_stats(&recs, &small_cfg()).unwrap();
    check(&out, &recs);
}

// ---------------------------------------------------------------------------
// Fault-injection escalation: every rung of the ladder, under Miri.
// ---------------------------------------------------------------------------

#[test]
fn forced_overflow_retries_then_succeeds() {
    let recs = mixed_records(N);
    for strategy in [
        ScatterStrategy::RandomCas,
        ScatterStrategy::Blocked,
        ScatterStrategy::InPlace,
    ] {
        let cfg = small_cfg()
            .to_builder()
            .scatter(ScatterConfig {
                strategy,
                ..ScatterConfig::default()
            })
            .fault(FaultPlan {
                force_overflow_attempts: 1,
                force_overflow_class: FaultClass::Any,
                ..FaultPlan::NONE
            })
            .build()
            .unwrap();
        let (out, stats) = semisort::try_semisort_with_stats(&recs, &cfg).unwrap();
        check(&out, &recs);
        assert_eq!(stats.retries, 1, "{strategy:?}: one forced retry");
        assert!(!stats.degraded);
    }
}

#[test]
fn retries_exhausted_degrades_to_fallback() {
    let recs = mixed_records(N);
    let cfg = small_cfg()
        .to_builder()
        .max_retries(1)
        .fault(FaultPlan {
            force_overflow_attempts: 8,
            ..FaultPlan::NONE
        })
        .build()
        .unwrap();
    let (out, stats) = semisort::try_semisort_with_stats(&recs, &cfg).unwrap();
    check(&out, &recs);
    assert!(stats.degraded);
    assert_eq!(stats.degrade_reason, Some(DegradeReason::RetriesExhausted));
}

#[test]
fn alloc_failure_surfaces_as_error_when_asked() {
    let recs = mixed_records(N);
    let cfg = small_cfg()
        .to_builder()
        .overflow_policy(OverflowPolicy::Error)
        .fault(FaultPlan {
            fail_alloc_attempts: u32::MAX,
            ..FaultPlan::NONE
        })
        .build()
        .unwrap();
    let err = try_semisort_with_stats(&recs, &cfg).unwrap_err();
    assert!(
        matches!(err, SemisortError::ArenaAllocFailed { .. }),
        "{err}"
    );
}

// ---------------------------------------------------------------------------
// Scheduler collapse: the work-stealing pool's cfg(miri) path.
// ---------------------------------------------------------------------------

#[test]
fn pool_collapses_to_sequential_join_under_miri() {
    // Under Miri the rayon shim spawns no worker threads: `install` pins
    // the reported pool size through a thread-local and `join` runs
    // a-then-b inline on the calling thread. This drives a full semisort
    // *plus* nested joins through that collapsed path with
    // `current_num_threads() == 4`, so the chunk arithmetic matches a real
    // 4-thread run while Miri replays the pointer patterns sequentially.
    let n = if cfg!(miri) { 1_200 } else { 24_000 };
    let recs = mixed_records(n);
    let (out, nested) = parlay::with_threads(4, || {
        rayon::join(
            || semisort::try_semisort_pairs(&recs, &small_cfg()).unwrap(),
            || rayon::join(rayon::current_num_threads, || 7u64),
        )
    });
    check(&out, &recs);
    assert_eq!(nested, (4, 7));
}

#[test]
fn arena_budget_exceeded_degrades() {
    let recs = mixed_records(N);
    let cfg = small_cfg()
        .to_builder()
        .max_arena_bytes(64)
        .build()
        .unwrap();
    let (out, stats) = semisort::try_semisort_with_stats(&recs, &cfg).unwrap();
    check(&out, &recs);
    assert!(stats.degraded);
    assert_eq!(stats.degrade_reason, Some(DegradeReason::BudgetExceeded));
}
