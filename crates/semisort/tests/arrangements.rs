//! The arrangement axis: same key multiset, different memory orders.
//! Correctness and classification must be order-insensitive; §5.1 only
//! fixes the distribution, so this matrix covers what it leaves open.

use semisort::verify::{is_permutation_of, is_semisorted_by};
use semisort::{try_semisort_pairs, try_semisort_with_stats, SemisortConfig};
use workloads::{generate, Arrangement, Distribution};

const N: usize = 80_000;

#[test]
fn every_arrangement_of_every_distribution_semisorts() {
    let cfg = SemisortConfig::default();
    for dist in [
        Distribution::Uniform { n: N as u64 },
        Distribution::Uniform { n: 100 },
        Distribution::Exponential {
            lambda: N as f64 / 1000.0,
        },
        Distribution::Zipfian { m: 10_000 },
    ] {
        let base = generate(dist, N, 11);
        for arr in Arrangement::all() {
            let mut input = base.clone();
            arr.apply(&mut input, 23);
            let out = try_semisort_pairs(&input, &cfg).unwrap();
            assert!(
                is_semisorted_by(&out, |r| r.0),
                "{} / {arr:?}: not semisorted",
                dist.label()
            );
            assert!(
                is_permutation_of(&out, &input),
                "{} / {arr:?}: not a permutation",
                dist.label()
            );
        }
    }
}

#[test]
fn heavy_classification_is_arrangement_insensitive_for_clear_cases() {
    // Keys far from the δ boundary must classify identically no matter how
    // the input is arranged (boundary keys may flap — that's expected).
    let cfg = SemisortConfig::default();
    let dist = Distribution::Uniform { n: 20 }; // multiplicity 4000 ≫ 256
    let base = generate(dist, N, 5);
    for arr in Arrangement::all() {
        let mut input = base.clone();
        arr.apply(&mut input, 31);
        let (_, stats) = try_semisort_with_stats(&input, &cfg).unwrap();
        assert!(
            stats.heavy_fraction_pct() > 99.9,
            "{arr:?}: {}% heavy",
            stats.heavy_fraction_pct()
        );
        assert_eq!(stats.heavy_keys, 20, "{arr:?}");
    }
}

#[test]
fn presorted_input_is_not_a_pathology() {
    // Sorted input aligns key runs with sampling strides; time and space
    // must stay in family with the random arrangement (no quadratic cliff).
    let cfg = SemisortConfig::default();
    let dist = Distribution::Zipfian { m: 5_000 };
    let mut random_in = generate(dist, N, 2);
    let mut sorted_in = random_in.clone();
    Arrangement::Sorted.apply(&mut sorted_in, 0);
    Arrangement::Random.apply(&mut random_in, 0);

    let (_, s_random) = try_semisort_with_stats(&random_in, &cfg).unwrap();
    let (_, s_sorted) = try_semisort_with_stats(&sorted_in, &cfg).unwrap();
    assert_eq!(s_random.retries, 0);
    assert_eq!(s_sorted.retries, 0);
    let blow_ratio = s_sorted.space_blowup() / s_random.space_blowup();
    assert!(
        (0.3..3.0).contains(&blow_ratio),
        "space blowup diverged between arrangements: {blow_ratio}"
    );
}
