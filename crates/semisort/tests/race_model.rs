//! Exhaustive race models of the three scatter slot-claim protocols.
//!
//! The paper's Algorithm 1 (steps 6–7) and the two later variants rest on
//! concurrency claims that differential tests can only sample:
//!
//! 1. **CAS + linear probing** (`scatter::place_linear`): no two threads
//!    ever claim the same slot, and every record lands in exactly one slot.
//! 2. **`fetch_add` slab reservation with CAS-fallback tail**
//!    (`blocked_scatter`'s flush): slab ranges reserved by `fetch_add` are
//!    exclusive, spill past the slab goes through the CAS tail, and again
//!    every record lands exactly once with no slot claimed twice.
//! 3. **Region cursor claiming** (`inplace_scatter`): each bucket's
//!    `heads[b].fetch_add(1)` hands out destination indices inside the
//!    bucket's exact region; claims are exclusive, claims past the region
//!    end strand the record (repaid by sequential reconciliation), and
//!    landed + stranded partition the input.
//!
//! These tests re-state each protocol over `loom` atomics (the in-tree
//! shim, `crates/loom`) and run it under **every** interleaving of 2
//! threads contending for the same slots — ≥ 2 contended slots each, per
//! the verification plan in DESIGN.md §11. The protocol bodies mirror the
//! production loops line-for-line (same probe order, same CAS, same
//! cursor arithmetic) so a protocol-level regression in `scatter.rs` /
//! `blocked_scatter.rs` / `inplace_scatter.rs` has to break the model too.
//!
//! Two injection tests replace a protocol's atomic claim with the classic
//! torn load-then-store and assert the explorer *catches* it: a harness
//! that cannot see the duplicate claim would vacuously pass the green
//! models.
//!
//! Not run under Miri: the explorer spawns thousands of real scheduled
//! threads, which Miri executes orders of magnitude too slowly; Miri
//! covers the sequential memory-model obligations in `miri_suite.rs`.

#![cfg(not(miri))]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering as StdOrdering};

use loom::sync::atomic::{AtomicU64, AtomicUsize as LoomUsize, Ordering};
use loom::sync::Arc;
use loom::thread;

/// The scatter's slot-vacancy sentinel (`scatter::EMPTY`).
const EMPTY: u64 = 0;

/// Model mirror of `scatter::place_linear`: CAS at `start`, then linear
/// probing with wraparound; fails only if the bucket is completely full.
/// `claims[i]` counts successful claims of slot `i` (std atomics:
/// instrumentation, not protocol — no schedule points).
fn model_place_linear(
    bucket: &[AtomicU64],
    claims: &[AtomicUsize],
    start: usize,
    mask: usize,
    key: u64,
) -> bool {
    let mut i = start;
    for _probes in 0..bucket.len() {
        if bucket[i].load(Ordering::Relaxed) == EMPTY
            && bucket[i]
                .compare_exchange(EMPTY, key, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        {
            claims[i].fetch_add(1, StdOrdering::Relaxed);
            return true;
        }
        i = (i + 1) & mask;
    }
    false
}

/// After every model thread joined: each slot claimed at most once, every
/// record's key present exactly once — "no two threads ever claim one
/// slot, every record lands exactly once".
fn assert_exactly_once(bucket: &[AtomicU64], claims: &[AtomicUsize], keys: &[u64]) {
    for (i, c) in claims.iter().enumerate() {
        assert!(
            c.load(StdOrdering::Relaxed) <= 1,
            "slot {i} claimed {} times",
            c.load(StdOrdering::Relaxed)
        );
    }
    let mut landed: Vec<u64> = bucket
        .iter()
        .map(AtomicU64::unsync_load)
        .filter(|&k| k != EMPTY)
        .collect();
    landed.sort_unstable();
    let mut expect = keys.to_vec();
    expect.sort_unstable();
    assert_eq!(landed, expect, "every record must land exactly once");
}

#[test]
fn cas_linear_probe_claims_are_exclusive() {
    // 2 threads × 2 records into a 4-slot bucket, every thread probing
    // from slot 0: slots 0 and 1 are contended by both threads in every
    // schedule, and the bucket ends exactly full (the boundary where a
    // duplicate claim would also evict a record).
    loom::model(|| {
        let bucket: Arc<Vec<AtomicU64>> = Arc::new((0..4).map(|_| AtomicU64::new(EMPTY)).collect());
        let claims: Arc<Vec<AtomicUsize>> = Arc::new((0..4).map(|_| AtomicUsize::new(0)).collect());
        let handles: Vec<_> = [[1u64, 2], [3, 4]]
            .into_iter()
            .map(|keys| {
                let bucket = bucket.clone();
                let claims = claims.clone();
                thread::spawn(move || {
                    for key in keys {
                        assert!(
                            model_place_linear(&bucket, &claims, 0, 3, key),
                            "4 records cannot overflow 4 slots"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_exactly_once(&bucket, &claims, &[1, 2, 3, 4]);
    });
}

#[test]
fn fetch_add_slab_with_cas_tail_is_exclusive() {
    // Model mirror of `blocked_scatter`'s flush: bucket of size 4 with
    // tail_log2 = 1 (slab = 2 slots, CAS tail = 2 slots). Each of 2
    // threads flushes a 2-record block: one fetch_add reserves a slab
    // range, whatever does not fit goes through the CAS tail. Both
    // threads contend on the cursor and, for whichever loses the slab, on
    // both tail slots.
    loom::model(|| {
        let size = 4usize;
        let slab = 2usize; // slab_len(4, tail_log2 = 1)
        let tail_mask = size - slab - 1;
        let slots: Arc<Vec<AtomicU64>> =
            Arc::new((0..size).map(|_| AtomicU64::new(EMPTY)).collect());
        let claims: Arc<Vec<AtomicUsize>> =
            Arc::new((0..size).map(|_| AtomicUsize::new(0)).collect());
        let cursor = Arc::new(LoomUsize::new(0));
        let handles: Vec<_> = [[1u64, 2], [3, 4]]
            .into_iter()
            .map(|buf| {
                let slots = slots.clone();
                let claims = claims.clone();
                let cursor = cursor.clone();
                thread::spawn(move || {
                    let k = buf.len();
                    let res = cursor.fetch_add(k, Ordering::Relaxed);
                    let fit = slab.saturating_sub(res).min(k);
                    for (j, &key) in buf[..fit].iter().enumerate() {
                        // The cursor reservation makes [res, res + fit)
                        // exclusively ours — plain stores, like Slot::set.
                        slots[res + j].store(key, Ordering::Relaxed);
                        claims[res + j].fetch_add(1, StdOrdering::Relaxed);
                    }
                    for &key in &buf[fit..] {
                        assert!(
                            model_place_linear(
                                &slots[slab..],
                                &claims[slab..],
                                res & tail_mask,
                                tail_mask,
                                key,
                            ),
                            "2 spilled records cannot overflow a 2-slot tail"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_exactly_once(&slots, &claims, &[1, 2, 3, 4]);
    });
}

#[test]
fn inplace_cursor_claims_are_exclusive() {
    // Model mirror of `inplace_scatter`'s claim step: one bucket whose
    // region is slots [0, 4), claim cursor starting at the region base.
    // 2 threads each try to place 3 records — 6 claims against 4 slots, so
    // in every schedule exactly 4 claims land in-region (each index handed
    // to exactly one thread) and exactly 2 strand. The production loop
    // uses the same Relaxed fetch_add: data publication is ordered by the
    // fork/join barrier, not the cursor, and the model checks only the
    // claim exclusivity the scatter relies on.
    loom::model(|| {
        let end = 4usize;
        let slots: Arc<Vec<AtomicU64>> =
            Arc::new((0..end).map(|_| AtomicU64::new(EMPTY)).collect());
        let claims: Arc<Vec<AtomicUsize>> =
            Arc::new((0..end).map(|_| AtomicUsize::new(0)).collect());
        let head = Arc::new(LoomUsize::new(0));
        let handles: Vec<_> = [[1u64, 2, 3], [4, 5, 6]]
            .into_iter()
            .map(|keys| {
                let slots = slots.clone();
                let claims = claims.clone();
                let head = head.clone();
                thread::spawn(move || {
                    let mut stranded = Vec::new();
                    for key in keys {
                        let dst = head.fetch_add(1, Ordering::Relaxed);
                        if dst < end {
                            // The fetch_add made `dst` exclusively ours —
                            // plain store, like `SharedOut::write`.
                            slots[dst].store(key, Ordering::Relaxed);
                            claims[dst].fetch_add(1, StdOrdering::Relaxed);
                        } else {
                            stranded.push(key);
                        }
                    }
                    stranded
                })
            })
            .collect();
        let stranded: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        assert_eq!(stranded.len(), 2, "exactly 6 - 4 claims must strand");
        let mut all: Vec<u64> = slots
            .iter()
            .map(AtomicU64::unsync_load)
            .filter(|&k| k != EMPTY)
            .chain(stranded)
            .collect();
        all.sort_unstable();
        assert_eq!(
            all,
            vec![1, 2, 3, 4, 5, 6],
            "landed + stranded must partition the records"
        );
        for (i, c) in claims.iter().enumerate() {
            assert_eq!(
                c.load(StdOrdering::Relaxed),
                1,
                "region slot {i} must be claimed exactly once"
            );
        }
    });
}

#[test]
fn broken_inplace_cursor_protocol_is_caught() {
    // Same cursor model with the fetch_add torn into load-then-store: the
    // explorer must find the schedule where both threads read the same
    // cursor value and claim one index twice (one record silently
    // overwritten). Keeps the green model above honest.
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let end = 2usize;
            let claims: Arc<Vec<AtomicUsize>> =
                Arc::new((0..end).map(|_| AtomicUsize::new(0)).collect());
            let head = Arc::new(LoomUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let claims = claims.clone();
                    let head = head.clone();
                    thread::spawn(move || {
                        // BROKEN: the read and the bump are not one
                        // atomic step.
                        let dst = head.load(Ordering::Relaxed);
                        head.store(dst + 1, Ordering::Relaxed);
                        if dst < end {
                            claims[dst].fetch_add(1, StdOrdering::Relaxed);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            for (i, c) in claims.iter().enumerate() {
                assert!(c.load(StdOrdering::Relaxed) <= 1, "slot {i} claimed twice");
            }
        });
    }));
    assert!(
        result.is_err(),
        "the explorer failed to catch the torn cursor claim"
    );
}

#[test]
fn broken_load_then_store_protocol_is_caught() {
    // Duplicate-claim injection: replace the CAS with the torn
    // load-then-store "claim" and the explorer MUST find the schedule
    // where both threads read EMPTY from slot 0 and both store into it —
    // one record overwrites the other. If this test ever stops failing
    // inside the model, the harness has lost its power to see races and
    // the two green models above prove nothing.
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let bucket: Arc<Vec<AtomicU64>> =
                Arc::new((0..2).map(|_| AtomicU64::new(EMPTY)).collect());
            let claims: Arc<Vec<AtomicUsize>> =
                Arc::new((0..2).map(|_| AtomicUsize::new(0)).collect());
            let handles: Vec<_> = [1u64, 2]
                .into_iter()
                .map(|key| {
                    let bucket = bucket.clone();
                    let claims = claims.clone();
                    thread::spawn(move || {
                        let mut i = 0usize;
                        loop {
                            if bucket[i].load(Ordering::Relaxed) == EMPTY {
                                // BROKEN: the vacancy check and the claim
                                // are not one atomic step.
                                bucket[i].store(key, Ordering::Relaxed);
                                claims[i].fetch_add(1, StdOrdering::Relaxed);
                                return;
                            }
                            i = (i + 1) & 1;
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_exactly_once(&bucket, &claims, &[1, 2]);
        });
    }));
    assert!(
        result.is_err(),
        "the explorer failed to catch an injected duplicate claim"
    );
}

/// Model mirror of `obs::OverflowCapture::report`: a first-report-wins
/// AcqRel latch whose unique winner then writes the payload words with
/// Relaxed stores (read back only after the join, like `take`).
#[test]
fn overflow_latch_first_report_wins() {
    use loom::sync::atomic::AtomicBool;
    loom::model(|| {
        let set = Arc::new(AtomicBool::new(false));
        let payload = Arc::new(AtomicU64::new(0));
        let wins = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = [7u64, 9]
            .into_iter()
            .map(|bucket| {
                let set = set.clone();
                let payload = payload.clone();
                let wins = wins.clone();
                thread::spawn(move || {
                    if set
                        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                        .is_ok()
                    {
                        payload.store(bucket, Ordering::Relaxed);
                        wins.fetch_add(1, StdOrdering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            wins.load(StdOrdering::Relaxed),
            1,
            "exactly one reporter must win the latch"
        );
        assert!(set.unsync_load(), "the latch must end set");
        let captured = payload.unsync_load();
        assert!(
            captured == 7 || captured == 9,
            "the payload must be the winner's report, got {captured}"
        );
    });
}

/// Model mirror of `cancel::CancelToken`: the canceller Release-stores a
/// payload (here an atomic standing in for "everything done before
/// cancel") and then trips the flag; any worker whose Acquire `check`
/// observes the flag must also observe that payload.
#[test]
fn cancel_token_flag_publishes() {
    use loom::sync::atomic::AtomicBool;
    loom::model(|| {
        let cancelled = Arc::new(AtomicBool::new(false));
        let payload = Arc::new(AtomicU64::new(0));
        let canceller = {
            let cancelled = cancelled.clone();
            let payload = payload.clone();
            thread::spawn(move || {
                payload.store(42, Ordering::Relaxed);
                cancelled.store(true, Ordering::Release);
            })
        };
        let worker = {
            let cancelled = cancelled.clone();
            let payload = payload.clone();
            thread::spawn(move || {
                if cancelled.load(Ordering::Acquire) {
                    assert_eq!(
                        payload.load(Ordering::Relaxed),
                        42,
                        "an observed cancel must publish what preceded it"
                    );
                }
            })
        };
        canceller.join().unwrap();
        worker.join().unwrap();
        assert!(cancelled.unsync_load());
    });
}
