//! Engine-reuse acceptance tests for the v1 [`Semisorter`] API.
//!
//! Pins the three contract points of the pooled engine:
//! 1. **Equivalence** — engine calls produce output identical to the
//!    one-shot `try_*` API, across ~100 consecutive calls over varied
//!    sizes and key distributions (byte-identical under one thread, where
//!    the Las Vegas scatter is deterministic for a fixed seed).
//! 2. **Stabilization** — `scratch_grows` drops to zero once the pool has
//!    seen its high-water-mark input; smaller inputs never grow it.
//! 3. **Resilience** — reuse survives both scatter strategies and a
//!    fault-injected degraded run: the fallback path returns its leases
//!    and the next clean call reuses them.

use semisort::prelude::*;
use semisort::{FaultPlan, Json};

/// Distribution `d` of size `n`: cycles through uniform-random keys,
/// a few hot keys, all-equal, all-distinct, and a skewed mix.
fn workload(n: u64, d: u64) -> Vec<(u64, u64)> {
    (0..n)
        .map(|i| {
            let k = match d % 5 {
                0 => parlay::hash64(i) % (n / 2 + 1), // ~uniform with dups
                1 => i % 7,                           // 7 heavy keys
                2 => 42,                              // one giant group
                3 => i,                               // all distinct
                _ => {
                    if i % 3 == 0 {
                        i % 5 // heavy slice
                    } else {
                        1_000_000 + i // light slice
                    }
                }
            };
            (parlay::hash64(k), i)
        })
        .collect()
}

fn assert_valid(out: &[(u64, u64)], input: &[(u64, u64)]) {
    assert!(semisort::verify::is_semisorted_by(out, |r| r.0));
    assert!(semisort::verify::is_permutation_of(out, input));
}

// ───────────────────── 1. equivalence over 100 calls ─────────────────────

/// 100 consecutive engine calls over varied sizes and distributions,
/// each compared byte-for-byte against the one-shot API under one
/// thread (fixed seed ⇒ the scatter is deterministic, so "identical
/// semantics" is literal equality).
#[test]
fn hundred_calls_match_one_shot_api() {
    for &strategy in &[
        ScatterStrategy::RandomCas,
        ScatterStrategy::Blocked,
        ScatterStrategy::InPlace,
    ] {
        let cfg = SemisortConfig::builder()
            .seed(7)
            .scatter(ScatterConfig {
                strategy,
                ..ScatterConfig::default()
            })
            .build()
            .unwrap();
        let mut engine = Semisorter::new(cfg).unwrap();
        parlay::with_threads(1, || {
            for call in 0..100u64 {
                let n = 500 + (call * 977) % 20_000;
                let recs = workload(n, call);
                let pooled = engine.sort_pairs(&recs).unwrap();
                let (one_shot, _) = try_semisort_with_stats(&recs, &cfg).unwrap();
                assert_eq!(pooled, one_shot, "call {call} (n={n}, {strategy:?})");
                assert_valid(&pooled, &recs);
            }
        });
    }
}

/// The by-key surface agrees with its one-shot wrappers too (same
/// transient-engine code path, but pinned from the outside).
#[test]
fn by_key_surface_matches_one_shot_api() {
    let cfg = SemisortConfig::builder().seed(3).build().unwrap();
    let mut engine = Semisorter::new(cfg).unwrap();
    parlay::with_threads(1, || {
        for call in 0..10u64 {
            let items: Vec<u32> = (0..8_000u32)
                .map(|i| (i.wrapping_mul(2654435761)) % (200 + call as u32 * 100))
                .collect();
            let pooled = engine.sort_by_key(&items, |&x| x).unwrap();
            let one_shot = try_semisort_by_key(&items, |&x| x, &cfg).unwrap();
            assert_eq!(pooled, one_shot, "sort_by_key call {call}");
            let pooled_perm = engine.permutation(&items, |&x| x).unwrap();
            let one_shot_perm = try_semisort_permutation(&items, |&x| x, &cfg).unwrap();
            assert_eq!(pooled_perm, one_shot_perm, "permutation call {call}");
            let pooled_stable = engine.stable_by_key(&items, |&x| x).unwrap();
            let one_shot_stable = try_semisort_stable_by_key(&items, |&x| x, &cfg).unwrap();
            assert_eq!(pooled_stable, one_shot_stable, "stable call {call}");
        }
    });
}

// ───────────────────── 2. scratch_grows stabilization ────────────────────

/// After one call at the high-water-mark size, every later call — at
/// that size or below, any distribution — reports `scratch_grows == 0`
/// and a stable `scratch_bytes_held`.
#[test]
fn grows_stabilize_after_high_water_mark() {
    let mut engine = Semisorter::new(SemisortConfig::default()).unwrap();
    let big = workload(60_000, 0);
    engine.sort_pairs(&big).unwrap();
    assert!(
        engine.last_stats().scratch_grows >= 1,
        "cold pool must grow"
    );
    let held = engine.scratch_bytes_held();
    assert!(held > 0);
    for call in 0..20u64 {
        // Above seq_threshold (so the parallel path leases the arena),
        // never above the 60k high-water mark.
        let n = 9_000 + (call * 2_711) % 50_000;
        let recs = workload(n, call);
        let out = engine.sort_pairs(&recs).unwrap();
        assert_valid(&out, &recs);
        assert_eq!(
            engine.last_stats().scratch_grows,
            0,
            "call {call} (n={n}) grew a warm pool"
        );
        assert!(engine.last_stats().scratch_reuse_hits >= 1, "call {call}");
        assert_eq!(engine.scratch_bytes_held(), held, "call {call}");
    }
    // A much larger input (4×: beyond any power-of-two rounding of the
    // 60k arena) raises the mark exactly once more.
    let bigger = workload(240_000, 1);
    engine.sort_pairs(&bigger).unwrap();
    assert!(engine.last_stats().scratch_grows >= 1);
    engine.sort_pairs(&bigger).unwrap();
    assert_eq!(engine.last_stats().scratch_grows, 0);
}

/// The stats JSON carries the pool counters (schema `semisort-stats-v2`).
#[test]
fn scratch_counters_reach_stats_json() {
    let mut engine = Semisorter::new(SemisortConfig::default()).unwrap();
    let recs = workload(10_000, 0);
    engine.sort_pairs(&recs).unwrap();
    engine.sort_pairs(&recs).unwrap();
    let json = engine.last_stats().to_json().to_string();
    let parsed = Json::parse(&json).expect("stats JSON parses");
    let counters = parsed.get("counters").expect("counters object");
    assert_eq!(counters.get("scratch_grows").unwrap().as_u64(), Some(0));
    assert!(
        counters
            .get("scratch_reuse_hits")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 1
    );
    assert!(
        counters
            .get("scratch_bytes_held")
            .unwrap()
            .as_u64()
            .unwrap()
            > 0
    );
}

// ─────────────── 3. both strategies + post-fault reuse ────────────────────

/// Reuse counters behave identically under both scatter strategies.
#[test]
fn reuse_holds_for_both_scatter_strategies() {
    for &strategy in &[
        ScatterStrategy::RandomCas,
        ScatterStrategy::Blocked,
        ScatterStrategy::InPlace,
    ] {
        let cfg = SemisortConfig::builder()
            .scatter(ScatterConfig {
                strategy,
                ..ScatterConfig::default()
            })
            .build()
            .unwrap();
        let mut engine = Semisorter::new(cfg).unwrap();
        let recs = workload(40_000, 4);
        engine.sort_pairs(&recs).unwrap();
        for _ in 0..3 {
            let out = engine.sort_pairs(&recs).unwrap();
            assert_valid(&out, &recs);
            assert_eq!(engine.last_stats().scratch_grows, 0, "{strategy:?}");
            assert!(engine.last_stats().scratch_reuse_hits >= 1, "{strategy:?}");
        }
    }
}

/// A fault-forced degraded run (retry budget exhausted ⇒ comparison-sort
/// fallback) must return its leases: the pool stays warm and the next
/// clean engine keeps reusing. Exercised for both strategies and for the
/// injected-allocation-failure path.
#[test]
fn reuse_survives_fault_injected_fallback() {
    for &strategy in &[
        ScatterStrategy::RandomCas,
        ScatterStrategy::Blocked,
        ScatterStrategy::InPlace,
    ] {
        for fault in ["force-overflow:31", "fail-alloc:31"] {
            let cfg = SemisortConfig::builder()
                .scatter(ScatterConfig {
                    strategy,
                    ..ScatterConfig::default()
                })
                .fault(FaultPlan::parse(fault).unwrap())
                .build()
                .unwrap();
            let mut engine = Semisorter::new(cfg).unwrap();
            let recs = workload(30_000, 4);
            // Warm the pool with a degraded run.
            let out = engine.sort_pairs(&recs).unwrap();
            assert_valid(&out, &recs);
            assert!(
                engine.last_stats().degraded,
                "{strategy:?}/{fault}: fault plan should force the fallback"
            );
            let held = engine.scratch_bytes_held();
            // Degraded again, but now on a warm pool: no new growth. (The
            // fail-alloc plan rejects leases without freeing pooled
            // memory, so grows stays 0 there too.)
            let out = engine.sort_pairs(&recs).unwrap();
            assert_valid(&out, &recs);
            assert_eq!(
                engine.last_stats().scratch_grows,
                0,
                "{strategy:?}/{fault}: fallback must return its leases"
            );
            assert_eq!(engine.scratch_bytes_held(), held, "{strategy:?}/{fault}");
        }
    }
}

// ───────────────────── retention knobs and builder ────────────────────────

/// `max_scratch_bytes` trims the pool after every call; `trim()` does it
/// on demand; both leave the engine fully functional.
#[test]
fn retention_budget_and_trim() {
    let cfg = SemisortConfig::builder()
        .max_scratch_bytes(4096)
        .build()
        .unwrap();
    let mut bounded = Semisorter::new(cfg).unwrap();
    let recs = workload(30_000, 0);
    let out = bounded.sort_pairs(&recs).unwrap();
    assert_valid(&out, &recs);
    assert_eq!(bounded.scratch_bytes_held(), 0, "budget trims on exit");
    assert_eq!(bounded.last_stats().scratch_bytes_held, 0);

    let mut unbounded = Semisorter::new(SemisortConfig::default()).unwrap();
    unbounded.sort_pairs(&recs).unwrap();
    assert!(unbounded.scratch_bytes_held() > 0);
    unbounded.trim();
    assert_eq!(unbounded.scratch_bytes_held(), 0);
    let out = unbounded.sort_pairs(&recs).unwrap();
    assert_valid(&out, &recs);
}

/// The builder reports invalid configurations as `Err` (not a panic), and
/// `Semisorter::new` re-checks whatever config it is handed.
#[test]
fn builder_and_engine_reject_invalid_configs() {
    let err = SemisortConfig::builder().max_retries(40).build();
    assert!(matches!(err, Err(SemisortError::InvalidConfig { .. })));
    let err = SemisortConfig::builder().alpha(0.5).build();
    assert!(matches!(err, Err(SemisortError::InvalidConfig { .. })));

    let bad = SemisortConfig {
        scatter: ScatterConfig {
            block: 100, // not a power of two
            ..ScatterConfig::default()
        },
        ..SemisortConfig::default()
    };
    match Semisorter::new(bad) {
        Err(SemisortError::InvalidConfig { reason }) => {
            assert!(reason.contains("power of two"), "{reason}");
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
}
