//! Chaos tests: drive every escalation transition of the Las Vegas retry
//! loop deterministically, for both scatter strategies, via the config's
//! [`FaultPlan`].
//!
//! The five terminal outcomes under test:
//! 1. **retry-success** — a fault on the first attempt only; the retry
//!    (with doubled α and a re-mixed seed) completes the run.
//! 2. **fallback** — faults outlast `max_retries`; the default policy
//!    degrades to the comparison sort and still returns a valid semisort.
//! 3. **error** — same exhaustion under `OverflowPolicy::Error` returns a
//!    typed [`SemisortError`].
//! 4. **panic** — same exhaustion under `OverflowPolicy::Panic` panics.
//! 5. **budget-clamp** — `max_arena_bytes` stops the α-doubling geometry
//!    before the retry budget is spent.

use std::panic::{catch_unwind, AssertUnwindSafe};

use parlay::hash64;
use semisort::{
    try_semisort_with_stats, DegradeReason, FaultPlan, Json, OverflowPolicy, ScatterConfig,
    ScatterStrategy, SemisortConfig, SemisortError, TelemetryLevel,
};

const STRATEGIES: [ScatterStrategy; 3] = [
    ScatterStrategy::RandomCas,
    ScatterStrategy::Blocked,
    ScatterStrategy::InPlace,
];

/// The strategies whose scratch memory scales with α (so α-doubling and
/// sample corruption change their allocation geometry). The in-place
/// scatter counts exactly — it cannot overflow naturally and its scratch
/// is O(buckets + workers), independent of α.
const ARENA_STRATEGIES: [ScatterStrategy; 2] =
    [ScatterStrategy::RandomCas, ScatterStrategy::Blocked];

/// Half heavy (10 hot keys), half light — both bucket classes populated,
/// so class-targeted faults have something to hit.
fn mixed_workload(n: u64) -> Vec<(u64, u64)> {
    (0..n)
        .map(|i| {
            let k = if i % 2 == 0 { i % 10 } else { 1_000_000 + i };
            (hash64(k), i)
        })
        .collect()
}

fn cfg(strategy: ScatterStrategy, fault: &str) -> SemisortConfig {
    SemisortConfig {
        scatter: ScatterConfig {
            strategy,
            ..ScatterConfig::default()
        },
        fault: FaultPlan::parse(fault).expect("fault spec"),
        ..Default::default()
    }
}

fn assert_valid(out: &[(u64, u64)], input: &[(u64, u64)]) {
    assert!(semisort::verify::is_semisorted_by(out, |r| r.0));
    assert!(semisort::verify::is_permutation_of(out, input));
}

// ───────────────────────── outcome 1: retry-success ─────────────────────

#[test]
fn forced_overflow_once_retries_then_succeeds() {
    let recs = mixed_workload(100_000);
    for strategy in STRATEGIES {
        let (out, stats) =
            try_semisort_with_stats(&recs, &cfg(strategy, "force-overflow:1")).unwrap();
        assert_valid(&out, &recs);
        assert_eq!(stats.retries, 1, "{strategy:?}: exactly one forced retry");
        assert!(!stats.degraded, "{strategy:?}");
        assert_eq!(stats.degrade_reason, None);
        assert_eq!(stats.faults_injected, 1, "{strategy:?}");
        assert_eq!(stats.telemetry.retry_causes.len(), 1, "{strategy:?}");
    }
}

#[test]
fn forced_overflow_targets_bucket_class() {
    let recs = mixed_workload(100_000);
    for strategy in STRATEGIES {
        for (spec, want_heavy) in [
            ("force-overflow-heavy:1", true),
            ("force-overflow-light:1", false),
        ] {
            let (out, stats) = try_semisort_with_stats(&recs, &cfg(strategy, spec)).unwrap();
            assert_valid(&out, &recs);
            let cause = &stats.telemetry.retry_causes[0];
            assert_eq!(
                cause.heavy, want_heavy,
                "{strategy:?}/{spec}: overflow must land in the targeted class"
            );
        }
    }
}

#[test]
fn corrupt_sample_overflows_naturally_then_recovers() {
    // Decimating the sample 8× makes α·f(s) under-allocate every bucket —
    // a *natural* overflow through estimate/buckets/scatter, not a forced
    // report. The uncorrupted retry completes.
    let recs = mixed_workload(100_000);
    for strategy in ARENA_STRATEGIES {
        let (out, stats) =
            try_semisort_with_stats(&recs, &cfg(strategy, "corrupt-sample:1")).unwrap();
        assert_valid(&out, &recs);
        assert!(
            stats.retries >= 1,
            "{strategy:?}: an 8×-starved plan must overflow"
        );
        assert!(!stats.degraded, "{strategy:?}");
        assert!(
            !stats.telemetry.retry_causes.is_empty(),
            "{strategy:?}: the natural overflow must be diagnosed"
        );
    }
}

// ─────────────────────────── outcome 2: fallback ────────────────────────

#[test]
fn exhausted_retries_degrade_to_fallback() {
    let recs = mixed_workload(100_000);
    for strategy in STRATEGIES {
        let base = cfg(strategy, "force-overflow:31");
        let (out, stats) = try_semisort_with_stats(&recs, &base).unwrap();
        assert_valid(&out, &recs);
        assert!(stats.degraded, "{strategy:?}");
        assert_eq!(stats.degrade_reason, Some(DegradeReason::RetriesExhausted));
        assert_eq!(stats.retries, base.max_retries + 1, "{strategy:?}");
        assert_eq!(
            stats.heavy_records, 0,
            "{strategy:?}: fallback is all-light"
        );
        assert_eq!(stats.light_records, recs.len(), "{strategy:?}");
        assert_eq!(
            stats.faults_injected,
            base.max_retries + 1,
            "{strategy:?}: one armed fault per attempt"
        );

        // The degradation is visible in the stats JSON outcome section.
        let j = Json::parse(&stats.to_json().to_string()).unwrap();
        let outcome = j.get("outcome").expect("outcome section");
        assert_eq!(outcome.get("degraded"), Some(&Json::Bool(true)));
        assert_eq!(
            outcome.get("reason").and_then(Json::as_str),
            Some("retries-exhausted")
        );
    }
}

#[test]
fn alloc_failure_degrades_to_fallback() {
    let recs = mixed_workload(100_000);
    for strategy in STRATEGIES {
        let (out, stats) = try_semisort_with_stats(&recs, &cfg(strategy, "fail-alloc:1")).unwrap();
        assert_valid(&out, &recs);
        assert!(stats.degraded, "{strategy:?}");
        assert_eq!(stats.degrade_reason, Some(DegradeReason::AllocFailed));
        assert_eq!(stats.light_records, recs.len());
    }
}

// ──────────────────────────── outcome 3: error ──────────────────────────

#[test]
fn exhausted_retries_error_policy() {
    let recs = mixed_workload(100_000);
    for strategy in STRATEGIES {
        let c = SemisortConfig {
            overflow_policy: OverflowPolicy::Error,
            max_retries: 1,
            ..cfg(strategy, "force-overflow:31")
        };
        let err = try_semisort_with_stats(&recs, &c).unwrap_err();
        assert_eq!(err.kind(), "retries-exhausted", "{strategy:?}");
        match err {
            SemisortError::RetriesExhausted { attempts, alpha, n } => {
                assert_eq!(attempts, 2, "{strategy:?}: initial run + 1 retry");
                assert!(alpha > c.alpha, "{strategy:?}: α must have doubled");
                assert_eq!(n, recs.len());
            }
            other => panic!("{strategy:?}: wrong error {other:?}"),
        }
    }
}

#[test]
fn alloc_failure_error_policy() {
    let recs = mixed_workload(100_000);
    for strategy in STRATEGIES {
        let c = SemisortConfig {
            overflow_policy: OverflowPolicy::Error,
            ..cfg(strategy, "fail-alloc:1")
        };
        let err = try_semisort_with_stats(&recs, &c).unwrap_err();
        match err {
            SemisortError::ArenaAllocFailed { bytes, attempt } => {
                assert_eq!(attempt, 0, "{strategy:?}");
                assert!(bytes > 0, "{strategy:?}");
            }
            other => panic!("{strategy:?}: wrong error {other:?}"),
        }
    }
}

// ──────────────────────────── outcome 4: panic ──────────────────────────

#[test]
fn exhausted_retries_panic_policy() {
    let recs = mixed_workload(100_000);
    for strategy in STRATEGIES {
        let c = SemisortConfig {
            overflow_policy: OverflowPolicy::Panic,
            max_retries: 1,
            ..cfg(strategy, "force-overflow:31")
        };
        let result = catch_unwind(AssertUnwindSafe(|| try_semisort_with_stats(&recs, &c)));
        let msg = *result
            .expect_err("must panic")
            .downcast::<String>()
            .expect("panic payload");
        assert!(
            msg.contains("semisort") && msg.contains("overflow"),
            "{strategy:?}: {msg}"
        );
    }
}

#[test]
fn panicking_wrapper_surfaces_error_policy() {
    // The panicking entry points wrap try_*: under OverflowPolicy::Error a
    // terminal failure becomes their panic.
    let recs = mixed_workload(100_000);
    let c = SemisortConfig {
        overflow_policy: OverflowPolicy::Error,
        max_retries: 1,
        ..cfg(ScatterStrategy::RandomCas, "force-overflow:31")
    };
    #[allow(deprecated)]
    let result = catch_unwind(AssertUnwindSafe(|| {
        semisort::semisort_with_stats(&recs, &c)
    }));
    assert!(result.is_err());
}

// ───────────────────────── outcome 5: budget-clamp ──────────────────────

#[test]
fn tiny_arena_budget_degrades_immediately() {
    let recs = mixed_workload(100_000);
    for strategy in STRATEGIES {
        let c = SemisortConfig {
            max_arena_bytes: 1024,
            ..cfg(strategy, "none")
        };
        let (out, stats) = try_semisort_with_stats(&recs, &c).unwrap();
        assert_valid(&out, &recs);
        assert!(stats.degraded, "{strategy:?}");
        assert_eq!(stats.degrade_reason, Some(DegradeReason::BudgetExceeded));
        assert_eq!(stats.retries, 0, "{strategy:?}: clamped before any retry");
    }
}

#[test]
fn arena_budget_clamps_alpha_doubling() {
    // With persistent forced overflows and a generous-but-finite budget,
    // the geometric α-doubling must hit the budget long before the retry
    // budget: the run ends in ArenaBudgetExceeded at some attempt ≥ 1, not
    // in RetriesExhausted at attempt 31.
    let recs = mixed_workload(100_000);
    for strategy in ARENA_STRATEGIES {
        let c = SemisortConfig {
            overflow_policy: OverflowPolicy::Error,
            max_retries: 30,
            max_arena_bytes: 8 << 20,
            ..cfg(strategy, "force-overflow:31")
        };
        let err = try_semisort_with_stats(&recs, &c).unwrap_err();
        match err {
            SemisortError::ArenaBudgetExceeded {
                required_bytes,
                budget_bytes,
                attempt,
            } => {
                assert!(required_bytes > budget_bytes, "{strategy:?}");
                assert_eq!(budget_bytes, 8 << 20);
                assert!(
                    (1..=30).contains(&attempt),
                    "{strategy:?}: doubling must burst an 8 MiB budget \
                     after a few retries, got attempt {attempt}"
                );
            }
            other => panic!("{strategy:?}: wrong error {other:?}"),
        }
    }
}

// ─────────────────────────── determinism ────────────────────────────────

#[test]
fn faulted_runs_are_deterministic() {
    let recs = mixed_workload(60_000);
    for strategy in STRATEGIES {
        let c = cfg(strategy, "force-overflow:2");
        let (out_a, stats_a) =
            parlay::with_threads(1, || try_semisort_with_stats(&recs, &c).unwrap());
        let (out_b, stats_b) =
            parlay::with_threads(1, || try_semisort_with_stats(&recs, &c).unwrap());
        assert_eq!(out_a, out_b, "{strategy:?}: same plan ⇒ same output");
        assert_eq!(stats_a.retries, stats_b.retries);
        assert_eq!(stats_a.retries, 2, "{strategy:?}");
        let buckets_a: Vec<u32> = stats_a
            .telemetry
            .retry_causes
            .iter()
            .map(|r| r.bucket)
            .collect();
        let buckets_b: Vec<u32> = stats_b
            .telemetry
            .retry_causes
            .iter()
            .map(|r| r.bucket)
            .collect();
        assert_eq!(
            buckets_a, buckets_b,
            "{strategy:?}: same overflow diagnosis"
        );
    }
}

// ──────────────── pre-existing fallback paths (satellite) ───────────────

#[test]
fn seq_threshold_fallback_is_quiet_and_correct() {
    // Inputs at or below seq_threshold never touch the Las Vegas machinery:
    // correct output, all records counted light, zero retries, and — at
    // TelemetryLevel::Off — completely inert telemetry.
    let cfg = SemisortConfig {
        telemetry: TelemetryLevel::Off,
        ..Default::default()
    };
    let recs: Vec<(u64, u64)> = (0..cfg.seq_threshold as u64)
        .map(|i| (hash64(i % 7), i))
        .collect();
    let (out, stats) = try_semisort_with_stats(&recs, &cfg).unwrap();
    assert_valid(&out, &recs);
    assert_eq!(stats.light_records, recs.len());
    assert_eq!(stats.heavy_records, 0);
    assert_eq!(stats.retries, 0);
    assert!(!stats.degraded, "routing fallback is not degradation");
    assert_eq!(stats.degrade_reason, None);
    assert_eq!(stats.telemetry.cas_attempts, 0);
    assert_eq!(stats.telemetry.records_placed, 0);
    assert!(stats.telemetry.retry_causes.is_empty());
}

#[test]
fn reserved_key_fallback_is_quiet_and_correct() {
    // Keys colliding with the slot-vacancy sentinel (0) or the hash-table
    // sentinel (u64::MAX) take the screening fallback.
    for sentinel in [semisort::scatter::EMPTY, parlay::hash_table::EMPTY] {
        let cfg = SemisortConfig {
            telemetry: TelemetryLevel::Off,
            ..Default::default()
        };
        let mut recs: Vec<(u64, u64)> = (0..50_000u64).map(|i| (hash64(i % 100), i)).collect();
        recs[12_345].0 = sentinel;
        recs[23_456].0 = sentinel;
        let (out, stats) = try_semisort_with_stats(&recs, &cfg).unwrap();
        assert_valid(&out, &recs);
        assert_eq!(stats.light_records, recs.len(), "sentinel {sentinel:#x}");
        assert_eq!(stats.retries, 0);
        assert!(!stats.degraded);
        assert_eq!(stats.telemetry.cas_attempts, 0, "sentinel {sentinel:#x}");
        assert_eq!(stats.telemetry.records_placed, 0);
        assert!(stats.telemetry.retry_causes.is_empty());
    }
}
