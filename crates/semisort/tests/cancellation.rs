//! Cancellation and deadline semantics: the all-or-nothing guarantee.
//!
//! A cancelled (or deadline-expired) run must return `Cancelled` /
//! `DeadlineExceeded` and leave the output exactly as it was — never a
//! partially-written result. The token is polled at phase boundaries
//! only; the last poll is after `local_sort`, so once a run commits to
//! writing the output nothing can interrupt it. These tests pin that
//! contract across both scatter strategies and all three overflow
//! policies, because each combination routes through different driver
//! paths (CAS vs blocked scatter; fallback vs error escalation).

use std::time::Duration;

use semisort::driver::try_semisort_with_stats_cancellable;
use semisort::{
    CancelToken, OverflowPolicy, ScatterConfig, ScatterStrategy, SemisortConfig, SemisortError,
    Semisorter,
};

fn records(n: usize) -> Vec<(u64, u64)> {
    // Pre-hashed keys: avoid the reserved sentinels 0 and u64::MAX so the
    // run takes the full parallel path rather than the sentinel fallback.
    (0..n as u64).map(|i| (i % 97 + 1, i)).collect()
}

fn all_configs() -> Vec<SemisortConfig> {
    let mut cfgs = Vec::new();
    for scatter in [
        ScatterStrategy::RandomCas,
        ScatterStrategy::Blocked,
        ScatterStrategy::InPlace,
    ] {
        for policy in [
            OverflowPolicy::Fallback,
            OverflowPolicy::Error,
            OverflowPolicy::Panic,
        ] {
            cfgs.push(SemisortConfig {
                seq_threshold: 64,
                scatter: ScatterConfig {
                    strategy: scatter,
                    ..ScatterConfig::default()
                },
                overflow_policy: policy,
                ..SemisortConfig::default()
            });
        }
    }
    cfgs
}

#[test]
fn pre_cancelled_token_returns_cancelled_across_all_modes() {
    for cfg in all_configs() {
        let token = CancelToken::new();
        token.cancel();
        let err = try_semisort_with_stats_cancellable(&records(4096), &cfg, &token)
            .expect_err("cancelled before entry must not run");
        assert!(
            matches!(err, SemisortError::Cancelled),
            "{:?}/{:?}: got {err:?}",
            cfg.scatter.strategy,
            cfg.overflow_policy
        );
    }
}

#[test]
fn expired_deadline_returns_deadline_exceeded_across_all_modes() {
    for cfg in all_configs() {
        let token = CancelToken::new();
        token.set_deadline_in(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        let err = try_semisort_with_stats_cancellable(&records(4096), &cfg, &token)
            .expect_err("expired deadline must not run");
        assert!(
            matches!(err, SemisortError::DeadlineExceeded { .. }),
            "{:?}/{:?}: got {err:?}",
            cfg.scatter.strategy,
            cfg.overflow_policy
        );
    }
}

#[test]
fn future_deadline_does_not_disturb_a_normal_run() {
    for cfg in all_configs() {
        let token = CancelToken::new();
        token.set_deadline_in(Duration::from_secs(3600));
        let input = records(4096);
        let (out, stats) = try_semisort_with_stats_cancellable(&input, &cfg, &token)
            .expect("a generous deadline never fires");
        assert_eq!(out.len(), input.len());
        assert_eq!(stats.n, input.len());
        let mut want = input.clone();
        let mut got = out;
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(want, got, "output is a permutation of the input");
    }
}

#[test]
fn explicit_cancel_wins_over_expired_deadline() {
    let cfg = SemisortConfig {
        seq_threshold: 64,
        ..SemisortConfig::default()
    };
    let token = CancelToken::new();
    token.set_deadline_in(Duration::ZERO);
    token.cancel();
    std::thread::sleep(Duration::from_millis(1));
    let err =
        try_semisort_with_stats_cancellable(&records(4096), &cfg, &token).expect_err("must fail");
    assert!(
        matches!(err, SemisortError::Cancelled),
        "cancel is the more specific signal: {err:?}"
    );
}

#[test]
fn cancelled_engine_call_leaves_output_all_or_nothing() {
    // Cancel from another thread while calls stream through an engine:
    // every call either fails with Cancelled/DeadlineExceeded (and its
    // output is discarded by the engine API) or succeeds with a complete,
    // correct permutation. There is no observable in-between.
    for cfg in all_configs() {
        let mut engine = Semisorter::new(cfg).unwrap();
        let input = records(8192);
        let token = engine.cancel_token().clone();

        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_micros(200));
                token.cancel();
            })
        };
        let result = engine.sort_pairs(&input);
        canceller.join().unwrap();
        match result {
            Ok(out) => {
                // Raced past every poll before the cancel landed: must be
                // a complete, valid semisort.
                assert_eq!(out.len(), input.len());
                let mut want = input.clone();
                let mut got = out;
                want.sort_unstable();
                got.sort_unstable();
                assert_eq!(want, got, "committed output is a full permutation");
            }
            Err(SemisortError::Cancelled) => {}
            Err(other) => panic!("unexpected error under cancellation: {other:?}"),
        }

        // The token is sticky until reset; the engine reports Cancelled
        // without touching new work.
        if token.is_cancelled() {
            assert!(matches!(
                engine.sort_pairs(&input),
                Err(SemisortError::Cancelled)
            ));
            token.reset();
        }
        // After reset the same engine serves normally again.
        assert!(engine.sort_pairs(&records(256)).is_ok());
    }
}

#[test]
fn deadline_mid_run_never_yields_partial_output() {
    // A deadline tight enough to fire at some phase boundary mid-run (but
    // not before entry). Whatever boundary it fires at, the result is
    // all-or-nothing: an error with no output, or a complete permutation.
    for cfg in all_configs() {
        for deadline_us in [50u64, 200, 1000] {
            let mut engine = Semisorter::new(cfg).unwrap();
            let input = records(16384);
            let token = engine.cancel_token().clone();
            token.reset();
            token.set_deadline_in(Duration::from_micros(deadline_us));
            match engine.sort_pairs(&input) {
                Ok(out) => {
                    assert_eq!(out.len(), input.len(), "complete output only");
                    let mut want = input.clone();
                    let mut got = out;
                    want.sort_unstable();
                    got.sort_unstable();
                    assert_eq!(want, got);
                }
                Err(SemisortError::DeadlineExceeded {
                    deadline_us,
                    now_us,
                }) => {
                    assert!(now_us >= deadline_us, "reported times are coherent");
                }
                Err(other) => panic!("unexpected error under deadline: {other:?}"),
            }
        }
    }
}

#[test]
fn cancellable_entry_point_is_equivalent_when_token_is_inert() {
    let cfg = SemisortConfig {
        seq_threshold: 64,
        ..SemisortConfig::default()
    };
    let input = records(4096);
    let token = CancelToken::new();
    let (a, _) = try_semisort_with_stats_cancellable(&input, &cfg, &token).unwrap();
    let (b, _) = semisort::try_semisort_with_stats(&input, &cfg).unwrap();
    assert_eq!(a, b, "an inert token changes nothing (same seed, same run)");
}
