//! Telemetry and JSON-export integration tests: schema round-trips through
//! the in-tree JSON reader, counter invariants hold across scatter
//! strategies and telemetry levels, and `TelemetryLevel::Off` is inert —
//! identical output, all telemetry fields at their defaults.

use parlay::hash64;
use semisort::{
    try_semisort_with_stats, Json, ScatterConfig, ScatterStrategy, SemisortConfig, SemisortStats,
    TelemetryLevel,
};

fn workload(n: u64) -> Vec<(u64, u64)> {
    // Half heavy (10 hot keys), half light — exercises both bucket kinds.
    (0..n)
        .map(|i| {
            let k = if i % 2 == 0 { i % 10 } else { 1_000_000 + i };
            (hash64(k), i)
        })
        .collect()
}

fn run(n: u64, strategy: ScatterStrategy, level: TelemetryLevel) -> SemisortStats {
    let cfg = SemisortConfig {
        scatter: ScatterConfig {
            strategy,
            ..ScatterConfig::default()
        },
        telemetry: level,
        ..Default::default()
    };
    let (out, stats) = try_semisort_with_stats(&workload(n), &cfg).unwrap();
    assert!(semisort::verify::is_semisorted_by(&out, |r| r.0));
    assert_eq!(out.len(), n as usize);
    stats
}

const ALL_STRATEGIES: [ScatterStrategy; 3] = [
    ScatterStrategy::RandomCas,
    ScatterStrategy::Blocked,
    ScatterStrategy::InPlace,
];
const ALL_LEVELS: [TelemetryLevel; 3] = [
    TelemetryLevel::Off,
    TelemetryLevel::Counters,
    TelemetryLevel::Deep,
];

#[test]
fn counter_invariants_across_strategies_and_levels() {
    let n = 100_000u64;
    for strategy in ALL_STRATEGIES {
        for level in ALL_LEVELS {
            let stats = run(n, strategy, level);
            assert_eq!(
                stats.heavy_records + stats.light_records,
                n as usize,
                "{strategy:?}/{level:?}: heavy + light must cover every record"
            );
            assert_eq!(
                stats.total(),
                stats.t_sample_sort
                    + stats.t_construct_buckets
                    + stats.t_scatter
                    + stats.t_local_sort
                    + stats.t_pack,
                "{strategy:?}/{level:?}: total() must sum the five phases"
            );
            assert_eq!(stats.telemetry.level, level);
            if level.counters() {
                // Every record is placed by an instrumented path, with no
                // retries the counts are exact.
                assert_eq!(
                    stats.telemetry.records_placed, n,
                    "{strategy:?}/{level:?}: every record placement is counted"
                );
                assert!(
                    stats.telemetry.cas_attempts >= stats.telemetry.cas_failures,
                    "{strategy:?}/{level:?}: failures are a subset of attempts"
                );
            }
            if level.deep() {
                if strategy == ScatterStrategy::RandomCas {
                    assert_eq!(
                        stats.telemetry.probe_hist.count(),
                        n,
                        "deep CAS scatter records one probe length per record"
                    );
                }
                assert_eq!(
                    stats.telemetry.light_occupancy_hist.count(),
                    stats.light_buckets as u64,
                    "deep run records one occupancy sample per light bucket"
                );
            } else {
                assert!(stats.telemetry.probe_hist.is_empty());
                assert!(stats.telemetry.light_occupancy_hist.is_empty());
            }
        }
    }
}

#[test]
fn json_round_trips_for_all_variants() {
    for strategy in ALL_STRATEGIES {
        for level in ALL_LEVELS {
            let stats = run(50_000, strategy, level);
            let text = stats.to_json().to_string();
            let back = Json::parse(&text)
                .unwrap_or_else(|e| panic!("{strategy:?}/{level:?}: parse failed: {e}"));

            assert_eq!(
                back.get("schema").and_then(Json::as_str),
                Some("semisort-stats-v2")
            );
            assert_eq!(back.get("n").and_then(Json::as_u64), Some(50_000));
            let phases = back.get("phases").expect("phases section");
            for key in [
                "sample_sort_s",
                "construct_buckets_s",
                "scatter_s",
                "local_sort_s",
                "pack_s",
            ] {
                let v = phases.get(key).and_then(Json::as_f64);
                assert!(
                    v.is_some_and(|v| v >= 0.0),
                    "phase {key} must be a non-negative number, got {v:?}"
                );
            }
            // total_s equals the sum of the five phases (within float noise).
            let sum: f64 = [
                "sample_sort_s",
                "construct_buckets_s",
                "scatter_s",
                "local_sort_s",
                "pack_s",
            ]
            .iter()
            .map(|k| phases.get(k).and_then(Json::as_f64).unwrap())
            .sum();
            let total = phases.get("total_s").and_then(Json::as_f64).unwrap();
            assert!((total - sum).abs() < 1e-9, "total_s {total} != sum {sum}");

            let counters = back.get("counters").expect("counters section");
            let heavy = counters
                .get("heavy_records")
                .and_then(Json::as_u64)
                .unwrap();
            let light = counters
                .get("light_records")
                .and_then(Json::as_u64)
                .unwrap();
            assert_eq!(heavy + light, 50_000);

            let config = back.get("config").expect("config section");
            assert_eq!(
                config.get("scatter_strategy").and_then(Json::as_str),
                Some(match strategy {
                    ScatterStrategy::RandomCas => "random-cas",
                    ScatterStrategy::Blocked => "blocked",
                    ScatterStrategy::InPlace => "inplace",
                })
            );
            assert_eq!(
                config.get("telemetry").and_then(Json::as_str),
                Some(level.as_str())
            );

            let telemetry = back.get("telemetry").expect("telemetry section");
            assert_eq!(
                telemetry.get("level").and_then(Json::as_str),
                Some(level.as_str())
            );
            let hist = telemetry
                .get("probe_hist")
                .and_then(Json::as_arr)
                .expect("probe_hist array");
            assert_eq!(hist.len(), semisort::obs::HIST_BUCKETS);
        }
    }
}

#[test]
fn telemetry_off_matches_deep_output_and_stays_default() {
    // Off and Deep must produce byte-identical outputs (single-threaded to
    // exclude CAS-race nondeterminism), and Off must leave every gated
    // telemetry field at its default.
    let n = 1_000_000u64;
    let records = workload(n);
    for strategy in ALL_STRATEGIES {
        let run_at = |level: TelemetryLevel| {
            let cfg = SemisortConfig {
                scatter: ScatterConfig {
                    strategy,
                    ..ScatterConfig::default()
                },
                telemetry: level,
                ..Default::default()
            };
            parlay::with_threads(1, || try_semisort_with_stats(&records, &cfg).unwrap())
        };
        let (out_off, stats_off) = run_at(TelemetryLevel::Off);
        let (out_deep, _) = run_at(TelemetryLevel::Deep);
        assert_eq!(
            out_off, out_deep,
            "{strategy:?}: telemetry must not change the output"
        );
        assert_eq!(stats_off.telemetry.cas_attempts, 0);
        assert_eq!(stats_off.telemetry.cas_failures, 0);
        assert_eq!(stats_off.telemetry.records_placed, 0);
        assert!(stats_off.telemetry.probe_hist.is_empty());
        assert!(stats_off.telemetry.light_occupancy_hist.is_empty());
        assert!(stats_off.telemetry.retry_causes.is_empty());
    }
}

#[test]
fn retry_causes_recorded_at_every_level_under_tight_alpha() {
    // α barely above 1 forces bucket overflows; the retry causes must be
    // captured even at TelemetryLevel::Off (cold-path recording).
    let records: Vec<(u64, u64)> = (0..100_000u64).map(|i| (hash64(i), i)).collect();
    for strategy in ALL_STRATEGIES {
        for level in [TelemetryLevel::Off, TelemetryLevel::Deep] {
            let cfg = SemisortConfig {
                alpha: 1.01,
                scatter: ScatterConfig {
                    strategy,
                    ..ScatterConfig::default()
                },
                telemetry: level,
                ..Default::default()
            };
            let (out, stats) = try_semisort_with_stats(&records, &cfg).unwrap();
            assert!(semisort::verify::is_semisorted_by(&out, |r| r.0));
            if stats.retries == 0 {
                // The tight α got lucky this seed; nothing to check.
                continue;
            }
            assert_eq!(
                stats.telemetry.retry_causes.len(),
                stats.retries as usize,
                "{strategy:?}/{level:?}: one cause per retry"
            );
            for (i, rc) in stats.telemetry.retry_causes.iter().enumerate() {
                assert_eq!(rc.attempt, i as u32 + 1, "causes are in attempt order");
                assert!(rc.allocated > 0);
                assert!(
                    rc.observed > rc.allocated,
                    "{strategy:?}: observed {} must exceed allocation {}",
                    rc.observed,
                    rc.allocated
                );
            }
        }
    }
}

#[test]
fn config_echoed_into_stats() {
    let cfg = SemisortConfig {
        heavy_threshold: 8,
        telemetry: TelemetryLevel::Counters,
        ..SemisortConfig::default().with_seed(777)
    };
    let (_, stats) = try_semisort_with_stats(&workload(30_000), &cfg).unwrap();
    assert_eq!(stats.config.heavy_threshold, 8);
    assert_eq!(stats.config.seed, 777);
    assert_eq!(stats.config.telemetry, TelemetryLevel::Counters);
    // Fallback paths (tiny input) echo the config too.
    let (_, small) = try_semisort_with_stats(&workload(100), &cfg).unwrap();
    assert_eq!(small.config.seed, 777);
    assert_eq!(small.n, 100);
}

#[test]
fn deep_probe_hist_mass_sits_low_for_uniform_input() {
    // With α = 1.1 slack and uniform keys most records land within a few
    // probes; the histogram must reflect that (≥90% in buckets 0–2, i.e.
    // probe lengths 0–3).
    let records: Vec<(u64, u64)> = (0..200_000u64).map(|i| (hash64(i), i)).collect();
    let cfg = SemisortConfig {
        telemetry: TelemetryLevel::Deep,
        ..Default::default()
    };
    let (_, stats) = try_semisort_with_stats(&records, &cfg).unwrap();
    let h = &stats.telemetry.probe_hist;
    let low: u64 = h.buckets[..3].iter().sum();
    assert!(
        low * 10 >= h.count() * 9,
        "expected ≥90% of probe lengths ≤ 3, got {low}/{}",
        h.count()
    );
}
