//! Adversarial inputs: the probabilistic analysis assumes uniformly hashed
//! keys, but correctness must survive inputs crafted to break every
//! structural assumption (via retries or fallbacks, never wrong output).

use semisort::verify::{is_permutation_of, is_semisorted_by};
use semisort::{
    try_semisort_core, try_semisort_with_stats, ScatterConfig, ScatterStrategy, SemisortConfig,
};

fn check(records: &[(u64, u64)], cfg: &SemisortConfig) {
    let out = try_semisort_core(records, cfg).unwrap();
    assert!(is_semisorted_by(&out, |r| r.0), "not semisorted");
    assert!(is_permutation_of(&out, records), "not a permutation");
}

fn cfg() -> SemisortConfig {
    SemisortConfig::default()
}

#[test]
fn all_keys_share_one_light_prefix() {
    // Every key lands in the same light bucket's prefix class (top 16 bits
    // all zero) while remaining distinct — the light-bucket size estimate
    // is maximally wrong for a "uniform" assumption.
    let recs: Vec<(u64, u64)> = (0..120_000u64).map(|i| (i + 1, i)).collect();
    check(&recs, &cfg());
}

#[test]
fn two_adjacent_prefixes_loaded_rest_empty() {
    let recs: Vec<(u64, u64)> = (0..100_000u64)
        .map(|i| {
            let prefix = (i % 2) << 48; // prefix classes 0 and 1 only
            (prefix | (i + 1), i)
        })
        .collect();
    check(&recs, &cfg());
}

#[test]
fn keys_at_the_heavy_light_boundary() {
    // Every key has multiplicity exactly δ/p = 256, the worst case §5.2
    // identifies ("most of the keys are close to the threshold"). Keys are
    // interleaved round-robin so each stride sees distinct keys and the
    // per-key sample count is genuinely binomial around δ.
    let n = 131_072u64;
    let keys = 512u64; // multiplicity n / keys = 256
    let recs: Vec<(u64, u64)> = (0..n).map(|i| (parlay::hash64(i % keys) | 1, i)).collect();
    let (out, stats) = try_semisort_with_stats(&recs, &cfg()).unwrap();
    assert!(is_semisorted_by(&out, |r| r.0));
    assert!(is_permutation_of(&out, &recs));
    // Roughly half the keys should be classified heavy at the boundary
    // (binomial fluctuation around δ); extremes would betray a bias.
    let pct = stats.heavy_fraction_pct();
    assert!((10.0..90.0).contains(&pct), "boundary heavy% = {pct}");
}

#[test]
fn contiguous_boundary_runs_are_deterministically_heavy() {
    // The same multiplicity-256 keys laid out as contiguous runs: strided
    // sampling then picks exactly one sample per 16-record stride, so every
    // key gets exactly δ = 16 samples and is classified heavy — a useful
    // property (contiguous data never flaps at the boundary), pinned here.
    let mult = 256u64;
    let n = 131_072u64;
    let recs: Vec<(u64, u64)> = (0..n).map(|i| (parlay::hash64(i / mult) | 1, i)).collect();
    let (out, stats) = try_semisort_with_stats(&recs, &cfg()).unwrap();
    assert!(is_semisorted_by(&out, |r| r.0));
    assert!(is_permutation_of(&out, &recs));
    assert!(
        stats.heavy_fraction_pct() > 99.0,
        "aligned runs should all be heavy, got {}",
        stats.heavy_fraction_pct()
    );
}

#[test]
fn geometric_multiplicities() {
    // Key j has multiplicity 2^j: every scale between light and heavy at
    // once, with one key owning half the input.
    let mut recs: Vec<(u64, u64)> = Vec::new();
    let mut payload = 0u64;
    for j in 0..17u64 {
        for _ in 0..(1u64 << j) {
            recs.push((parlay::hash64(j), payload));
            payload += 1;
        }
    }
    check(&recs, &cfg());
}

#[test]
fn maximal_and_minimal_hash_values() {
    // Clusters at both ends of the hash range (first and last prefix
    // class), plus the sentinels.
    let mut recs: Vec<(u64, u64)> = Vec::new();
    for i in 0..40_000u64 {
        recs.push((i % 64, i)); // bottom of the range, incl. key 0 (EMPTY)
        recs.push((u64::MAX - (i % 64), i)); // top, incl. u64::MAX
    }
    check(&recs, &cfg());
}

#[test]
fn saw_tooth_arrangement_defeats_strided_sampling_bias() {
    // A periodic arrangement aligned with the sampling stride (16): if the
    // sampler were biased within strides, this would mis-estimate wildly.
    let n = 160_000u64;
    let recs: Vec<(u64, u64)> = (0..n).map(|i| (parlay::hash64(i % 16) | 1, i)).collect();
    let (out, stats) = try_semisort_with_stats(&recs, &cfg()).unwrap();
    assert!(is_semisorted_by(&out, |r| r.0));
    assert!(is_permutation_of(&out, &recs));
    assert_eq!(stats.heavy_keys, 16, "all 16 periodic keys are heavy");
}

#[test]
fn tiny_alpha_large_skew_converges_via_retries() {
    let cfg = SemisortConfig {
        alpha: 1.001,
        ..Default::default()
    };
    let recs: Vec<(u64, u64)> = (0..100_000u64)
        .map(|i| (parlay::hash64(i % 31) | 1, i))
        .collect();
    check(&recs, &cfg);
}

#[test]
fn non_uniform_raw_keys_without_prehashing() {
    // Callers are told to pre-hash; if they don't (sequential integers,
    // clustered bits), the result must still be correct.
    for gen in [
        |i: u64| i,                       // sequential
        |i: u64| i << 32,                 // high-half only
        |i: u64| (i % 100) * 0x0101_0101, // strided duplicates
        |i: u64| 1u64 << (i % 63),        // one-hot
    ] {
        let recs: Vec<(u64, u64)> = (0..80_000u64).map(|i| (gen(i) | 1, i)).collect();
        check(&recs, &cfg());
    }
}

#[test]
fn config_extremes() {
    let recs: Vec<(u64, u64)> = (0..60_000u64)
        .map(|i| (parlay::hash64(i % 2_000), i))
        .collect();
    // Very sparse sampling.
    check(
        &recs,
        &SemisortConfig {
            sample_shift: 10,
            ..Default::default()
        },
    );
    // Very dense sampling.
    check(
        &recs,
        &SemisortConfig {
            sample_shift: 1,
            ..Default::default()
        },
    );
    // Heavy threshold so low everything sampled twice is "heavy".
    check(
        &recs,
        &SemisortConfig {
            heavy_threshold: 2,
            ..Default::default()
        },
    );
    // Heavy threshold so high nothing is heavy.
    check(
        &recs,
        &SemisortConfig {
            heavy_threshold: 1_000_000,
            ..Default::default()
        },
    );
    // Single light prefix class cap.
    check(
        &recs,
        &SemisortConfig {
            light_bucket_log2: 1,
            ..Default::default()
        },
    );
}

#[test]
fn blocked_slab_overflow_is_forced_and_survived() {
    // Adversarial setup for the blocked scatter: reserve half of every
    // bucket as the CAS tail (blocked_tail_log2 = 1), so the slab holds at
    // most size/2 slots while buckets are sized ≈ α·count — the slab
    // cursor *must* run out on the big heavy buckets and spill into the
    // per-record CAS fallback. The output must still be a valid semisort
    // and the overflow telemetry must record the event.
    let recs: Vec<(u64, u64)> = (0..120_000u64)
        .map(|i| (parlay::hash64(i % 5) | 1, i))
        .collect();
    let cfg = SemisortConfig {
        scatter: ScatterConfig {
            strategy: ScatterStrategy::Blocked,
            tail_log2: 1,
            ..ScatterConfig::default()
        },
        ..Default::default()
    };
    let (out, stats) = try_semisort_with_stats(&recs, &cfg).unwrap();
    assert!(is_semisorted_by(&out, |r| r.0));
    assert!(is_permutation_of(&out, &recs));
    assert!(
        stats.slab_overflows > 0,
        "a half-size slab must overflow on 24k-record buckets"
    );
    assert!(
        stats.fallback_records > 0,
        "overflowing flushes must route records through the CAS tail"
    );
    assert_eq!(stats.retries, 0, "the tail must absorb the spill");
}

#[test]
fn blocked_tail_exhaustion_retries_like_cas_overflow() {
    // α barely above 1 under the blocked strategy: slab + tail together
    // barely fit the records, so some run overflows entirely and the Las
    // Vegas loop must converge by doubling α — same contract as the CAS
    // path's overflow.
    let cfg = SemisortConfig {
        scatter: ScatterConfig {
            strategy: ScatterStrategy::Blocked,
            ..ScatterConfig::default()
        },
        alpha: 1.001,
        ..Default::default()
    };
    let recs: Vec<(u64, u64)> = (0..100_000u64)
        .map(|i| (parlay::hash64(i % 31) | 1, i))
        .collect();
    check(&recs, &cfg);
}

#[test]
fn blocked_strategy_survives_the_adversarial_gauntlet() {
    // The structural attacks above, replayed under the blocked scatter.
    let cfg = SemisortConfig {
        scatter: ScatterConfig {
            strategy: ScatterStrategy::Blocked,
            ..ScatterConfig::default()
        },
        ..Default::default()
    };
    let light_prefix: Vec<(u64, u64)> = (0..120_000u64).map(|i| (i + 1, i)).collect();
    check(&light_prefix, &cfg);
    let mut geometric: Vec<(u64, u64)> = Vec::new();
    let mut payload = 0u64;
    for j in 0..17u64 {
        for _ in 0..(1u64 << j) {
            geometric.push((parlay::hash64(j), payload));
            payload += 1;
        }
    }
    check(&geometric, &cfg);
    let mut sentinels: Vec<(u64, u64)> = Vec::new();
    for i in 0..40_000u64 {
        sentinels.push((i % 64, i));
        sentinels.push((u64::MAX - (i % 64), i));
    }
    check(&sentinels, &cfg);
}

#[test]
fn inplace_strategy_survives_the_adversarial_gauntlet() {
    // The structural attacks above, replayed under the in-place scatter:
    // exact counting makes organic overflow impossible, so these exercise
    // the permutation loop (fixed-point runs, strand/reconcile) instead.
    let cfg = SemisortConfig {
        scatter: ScatterConfig {
            strategy: ScatterStrategy::InPlace,
            ..ScatterConfig::default()
        },
        ..Default::default()
    };
    let light_prefix: Vec<(u64, u64)> = (0..120_000u64).map(|i| (i + 1, i)).collect();
    check(&light_prefix, &cfg);
    let mut geometric: Vec<(u64, u64)> = Vec::new();
    let mut payload = 0u64;
    for j in 0..17u64 {
        for _ in 0..(1u64 << j) {
            geometric.push((parlay::hash64(j), payload));
            payload += 1;
        }
    }
    check(&geometric, &cfg);
    let mut sentinels: Vec<(u64, u64)> = Vec::new();
    for i in 0..40_000u64 {
        sentinels.push((i % 64, i));
        sentinels.push((u64::MAX - (i % 64), i));
    }
    check(&sentinels, &cfg);
    // Tiny swap buffers shrink every displacement chain to single records.
    let tiny = SemisortConfig {
        scatter: ScatterConfig {
            strategy: ScatterStrategy::InPlace,
            swap_buffer: 1,
            ..ScatterConfig::default()
        },
        ..Default::default()
    };
    check(&sentinels, &tiny);
}

#[test]
fn payload_values_are_never_corrupted() {
    // Payload = function of key; verify the pairing after semisorting.
    let recs: Vec<(u64, u64)> = (0..150_000u64)
        .map(|i| {
            let k = parlay::hash64(i % 5_000) | 1;
            (k, k.wrapping_mul(3).wrapping_add(1))
        })
        .collect();
    let out = try_semisort_core(&recs, &cfg()).unwrap();
    assert!(out
        .iter()
        .all(|&(k, v)| v == k.wrapping_mul(3).wrapping_add(1)));
    assert!(is_semisorted_by(&out, |r| r.0));
}
