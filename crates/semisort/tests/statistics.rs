//! Statistical validation of §3.1: the estimator `f(s)` is simulated
//! against its two promises — per-bucket it is a w.h.p. *upper bound*
//! (Lemma 3.2), and summed over buckets it stays *linear* (Lemma 3.5) —
//! across the sampling regimes the algorithm actually encounters.

use parlay::random::Rng;
use semisort::estimate::{bucket_capacity, f_estimate};
use semisort::{try_semisort_with_stats, SemisortConfig};
use workloads::{generate, Distribution};

const P: f64 = 1.0 / 16.0;
const C: f64 = 1.25;

/// Binomially sample `nu` records at rate `P` with stream `rng`.
fn sample_count(nu: usize, rng: Rng) -> usize {
    (0..nu).filter(|&i| rng.at_f64(i as u64) < P).count()
}

#[test]
fn lemma_3_2_upper_bound_across_multiplicities() {
    // For true multiplicities spanning light to very heavy, the observed
    // sample count s must satisfy f(s) ≥ ν in essentially all trials.
    let n = 10_000_000usize;
    let ln_n = (n as f64).ln();
    let rng = Rng::new(0xbead);
    let mut total_trials = 0u32;
    let mut failures = 0u32;
    for (case, &nu) in [300usize, 1_000, 5_000, 50_000, 500_000].iter().enumerate() {
        for t in 0..120u64 {
            let s = sample_count(nu, rng.fork(case as u64 * 1000 + t));
            if f_estimate(s, P, C, ln_n) < nu as f64 {
                failures += 1;
            }
            total_trials += 1;
        }
    }
    // Lemma 3.2 bounds each failure by n^-c ≈ 2e-9; a couple of failures
    // would already be a 10^7-sigma event — allow 1 for luck.
    assert!(
        failures <= 1,
        "estimator failed {failures}/{total_trials} trials"
    );
}

#[test]
fn estimator_is_not_vacuously_loose() {
    // The bound must also be *tight enough* to keep space linear: for a
    // heavy key with ν = 100k in a 10M input, f(s) should be within ~2× ν.
    let n = 10_000_000usize;
    let ln_n = (n as f64).ln();
    let rng = Rng::new(0xfeed);
    for t in 0..50u64 {
        let nu = 100_000usize;
        let s = sample_count(nu, rng.fork(t));
        let f = f_estimate(s, P, C, ln_n);
        assert!(f >= nu as f64);
        assert!(f < 2.0 * nu as f64, "estimate {f} too loose for ν={nu}");
    }
}

#[test]
fn lemma_3_5_linear_space_under_generated_workloads() {
    // End-to-end: measured slot blowup stays bounded on a spread of real
    // workload shapes and sizes.
    let cfg = SemisortConfig::default();
    for &n in &[50_000usize, 150_000, 400_000] {
        for dist in [
            Distribution::Uniform { n: n as u64 },
            Distribution::Uniform { n: 100 },
            Distribution::Exponential {
                lambda: n as f64 / 1000.0,
            },
            Distribution::Zipfian { m: n as u64 },
        ] {
            let records = generate(dist, n, 0xa11);
            let (_, stats) = try_semisort_with_stats(&records, &cfg).unwrap();
            assert!(
                stats.space_blowup() < 10.0,
                "{} at n={n}: blowup {:.2}",
                dist.label(),
                stats.space_blowup()
            );
        }
    }
}

#[test]
fn capacity_overflow_probability_is_tiny_in_practice() {
    // Run the full pipeline many times with different seeds; Corollary 3.4
    // says overflow (a retry) should essentially never happen with the
    // default constants.
    let records = generate(Distribution::Zipfian { m: 50_000 }, 100_000, 3);
    let mut total_retries = 0;
    for seed in 0..20u64 {
        let cfg = SemisortConfig::default().with_seed(seed);
        let (_, stats) = try_semisort_with_stats(&records, &cfg).unwrap();
        total_retries += stats.retries;
    }
    assert_eq!(total_retries, 0, "default constants should never overflow");
}

#[test]
fn light_bucket_sizes_are_polylog() {
    // §3: w.h.p. each light bucket receives O(log²n)·(1/p scaling) records;
    // check the realized maximum against a generous multiple.
    let n = 400_000usize;
    let records = generate(Distribution::Uniform { n: n as u64 }, n, 9);
    let cfg = SemisortConfig::default();
    let (_, stats) = try_semisort_with_stats(&records, &cfg).unwrap();
    assert_eq!(stats.heavy_records, 0);
    // Records per light bucket on average = n / light_buckets; the bound
    // says the max is within a log factor of that.
    let avg = n as f64 / stats.light_buckets as f64;
    let ln_n = (n as f64).ln();
    assert!(
        avg < 20.0 * ln_n * ln_n,
        "avg light bucket {avg} not polylog (ln²n = {})",
        ln_n * ln_n
    );
}

#[test]
fn power_of_two_rounding_costs_at_most_2x() {
    let ln_n = (1_000_000f64).ln();
    for s in 0..2_000usize {
        let raw = 1.1 * f_estimate(s, P, C, ln_n);
        let cap = bucket_capacity(s, P, C, ln_n, 1.1);
        assert!(
            (cap as f64) < 2.0 * raw + 2.0,
            "s={s}: cap {cap} vs raw {raw}"
        );
        assert!((cap as f64) >= raw.ceil() - 1.0);
    }
}
