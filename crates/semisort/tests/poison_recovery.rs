//! Regression tests for engine poisoning: a panic that unwinds out of a
//! `Semisorter` call mid-scatter must not leave the engine unusable or
//! its scratch pool in a corrupt state.
//!
//! The safety story being verified: `ScratchPool` leases are
//! borrow-scoped (RAII inside the call), so an unwind drops them on the
//! way out — nothing dangles, no lease survives the panic. The engine
//! object itself stays structurally sound: later calls that don't hit the
//! fault succeed, `trim()` still releases retained scratch, and the
//! retention budget is still enforced. (The *service* layer additionally
//! rebuilds the whole engine after a contained panic — that path is
//! exercised in `crates/semisortd/tests/service.rs`; this test pins down
//! the weaker in-place guarantee the rebuild relies on.)

use std::panic::{catch_unwind, AssertUnwindSafe};

use semisort::{FaultPlan, SemisortConfig, Semisorter};

fn poisoning_cfg() -> SemisortConfig {
    SemisortConfig {
        seq_threshold: 64,
        fault: FaultPlan {
            // Attempt 0 of every parallel run panics mid-scatter; inputs
            // at or below seq_threshold never reach the scatter phase and
            // stay usable.
            panic_attempts: 1,
            ..FaultPlan::NONE
        },
        ..SemisortConfig::default()
    }
}

fn records(n: usize) -> Vec<(u64, u64)> {
    // `sort_pairs` takes pre-hashed keys, so avoid the reserved sentinels
    // (0 = EMPTY, u64::MAX) — a sentinel key would take the fallback path
    // before the scatter phase the fault targets.
    (0..n as u64).map(|i| (i % 13 + 1, i)).collect()
}

#[test]
fn panic_mid_scatter_unwinds_without_dangling_leases() {
    let mut engine = Semisorter::new(poisoning_cfg()).unwrap();
    let big = records(4096);

    let unwound = catch_unwind(AssertUnwindSafe(|| engine.sort_pairs(&big))).is_err();
    assert!(unwound, "the forced fault must actually panic");

    // Every lease the panicked call took was borrow-scoped, so the pool
    // is whole: a sequential-path call on the same engine just works.
    let small = records(64);
    let out = engine
        .sort_pairs(&small)
        .expect("engine survives the unwind");
    assert_eq!(out.len(), small.len());

    // And repeatedly: panic again, recover again.
    let unwound = catch_unwind(AssertUnwindSafe(|| engine.sort_pairs(&big))).is_err();
    assert!(unwound);
    assert!(engine.sort_pairs(&small).is_ok());
}

#[test]
fn trim_after_recovery_releases_scratch() {
    let mut engine = Semisorter::new(poisoning_cfg()).unwrap();
    let big = records(4096);

    assert!(catch_unwind(AssertUnwindSafe(|| engine.sort_pairs(&big))).is_err());

    // Warm the pool with a successful call, then trim: everything the
    // pool held (including anything grown before the earlier panic) is
    // released, and the engine still works from a cold pool.
    engine.sort_pairs(&records(64)).expect("post-panic call");
    engine.trim();
    assert_eq!(engine.scratch_bytes_held(), 0, "trim drops all scratch");
    assert_eq!(engine.last_stats().scratch_bytes_held, 0);
    assert!(
        engine.sort_pairs(&records(64)).is_ok(),
        "cold pool re-grows"
    );
}

#[test]
fn scratch_budget_still_enforced_after_panic() {
    let mut cfg = poisoning_cfg();
    cfg.max_scratch_bytes = 1 << 16;
    let mut engine = Semisorter::new(cfg).unwrap();

    assert!(catch_unwind(AssertUnwindSafe(|| engine.sort_pairs(&records(4096)))).is_err());

    // A successful call's exit path enforces the retention budget exactly
    // as it would on an engine that never panicked.
    engine.sort_pairs(&records(64)).expect("post-panic call");
    assert!(
        engine.scratch_bytes_held() <= 1 << 16,
        "held {} bytes exceeds the retention budget",
        engine.scratch_bytes_held()
    );
}

#[test]
fn fresh_engine_after_panic_matches_service_rebuild_semantics() {
    // What semisortd's shard does after containing a panic: drop the
    // poisoned engine, build a new one from the same base config (fault
    // cleared), and serve the next request at full size.
    let mut engine = Semisorter::new(poisoning_cfg()).unwrap();
    let big = records(4096);
    assert!(catch_unwind(AssertUnwindSafe(|| engine.sort_pairs(&big))).is_err());

    let mut base = poisoning_cfg();
    base.fault = FaultPlan::NONE;
    let mut rebuilt = Semisorter::new(base).unwrap();
    let out = rebuilt
        .sort_pairs(&big)
        .expect("rebuilt engine serves full-size work");
    assert_eq!(out.len(), big.len());
    let mut want = big.clone();
    let mut got = out;
    want.sort_unstable();
    got.sort_unstable();
    assert_eq!(want, got, "rebuilt engine output is a permutation");
}
