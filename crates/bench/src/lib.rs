//! Shared utilities for the benchmark harness binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index). This library holds the pieces they
//! share: CLI parsing, timing, and table formatting.

#![warn(missing_docs)]

pub mod alloc_track;
pub mod cli;
pub mod fmt;
pub mod timing;
pub mod trajectory;

pub use cli::Args;
pub use fmt::Table;
pub use timing::{time, time_best_of};
