//! **§5.4 (text)**: the parallel semisort on one thread versus the
//! sequential semisort implementations.
//!
//! Expected shape (paper): the semisort is ≈20% faster than the chained
//! hash-table semisort on one thread ("estimating sizes and writing
//! directly to an array" beats linked lists), and the other sequential
//! variants (open addressing with per-key chains, two-phase
//! count-then-place) are "even less efficient".

use baselines::{seq_hash_semisort, seq_open_semisort, seq_sort_semisort, seq_two_phase_semisort};
use bench::fmt::{s3, x2, Table};
use bench::timing::time_best_of;
use bench::Args;
use parlay::with_threads;
use semisort::{try_semisort_pairs, SemisortConfig};
use workloads::{generate, representative_distributions};

fn main() {
    let Some(args) = Args::parse() else { return };
    let cfg = SemisortConfig::default().with_seed(args.seed);
    let (exp_dist, uni_dist) = representative_distributions(args.n);

    println!(
        "§5.4: single-thread semisort vs sequential baselines, n = {}, best of {}\n",
        args.n, args.reps
    );

    for dist in [exp_dist, uni_dist] {
        println!("{}:", dist.label());
        let records = generate(dist, args.n, args.seed);
        let mut table = Table::new(["algorithm", "time (s)", "vs semisort"]);

        let (_, t_semi) = with_threads(1, || {
            time_best_of(args.reps, || {
                try_semisort_pairs(&records, &cfg).unwrap().len()
            })
        });
        let entries: Vec<(&str, std::time::Duration)> = vec![
            ("parallel semisort (1 thread)", t_semi),
            ("seq chained hash table", {
                with_threads(1, || {
                    time_best_of(args.reps, || seq_hash_semisort(&records).len())
                })
                .1
            }),
            ("seq open addressing + vecs", {
                with_threads(1, || {
                    time_best_of(args.reps, || seq_open_semisort(&records).len())
                })
                .1
            }),
            ("seq two-phase count+place", {
                with_threads(1, || {
                    time_best_of(args.reps, || seq_two_phase_semisort(&records).len())
                })
                .1
            }),
            ("seq full sort (pdqsort)", {
                with_threads(1, || {
                    time_best_of(args.reps, || seq_sort_semisort(&records).len())
                })
                .1
            }),
        ];
        for (name, t) in entries {
            table.row([
                name.to_string(),
                s3(t),
                x2(t.as_secs_f64() / t_semi.as_secs_f64()),
            ]);
        }
        table.print();
        println!();
    }
    println!(
        "paper shape: semisort ≈1.2x faster than the chained hash table on \
         one thread; the other sequential variants are slower still"
    );
}
