//! **Table 1**: running times and speedup of parallel semisort and radix
//! sort on the 17 distributions, across thread counts.
//!
//! Paper setup: n = 10⁸ on 40 cores (80 hyperthreads). Run with
//! `--n 100m --threads 1,2,4,8,16,32,40,80` to reproduce at paper scale;
//! defaults are laptop-sized.
//!
//! Expected shape (paper): semisort ≈13–18 s sequential, 0.46–0.56 s on
//! 40h (speedups 27–35); radix sort ≈0.88–0.96 s on 40h — semisort wins by
//! ≈1.7–1.9×, and its time varies ≤20% across all distributions.

use bench::fmt::{pct1, s3, x2, Table};
use bench::timing::time_best_of;
use bench::Args;
use parlay::radix_sort::radix_sort_pairs;
use parlay::with_threads;
use semisort::{try_semisort_with_stats, SemisortConfig};
use workloads::{generate, paper_distributions};

fn main() {
    let Some(args) = Args::parse() else { return };
    let cfg = SemisortConfig::default().with_seed(args.seed);

    println!(
        "Table 1: semisort vs radix sort, n = {}, threads {:?}, best of {}\n",
        args.n, args.threads, args.reps
    );

    let mut header: Vec<String> = vec!["distribution".into(), "%heavy".into()];
    for &t in &args.threads {
        header.push(format!("semi t={t}"));
    }
    for &t in &args.threads {
        if t > 1 {
            header.push(format!("spd t={t}"));
        }
    }
    header.push("radix seq".into());
    header.push(format!("radix t={}", args.max_threads()));
    header.push("semi/radix".into());
    let mut table = Table::new(header);

    for pd in paper_distributions() {
        let records = generate(pd.dist, args.n, args.seed);
        let mut semi_times = Vec::new();
        let mut heavy_pct = 0.0;
        for &t in &args.threads {
            let (stats, dt) = with_threads(t, || {
                time_best_of(args.reps, || {
                    try_semisort_with_stats(&records, &cfg).unwrap().1
                })
            });
            heavy_pct = stats.heavy_fraction_pct();
            semi_times.push(dt);
        }
        let (_, radix_seq) = with_threads(1, || {
            time_best_of(args.reps, || {
                let mut v = records.clone();
                radix_sort_pairs(&mut v);
                v.len()
            })
        });
        let (_, radix_par) = with_threads(args.max_threads(), || {
            time_best_of(args.reps, || {
                let mut v = records.clone();
                radix_sort_pairs(&mut v);
                v.len()
            })
        });

        let mut row: Vec<String> = vec![pd.dist.label(), pct1(heavy_pct)];
        for dt in &semi_times {
            row.push(s3(*dt));
        }
        let t1 = semi_times[0].as_secs_f64();
        for (i, dt) in semi_times.iter().enumerate() {
            if args.threads[i] > 1 {
                row.push(x2(t1 / dt.as_secs_f64()));
            }
        }
        row.push(s3(radix_seq));
        row.push(s3(radix_par));
        let semi_best = semi_times.last().unwrap().as_secs_f64();
        row.push(x2(radix_par.as_secs_f64() / semi_best));
        table.row(row);
    }

    table.print();
    println!(
        "\npaper (40h, n=1e8): semisort 0.46–0.56 s across all 17 distributions \
         (≤20% spread), radix 0.88–0.96 s; semisort/radix advantage ≈1.7–1.9x"
    );
}
