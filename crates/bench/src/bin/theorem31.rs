//! **Theorem 3.1**: empirical verification of the `O(n)` work / `O(log n)`
//! depth bounds by exact operation counting (no timers).
//!
//! Expected shape: `work/n` flat across a 64× range of n on every
//! distribution; `max probe run / log₂n` and `max light bucket / log₂²n`
//! bounded by small constants; `slots/n` bounded (Lemma 3.5).

use bench::fmt::{x2, Table};
use bench::Args;
use semisort::analysis::analyze;
use semisort::SemisortConfig;
use workloads::{generate, representative_distributions, Distribution};

fn main() {
    let Some(args) = Args::parse() else { return };
    let cfg = SemisortConfig::default().with_seed(args.seed);

    println!("Theorem 3.1: operation counts (no timing) across input sizes\n");

    type DistFor = fn(usize) -> Distribution;
    let dists: Vec<(&str, DistFor)> = vec![
        ("uniform(n) — all light", |n| {
            representative_distributions(n).1
        }),
        ("exp(n/1000) — ~70% heavy", |n| {
            representative_distributions(n).0
        }),
        ("zipf(n) — mixed", |n| Distribution::Zipfian {
            m: n as u64,
        }),
    ];

    for (label, dist_of) in dists {
        println!("{label}:");
        let mut table = Table::new([
            "n",
            "work/n",
            "avg probes",
            "max probe run",
            "/log2(n)",
            "max light bucket",
            "/log2^2(n)",
            "slots/n",
        ]);
        for &n in &args.sizes {
            let records = generate(dist_of(n), n, args.seed);
            let c = analyze(&records, &cfg);
            table.row([
                n.to_string(),
                x2(c.work_per_record()),
                x2(c.scatter_probes as f64 / n as f64),
                c.max_probe_run.to_string(),
                x2(c.probe_depth_ratio()),
                c.max_light_bucket.to_string(),
                x2(c.bucket_depth_ratio()),
                x2(c.total_slots as f64 / n as f64),
            ]);
        }
        table.print();
        println!();
    }
    println!(
        "Theorem 3.1 signature: work/n flat in n (linear work); probe runs \
         O(log n); light buckets O(log²n); slots O(n) (Lemma 3.5)"
    );
}
