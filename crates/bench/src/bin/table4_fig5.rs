//! **Table 4 and Figure 5**: scalability with input size, and the
//! comparison against the scatter + pack lower bound.
//!
//! Expected shape (paper, n = 10⁷..10⁹): speedup grows with input size
//! (23→35 exponential, 25→38 uniform); throughput (records/s) *increases*
//! with n (linear work, better amortization); and the full semisort runs
//! only 1.5–2× slower than a bare scatter + pack, with the gap closing as
//! n grows.

use baselines::scatter_pack::scatter_and_pack;
use bench::fmt::{s3, x2, Table};
use bench::timing::time_best_of;
use bench::Args;
use parlay::with_threads;
use semisort::{try_semisort_pairs, SemisortConfig};
use workloads::{generate, representative_distributions};

fn main() {
    let Some(args) = Args::parse() else { return };
    let cfg = SemisortConfig::default().with_seed(args.seed);
    let par_threads = args.max_threads();

    println!(
        "Table 4 / Figure 5: size sweep, threads seq vs {}, best of {}\n",
        par_threads, args.reps
    );

    let mut table = Table::new(vec![
        "n".to_string(),
        "exp seq (s)".to_string(),
        "exp par (s)".to_string(),
        "exp spd".to_string(),
        "exp Mrec/s".to_string(),
        "uni seq (s)".to_string(),
        "uni par (s)".to_string(),
        "uni spd".to_string(),
        "uni Mrec/s".to_string(),
        "scatter (s)".to_string(),
        "pack (s)".to_string(),
        "s+p (s)".to_string(),
        "semi/s+p".to_string(),
    ]);

    for &n in &args.sizes {
        let (exp_dist, uni_dist) = representative_distributions(n);
        let exp_recs = generate(exp_dist, n, args.seed);
        let uni_recs = generate(uni_dist, n, args.seed);

        let (_, exp_seq) = with_threads(1, || {
            time_best_of(args.reps, || {
                try_semisort_pairs(&exp_recs, &cfg).unwrap().len()
            })
        });
        let (_, exp_par) = with_threads(par_threads, || {
            time_best_of(args.reps, || {
                try_semisort_pairs(&exp_recs, &cfg).unwrap().len()
            })
        });
        let (_, uni_seq) = with_threads(1, || {
            time_best_of(args.reps, || {
                try_semisort_pairs(&uni_recs, &cfg).unwrap().len()
            })
        });
        let (_, uni_par) = with_threads(par_threads, || {
            time_best_of(args.reps, || {
                try_semisort_pairs(&uni_recs, &cfg).unwrap().len()
            })
        });
        // Scatter + pack on the uniform input (the paper's baseline column).
        let (timing, _) = with_threads(par_threads, || {
            time_best_of(args.reps, || scatter_and_pack(&uni_recs, args.seed).1)
        });

        let mrec = |t: std::time::Duration| x2(n as f64 / t.as_secs_f64() / 1e6);
        table.row(vec![
            n.to_string(),
            s3(exp_seq),
            s3(exp_par),
            x2(exp_seq.as_secs_f64() / exp_par.as_secs_f64()),
            mrec(exp_par),
            s3(uni_seq),
            s3(uni_par),
            x2(uni_seq.as_secs_f64() / uni_par.as_secs_f64()),
            mrec(uni_par),
            s3(timing.scatter),
            s3(timing.pack),
            s3(timing.total()),
            x2(uni_par.as_secs_f64() / timing.total().as_secs_f64()),
        ]);
    }
    table.print();
    println!(
        "\npaper shape: throughput rises with n; semisort is 1.5-2x a bare \
         scatter+pack and the ratio improves as n grows"
    );
}
