//! **Table 5 and Figure 4**: semisort versus the optimized sorting
//! baselines (STL sort, sample sort, radix sort) across input sizes, on
//! both representative distributions.
//!
//! Expected shape (paper, n = 10⁷..10⁹): the comparison sorts win at small
//! n (≤2·10⁷ uniform, ≤5·10⁷ exponential) thanks to cache friendliness;
//! past ~10⁸ the semisort's linear work takes over and its records/s keeps
//! rising while the O(n log n) sorts decline. Radix sort is slowest almost
//! everywhere (64-bit keys need too many rounds).

use baselines::comparison::{par_sort_semisort, seq_sort_semisort};
use bench::fmt::{s3, x2, Table};
use bench::timing::time_best_of;
use bench::Args;
use parlay::radix_sort::radix_sort_pairs;
use parlay::sample_sort::sample_sort_pairs;
use parlay::with_threads;
use semisort::{try_semisort_pairs, SemisortConfig};
use workloads::{generate, representative_distributions, Distribution};

fn main() {
    let Some(args) = Args::parse() else { return };
    let cfg = SemisortConfig::default().with_seed(args.seed);
    let par_threads = args.max_threads();

    println!(
        "Table 5 / Figure 4: sort baselines vs semisort, seq and t={}, best of {}\n",
        par_threads, args.reps
    );

    for pick in [Pick::Exponential, Pick::Uniform] {
        println!("{}:", pick.title());
        let mut table = Table::new(vec![
            "n".to_string(),
            "STL seq".to_string(),
            "STL par".to_string(),
            "sample seq".to_string(),
            "sample par".to_string(),
            "radix seq".to_string(),
            "radix par".to_string(),
            "semi seq".to_string(),
            "semi par".to_string(),
            "semi Mrec/s".to_string(),
            "best other Mrec/s".to_string(),
        ]);
        for &n in &args.sizes {
            let dist = pick.dist(n);
            let records = generate(dist, n, args.seed);

            let run_seq =
                |f: &(dyn Fn() -> usize + Sync)| with_threads(1, || time_best_of(args.reps, f)).1;
            let run_par = |f: &(dyn Fn() -> usize + Sync)| {
                with_threads(par_threads, || time_best_of(args.reps, f)).1
            };

            let stl = |recs: &[(u64, u64)]| seq_sort_semisort(recs).len();
            let stl_par = |recs: &[(u64, u64)]| par_sort_semisort(recs).len();
            let sample = |recs: &[(u64, u64)]| {
                let mut v = recs.to_vec();
                sample_sort_pairs(&mut v);
                v.len()
            };
            let radix = |recs: &[(u64, u64)]| {
                let mut v = recs.to_vec();
                radix_sort_pairs(&mut v);
                v.len()
            };
            let semi = |recs: &[(u64, u64)]| try_semisort_pairs(recs, &cfg).unwrap().len();

            let t_stl_seq = run_seq(&|| stl(&records));
            let t_stl_par = run_par(&|| stl_par(&records));
            let t_smp_seq = run_seq(&|| sample(&records));
            let t_smp_par = run_par(&|| sample(&records));
            let t_rdx_seq = run_seq(&|| radix(&records));
            let t_rdx_par = run_par(&|| radix(&records));
            let t_semi_seq = run_seq(&|| semi(&records));
            let t_semi_par = run_par(&|| semi(&records));

            let best_other = [t_stl_par, t_smp_par, t_rdx_par]
                .iter()
                .copied()
                .min()
                .unwrap();
            let mrec = |t: std::time::Duration| x2(n as f64 / t.as_secs_f64() / 1e6);
            table.row(vec![
                n.to_string(),
                s3(t_stl_seq),
                s3(t_stl_par),
                s3(t_smp_seq),
                s3(t_smp_par),
                s3(t_rdx_seq),
                s3(t_rdx_par),
                s3(t_semi_seq),
                s3(t_semi_par),
                mrec(t_semi_par),
                mrec(best_other),
            ]);
        }
        table.print();
        println!();
    }
    println!(
        "paper shape: comparison sorts lead at small n; semisort overtakes \
         as n grows (linear vs n log n work); radix trails everywhere"
    );
}

enum Pick {
    Exponential,
    Uniform,
}

impl Pick {
    fn title(&self) -> &'static str {
        match self {
            Pick::Exponential => "exponential distribution (λ = n/1000)",
            Pick::Uniform => "uniform distribution (N = n)",
        }
    }
    fn dist(&self, n: usize) -> Distribution {
        let (e, u) = representative_distributions(n);
        match self {
            Pick::Exponential => e,
            Pick::Uniform => u,
        }
    }
}
