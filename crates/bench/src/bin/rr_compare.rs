//! **§1 / §3.2**: top-down semisort versus the bottom-up alternative
//! (naming + Rajasekaran–Reif integer sort).
//!
//! Expected shape (the paper's argument): "just the initial preprocessing
//! using a hash table requires about as much work as the whole sequential
//! algorithm" — i.e. the RR pipeline's *naming phase alone* should cost on
//! the order of the entire semisort, making the full pipeline clearly
//! slower. The semisort avoids it by working directly on hash values
//! top-down.

use baselines::rr_semisort::rr_semisort;
use bench::fmt::{s3, x2, Table};
use bench::timing::time_best_of;
use bench::Args;
use parlay::with_threads;
use semisort::{try_semisort_pairs, SemisortConfig};
use workloads::{generate, paper_distributions, representative_distributions};

fn main() {
    let Some(args) = Args::parse() else { return };
    let cfg = SemisortConfig::default().with_seed(args.seed);
    let threads = args.max_threads();

    println!(
        "§3.2: top-down semisort vs naming + RR integer sort, n = {}, {} threads\n",
        args.n, threads
    );

    let (exp_dist, uni_dist) = representative_distributions(args.n);
    let mut dists = vec![exp_dist, uni_dist];
    dists.push(paper_distributions()[14].dist); // zipf(1M): mixed regime

    let mut table = Table::new([
        "distribution",
        "semisort (s)",
        "RR naming (s)",
        "RR sort (s)",
        "RR total (s)",
        "RR/semisort",
        "naming/semisort",
    ]);
    for dist in dists {
        let records = generate(dist, args.n, args.seed);
        let (_, t_semi) = with_threads(threads, || {
            time_best_of(args.reps, || {
                try_semisort_pairs(&records, &cfg).unwrap().len()
            })
        });
        let (timing, _) = with_threads(threads, || {
            time_best_of(args.reps, || rr_semisort(&records).1)
        });
        let total = timing.naming + timing.sort;
        table.row([
            dist.label(),
            s3(t_semi),
            s3(timing.naming),
            s3(timing.sort),
            s3(total),
            x2(total.as_secs_f64() / t_semi.as_secs_f64()),
            x2(timing.naming.as_secs_f64() / t_semi.as_secs_f64()),
        ]);
    }
    table.print();
    println!(
        "\npaper claim: the naming preprocessing alone costs about as much as \
         the whole semisort, so the RR route cannot be competitive"
    );
}
